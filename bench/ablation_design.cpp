/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Wrapping counters vs periodic table reset (Section IV-E): the
 *     reset halves the usable threshold (safe FlipTH doubles for the
 *     same table) and costs extra counter bits.
 *  2. Greedy max-selection vs threshold-buffered selection on RFM
 *     (Section III): measured worst-case disturbance of each policy
 *     under the concentration attack at identical table sizes.
 *  3. BLISS vs plain FR-FCFS under a hammering attacker: scheduling
 *     fairness interacts with protection overheads.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "sim/act_harness.hh"
#include "core/mithril.hh"
#include "trackers/graphene.hh"
#include "trackers/rfm_graphene.hh"

using namespace mithril;

namespace
{

double
concentrationDisturbance(trackers::RhProtection *tracker,
                         const dram::Timing &timing,
                         std::uint32_t threshold)
{
    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 1u << 30;
    sim::ActHarness harness(cfg, tracker);
    const std::uint64_t q = 150;
    const std::uint64_t phase1 = q * threshold;
    harness.run(dram::maxActsPerWindow(timing),
                [&](std::uint64_t i) {
                    if (i < phase1)
                        return static_cast<RowId>(2000 + 2 * (i % q));
                    const RowId last =
                        static_cast<RowId>(2000 + 2 * (q - 1));
                    return (i % 2) ? last : last - 2;
                });
    return harness.oracle().maxDisturbanceEver();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "ablation_design");
    bench::rejectParallelKnobs(scale, "ablation_design");
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();

    // ------------------------------------------------ 1. wrap vs reset
    bench::banner("Ablation 1: wrapping counters vs periodic reset");
    core::ConfigSolver solver(timing, geom);
    TablePrinter wrap({"FlipTH", "wrap Nentry", "wrap KB",
                       "reset-equiv KB", "saving"});
    for (std::uint32_t flip : {6250u, 3125u}) {
        const std::uint32_t rfm_th =
            core::defaultMithrilRfmTh(flip);
        auto cfg = solver.solve(flip, rfm_th);
        if (!cfg)
            continue;
        // A reset-based design must target FlipTH/2 (the aggressor can
        // straddle the reset point) and carry full-width counters
        // sized for the max count in a window.
        auto reset_cfg = solver.solve(flip / 2, rfm_th);
        double reset_kb = 0.0;
        if (reset_cfg) {
            const std::uint32_t full_bits = core::ceilLog2(
                dram::maxActsPerWindow(timing));
            reset_kb = reset_cfg->nEntry *
                       (reset_cfg->rowBits + full_bits) / 8.0 / 1024.0;
        }
        wrap.beginRow()
            .cell(bench::flipThLabel(flip))
            .intCell(cfg->nEntry)
            .num(cfg->tableBytes() / 1024.0, 2)
            .num(reset_kb, 2)
            .cell(reset_kb > 0.0
                      ? formatFixed(reset_kb /
                                        (cfg->tableBytes() / 1024.0),
                                    1) +
                            "x"
                      : "-");
    }
    std::printf("%s", wrap.str().c_str());

    // --------------------------------------- 2. greedy vs buffered RFM
    bench::banner("Ablation 2: greedy selection vs threshold "
                  "buffering (max disturbance, concentration attack)");
    TablePrinter greedy({"policy", "max disturbance", "flips at 10K?"});
    {
        ParamSet params;
        params.set("flip", "10000");
        params.set("ad", "0");
        auto mithril =
            registry::makeScheme("mithril", params, {timing, geom});
        const double d =
            concentrationDisturbance(mithril.get(), timing, 2000);
        greedy.beginRow()
            .cell("greedy (Mithril)")
            .num(d, 0)
            .cell(d >= 10000 ? "YES" : "no");
    }
    {
        trackers::RfmGrapheneParams params;
        params.threshold = 2000;
        params.rfmTh = 64;
        params.nEntry = trackers::Graphene::requiredEntries(
            dram::maxActsPerWindow(timing), params.threshold);
        params.resetInterval = timing.tREFW;
        trackers::RfmGraphene buffered(1, params);
        const double d =
            concentrationDisturbance(&buffered, timing, 2000);
        greedy.beginRow()
            .cell("buffered (RFM-Graphene)")
            .num(d, 0)
            .cell(d >= 10000 ? "YES" : "no");
    }
    std::printf("%s", greedy.str().c_str());

    // ------------------------------------------- 3. BLISS vs FR-FCFS
    bench::banner("Ablation 3: BLISS vs FR-FCFS under a double-sided "
                  "attacker (benign aggregate IPC)");
    TablePrinter bliss({"scheduler", "unprotected IPC",
                        "with Mithril IPC"});
    for (bool use_bliss : {true, false}) {
        sim::ExperimentSpec none =
            scale.makeSpec("mix-high", "double-sided");
        none.sys.mcParams.useBliss = use_bliss;
        none.scheme = "none";
        const sim::RunMetrics base = bench::runOrDie(none);
        sim::ExperimentSpec spec = none;
        spec.scheme = "mithril";
        spec.flipTh = 6250;
        const sim::RunMetrics m = bench::runOrDie(spec);
        bliss.beginRow()
            .cell(use_bliss ? "BLISS" : "FR-FCFS")
            .num(base.aggIpc, 3)
            .num(m.aggIpc, 3);
    }
    std::printf("%s", bliss.str().c_str());

    // ------------------------------------ 4. REFsb vs all-bank REF
    bench::banner("Ablation 4: DDR5 same-bank refresh (REFsb) vs "
                  "all-bank REF (normal workload)");
    TablePrinter refsb({"refresh mode", "aggregate IPC",
                        "avg read latency (ns)", "p95 latency (ns)"});
    for (bool per_bank : {false, true}) {
        sim::ExperimentSpec spec = scale.makeSpec("mix-high");
        spec.sys.mcParams.perBankRefresh = per_bank;
        spec.scheme = "mithril";
        spec.flipTh = 6250;
        const sim::RunMetrics m = bench::runOrDie(spec);
        refsb.beginRow()
            .cell(per_bank ? "REFsb (per-bank)" : "REF (all-bank)")
            .num(m.aggIpc, 3)
            .num(m.avgReadLatencyNs, 1)
            .num(m.p95ReadLatencyNs, 0);
    }
    std::printf("%s", refsb.str().c_str());
    std::printf("\nReading: per-bank refresh removes the rank-wide "
                "drain stall every tREFI,\ntrading it for one busy "
                "bank at a time — the refresh mode Mithril's\n"
                "time-margin argument composes with.\n");
    return 0;
}
