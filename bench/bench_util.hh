/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef MITHRIL_BENCH_BENCH_UTIL_HH
#define MITHRIL_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/simd.hh"
#include "common/logging.hh"
#include "common/table_printer.hh"
#include "registry/registry.hh"
#include "registry/scheme_registry.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"

namespace mithril::bench
{

/** Geometric mean of a set of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Common run-scale knobs taken from the command line. */
struct BenchScale
{
    std::uint32_t cores = 8;
    std::uint64_t instrPerCore = 80000;
    std::uint64_t seed = 42;
    /** Runner worker threads (`jobs=N`); 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Emit stderr progress/ETA while sweeping (`progress=0/1`). */
    bool progress = true;
    /** Machine-readable artifact paths (`json=...`, `csv=...`). */
    std::string jsonOut;
    std::string csvOut;
    /** The full parsed argument set, for bench-specific knobs. */
    ParamSet params;

    /**
     * Parse the shared knobs. A key outside the shared set (plus any
     * bench-specific `extra_keys`) is fatal — a typo'd knob must not
     * silently run the default configuration.
     */
    static BenchScale
    fromArgs(int argc, char **argv,
             const std::vector<std::string> &extra_keys = {})
    {
        static const std::vector<std::string> kSharedKeys = {
            "cores", "instr", "seed", "jobs",
            "progress", "json", "csv",
        };
        ParamSet params = ParamSet::fromArgs(argc, argv);
        for (const std::string &key : params.keys()) {
            if (std::find(kSharedKeys.begin(), kSharedKeys.end(),
                          key) == kSharedKeys.end() &&
                std::find(extra_keys.begin(), extra_keys.end(),
                          key) == extra_keys.end())
                fatal("unknown parameter: %s", key.c_str());
        }
        BenchScale scale;
        scale.params = params;
        scale.cores = params.getUint32("cores", scale.cores);
        scale.instrPerCore =
            params.getUint("instr", scale.instrPerCore);
        scale.seed = params.getUint("seed", scale.seed);
        scale.jobs =
            params.getUint32("jobs", runner::defaultThreadCount());
        scale.progress = params.getBool("progress", scale.progress);
        scale.jsonOut = params.getString("json", "");
        scale.csvOut = params.getString("csv", "");
        return scale;
    }

    /** One experiment at this scale (registry names). */
    sim::ExperimentSpec
    makeSpec(const std::string &workload,
             const std::string &attack = "none") const
    {
        sim::ExperimentSpec spec;
        spec.workload = workload;
        spec.attack = attack;
        spec.cores = cores;
        spec.instrPerCore = instrPerCore;
        spec.seed = seed;
        return spec;
    }

    /** Apply the scale's shared knobs onto a sweep grid. */
    void
    applyTo(runner::SweepSpec &spec) const
    {
        spec.cores = cores;
        spec.instrPerCore = instrPerCore;
        spec.seed = seed;
    }

    runner::RunnerOptions
    runnerOptions() const
    {
        runner::RunnerOptions options;
        options.jobs = jobs;
        options.progress = progress;
        return options;
    }
};

/** Dereference a sweep lookup, panicking with context when the spec
 *  grid and a figure's reporting loops drift apart; a failed job is
 *  a configuration error the figure cannot paper over. */
inline const runner::JobResult &
need(const runner::JobResult *r, const char *what)
{
    MITHRIL_ASSERT_MSG(r != nullptr, "missing sweep result: %s", what);
    if (r->failed())
        fatal("sweep job '%s' failed: %s", r->job.label.c_str(),
              r->error.c_str());
    return *r;
}

/** Run one experiment, turning a rejected configuration into the
 *  fatal (user) error a figure binary wants. */
inline sim::RunMetrics
runOrDie(const sim::ExperimentSpec &spec)
{
    try {
        return sim::runExperiment(spec);
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    }
    return {};
}

/** For benches with no machine-readable sink: reject `json=`/`csv=`
 *  instead of silently ignoring them. */
inline void
rejectArtifacts(const BenchScale &scale, const char *bench)
{
    if (!scale.jsonOut.empty() || !scale.csvOut.empty())
        fatal("%s produces no machine-readable artifact; json=/csv= "
              "are only supported by the sweep-based benches",
              bench);
}

/** For fully serial benches: reject explicit `jobs=`/`progress=` so a
 *  user is never left believing a serial run was parallelized. */
inline void
rejectParallelKnobs(const BenchScale &scale, const char *bench)
{
    if (scale.params.has("jobs") || scale.params.has("progress"))
        fatal("%s runs serially; jobs=/progress= have no effect here",
              bench);
}

/** Write the requested JSON/CSV artifacts (empty path = skip). */
inline void
writeArtifacts(const std::string &json_path,
               const std::string &csv_path,
               const runner::SweepResult &result)
{
    if (!json_path.empty()) {
        runner::JsonSink().writeFile(result, json_path);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        runner::CsvSink().writeFile(result, csv_path);
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
    }
}

/** Write the `json=`/`csv=` artifacts a bench was asked for. */
inline void
writeArtifacts(const BenchScale &scale,
               const runner::SweepResult &result)
{
    writeArtifacts(scale.jsonOut, scale.csvOut, result);
}

/** The FlipTH sweep of the evaluation section, descending. */
inline const std::vector<std::uint32_t> &
evalFlipThs()
{
    static const std::vector<std::uint32_t> values = {
        50000, 25000, 12500, 6250, 3125, 1500,
    };
    return values;
}

/** Pretty "50k"-style label. */
inline std::string
flipThLabel(std::uint32_t flip_th)
{
    char buf[32];
    if (flip_th % 1000 == 0)
        std::snprintf(buf, sizeof(buf), "%uk", flip_th / 1000);
    else
        std::snprintf(buf, sizeof(buf), "%.3fk", flip_th / 1000.0);
    return buf;
}

/** Print a section header. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

#ifndef MITHRIL_BUILD_TYPE
#define MITHRIL_BUILD_TYPE ""
#endif

/** Escape a string for embedding inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        out += c;
    }
    return out;
}

/** The host CPU's marketing name (first /proc/cpuinfo "model name"
 *  line), or "unknown" where that file does not exist. */
inline std::string
cpuModelName()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("model name", 0) == 0) {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            const auto begin =
                line.find_first_not_of(" \t", colon + 1);
            if (begin != std::string::npos)
                return line.substr(begin);
        }
    }
    return "unknown";
}

/**
 * Physical core count: distinct (physical id, core id) pairs in
 * /proc/cpuinfo. Distinguishes real parallel capacity from SMT —
 * scaling curves flatten past the physical count even on a healthy
 * build. Falls back to hardware_concurrency() when the file is
 * missing or unparseable.
 */
inline unsigned
physicalCoreCount()
{
    std::ifstream in("/proc/cpuinfo");
    std::set<std::pair<long, long>> cores;
    long phys = -1, core = -1;
    auto field_value = [](const std::string &line) {
        const auto colon = line.find(':');
        return colon == std::string::npos
                   ? -1L
                   : std::strtol(line.c_str() + colon + 1, nullptr,
                                 10);
    };
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            if (core >= 0)
                cores.insert({phys, core});
            phys = core = -1;
        } else if (line.rfind("physical id", 0) == 0) {
            phys = field_value(line);
        } else if (line.rfind("core id", 0) == 0) {
            core = field_value(line);
        }
    }
    if (core >= 0)
        cores.insert({phys, core});
    return cores.empty()
               ? std::thread::hardware_concurrency()
               : static_cast<unsigned>(cores.size());
}

/**
 * Write the shared "meta" member of a bench JSON artifact: the host's
 * CPU model, physical vs logical core counts, the active SIMD
 * dispatch level, the CMake build type, and the bench's thread/shard
 * configuration — the context a perf trajectory needs to tell a
 * regression from a machine change. A thread count beyond the host's
 * concurrency is recorded in "warnings" (and echoed to stderr): those
 * scaling points time oversubscription, not the engine.
 */
inline void
writeMetaJson(std::FILE *f, const std::vector<unsigned> &threads,
              std::uint32_t shards)
{
    const unsigned logical = std::thread::hardware_concurrency();
    const unsigned physical = physicalCoreCount();
    unsigned max_threads = 0;
    for (unsigned t : threads)
        max_threads = std::max(max_threads, t);
    std::fprintf(f,
                 "  \"meta\": {\"hardware_concurrency\": %u, "
                 "\"physical_cores\": %u, \"logical_cores\": %u, "
                 "\"cpu_model\": \"%s\", \"simd\": \"%s\", "
                 "\"build_type\": \"%s\", \"threads\": [",
                 logical, physical, logical,
                 jsonEscape(cpuModelName()).c_str(),
                 simd::activeLevelName(), MITHRIL_BUILD_TYPE);
    for (std::size_t i = 0; i < threads.size(); ++i)
        std::fprintf(f, "%s%u", i ? ", " : "", threads[i]);
    std::fprintf(f, "], \"shards\": %u, \"warnings\": [", shards);
    if (logical > 0 && max_threads > logical) {
        std::fprintf(f,
                     "\"threads=%u exceeds hardware concurrency %u; "
                     "those scaling points are oversubscribed\"",
                     max_threads, logical);
        std::fprintf(stderr,
                     "warning: threads=%u exceeds hardware "
                     "concurrency %u; those scaling points are "
                     "oversubscribed\n",
                     max_threads, logical);
    }
    std::fprintf(f, "]},\n");
}

} // namespace mithril::bench

#endif // MITHRIL_BENCH_BENCH_UTIL_HH
