/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef MITHRIL_BENCH_BENCH_UTIL_HH
#define MITHRIL_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "sim/experiment.hh"

namespace mithril::bench
{

/** Geometric mean of a set of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Common run-scale knobs taken from the command line. */
struct BenchScale
{
    std::uint32_t cores = 8;
    std::uint64_t instrPerCore = 80000;
    std::uint64_t seed = 42;

    static BenchScale
    fromArgs(int argc, char **argv)
    {
        ParamSet params = ParamSet::fromArgs(argc, argv);
        BenchScale scale;
        scale.cores = static_cast<std::uint32_t>(
            params.getUint("cores", scale.cores));
        scale.instrPerCore =
            params.getUint("instr", scale.instrPerCore);
        scale.seed = params.getUint("seed", scale.seed);
        return scale;
    }

    sim::RunConfig
    makeRun(sim::WorkloadKind workload,
            sim::AttackKind attack = sim::AttackKind::None) const
    {
        sim::RunConfig run;
        run.workload = workload;
        run.cores = cores;
        run.instrPerCore = instrPerCore;
        run.attack = attack;
        run.seed = seed;
        return run;
    }
};

/** The FlipTH sweep of the evaluation section, descending. */
inline const std::vector<std::uint32_t> &
evalFlipThs()
{
    static const std::vector<std::uint32_t> values = {
        50000, 25000, 12500, 6250, 3125, 1500,
    };
    return values;
}

/** Pretty "50k"-style label. */
inline std::string
flipThLabel(std::uint32_t flip_th)
{
    char buf[32];
    if (flip_th % 1000 == 0)
        std::snprintf(buf, sizeof(buf), "%uk", flip_th / 1000);
    else
        std::snprintf(buf, sizeof(buf), "%.3fk", flip_th / 1000.0);
    return buf;
}

/** Print a section header. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace mithril::bench

#endif // MITHRIL_BENCH_BENCH_UTIL_HH
