/**
 * @file
 * Figure 2 — Ineffectiveness of RFM-Graphene compared to the original
 * ARR-Graphene.
 *
 * Part 1 (analytic): safe FlipTH as a function of the predefined
 * threshold for ARR-Graphene (linear) and RFM-Graphene at RFM_TH in
 * {256, 128, 64, 32} (floored by the queue-drain term).
 *
 * Part 2 (measured): the command-level harness runs the concentration
 * attack against both schemes and reports the highest ground-truth
 * victim disturbance — the empirical "unsafe FlipTH". The paper's
 * worked example (threshold 2K, RFM_TH 64 -> ~20K) is reproduced.
 */

#include <algorithm>
#include <cstdio>

#include "analysis/arr_vs_rfm.hh"
#include "bench_util.hh"
#include "sim/act_harness.hh"
#include "trackers/graphene.hh"
#include "trackers/rfm_graphene.hh"

using namespace mithril;

namespace
{

/** Measured max disturbance for RFM-Graphene under concentration. */
double
measureRfmGraphene(const dram::Timing &timing, std::uint32_t threshold,
                   std::uint32_t rfm_th)
{
    trackers::RfmGrapheneParams params;
    params.threshold = threshold;
    params.rfmTh = rfm_th;
    params.nEntry = trackers::Graphene::requiredEntries(
        dram::maxActsPerWindow(timing), threshold);
    params.resetInterval = timing.tREFW;
    trackers::RfmGraphene tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 1u << 30;  // Observe disturbance, no flip cap.
    sim::ActHarness harness(cfg, &tracker);

    // Concentration inside half a window, then hammer the last pair.
    const std::uint64_t q = std::min<std::uint64_t>(
        300000 / threshold,
        dram::maxActsPerWindow(timing) / (2ull * threshold));
    const std::uint64_t phase1 = q * threshold;
    harness.run(dram::maxActsPerWindow(timing),
                [&](std::uint64_t i) {
                    if (i < phase1)
                        return static_cast<RowId>(2000 + 2 * (i % q));
                    const RowId last =
                        static_cast<RowId>(2000 + 2 * (q - 1));
                    return (i % 2) ? last : last - 2;
                });
    return harness.oracle().maxDisturbanceEver();
}

/** Measured max disturbance for ARR-Graphene under the same attack. */
double
measureArrGraphene(const dram::Timing &timing, std::uint32_t threshold)
{
    trackers::GrapheneParams params;
    params.threshold = threshold;
    params.nEntry = trackers::Graphene::requiredEntries(
        dram::maxActsPerWindow(timing), threshold);
    params.resetInterval = timing.tREFW;
    trackers::Graphene tracker(1, params);

    sim::ActHarnessConfig cfg;
    cfg.timing = timing;
    cfg.flipTh = 1u << 30;
    sim::ActHarness harness(cfg, &tracker);
    const std::uint64_t q = 300000 / threshold;
    const std::uint64_t phase1 =
        q * static_cast<std::uint64_t>(threshold);
    harness.run(dram::maxActsPerWindow(timing),
                [&](std::uint64_t i) {
                    if (i < phase1)
                        return static_cast<RowId>(2000 + 2 * (i % q));
                    const RowId last =
                        static_cast<RowId>(2000 + 2 * (q - 1));
                    return (i % 2) ? last : last - 2;
                });
    return harness.oracle().maxDisturbanceEver();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchScale scale =
        bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "fig02_arr_vs_rfm");
    const dram::Timing timing = dram::ddr5_4800();

    bench::banner("Figure 2 (analytic): safe FlipTH vs predefined "
                  "threshold");
    TablePrinter table({"threshold", "ARR-Graphene", "RFM-256",
                        "RFM-128", "RFM-64", "RFM-32"});
    for (std::uint32_t t : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
        table.beginRow()
            .intCell(t)
            .intCell(static_cast<long long>(
                analysis::arrGrapheneSafeFlipTh(t)));
        for (std::uint32_t rfm_th : {256u, 128u, 64u, 32u}) {
            table.intCell(static_cast<long long>(
                analysis::rfmGrapheneSafeFlipTh(timing, t, rfm_th)));
        }
    }
    std::printf("%s", table.str().c_str());

    bench::banner("Worked example (Section III-A)");
    std::printf("threshold 2K, RFM_TH 64: %llu rows can cross the "
                "threshold in one tREFW;\n"
                "analytic safe FlipTH = %llu (paper: ~20K, not 10K)\n",
                static_cast<unsigned long long>(
                    analysis::concurrentThresholdRows(timing, 2000)),
                static_cast<unsigned long long>(
                    analysis::rfmGrapheneSafeFlipTh(timing, 2000, 64)));

    bench::banner("Figure 2 (measured): max ground-truth disturbance "
                  "under the concentration attack");
    TablePrinter meas({"threshold", "ARR-Graphene", "RFM-Graphene-64",
                       "RFM-Graphene-128"});
    // Each measured cell replays a full tREFW of activations into an
    // independent tracker; run the 3x3 grid on the runner's pool and
    // assemble rows in order.
    const std::vector<std::uint32_t> thresholds = {1000, 2000, 4000};
    std::vector<double> cells(thresholds.size() * 3);
    runner::ThreadPool pool(scale.jobs);
    pool.parallelFor(cells.size(), [&](std::size_t i) {
        const std::uint32_t t = thresholds[i / 3];
        switch (i % 3) {
          case 0: cells[i] = measureArrGraphene(timing, t); break;
          case 1: cells[i] = measureRfmGraphene(timing, t, 64); break;
          case 2: cells[i] = measureRfmGraphene(timing, t, 128); break;
        }
    });
    for (std::size_t r = 0; r < thresholds.size(); ++r) {
        meas.beginRow()
            .intCell(thresholds[r])
            .num(cells[3 * r + 0], 0)
            .num(cells[3 * r + 1], 0)
            .num(cells[3 * r + 2], 0);
    }
    std::printf("%s", meas.str().c_str());
    std::printf("\nReading: ARR-Graphene's exposure scales with the "
                "threshold; RFM-Graphene's\nexposure is dominated by "
                "the queue-drain term and stays in the tens of "
                "thousands\nregardless of the threshold — the paper's "
                "incompatibility argument.\n");
    return 0;
}
