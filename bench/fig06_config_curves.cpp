/**
 * @file
 * Figure 6 — feasible (table size, RFM_TH) configurations per FlipTH.
 *
 * For every FlipTH in {1.5K .. 50K} and RFM_TH in {16 .. 512}, the
 * Theorem 1 solver reports the minimum CbS table size; the
 * Lossy-Counting columns reproduce the paper's dotted comparison lines
 * at 25K and 50K. '-' marks infeasible points (the harmonic term alone
 * exceeds FlipTH/2). The solver grid is embarrassingly parallel, so
 * the cells are computed on the runner's work-stealing pool (`jobs=N`)
 * and printed in grid order afterwards.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    const bench::BenchScale scale =
        bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "fig06_config_curves");
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    core::ConfigSolver solver(timing, geom);
    runner::ThreadPool pool(scale.jobs);

    bench::banner("Figure 6: minimum CbS table size (KB/bank) per "
                  "(FlipTH, RFM_TH)");
    const std::vector<std::uint32_t> rfm_ths = {16,  32,  64,
                                                128, 256, 512};
    const std::vector<std::uint32_t> flip_ths = {
        1560, 3125, 6250, 12500, 25000, 50000};
    std::vector<std::string> headers = {"FlipTH"};
    for (std::uint32_t th : rfm_ths)
        headers.push_back("RFM=" + std::to_string(th));
    TablePrinter table(headers);

    // Each cell is an independent Theorem 1 solve; compute the grid in
    // parallel, then assemble rows in order so the table is identical
    // at any jobs= count.
    std::vector<std::string> grid(flip_ths.size() * rfm_ths.size());
    pool.parallelFor(grid.size(), [&](std::size_t i) {
        const std::uint32_t flip = flip_ths[i / rfm_ths.size()];
        const std::uint32_t th = rfm_ths[i % rfm_ths.size()];
        auto cfg = solver.solve(flip, th);
        grid[i] = cfg ? formatFixed(cfg->tableBytes() / 1024.0, 3)
                      : "-";
    });
    for (std::size_t f = 0; f < flip_ths.size(); ++f) {
        table.beginRow().cell(bench::flipThLabel(flip_ths[f]));
        for (std::size_t r = 0; r < rfm_ths.size(); ++r)
            table.cell(grid[f * rfm_ths.size() + r]);
    }
    std::printf("%s", table.str().c_str());

    bench::banner("Entry counts and bounds at the paper's configs");
    TablePrinter detail({"FlipTH", "RFM_TH", "Nentry", "ctr bits",
                         "bound M", "FlipTH/2"});
    const std::pair<std::uint32_t, std::uint32_t> picks[] = {
        {50000, 256}, {25000, 256}, {12500, 256}, {12500, 128},
        {6250, 128},  {6250, 64},   {3125, 64},   {3125, 32},
        {1500, 32},
    };
    for (const auto &[flip, th] : picks) {
        auto cfg = solver.solve(flip, th);
        if (!cfg)
            continue;
        detail.beginRow()
            .cell(bench::flipThLabel(flip))
            .intCell(th)
            .intCell(cfg->nEntry)
            .intCell(cfg->counterBits)
            .num(cfg->bound, 1)
            .num(flip / 2.0, 1);
    }
    std::printf("%s", detail.str().c_str());

    bench::banner("Lossy-Counting comparison (dotted lines): entries "
                  "needed at RFM_TH=256");
    TablePrinter lossy({"FlipTH", "CbS entries", "Lossy entries",
                        "ratio"});
    for (std::uint32_t flip : {25000u, 50000u}) {
        const std::uint64_t cbs = solver.minEntries(flip, 256);
        const std::uint64_t lc =
            core::lossyCountingEntries(timing, 256, flip);
        lossy.beginRow()
            .cell(bench::flipThLabel(flip))
            .intCell(static_cast<long long>(cbs))
            .intCell(static_cast<long long>(lc))
            .num(static_cast<double>(lc) / static_cast<double>(cbs),
                 1);
    }
    std::printf("%s", lossy.str().c_str());
    std::printf("\nReading: lower RFM_TH (more frequent RFMs) buys a "
                "smaller table at every\nFlipTH; Lossy Counting needs "
                "a several-times larger table than CbS for the\nsame "
                "guarantee — both as in Figure 6.\n");
    return 0;
}
