/**
 * @file
 * Figure 7 — adaptive refresh: relative dynamic-energy overhead and
 * additional Nentry versus AdTH.
 *
 * For the paper's two configurations, (FlipTH 3.125K, RFM_TH 16) and
 * (FlipTH 6.25K, RFM_TH 64), and AdTH in {0, 50, 100, 150, 200}:
 *   - energy overhead of Mithril relative to an unprotected run, for a
 *     multi-programmed and a multi-threaded workload (simulated);
 *   - additional Nentry demanded by the Theorem 2 bound (analytic).
 * The paper's takeaway: AdTH in the 100-200 range nearly eliminates
 * the energy overhead at a <=12% table-size cost.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/config_solver.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "fig07_adaptive_energy");
    bench::rejectParallelKnobs(scale, "fig07_adaptive_energy");
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    core::ConfigSolver solver(timing, geom);

    const std::pair<std::uint32_t, std::uint32_t> configs[] = {
        {3125, 16},
        {6250, 64},
    };
    const std::uint32_t ad_ths[] = {0, 50, 100, 150, 200};
    const char *workloads[] = {
        "mix-high",  // Multi-programmed.
        "mt-fft",    // Multi-threaded.
    };

    for (const auto &[flip, rfm_th] : configs) {
        bench::banner("Figure 7 @ (FlipTH " + bench::flipThLabel(flip) +
                      ", RFM_TH " + std::to_string(rfm_th) + ")");

        const std::uint64_t base_entries =
            solver.minEntries(flip, rfm_th, 0);

        TablePrinter table({"AdTH", "extra Nentry (%)",
                            "energy ovh mp (%)",
                            "energy ovh mt (%)",
                            "skipped RFMs mp (%)"});
        for (std::uint32_t ad : ad_ths) {
            const std::uint64_t entries =
                solver.minEntries(flip, rfm_th, ad);
            const double extra =
                100.0 * (static_cast<double>(entries) -
                         static_cast<double>(base_entries)) /
                static_cast<double>(base_entries);

            double ovh[2] = {0.0, 0.0};
            double skip_pct = 0.0;
            for (int w = 0; w < 2; ++w) {
                sim::ExperimentSpec none =
                    scale.makeSpec(workloads[w]);
                none.scheme = "none";
                none.flipTh = flip;
                const sim::RunMetrics base = bench::runOrDie(none);

                sim::ExperimentSpec spec =
                    scale.makeSpec(workloads[w]);
                spec.scheme = "mithril";
                spec.flipTh = flip;
                spec.rfmTh = rfm_th;
                spec.adTh = ad;
                const sim::RunMetrics m = bench::runOrDie(spec);
                ovh[w] = sim::energyOverheadPct(m, base);
                if (w == 0 && m.rfmIssued > 0) {
                    skip_pct =
                        100.0 *
                        static_cast<double>(m.rfmIssued -
                                            m.preventiveRefreshes) /
                        static_cast<double>(m.rfmIssued);
                }
            }
            table.beginRow()
                .intCell(ad)
                .num(extra, 1)
                .num(ovh[0], 3)
                .num(ovh[1], 3)
                .num(skip_pct, 1);
        }
        std::printf("%s", table.str().c_str());
    }

    std::printf("\nReading: raising AdTH filters the benign "
                "large-object-sweep activations, so\nthe preventive-"
                "refresh energy collapses toward zero, while the "
                "Theorem 2 table\ninflation stays small — the Figure 7 "
                "trade-off.\n");
    return 0;
}
