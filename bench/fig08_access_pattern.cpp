/**
 * @file
 * Figure 8 — the lbm-style large-object sweep pattern that motivates
 * the adaptive threshold.
 *
 * (a) Accesses over a large time window cover the footprint broadly.
 * (b) Inside a small window they concentrate on very few rows.
 * (c) The activation stream still hits each row ~rowBytes/lineBytes
 *     times (128 for 8KB rows / 64B lines), which is why AdTH in the
 *     100-200 range separates benign sweeps from attacks.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench_util.hh"
#include "workload/spec_like.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    const bench::BenchScale scale =
        bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "fig08_access_pattern");
    bench::rejectParallelKnobs(scale, "fig08_access_pattern");
    workload::SyntheticParams params;
    params.base = 0;
    params.footprint = 256ull << 20;
    params.meanGap = 28.0;
    // The sweep shape, not a scale knob: default differs from the
    // shared seed so the figure reproduces the paper's pattern.
    params.seed = scale.params.getUint("seed", 7);
    workload::StreamSweepGen gen(params, 2ull << 20);

    constexpr std::uint64_t kRowBytes = 8192;
    constexpr int kWindows = 40;
    constexpr int kPerWindow = 512;

    bench::banner("Figure 8(a/b): rows touched per small window vs "
                  "whole run");
    std::set<std::uint64_t> all_rows;
    double mean_rows_small = 0.0;
    std::map<std::uint64_t, std::uint64_t> acts_per_row;
    for (int w = 0; w < kWindows; ++w) {
        std::set<std::uint64_t> window_rows;
        for (int i = 0; i < kPerWindow; ++i) {
            const auto rec = gen.next();
            const std::uint64_t row = rec->addr / kRowBytes;
            window_rows.insert(row);
            all_rows.insert(row);
            ++acts_per_row[row];
        }
        mean_rows_small += static_cast<double>(window_rows.size());
    }
    mean_rows_small /= kWindows;

    TablePrinter table({"metric", "value"});
    table.beginRow().cell("accesses analysed").intCell(kWindows *
                                                       kPerWindow);
    table.beginRow()
        .cell("rows per 512-access window (mean)")
        .num(mean_rows_small, 1);
    table.beginRow()
        .cell("distinct rows over the whole run")
        .intCell(static_cast<long long>(all_rows.size()));
    std::printf("%s", table.str().c_str());

    bench::banner("Figure 8(c): accesses per row within one sweep");
    double mean_per_row = 0.0;
    std::uint64_t max_per_row = 0;
    for (const auto &[row, count] : acts_per_row) {
        mean_per_row += static_cast<double>(count);
        max_per_row = std::max(max_per_row, count);
    }
    mean_per_row /= static_cast<double>(acts_per_row.size());
    std::printf("mean accesses per touched row: %.1f (expect ~%llu = "
                "row bytes / line bytes)\nmax accesses on any row:      "
                "%llu\n",
                mean_per_row,
                static_cast<unsigned long long>(kRowBytes / 64),
                static_cast<unsigned long long>(max_per_row));

    bench::banner("ASCII view: rows touched per window (row index mod "
                  "64)");
    workload::StreamSweepGen gen2(params, 2ull << 20);
    for (int w = 0; w < 16; ++w) {
        char line[65] = {};
        for (int c = 0; c < 64; ++c)
            line[c] = '.';
        for (int i = 0; i < 256; ++i) {
            const auto rec = gen2.next();
            line[(rec->addr / kRowBytes) % 64] = '#';
        }
        std::printf("t=%2d |%s|\n", w, line);
    }
    std::printf("\nReading: each window lights up only a couple of row "
                "slots (the sweep), and\nthe lit slot drifts over time "
                "— concentrated per-window, uniform overall,\nexactly "
                "the Figure 8 shape that AdTH ~ 128 exploits.\n");
    return 0;
}
