/**
 * @file
 * Figure 9 — relative performance and table size of Mithril vs
 * Mithril+ across the paper's (FlipTH, RFM_TH) configurations.
 *
 * Normal workload (no attacker); performance normalized to an
 * unprotected run. The paper's shape: Mithril+ ~100% everywhere;
 * Mithril degrades as RFM_TH shrinks (more RFM commands), bounded by
 * ~2% at the lowest FlipTH; table size grows as FlipTH falls.
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "runner/progress.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "fig09_mithril_overheads");

    // Figure 9's configuration axis: (FlipTH, RFM_TH).
    const std::pair<std::uint32_t, std::uint32_t> configs[] = {
        {12500, 512}, {12500, 256}, {12500, 128}, {6250, 256},
        {6250, 128},  {6250, 64},   {3125, 128},  {3125, 64},
        {3125, 32},   {1500, 32},
    };

    bench::banner("Figure 9: Mithril vs Mithril+ relative performance "
                  "and area");
    TablePrinter table({"FlipTH", "RFM_TH", "table KB",
                        "Mithril perf (%)", "Mithril+ perf (%)",
                        "RFMs", "MRR skips"});

    // One baseline plus (Mithril, Mithril+) per config — all
    // independent, so run the whole set on the runner's pool and
    // assemble the table in config order.
    const std::size_t n_configs = std::size(configs);
    std::vector<sim::RunMetrics> metrics(1 + 2 * n_configs);
    runner::ThreadPool pool(scale.jobs);
    runner::ProgressReporter progress(metrics.size(), scale.progress);
    pool.parallelFor(metrics.size(), [&](std::size_t i) {
        sim::ExperimentSpec spec = scale.makeSpec("mix-high");
        if (i == 0) {
            spec.scheme = "none";
        } else {
            const auto &[flip, rfm_th] = configs[(i - 1) / 2];
            spec.scheme =
                (i - 1) % 2 == 0 ? "mithril" : "mithril+";
            spec.flipTh = flip;
            spec.rfmTh = rfm_th;
        }
        metrics[i] = bench::runOrDie(spec);
        progress.jobDone(spec.scheme);
    });
    const sim::RunMetrics &base = metrics[0];

    for (std::size_t c = 0; c < n_configs; ++c) {
        const auto &[flip, rfm_th] = configs[c];
        const sim::RunMetrics &m = metrics[1 + 2 * c];
        const sim::RunMetrics &p = metrics[2 + 2 * c];

        table.beginRow()
            .cell(bench::flipThLabel(flip))
            .intCell(rfm_th)
            .num(m.trackerBytesPerBank / 1024.0, 2)
            .num(sim::relativePerf(m, base), 2)
            .num(sim::relativePerf(p, base), 2)
            .intCell(static_cast<long long>(m.rfmIssued))
            .intCell(static_cast<long long>(p.rfmSkippedMrr));
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nReading: smaller RFM_TH costs Mithril performance "
                "but buys a smaller table;\nMithril+ removes the "
                "performance cost via the MRR skip, at identical "
                "area —\nthe Figure 9 trade-off.\n");
    return 0;
}
