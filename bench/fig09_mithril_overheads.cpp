/**
 * @file
 * Figure 9 — relative performance and table size of Mithril vs
 * Mithril+ across the paper's (FlipTH, RFM_TH) configurations.
 *
 * Normal workload (no attacker); performance normalized to an
 * unprotected run. The paper's shape: Mithril+ ~100% everywhere;
 * Mithril degrades as RFM_TH shrinks (more RFM commands), bounded by
 * ~2% at the lowest FlipTH; table size grows as FlipTH falls.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);

    // Figure 9's configuration axis: (FlipTH, RFM_TH).
    const std::pair<std::uint32_t, std::uint32_t> configs[] = {
        {12500, 512}, {12500, 256}, {12500, 128}, {6250, 256},
        {6250, 128},  {6250, 64},   {3125, 128},  {3125, 64},
        {3125, 32},   {1500, 32},
    };

    bench::banner("Figure 9: Mithril vs Mithril+ relative performance "
                  "and area");
    TablePrinter table({"FlipTH", "RFM_TH", "table KB",
                        "Mithril perf (%)", "Mithril+ perf (%)",
                        "RFMs", "MRR skips"});

    const sim::RunConfig run = scale.makeRun(sim::WorkloadKind::MixHigh);
    trackers::SchemeSpec none;
    none.kind = trackers::SchemeKind::None;
    const sim::RunMetrics base = sim::runSystem(run, none);

    for (const auto &[flip, rfm_th] : configs) {
        trackers::SchemeSpec mithril;
        mithril.kind = trackers::SchemeKind::Mithril;
        mithril.flipTh = flip;
        mithril.rfmTh = rfm_th;
        const sim::RunMetrics m = sim::runSystem(run, mithril);

        trackers::SchemeSpec plus = mithril;
        plus.kind = trackers::SchemeKind::MithrilPlus;
        const sim::RunMetrics p = sim::runSystem(run, plus);

        table.beginRow()
            .cell(bench::flipThLabel(flip))
            .intCell(rfm_th)
            .num(m.trackerBytesPerBank / 1024.0, 2)
            .num(sim::relativePerf(m, base), 2)
            .num(sim::relativePerf(p, base), 2)
            .intCell(static_cast<long long>(m.rfmIssued))
            .intCell(static_cast<long long>(p.rfmSkippedMrr));
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nReading: smaller RFM_TH costs Mithril performance "
                "but buys a smaller table;\nMithril+ removes the "
                "performance cost via the MRR skip, at identical "
                "area —\nthe Figure 9 trade-off.\n");
    return 0;
}
