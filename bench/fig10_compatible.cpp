/**
 * @file
 * Figure 10 — comparison with the RFM-interface-compatible schemes
 * (PARFM, BlockHammer) across FlipTH 50K..1.5K:
 *
 *  (a) relative performance on normal workloads (geomean),
 *  (b) relative performance under a 32-victim multi-sided RH attack,
 *  (c) relative performance under the BlockHammer-adversarial
 *      CBF-pollution pattern,
 *  (d) dynamic energy overhead on normal workloads,
 *  (e) per-bank table size (also in table4_area).
 *
 * Performance is normalized per workload to an unprotected run of the
 * same workload (and the same attacker for (b)/(c)).
 */

#include <cstdio>
#include <map>

#include "analysis/area_model.hh"
#include "bench_util.hh"
#include "trackers/factory.hh"

using namespace mithril;

namespace
{

const std::vector<sim::WorkloadKind> kNormal = {
    sim::WorkloadKind::MixHigh,
    sim::WorkloadKind::MixBlend,
    sim::WorkloadKind::MtFft,
};

struct Cell
{
    double perfNormal = 0.0;
    double perfMultiSided = 0.0;
    double perfAdversarial = 0.0;
    double energyOverhead = 0.0;
    double tableKb = 0.0;
};

} // namespace

namespace
{

/** One tREFW of single-bank activations: the warm-up budget. */
constexpr std::uint64_t kWarmupActs = 600000;

sim::RunConfig
warmed(sim::RunConfig run)
{
    run.trackerWarmupActs = kWarmupActs;
    run.warmupFromWorkload = (run.attack == sim::AttackKind::None);
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);

    const trackers::SchemeKind schemes[] = {
        trackers::SchemeKind::Parfm,
        trackers::SchemeKind::BlockHammer,
        trackers::SchemeKind::Mithril,
        trackers::SchemeKind::MithrilPlus,
    };

    // Baselines are FlipTH-independent: one per workload/attack combo.
    trackers::SchemeSpec none;
    none.kind = trackers::SchemeKind::None;
    std::vector<sim::RunMetrics> base_normal;
    for (auto w : kNormal)
        base_normal.push_back(sim::runSystem(scale.makeRun(w), none));
    const sim::RunMetrics base_ms = sim::runSystem(
        scale.makeRun(sim::WorkloadKind::MixHigh,
                      sim::AttackKind::MultiSided),
        none);
    const sim::RunMetrics base_adv = sim::runSystem(
        scale.makeRun(sim::WorkloadKind::MixHigh,
                      sim::AttackKind::CbfPollution),
        none);

    std::map<std::pair<int, std::uint32_t>, Cell> cells;
    for (std::uint32_t flip : bench::evalFlipThs()) {
        for (std::size_t s = 0; s < 4; ++s) {
            trackers::SchemeSpec spec;
            spec.kind = schemes[s];
            spec.flipTh = flip;
            Cell cell;

            std::vector<double> ratios;
            std::vector<double> energy;
            for (std::size_t w = 0; w < kNormal.size(); ++w) {
                const sim::RunMetrics m = sim::runSystem(
                    warmed(scale.makeRun(kNormal[w])), spec);
                ratios.push_back(m.aggIpc / base_normal[w].aggIpc);
                energy.push_back(
                    sim::energyOverheadPct(m, base_normal[w]));
                cell.tableKb = m.trackerBytesPerBank / 1024.0;
            }
            cell.perfNormal = 100.0 * bench::geomean(ratios);
            double esum = 0.0;
            for (double e : energy)
                esum += e;
            cell.energyOverhead =
                esum / static_cast<double>(energy.size());

            const sim::RunMetrics ms = sim::runSystem(
                warmed(scale.makeRun(sim::WorkloadKind::MixHigh,
                                     sim::AttackKind::MultiSided)),
                spec);
            cell.perfMultiSided = sim::relativePerf(ms, base_ms);

            const sim::RunMetrics adv = sim::runSystem(
                warmed(scale.makeRun(sim::WorkloadKind::MixHigh,
                                     sim::AttackKind::CbfPollution)),
                spec);
            cell.perfAdversarial = sim::relativePerf(adv, base_adv);

            cells[{static_cast<int>(s), flip}] = cell;
        }
    }

    auto print_metric = [&](const char *title, auto getter,
                            int precision) {
        bench::banner(title);
        std::vector<std::string> headers = {"scheme"};
        for (std::uint32_t flip : bench::evalFlipThs())
            headers.push_back(bench::flipThLabel(flip));
        TablePrinter table(headers);
        for (std::size_t s = 0; s < 4; ++s) {
            table.beginRow().cell(trackers::schemeName(schemes[s]));
            for (std::uint32_t flip : bench::evalFlipThs()) {
                table.num(getter(cells[{static_cast<int>(s), flip}]),
                          precision);
            }
        }
        std::printf("%s", table.str().c_str());
    };

    print_metric("Figure 10(a): relative performance, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.perfNormal; }, 2);
    print_metric("Figure 10(b): relative performance, multi-sided RH "
                 "attack (%)",
                 [](const Cell &c) { return c.perfMultiSided; }, 2);
    print_metric("Figure 10(c): relative performance, "
                 "BlockHammer-adversarial pattern (%)",
                 [](const Cell &c) { return c.perfAdversarial; }, 2);
    print_metric("Figure 10(d): dynamic energy overhead, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.energyOverhead; }, 3);
    print_metric("Figure 10(e): table size (KB per bank)",
                 [](const Cell &c) { return c.tableKb; }, 2);

    std::printf("\nReading: Mithril/Mithril+ stay near 100%% "
                "performance with sub-percent energy\noverheads at "
                "every FlipTH; PARFM's overheads grow as FlipTH falls "
                "(lower\nRFM_TH); BlockHammer collapses under the "
                "adversarial pattern — Figure 10's story.\n");
    return 0;
}
