/**
 * @file
 * Figure 10 — comparison with the RFM-interface-compatible schemes
 * (PARFM, BlockHammer) across FlipTH 50K..1.5K:
 *
 *  (a) relative performance on normal workloads (geomean),
 *  (b) relative performance under a 32-victim multi-sided RH attack,
 *  (c) relative performance under the BlockHammer-adversarial
 *      CBF-pollution pattern,
 *  (d) dynamic energy overhead on normal workloads,
 *  (e) per-bank table size (also in table4_area).
 *
 * Performance is normalized per workload to an unprotected run of the
 * same workload (and the same attacker for (b)/(c)). The whole grid —
 * baselines included — is one declarative sweep executed by the
 * parallel runner; `jobs=N` controls the worker count.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"

using namespace mithril;

namespace
{

const std::vector<std::string> kNormal = {
    "mix-high",
    "mix-blend",
    "mt-fft",
};

struct Cell
{
    double perfNormal = 0.0;
    double perfMultiSided = 0.0;
    double perfAdversarial = 0.0;
    double energyOverhead = 0.0;
    double tableKb = 0.0;
};

/** One tREFW of single-bank activations: the warm-up budget. */
constexpr std::uint64_t kWarmupActs = 600000;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);

    const std::vector<std::string> schemes = {
        "parfm",
        "blockhammer",
        "mithril",
        "mithril+",
    };

    runner::SweepSpec spec;
    spec.schemes = schemes;
    spec.flipThs = bench::evalFlipThs();
    for (const std::string &w : kNormal)
        spec.cases.push_back({w, "none"});
    spec.cases.push_back({"mix-high", "multi-sided"});
    spec.cases.push_back({"mix-high", "cbf-pollution"});
    spec.trackerWarmupActs = kWarmupActs;
    spec.includeBaseline = true;
    scale.applyTo(spec);

    const runner::SweepRunner run(scale.runnerOptions());
    const runner::SweepResult result = run.run(spec);
    bench::writeArtifacts(scale, result);

    std::map<std::pair<int, std::uint32_t>, Cell> cells;
    for (std::uint32_t flip : bench::evalFlipThs()) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            Cell cell;

            std::vector<double> ratios;
            std::vector<double> energy;
            for (const std::string &w : kNormal) {
                const runner::JobResult &r = bench::need(
                    result.find(schemes[s], flip, w), "normal run");
                const runner::JobResult &base = bench::need(
                    result.baseline(w), "normal baseline");
                ratios.push_back(r.metrics.aggIpc /
                                 base.metrics.aggIpc);
                energy.push_back(sim::energyOverheadPct(
                    r.metrics, base.metrics));
                cell.tableKb = r.metrics.trackerBytesPerBank / 1024.0;
            }
            cell.perfNormal = 100.0 * bench::geomean(ratios);
            double esum = 0.0;
            for (double e : energy)
                esum += e;
            cell.energyOverhead =
                esum / static_cast<double>(energy.size());

            cell.perfMultiSided = sim::relativePerf(
                bench::need(result.find(schemes[s], flip,
                                        "mix-high", "multi-sided"),
                            "multi-sided run")
                    .metrics,
                bench::need(
                    result.baseline("mix-high", "multi-sided"),
                    "multi-sided baseline")
                    .metrics);

            cell.perfAdversarial = sim::relativePerf(
                bench::need(result.find(schemes[s], flip,
                                        "mix-high", "cbf-pollution"),
                            "adversarial run")
                    .metrics,
                bench::need(
                    result.baseline("mix-high", "cbf-pollution"),
                    "adversarial baseline")
                    .metrics);

            cells[{static_cast<int>(s), flip}] = cell;
        }
    }

    auto print_metric = [&](const char *title, auto getter,
                            int precision) {
        bench::banner(title);
        std::vector<std::string> headers = {"scheme"};
        for (std::uint32_t flip : bench::evalFlipThs())
            headers.push_back(bench::flipThLabel(flip));
        TablePrinter table(headers);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            table.beginRow().cell(registry::schemeDisplay(schemes[s]));
            for (std::uint32_t flip : bench::evalFlipThs()) {
                table.num(getter(cells[{static_cast<int>(s), flip}]),
                          precision);
            }
        }
        std::printf("%s", table.str().c_str());
    };

    print_metric("Figure 10(a): relative performance, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.perfNormal; }, 2);
    print_metric("Figure 10(b): relative performance, multi-sided RH "
                 "attack (%)",
                 [](const Cell &c) { return c.perfMultiSided; }, 2);
    print_metric("Figure 10(c): relative performance, "
                 "BlockHammer-adversarial pattern (%)",
                 [](const Cell &c) { return c.perfAdversarial; }, 2);
    print_metric("Figure 10(d): dynamic energy overhead, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.energyOverhead; }, 3);
    print_metric("Figure 10(e): table size (KB per bank)",
                 [](const Cell &c) { return c.tableKb; }, 2);

    std::printf("\nReading: Mithril/Mithril+ stay near 100%% "
                "performance with sub-percent energy\noverheads at "
                "every FlipTH; PARFM's overheads grow as FlipTH falls "
                "(lower\nRFM_TH); BlockHammer collapses under the "
                "adversarial pattern — Figure 10's story.\n");
    return 0;
}
