/**
 * @file
 * Figure 11 — comparison with the RFM-interface-non-compatible prior
 * schemes (PARA, CBT, TWiCe, Graphene):
 *
 *  (a) relative performance on normal workloads,
 *  (b) relative performance under a multi-sided RH attack,
 *  (c) dynamic energy overhead on normal workloads.
 *
 * The grid is one declarative sweep on the parallel runner; `jobs=N`
 * controls the worker count.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"

using namespace mithril;

namespace
{

const std::vector<std::string> kNormal = {
    "mix-high",
    "mt-fft",
};

struct Cell
{
    double perfNormal = 0.0;
    double perfMultiSided = 0.0;
    double energyOverhead = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);

    const std::vector<std::string> schemes = {
        "para",  "cbt",     "twice",
        "graphene", "mithril", "mithril+",
    };

    runner::SweepSpec spec;
    spec.schemes = schemes;
    spec.flipThs = bench::evalFlipThs();
    for (const std::string &w : kNormal)
        spec.cases.push_back({w, "none"});
    spec.cases.push_back({"mix-high", "multi-sided"});
    spec.includeBaseline = true;
    scale.applyTo(spec);

    const runner::SweepRunner run(scale.runnerOptions());
    const runner::SweepResult result = run.run(spec);
    bench::writeArtifacts(scale, result);

    std::map<std::pair<int, std::uint32_t>, Cell> cells;
    for (std::uint32_t flip : bench::evalFlipThs()) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            Cell cell;

            std::vector<double> ratios;
            double esum = 0.0;
            for (const std::string &w : kNormal) {
                const runner::JobResult &r = bench::need(
                    result.find(schemes[s], flip, w), "normal run");
                const runner::JobResult &base = bench::need(
                    result.baseline(w), "normal baseline");
                ratios.push_back(r.metrics.aggIpc /
                                 base.metrics.aggIpc);
                esum += sim::energyOverheadPct(r.metrics,
                                               base.metrics);
            }
            cell.perfNormal = 100.0 * bench::geomean(ratios);
            cell.energyOverhead =
                esum / static_cast<double>(kNormal.size());

            cell.perfMultiSided = sim::relativePerf(
                bench::need(result.find(schemes[s], flip,
                                        "mix-high", "multi-sided"),
                            "multi-sided run")
                    .metrics,
                bench::need(
                    result.baseline("mix-high", "multi-sided"),
                    "multi-sided baseline")
                    .metrics);

            cells[{static_cast<int>(s), flip}] = cell;
        }
    }

    auto print_metric = [&](const char *title, auto getter,
                            int precision) {
        bench::banner(title);
        std::vector<std::string> headers = {"scheme"};
        for (std::uint32_t flip : bench::evalFlipThs())
            headers.push_back(bench::flipThLabel(flip));
        TablePrinter table(headers);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            table.beginRow().cell(registry::schemeDisplay(schemes[s]));
            for (std::uint32_t flip : bench::evalFlipThs()) {
                table.num(getter(cells[{static_cast<int>(s), flip}]),
                          precision);
            }
        }
        std::printf("%s", table.str().c_str());
    };

    print_metric("Figure 11(a): relative performance, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.perfNormal; }, 2);
    print_metric("Figure 11(b): relative performance, multi-sided RH "
                 "attack (%)",
                 [](const Cell &c) { return c.perfMultiSided; }, 2);
    print_metric("Figure 11(c): dynamic energy overhead, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.energyOverhead; }, 3);

    std::printf("\nReading: Mithril+ matches the ARR-era schemes "
                "(Graphene/TWiCe/CBT) within\nfractions of a percent; "
                "Mithril trails by at most ~2%% at the lowest FlipTH "
                "—\nwhile being the only ones that work over the "
                "standard RFM interface.\n");
    return 0;
}
