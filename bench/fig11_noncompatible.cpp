/**
 * @file
 * Figure 11 — comparison with the RFM-interface-non-compatible prior
 * schemes (PARA, CBT, TWiCe, Graphene):
 *
 *  (a) relative performance on normal workloads,
 *  (b) relative performance under a multi-sided RH attack,
 *  (c) dynamic energy overhead on normal workloads.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "trackers/factory.hh"

using namespace mithril;

namespace
{

const std::vector<sim::WorkloadKind> kNormal = {
    sim::WorkloadKind::MixHigh,
    sim::WorkloadKind::MtFft,
};

struct Cell
{
    double perfNormal = 0.0;
    double perfMultiSided = 0.0;
    double energyOverhead = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(argc, argv);

    const trackers::SchemeKind schemes[] = {
        trackers::SchemeKind::Para,    trackers::SchemeKind::Cbt,
        trackers::SchemeKind::Twice,   trackers::SchemeKind::Graphene,
        trackers::SchemeKind::Mithril,
        trackers::SchemeKind::MithrilPlus,
    };
    constexpr std::size_t kSchemes = 6;

    trackers::SchemeSpec none;
    none.kind = trackers::SchemeKind::None;
    std::vector<sim::RunMetrics> base_normal;
    for (auto w : kNormal)
        base_normal.push_back(sim::runSystem(scale.makeRun(w), none));
    const sim::RunMetrics base_ms = sim::runSystem(
        scale.makeRun(sim::WorkloadKind::MixHigh,
                      sim::AttackKind::MultiSided),
        none);

    std::map<std::pair<int, std::uint32_t>, Cell> cells;
    for (std::uint32_t flip : bench::evalFlipThs()) {
        for (std::size_t s = 0; s < kSchemes; ++s) {
            trackers::SchemeSpec spec;
            spec.kind = schemes[s];
            spec.flipTh = flip;
            Cell cell;

            std::vector<double> ratios;
            double esum = 0.0;
            for (std::size_t w = 0; w < kNormal.size(); ++w) {
                const sim::RunMetrics m =
                    sim::runSystem(scale.makeRun(kNormal[w]), spec);
                ratios.push_back(m.aggIpc / base_normal[w].aggIpc);
                esum += sim::energyOverheadPct(m, base_normal[w]);
            }
            cell.perfNormal = 100.0 * bench::geomean(ratios);
            cell.energyOverhead =
                esum / static_cast<double>(kNormal.size());

            const sim::RunMetrics ms = sim::runSystem(
                scale.makeRun(sim::WorkloadKind::MixHigh,
                              sim::AttackKind::MultiSided),
                spec);
            cell.perfMultiSided = sim::relativePerf(ms, base_ms);

            cells[{static_cast<int>(s), flip}] = cell;
        }
    }

    auto print_metric = [&](const char *title, auto getter,
                            int precision) {
        bench::banner(title);
        std::vector<std::string> headers = {"scheme"};
        for (std::uint32_t flip : bench::evalFlipThs())
            headers.push_back(bench::flipThLabel(flip));
        TablePrinter table(headers);
        for (std::size_t s = 0; s < kSchemes; ++s) {
            table.beginRow().cell(trackers::schemeName(schemes[s]));
            for (std::uint32_t flip : bench::evalFlipThs()) {
                table.num(getter(cells[{static_cast<int>(s), flip}]),
                          precision);
            }
        }
        std::printf("%s", table.str().c_str());
    };

    print_metric("Figure 11(a): relative performance, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.perfNormal; }, 2);
    print_metric("Figure 11(b): relative performance, multi-sided RH "
                 "attack (%)",
                 [](const Cell &c) { return c.perfMultiSided; }, 2);
    print_metric("Figure 11(c): dynamic energy overhead, normal "
                 "workloads (%)",
                 [](const Cell &c) { return c.energyOverhead; }, 3);

    std::printf("\nReading: Mithril+ matches the ARR-era schemes "
                "(Graphene/TWiCe/CBT) within\nfractions of a percent; "
                "Mithril trails by at most ~2%% at the lowest FlipTH "
                "—\nwhile being the only ones that work over the "
                "standard RFM interface.\n");
    return 0;
}
