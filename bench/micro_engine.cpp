/**
 * @file
 * ActStream engine throughput bench: acts/sec per scheme at 16 banks —
 * batched vs scalar tracker dispatch, plus the sharded multi-threaded
 * engine across a `threads=` axis. The headline numbers of the engine
 * refactor (batching) and the shard refactor (scaling).
 *
 * The stream is a synthetic per-bank double-sided hammer generated
 * straight into the SoA batches (no generator/address-map cost); the
 * sharded runs use native per-shard slices of the same stream (no
 * filtering cost), and the ground-truth oracle is disabled, so the
 * measurement isolates exactly what the optimized paths touch:
 * tracker dispatch, the engine's REF/RFM interleaving bookkeeping,
 * and the shard fan-out/merge. Safety runs keep the oracle on and are
 * bounded by it equally in all modes.
 *
 * Knobs: acts=N per timed run (default 2M), banks=N (default 16),
 * threads=LIST sharded thread counts (default "1,4"), shards=N shard
 * count override (default 0 = one shard per worker thread),
 * json=FILE writes the BENCH_engine.json artifact (schema v4: adds
 * the SIMD dispatch level per point and the cpu-model/core-count
 * meta fields, on top of v3's host/build "meta" block and per-point
 * phase breakdown — source-pull, tracker-dispatch, join seconds).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/simd.hh"
#include "engine/act_stream_engine.hh"
#include "engine/sharded_engine.hh"
#include "registry/scheme_registry.hh"
#include "runner/thread_pool.hh"

using namespace mithril;

namespace
{

/** Zero-cost stream: every bank hammers its own double-sided pair,
 *  banks round-robin inside each batch. Strength-reduced — the bank
 *  cycles and the row toggles 2000/2002 on each round's parity, the
 *  identical stream to bank = produced % banks,
 *  row = 2000 + 2*((produced / banks) % 2) with no divide in the
 *  source, so the measurement times the engine, not the generator. */
class HammerSource : public engine::ActSource
{
  public:
    HammerSource(std::uint32_t banks, std::uint64_t count)
        : banks_(banks), count_(count)
    {
    }

    std::string name() const override { return "hammer-16"; }

    std::size_t
    fill(engine::ActBatch &batch, std::size_t limit) override
    {
        std::size_t appended = 0;
        while (produced_ < count_ && appended < limit &&
               !batch.full()) {
            batch.push(bank_, row_);
            ++produced_;
            ++appended;
            if (++bank_ == banks_) {
                bank_ = 0;
                row_ ^= 2;  // 2000 <-> 2002 per round.
            }
        }
        return appended;
    }

  private:
    std::uint32_t banks_;
    std::uint64_t count_;
    std::uint64_t produced_ = 0;
    BankId bank_ = 0;
    RowId row_ = 2000;
};

/**
 * Native shard slice of HammerSource: only banks [lo, hi), with the
 * identical per-bank row subsequences (bank b's j-th activation is
 * row 2000 + 2*(j%2), and b receives ceil((count - b) / banks)
 * records of the global stream) — zero generation waste.
 */
class ShardHammerSource : public engine::ActSource
{
  public:
    ShardHammerSource(std::uint32_t banks, std::uint64_t count,
                      BankId lo, BankId hi)
        : banks_(banks), count_(count), lo_(lo), hi_(hi), bank_(lo)
    {
    }

    std::string name() const override { return "hammer-shard"; }

    std::size_t
    fill(engine::ActBatch &batch, std::size_t limit) override
    {
        // Strength-reduced like HammerSource: the bank cycles
        // [lo, hi), roundBase_ carries round*banks, the row toggles
        // at each wrap — the same records as the divide form.
        std::size_t appended = 0;
        while (appended < limit && !batch.full()) {
            // The global index of bank's round-th record.
            const std::uint64_t global = roundBase_ + bank_;
            if (global >= count_) {
                if (bank_ + 1 == hi_)
                    break;  // Last (partial) round finished.
                advance();
                continue;
            }
            batch.push(bank_, row_);
            advance();
            ++appended;
        }
        return appended;
    }

  private:
    void
    advance()
    {
        if (++bank_ == hi_) {
            bank_ = lo_;
            roundBase_ += banks_;
            row_ ^= 2;  // 2000 <-> 2002 per round.
        }
    }

    std::uint32_t banks_;
    std::uint64_t count_;
    BankId lo_;
    BankId hi_;
    BankId bank_ = 0;
    std::uint64_t roundBase_ = 0;
    RowId row_ = 2000;
};

engine::EngineConfig
makeEngineConfig(std::uint32_t banks,
                 engine::EngineConfig::Dispatch dispatch)
{
    engine::EngineConfig cfg;
    cfg.timing = dram::ddr5_4800();
    cfg.geometry = dram::paperGeometry();
    cfg.geometry.channels = 1;
    cfg.geometry.ranksPerChannel = 1;
    cfg.geometry.banksPerRank = banks;
    cfg.flipTh = 6250;
    cfg.dispatch = dispatch;
    cfg.enableOracle = false;  // Time the tracker/dispatch loop.
    return cfg;
}

std::unique_ptr<trackers::RhProtection>
makeTracker(const std::string &scheme,
            const engine::EngineConfig &cfg)
{
    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    return registry::makeScheme(scheme, knobs.toParams(),
                                {cfg.timing, cfg.geometry});
}

double
measureActsPerSec(const std::string &scheme, std::uint32_t banks,
                  std::uint64_t acts,
                  engine::EngineConfig::Dispatch dispatch)
{
    const engine::EngineConfig cfg = makeEngineConfig(banks, dispatch);
    auto tracker = makeTracker(scheme, cfg);
    engine::ActStreamEngine eng(cfg, tracker.get());

    // Warm up tables and branch predictors, untimed.
    HammerSource warmup(banks, acts / 8 + 1);
    eng.run(warmup);

    HammerSource source(banks, acts);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t done = eng.run(source);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (done != acts)
        fatal("engine consumed %llu of %llu acts",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(acts));
    return static_cast<double>(done) / seconds;
}

/** One sharded timing point, with the engine's phase breakdown. */
struct ShardedMeasurement
{
    double actsPerSec = 0.0;
    /** Wall seconds summed over shards, inside the timed run only. */
    double sourceSec = 0.0;   //!< Pulling batches from the source.
    double dispatchSec = 0.0; //!< Dispatching batches to the tracker.
    double joinSec = 0.0;     //!< Fan-out/merge beyond the slowest
                              //!< shard.
};

ShardedMeasurement
measureShardedActsPerSec(const std::string &scheme,
                         std::uint32_t banks, std::uint64_t acts,
                         std::uint32_t shards,
                         runner::ThreadPool *pool)
{
    engine::ShardedEngineConfig cfg;
    cfg.engine = makeEngineConfig(
        banks, engine::EngineConfig::Dispatch::Batched);
    cfg.shards = shards;
    cfg.pool = pool;
    cfg.telemetry.phases = true;
    engine::ShardedActStreamEngine eng(cfg, [&] {
        return makeTracker(scheme, cfg.engine);
    });

    auto slices = [&](std::uint64_t count) {
        return [count, banks](std::uint32_t, BankId lo, BankId hi) {
            return std::make_unique<ShardHammerSource>(banks, count,
                                                       lo, hi);
        };
    };

    eng.runSliced(slices(acts / 8 + 1));  // Warm-up, untimed.

    // The phase profile accumulates across runs; snapshot after the
    // warm-up so the reported breakdown covers the timed run only.
    auto phase_sums = [&] {
        double source = 0.0, dispatch = 0.0;
        for (std::uint32_t s = 0; s < eng.shardCount(); ++s) {
            const auto &p = eng.shardTelemetry(s)->phases();
            source += p.sourceSec;
            dispatch += p.dispatchSec;
        }
        return std::pair<double, double>(source, dispatch);
    };
    const auto [source0, dispatch0] = phase_sums();
    const double join0 = eng.joinSec();

    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t done = eng.runSliced(slices(acts));
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (done != acts)
        fatal("sharded engine consumed %llu of %llu acts",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(acts));

    ShardedMeasurement m;
    m.actsPerSec = static_cast<double>(done) / seconds;
    const auto [source1, dispatch1] = phase_sums();
    m.sourceSec = source1 - source0;
    m.dispatchSec = dispatch1 - dispatch0;
    m.joinSec = eng.joinSec() - join0;
    return m;
}

struct ShardedPoint
{
    unsigned threads = 1;
    std::uint32_t shards = 1;
    double actsPerSec = 0.0;
    double sourceSec = 0.0;
    double dispatchSec = 0.0;
    double joinSec = 0.0;
};

struct SchemeResult
{
    std::string name;
    std::string display;
    double batched = 0.0;
    double scalar = 0.0;
    std::vector<ShardedPoint> sharded;

    double speedup() const
    {
        return scalar > 0.0 ? batched / scalar : 0.0;
    }

    /** acts/sec of the threads=N point scaled to the threads=1 one. */
    double
    scalingAt(std::size_t i) const
    {
        return !sharded.empty() && sharded.front().actsPerSec > 0.0
                   ? sharded[i].actsPerSec /
                         sharded.front().actsPerSec
                   : 0.0;
    }
};

void
writeJson(const std::string &path, std::uint32_t banks,
          std::uint64_t acts, const std::vector<unsigned> &threads,
          std::uint32_t shard_override,
          const std::vector<SchemeResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"mithril.bench_engine.v4\",\n");
    bench::writeMetaJson(f, threads, shard_override);
    std::fprintf(f, "  \"banks\": %u,\n", banks);
    std::fprintf(f, "  \"acts_per_run\": %llu,\n",
                 static_cast<unsigned long long>(acts));
    std::fprintf(f, "  \"pattern\": \"per-bank double-sided\",\n");
    std::fprintf(f, "  \"oracle\": false,\n");
    std::fprintf(f, "  \"threads\": [");
    for (std::size_t i = 0; i < threads.size(); ++i)
        std::fprintf(f, "%s%u", i ? ", " : "", threads[i]);
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SchemeResult &r = results[i];
        std::fprintf(f,
                     "    {\"scheme\": \"%s\", \"display\": \"%s\", "
                     "\"simd\": \"%s\", "
                     "\"batched_acts_per_sec\": %.0f, "
                     "\"scalar_acts_per_sec\": %.0f, "
                     "\"speedup\": %.3f, \"sharded\": [",
                     r.name.c_str(), r.display.c_str(),
                     simd::activeLevelName(), r.batched, r.scalar,
                     r.speedup());
        for (std::size_t j = 0; j < r.sharded.size(); ++j) {
            const ShardedPoint &p = r.sharded[j];
            std::fprintf(f,
                         "%s{\"threads\": %u, \"shards\": %u, "
                         "\"simd\": \"%s\", "
                         "\"acts_per_sec\": %.0f, "
                         "\"scaling\": %.3f, "
                         "\"source_sec\": %.4f, "
                         "\"dispatch_sec\": %.4f, "
                         "\"join_sec\": %.4f}",
                         j ? ", " : "", p.threads, p.shards,
                         simd::activeLevelName(), p.actsPerSec,
                         r.scalingAt(j), p.sourceSec, p.dispatchSec,
                         p.joinSec);
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(
        argc, argv, {"acts", "banks", "threads", "shards"});
    bench::rejectParallelKnobs(scale, "micro_engine");
    if (!scale.csvOut.empty())
        fatal("micro_engine emits json= only");
    const std::uint64_t acts =
        scale.params.getUint("acts", 2000000);
    const auto banks = scale.params.getUint32("banks", 16);
    const auto shard_override =
        scale.params.getUint32("shards", 0);
    if (acts == 0 || banks == 0)
        fatal("acts= and banks= must be positive");

    std::vector<unsigned> thread_counts;
    for (std::uint64_t t : scale.params.has("threads")
                               ? scale.params.getUintList("threads")
                               : std::vector<std::uint64_t>{1, 4}) {
        if (t == 0 || t > 1024)
            fatal("threads= entries must be in [1, 1024]");
        thread_counts.push_back(static_cast<unsigned>(t));
    }

    bench::banner("ActStream engine throughput (" +
                  std::to_string(banks) + " banks, oracle off, simd " +
                  simd::activeLevelName() + ")");

    // One reused pool per thread count, shared by every scheme.
    std::vector<std::unique_ptr<runner::ThreadPool>> pools;
    for (unsigned t : thread_counts) {
        pools.push_back(
            t > 1 ? std::make_unique<runner::ThreadPool>(t)
                  : nullptr);  // threads=1 runs shards inline.
    }

    std::vector<SchemeResult> results;
    for (const std::string &scheme :
         registry::schemeRegistry().names()) {
        SchemeResult r;
        r.name = scheme;
        r.display = registry::schemeDisplay(scheme);
        r.batched = measureActsPerSec(
            scheme, banks, acts,
            engine::EngineConfig::Dispatch::Batched);
        r.scalar = measureActsPerSec(
            scheme, banks, acts,
            engine::EngineConfig::Dispatch::Scalar);
        for (std::size_t i = 0; i < thread_counts.size(); ++i) {
            ShardedPoint p;
            p.threads = thread_counts[i];
            p.shards = shard_override != 0
                           ? shard_override
                           : std::min<std::uint32_t>(p.threads,
                                                     banks);
            const ShardedMeasurement sm = measureShardedActsPerSec(
                scheme, banks, acts, p.shards, pools[i].get());
            p.actsPerSec = sm.actsPerSec;
            p.sourceSec = sm.sourceSec;
            p.dispatchSec = sm.dispatchSec;
            p.joinSec = sm.joinSec;
            r.sharded.push_back(p);
        }
        results.push_back(r);
    }

    std::vector<std::string> header = {"scheme", "batched Macts/s",
                                       "scalar Macts/s", "speedup"};
    for (unsigned t : thread_counts)
        header.push_back("sh@" + std::to_string(t) + "t Macts/s");
    header.push_back("scaling");
    TablePrinter table(header);
    for (const SchemeResult &r : results) {
        auto &row = table.beginRow()
                        .cell(r.display)
                        .num(r.batched / 1e6, 2)
                        .num(r.scalar / 1e6, 2)
                        .cell(formatFixed(r.speedup(), 2) + "x");
        for (const ShardedPoint &p : r.sharded)
            row.num(p.actsPerSec / 1e6, 2);
        row.cell(formatFixed(r.scalingAt(r.sharded.size() - 1), 2) +
                 "x");
    }
    std::printf("%s", table.str().c_str());
    std::printf(
        "\nReading: batched dispatch amortizes the virtual call, "
        "per-bank table lookup,\nand REF/RFM bookkeeping over whole "
        "per-bank runs; every tracker now has a\nbatch fast path. "
        "The sh@Nt columns run the bank partition as shards on an\n"
        "N-worker pool (deterministic merge, byte-identical output); "
        "'scaling' is the\nlargest thread count's acts/sec over the "
        "1-thread sharded run.\n");

    if (!scale.jsonOut.empty())
        writeJson(scale.jsonOut, banks, acts, thread_counts,
                  shard_override, results);
    return 0;
}
