/**
 * @file
 * ActStream engine throughput bench: acts/sec per scheme at 16 banks,
 * batched vs scalar tracker dispatch — the headline number of the
 * engine refactor.
 *
 * The stream is a synthetic per-bank double-sided hammer generated
 * straight into the SoA batches (no generator/address-map cost), and
 * the ground-truth oracle is disabled, so the measurement isolates
 * exactly what the batched path optimizes: tracker dispatch plus the
 * engine's REF/RFM interleaving bookkeeping. Safety runs keep the
 * oracle on and are bounded by it equally in both modes.
 *
 * Knobs: acts=N per timed run (default 2M), banks=N (default 16),
 * json=FILE writes the BENCH_engine.json artifact.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "engine/act_stream_engine.hh"
#include "registry/scheme_registry.hh"

using namespace mithril;

namespace
{

/** Zero-cost stream: every bank hammers its own double-sided pair,
 *  banks round-robin inside each batch. */
class HammerSource : public engine::ActSource
{
  public:
    HammerSource(std::uint32_t banks, std::uint64_t count)
        : banks_(banks), count_(count)
    {
    }

    std::string name() const override { return "hammer-16"; }

    std::size_t
    fill(engine::ActBatch &batch, std::size_t limit) override
    {
        std::size_t appended = 0;
        while (produced_ < count_ && appended < limit &&
               !batch.full()) {
            const auto bank =
                static_cast<BankId>(produced_ % banks_);
            const auto row = static_cast<RowId>(
                2000 + 2 * ((produced_ / banks_) % 2));
            batch.push(bank, row);
            ++produced_;
            ++appended;
        }
        return appended;
    }

  private:
    std::uint32_t banks_;
    std::uint64_t count_;
    std::uint64_t produced_ = 0;
};

double
measureActsPerSec(const std::string &scheme, std::uint32_t banks,
                  std::uint64_t acts,
                  engine::EngineConfig::Dispatch dispatch)
{
    const dram::Timing timing = dram::ddr5_4800();
    dram::Geometry geom = dram::paperGeometry();
    geom.channels = 1;
    geom.ranksPerChannel = 1;
    geom.banksPerRank = banks;

    registry::SchemeKnobs knobs;
    knobs.flipTh = 6250;
    auto tracker = registry::makeScheme(scheme, knobs.toParams(),
                                        {timing, geom});

    engine::EngineConfig cfg;
    cfg.timing = timing;
    cfg.geometry = geom;
    cfg.flipTh = 6250;
    cfg.dispatch = dispatch;
    cfg.enableOracle = false;  // Time the tracker/dispatch loop.
    engine::ActStreamEngine eng(cfg, tracker.get());

    // Warm up tables and branch predictors, untimed.
    HammerSource warmup(banks, acts / 8 + 1);
    eng.run(warmup);

    HammerSource source(banks, acts);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t done = eng.run(source);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (done != acts)
        fatal("engine consumed %llu of %llu acts",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(acts));
    return static_cast<double>(done) / seconds;
}

struct SchemeResult
{
    std::string name;
    std::string display;
    double batched = 0.0;
    double scalar = 0.0;

    double speedup() const
    {
        return scalar > 0.0 ? batched / scalar : 0.0;
    }
};

void
writeJson(const std::string &path, std::uint32_t banks,
          std::uint64_t acts, const std::vector<SchemeResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"mithril.bench_engine.v1\",\n");
    std::fprintf(f, "  \"banks\": %u,\n", banks);
    std::fprintf(f, "  \"acts_per_run\": %llu,\n",
                 static_cast<unsigned long long>(acts));
    std::fprintf(f, "  \"pattern\": \"per-bank double-sided\",\n");
    std::fprintf(f, "  \"oracle\": false,\n");
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SchemeResult &r = results[i];
        std::fprintf(f,
                     "    {\"scheme\": \"%s\", \"display\": \"%s\", "
                     "\"batched_acts_per_sec\": %.0f, "
                     "\"scalar_acts_per_sec\": %.0f, "
                     "\"speedup\": %.3f}%s\n",
                     r.name.c_str(), r.display.c_str(), r.batched,
                     r.scalar, r.speedup(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale =
        bench::BenchScale::fromArgs(argc, argv, {"acts", "banks"});
    bench::rejectParallelKnobs(scale, "micro_engine");
    if (!scale.csvOut.empty())
        fatal("micro_engine emits json= only");
    const std::uint64_t acts =
        scale.params.getUint("acts", 2000000);
    const auto banks = scale.params.getUint32("banks", 16);
    if (acts == 0 || banks == 0)
        fatal("acts= and banks= must be positive");

    bench::banner("ActStream engine throughput (" +
                  std::to_string(banks) + " banks, oracle off)");

    std::vector<SchemeResult> results;
    for (const std::string &scheme :
         registry::schemeRegistry().names()) {
        SchemeResult r;
        r.name = scheme;
        r.display = registry::schemeDisplay(scheme);
        r.batched = measureActsPerSec(
            scheme, banks, acts,
            engine::EngineConfig::Dispatch::Batched);
        r.scalar = measureActsPerSec(
            scheme, banks, acts,
            engine::EngineConfig::Dispatch::Scalar);
        results.push_back(r);
    }

    TablePrinter table({"scheme", "batched Macts/s", "scalar Macts/s",
                        "speedup"});
    for (const SchemeResult &r : results) {
        table.beginRow()
            .cell(r.display)
            .num(r.batched / 1e6, 2)
            .num(r.scalar / 1e6, 2)
            .cell(formatFixed(r.speedup(), 2) + "x");
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nReading: batched dispatch amortizes the virtual "
                "call, per-bank table lookup,\nand REF/RFM "
                "bookkeeping over whole per-bank runs; the CBS "
                "schemes add the\ncached-touch fast path on top. "
                "Scalar mode is the faithful per-ACT port of\nthe "
                "historical ActHarness loop.\n");

    if (!scale.jsonOut.empty())
        writeJson(scale.jsonOut, banks, acts, results);
    return 0;
}
