/**
 * @file
 * Capture/replay throughput bench — the headline number of the
 * act-trace subsystem: record one full-System run's ACT stream, then
 * replay it through the sharded ActStream engine and compare acts/sec
 * against the System that produced it. The paper's
 * capture-once-replay-many methodology only pays off if replay is
 * orders of magnitude faster than re-simulating CPU+MC per scheme;
 * this bench measures exactly that ratio.
 *
 * To make the replay long enough to time, the tiny captured stream is
 * replayed `loops=` times back to back (each loop is an independent
 * full replay of the trace through a fresh engine+tracker).
 *
 * Knobs: cores=N instr=N seed=N (the recorded System run),
 *        scheme=NAME replay tracker (default mithril),
 *        loops=N replay repetitions per timing point (default 50),
 *        threads=LIST sharded replay thread counts (default "1,4"),
 *        trace=PATH trace file location (default micro_replay.acttrace),
 *        json=FILE write the BENCH_replay.json artifact.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "engine/act_trace.hh"
#include "runner/thread_pool.hh"

using namespace mithril;

namespace
{

struct ReplayPoint
{
    unsigned threads = 1;
    std::uint32_t shards = 1;
    double actsPerSec = 0.0;
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

void
writeJson(const std::string &path, const sim::ExperimentSpec &sys_spec,
          std::uint64_t system_acts, double system_acts_per_sec,
          double system_seconds, const engine::ActTraceInfo &info,
          std::uint64_t trace_bytes, const std::string &scheme,
          std::uint64_t loops,
          const std::vector<unsigned> &thread_counts,
          const std::vector<ReplayPoint> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"mithril.bench_replay.v2\",\n");
    // Replay points shard one way per thread count (shards ==
    // threads), so the meta shard field is 0 (per-point).
    bench::writeMetaJson(f, thread_counts, 0);
    // system.acts comes from the System's own counters and
    // trace.records from the file's index, so the CI cross-check of
    // the two is a real capture-completeness assertion.
    std::fprintf(f, "  \"system\": {\"spec\": \"%s\", "
                    "\"acts\": %llu, \"wall_seconds\": %.4f, "
                    "\"acts_per_sec\": %.0f},\n",
                 sys_spec.describe().c_str(),
                 static_cast<unsigned long long>(system_acts),
                 system_seconds, system_acts_per_sec);
    std::fprintf(f, "  \"trace\": {\"records\": %llu, "
                    "\"bytes\": %llu},\n",
                 static_cast<unsigned long long>(info.records),
                 static_cast<unsigned long long>(trace_bytes));
    std::fprintf(f, "  \"replay_scheme\": \"%s\",\n", scheme.c_str());
    std::fprintf(f, "  \"replay_loops\": %llu,\n",
                 static_cast<unsigned long long>(loops));
    std::fprintf(f, "  \"replay\": [");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ReplayPoint &p = points[i];
        std::fprintf(f,
                     "%s{\"threads\": %u, \"shards\": %u, "
                     "\"acts_per_sec\": %.0f, "
                     "\"speedup_vs_system\": %.1f}",
                     i ? ", " : "", p.threads, p.shards,
                     p.actsPerSec,
                     system_acts_per_sec > 0.0
                         ? p.actsPerSec / system_acts_per_sec
                         : 0.0);
    }
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(
        argc, argv, {"scheme", "loops", "threads", "trace"});
    if (!scale.csvOut.empty())
        fatal("micro_replay emits json= only");
    const std::string scheme =
        scale.params.getString("scheme", "mithril");
    const std::uint64_t loops = scale.params.getUint("loops", 50);
    const std::string trace_path =
        scale.params.getString("trace", "micro_replay.acttrace");
    if (loops == 0)
        fatal("loops= must be positive");

    std::vector<unsigned> thread_counts;
    for (std::uint64_t t : scale.params.has("threads")
                               ? scale.params.getUintList("threads")
                               : std::vector<std::uint64_t>{1, 4}) {
        if (t == 0 || t > 1024)
            fatal("threads= entries must be in [1, 1024]");
        thread_counts.push_back(static_cast<unsigned>(t));
    }

    bench::banner("ACT-stream capture/replay vs System throughput");

    // ---- capture: one attacked System run, recorded.
    sim::ExperimentSpec sys_spec;
    sys_spec.scheme = "none";
    sys_spec.workload = "mix-high";
    sys_spec.attack = "multi-sided";
    sys_spec.cores = scale.cores;
    sys_spec.instrPerCore = scale.instrPerCore;
    sys_spec.seed = scale.seed;
    sys_spec.record = trace_path;

    const auto sys_t0 = std::chrono::steady_clock::now();
    const sim::RunMetrics sys_metrics = sim::runExperiment(sys_spec);
    const auto sys_t1 = std::chrono::steady_clock::now();
    const double sys_seconds = seconds(sys_t0, sys_t1);
    const double sys_aps =
        static_cast<double>(sys_metrics.acts) / sys_seconds;

    const engine::ActTraceInfo info =
        engine::actTraceInfo(trace_path);
    if (info.records != sys_metrics.acts)
        fatal("capture lost records: trace has %llu, System ran %llu",
              static_cast<unsigned long long>(info.records),
              static_cast<unsigned long long>(sys_metrics.acts));
    std::uint64_t trace_bytes = 0;
    if (std::FILE *f = std::fopen(trace_path.c_str(), "rb")) {
        std::fseek(f, 0, SEEK_END);
        trace_bytes = static_cast<std::uint64_t>(std::ftell(f));
        std::fclose(f);
    }

    std::printf("System run: %llu ACTs in %.3f s (%.0f acts/s), "
                "trace %llu bytes\n",
                static_cast<unsigned long long>(sys_metrics.acts),
                sys_seconds, sys_aps,
                static_cast<unsigned long long>(trace_bytes));

    // ---- replay: the captured stream through `scheme`, repeated.
    auto replay_spec = [&](unsigned threads) {
        sim::ExperimentSpec spec;
        spec.scheme = scheme;
        spec.source = "act-trace";
        spec.extras.set("trace", trace_path);
        spec.engineActs = info.records;
        spec.shards = threads;
        spec.threads = threads;
        return spec;
    };

    std::vector<ReplayPoint> points;
    sim::RunMetrics reference;
    bool have_reference = false;
    for (unsigned threads : thread_counts) {
        const sim::ExperimentSpec spec = replay_spec(threads);
        sim::runExperiment(spec);  // Warm-up (page cache), untimed.
        const auto t0 = std::chrono::steady_clock::now();
        sim::RunMetrics last{};
        for (std::uint64_t i = 0; i < loops; ++i)
            last = sim::runExperiment(spec);
        const auto t1 = std::chrono::steady_clock::now();

        // Determinism canary: every replay, at every thread count,
        // is the same outcome.
        if (!have_reference) {
            reference = last;
            have_reference = true;
        } else if (last.rfmIssued != reference.rfmIssued ||
                   last.preventiveRefreshes !=
                       reference.preventiveRefreshes ||
                   last.simTicks != reference.simTicks) {
            fatal("replay diverged at threads=%u", threads);
        }

        ReplayPoint p;
        p.threads = threads;
        p.shards = threads;
        p.actsPerSec = static_cast<double>(info.records) *
                       static_cast<double>(loops) /
                       seconds(t0, t1);
        points.push_back(p);
    }

    TablePrinter table({"mode", "threads", "acts/s", "vs System"});
    table.beginRow()
        .cell("System (capture)")
        .cell("-")
        .num(sys_aps, 0)
        .cell("1.0x");
    for (const ReplayPoint &p : points) {
        table.beginRow()
            .cell("replay " + scheme)
            .cell(std::to_string(p.threads))
            .num(p.actsPerSec, 0)
            .cell(formatFixed(p.actsPerSec / sys_aps, 1) + "x");
    }
    std::printf("%s", table.str().c_str());
    std::printf(
        "\nReading: the System row is full CPU+LLC+MC+DRAM "
        "co-simulation; the replay rows\ndrive the identical ACT "
        "stream (captured once, record=) through the sharded\n"
        "engine + %s tracker alone. The ratio is what "
        "capture-once-replay-many saves\nper additional scheme in a "
        "sweep.\n",
        scheme.c_str());

    if (!scale.jsonOut.empty())
        writeJson(scale.jsonOut, sys_spec, sys_metrics.acts, sys_aps,
                  sys_seconds, info, trace_bytes, scheme, loops,
                  thread_counts, points);
    return 0;
}
