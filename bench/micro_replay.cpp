/**
 * @file
 * Capture/replay throughput bench — the headline number of the
 * act-trace subsystem: record one full-System run's ACT stream,
 * compose it into a multi-tenant corpus through the trace-op
 * pipeline (remap each tenant to its own bank offset, k-way merge,
 * splice an attack burst), then replay the corpus through the
 * sharded ActStream engine and compare acts/sec against the System
 * that produced the seed trace. The paper's capture-once-replay-many
 * methodology only pays off if replay is orders of magnitude faster
 * than re-simulating CPU+MC per scheme; this bench measures exactly
 * that ratio — and, per point, whether the zero-copy mmap decoder
 * beats the buffered fread reader.
 *
 * To make the replay long enough to time, each corpus is replayed
 * `loops=` times back to back (each loop is an independent full
 * replay through a fresh engine+tracker); wider corpora scale the
 * loop count down proportionally so every corpus replays a similar
 * record volume. Every point of one corpus — any thread count,
 * either decoder — must produce the identical outcome; a divergence
 * is fatal.
 *
 * Knobs: cores=N instr=N seed=N (the recorded System run),
 *        scheme=NAME replay tracker (default mithril),
 *        tenants=LIST merged corpus widths (default "16,1024" — the
 *          thousand-tenant point is the consolidation story's scale),
 *        loops=N replay repetitions per timing point at the first
 *          corpus width (default 50; wider corpora scale it down),
 *        threads=LIST sharded replay thread counts (default "1,4"),
 *        trace=PATH captured seed trace (default micro_replay.acttrace),
 *        corpus=PATH composed corpus (default micro_replay.corpus.acttrace;
 *          reused per corpus width),
 *        json=FILE write the BENCH_replay.json artifact (schema v4:
 *          one "corpora" row per tenant width, each with its own
 *          replay grid and per-point SIMD dispatch level).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/simd.hh"
#include "engine/act_trace.hh"
#include "runner/thread_pool.hh"
#include "trace/pipeline.hh"

using namespace mithril;

namespace
{

constexpr std::uint64_t kBurstActs = 10000;
constexpr const char *kBurstAttack = "multi-sided";

struct ReplayPoint
{
    unsigned threads = 1;
    std::uint32_t shards = 1;
    bool mmap = true;
    double actsPerSec = 0.0;
};

/** One composed corpus width and its full replay grid. */
struct CorpusResult
{
    std::uint64_t tenants = 0;
    engine::ActTraceInfo info;
    std::uint64_t bytes = 0;
    std::uint64_t loops = 0;  //!< Scaled per-point repetitions.
    std::vector<ReplayPoint> points;
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::uint64_t bytes = 0;
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fseek(f, 0, SEEK_END);
        bytes = static_cast<std::uint64_t>(std::ftell(f));
        std::fclose(f);
    }
    return bytes;
}

void
writeJson(const std::string &path, const sim::ExperimentSpec &sys_spec,
          std::uint64_t system_acts, double system_acts_per_sec,
          double system_seconds, const engine::ActTraceInfo &info,
          std::uint64_t trace_bytes, const std::string &scheme,
          std::uint64_t loops,
          const std::vector<unsigned> &thread_counts,
          const std::vector<CorpusResult> &corpora)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"mithril.bench_replay.v4\",\n");
    // Replay points shard one way per thread count (shards ==
    // threads), so the meta shard field is 0 (per-point).
    bench::writeMetaJson(f, thread_counts, 0);
    // system.acts comes from the System's own counters and
    // trace.records from the file's index, so the CI cross-check of
    // the two is a real capture-completeness assertion.
    std::fprintf(f, "  \"system\": {\"spec\": \"%s\", "
                    "\"acts\": %llu, \"wall_seconds\": %.4f, "
                    "\"acts_per_sec\": %.0f},\n",
                 sys_spec.describe().c_str(),
                 static_cast<unsigned long long>(system_acts),
                 system_seconds, system_acts_per_sec);
    std::fprintf(f, "  \"trace\": {\"records\": %llu, "
                    "\"bytes\": %llu},\n",
                 static_cast<unsigned long long>(info.records),
                 static_cast<unsigned long long>(trace_bytes));
    std::fprintf(f, "  \"replay_scheme\": \"%s\",\n", scheme.c_str());
    std::fprintf(f, "  \"replay_loops\": %llu,\n",
                 static_cast<unsigned long long>(loops));
    std::fprintf(f, "  \"corpora\": [\n");
    for (std::size_t c = 0; c < corpora.size(); ++c) {
        const CorpusResult &cr = corpora[c];
        std::fprintf(
            f,
            "    {\"tenants\": %llu, \"records\": %llu, "
            "\"bytes\": %llu, \"attack\": \"%s\", "
            "\"loops\": %llu, \"replay\": [",
            static_cast<unsigned long long>(cr.tenants),
            static_cast<unsigned long long>(cr.info.records),
            static_cast<unsigned long long>(cr.bytes), kBurstAttack,
            static_cast<unsigned long long>(cr.loops));
        for (std::size_t i = 0; i < cr.points.size(); ++i) {
            const ReplayPoint &p = cr.points[i];
            std::fprintf(f,
                         "%s{\"threads\": %u, \"shards\": %u, "
                         "\"mmap\": %d, \"simd\": \"%s\", "
                         "\"acts_per_sec\": %.0f, "
                         "\"speedup_vs_system\": %.1f}",
                         i ? ", " : "", p.threads, p.shards,
                         p.mmap ? 1 : 0, simd::activeLevelName(),
                         p.actsPerSec,
                         system_acts_per_sec > 0.0
                             ? p.actsPerSec / system_acts_per_sec
                             : 0.0);
        }
        std::fprintf(f, "]}%s\n",
                     c + 1 < corpora.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale = bench::BenchScale::fromArgs(
        argc, argv,
        {"scheme", "loops", "threads", "trace", "corpus", "tenants"});
    if (!scale.csvOut.empty())
        fatal("micro_replay emits json= only");
    const std::string scheme =
        scale.params.getString("scheme", "mithril");
    const std::uint64_t loops = scale.params.getUint("loops", 50);
    const std::vector<std::uint64_t> tenants_list =
        scale.params.has("tenants")
            ? scale.params.getUintList("tenants")
            : std::vector<std::uint64_t>{16, 1024};
    const std::string trace_path =
        scale.params.getString("trace", "micro_replay.acttrace");
    const std::string corpus_path = scale.params.getString(
        "corpus", "micro_replay.corpus.acttrace");
    if (loops == 0)
        fatal("loops= must be positive");
    if (tenants_list.empty())
        fatal("tenants= must name at least one corpus width");
    for (std::uint64_t t : tenants_list)
        if (t == 0 || t > 1024)
            fatal("tenants= entries must be in [1, 1024]");

    bench::banner("ACT-stream capture/compose/replay vs System");

    // ---- capture: one attacked System run, recorded.
    sim::ExperimentSpec sys_spec;
    sys_spec.scheme = "none";
    sys_spec.workload = "mix-high";
    sys_spec.attack = "multi-sided";
    sys_spec.cores = scale.cores;
    sys_spec.instrPerCore = scale.instrPerCore;
    sys_spec.seed = scale.seed;
    sys_spec.record = trace_path;

    const auto sys_t0 = std::chrono::steady_clock::now();
    const sim::RunMetrics sys_metrics = sim::runExperiment(sys_spec);
    const auto sys_t1 = std::chrono::steady_clock::now();
    const double sys_seconds = seconds(sys_t0, sys_t1);
    const double sys_aps =
        static_cast<double>(sys_metrics.acts) / sys_seconds;

    const engine::ActTraceInfo info =
        engine::actTraceInfo(trace_path);
    if (info.records != sys_metrics.acts)
        fatal("capture lost records: trace has %llu, System ran %llu",
              static_cast<unsigned long long>(info.records),
              static_cast<unsigned long long>(sys_metrics.acts));
    const std::uint64_t trace_bytes = fileBytes(trace_path);

    std::printf("System run: %llu ACTs in %.3f s (%.0f acts/s), "
                "trace %llu bytes\n",
                static_cast<unsigned long long>(sys_metrics.acts),
                sys_seconds, sys_aps,
                static_cast<unsigned long long>(trace_bytes));

    std::vector<unsigned> thread_counts;
    for (std::uint64_t t : scale.params.has("threads")
                               ? scale.params.getUintList("threads")
                               : std::vector<std::uint64_t>{1, 4}) {
        if (t == 0 || t > 1024)
            fatal("threads= entries must be in [1, 1024]");
        thread_counts.push_back(static_cast<unsigned>(t));
    }

    // ---- compose + replay, once per corpus width: remap the capture
    // to `tenants` bank offsets, merge them, splice one attack burst,
    // then drive the corpus through `scheme` at every thread count
    // under both decoders. Wider corpora scale the loop count down so
    // every width replays a comparable record volume.
    std::vector<CorpusResult> corpora;
    for (std::uint64_t tenants : tenants_list) {
        const auto comp_t0 = std::chrono::steady_clock::now();
        std::vector<std::string> tenant_paths;
        for (std::uint64_t i = 0; i < tenants; ++i) {
            const std::string tenant =
                corpus_path + ".tenant" + std::to_string(i);
            trace::materializePipeline("remap:" + trace_path +
                                           ",bank-rotate=" +
                                           std::to_string(i),
                                       tenant, scale.seed);
            tenant_paths.push_back(tenant);
        }
        std::string spec = "merge:";
        for (std::size_t i = 0; i < tenant_paths.size(); ++i) {
            if (i)
                spec += ",";
            spec += tenant_paths[i];
        }
        spec += "|splice:attack=" + std::string(kBurstAttack) +
                ",burst-acts=" + std::to_string(kBurstActs);
        CorpusResult cr;
        cr.tenants = tenants;
        cr.info =
            trace::materializePipeline(spec, corpus_path, scale.seed);
        for (const std::string &tenant : tenant_paths)
            std::remove(tenant.c_str());
        const auto comp_t1 = std::chrono::steady_clock::now();
        cr.bytes = fileBytes(corpus_path);

        // Scale the repetitions to the first corpus's record volume
        // (at least one full replay), so a 64x wider corpus does not
        // take 64x the wall time.
        cr.loops =
            corpora.empty()
                ? loops
                : std::max<std::uint64_t>(
                      1, loops * corpora.front().info.records /
                             std::max<std::uint64_t>(
                                 1, cr.info.records));

        std::printf(
            "corpus: %llu tenants merged + %llu-ACT %s burst = "
            "%llu records, %llu bytes (composed in %.3f s, "
            "replayed x%llu)\n",
            static_cast<unsigned long long>(tenants),
            static_cast<unsigned long long>(kBurstActs),
            kBurstAttack,
            static_cast<unsigned long long>(cr.info.records),
            static_cast<unsigned long long>(cr.bytes),
            seconds(comp_t0, comp_t1),
            static_cast<unsigned long long>(cr.loops));

        auto replay_spec = [&](unsigned threads, bool mmap) {
            sim::ExperimentSpec spec;
            spec.scheme = scheme;
            spec.source = "act-trace";
            spec.extras.set("trace", corpus_path);
            spec.extras.set("mmap", mmap ? "1" : "0");
            spec.engineActs = cr.info.records;
            spec.shards = threads;
            spec.threads = threads;
            return spec;
        };

        sim::RunMetrics reference;
        bool have_reference = false;
        for (unsigned threads : thread_counts) {
            for (bool mmap : {true, false}) {
                const sim::ExperimentSpec spec =
                    replay_spec(threads, mmap);
                sim::runExperiment(spec); // Warm-up (page cache).
                const auto t0 = std::chrono::steady_clock::now();
                sim::RunMetrics last{};
                for (std::uint64_t i = 0; i < cr.loops; ++i)
                    last = sim::runExperiment(spec);
                const auto t1 = std::chrono::steady_clock::now();

                // Determinism canary: every replay of one corpus —
                // any thread count, either decoder — is the same
                // outcome.
                if (!have_reference) {
                    reference = last;
                    have_reference = true;
                } else if (last.rfmIssued != reference.rfmIssued ||
                           last.preventiveRefreshes !=
                               reference.preventiveRefreshes ||
                           last.simTicks != reference.simTicks) {
                    fatal("replay diverged at tenants=%llu "
                          "threads=%u mmap=%d",
                          static_cast<unsigned long long>(tenants),
                          threads, mmap ? 1 : 0);
                }

                ReplayPoint p;
                p.threads = threads;
                p.shards = threads;
                p.mmap = mmap;
                p.actsPerSec =
                    static_cast<double>(cr.info.records) *
                    static_cast<double>(cr.loops) / seconds(t0, t1);
                cr.points.push_back(p);
            }
        }
        corpora.push_back(std::move(cr));
    }

    TablePrinter table({"mode", "tenants", "threads", "decoder",
                        "acts/s", "vs System"});
    table.beginRow()
        .cell("System (capture)")
        .cell("-")
        .cell("-")
        .cell("-")
        .num(sys_aps, 0)
        .cell("1.0x");
    for (const CorpusResult &cr : corpora) {
        for (const ReplayPoint &p : cr.points) {
            table.beginRow()
                .cell("replay " + scheme)
                .cell(std::to_string(cr.tenants))
                .cell(std::to_string(p.threads))
                .cell(p.mmap ? "mmap" : "buffered")
                .num(p.actsPerSec, 0)
                .cell(formatFixed(p.actsPerSec / sys_aps, 1) + "x");
        }
    }
    std::printf("%s", table.str().c_str());
    std::printf(
        "\nReading: the System row is full CPU+LLC+MC+DRAM "
        "co-simulation; the replay rows\ndrive each composed "
        "multi-tenant corpus (same stream at every point of a "
        "width)\nthrough the sharded engine + %s tracker alone. The "
        "ratio is what\ncapture-once-replay-many saves per "
        "additional scheme in a sweep; mmap vs\nbuffered isolates "
        "the decoder, and the widest corpus is the consolidation-\n"
        "scale stress point.\n",
        scheme.c_str());

    if (!scale.jsonOut.empty())
        writeJson(scale.jsonOut, sys_spec, sys_metrics.acts, sys_aps,
                  sys_seconds, info, trace_bytes, scheme, loops,
                  thread_counts, corpora);
    return 0;
}
