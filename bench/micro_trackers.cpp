/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths: CbS table
 * touch under different hit rates, greedy reset, and the per-ACT cost
 * of every tracker — the operations a per-bank hardware pipeline (and
 * this simulator) must sustain at one ACT per tRC.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/cbs_table.hh"
#include "core/mithril.hh"
#include "trackers/blockhammer.hh"
#include "trackers/factory.hh"
#include "trackers/graphene.hh"

using namespace mithril;

namespace
{

void
BM_CbsTouchHot(benchmark::State &state)
{
    // Working set == table: every touch is a hit.
    const auto entries = static_cast<std::uint32_t>(state.range(0));
    core::CbsTable table(entries);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.touch(static_cast<RowId>(rng.nextBounded(entries))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CbsTouchHot)->Arg(64)->Arg(512)->Arg(4096);

void
BM_CbsTouchCold(benchmark::State &state)
{
    // Working set >> table: every touch evicts the minimum.
    const auto entries = static_cast<std::uint32_t>(state.range(0));
    core::CbsTable table(entries);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.touch(
            static_cast<RowId>(rng.nextBounded(1u << 20))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CbsTouchCold)->Arg(64)->Arg(512)->Arg(4096);

void
BM_CbsGreedyReset(benchmark::State &state)
{
    core::CbsTable table(512);
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        table.touch(static_cast<RowId>(rng.nextZipf(4096, 1.0)));
    for (auto _ : state) {
        table.touch(static_cast<RowId>(rng.nextZipf(4096, 1.0)));
        benchmark::DoNotOptimize(table.resetMaxToMin());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CbsGreedyReset);

void
BM_TrackerActivate(benchmark::State &state)
{
    const auto kind =
        static_cast<trackers::SchemeKind>(state.range(0));
    trackers::SchemeSpec spec;
    spec.kind = kind;
    spec.flipTh = 6250;
    auto tracker = trackers::makeScheme(spec, dram::ddr5_4800(),
                                        dram::paperGeometry());
    Rng rng(4);
    std::vector<RowId> arr;
    Tick now = 0;
    for (auto _ : state) {
        arr.clear();
        tracker->onActivate(0,
                            static_cast<RowId>(rng.nextBounded(65536)),
                            now, arr);
        now += 48640;
        benchmark::DoNotOptimize(arr.data());
    }
    state.SetLabel(tracker->name());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerActivate)
    ->Arg(static_cast<int>(trackers::SchemeKind::Mithril))
    ->Arg(static_cast<int>(trackers::SchemeKind::Parfm))
    ->Arg(static_cast<int>(trackers::SchemeKind::BlockHammer))
    ->Arg(static_cast<int>(trackers::SchemeKind::Graphene))
    ->Arg(static_cast<int>(trackers::SchemeKind::Twice))
    ->Arg(static_cast<int>(trackers::SchemeKind::Cbt));

void
BM_MithrilRfm(benchmark::State &state)
{
    core::MithrilParams params;
    params.nEntry = 512;
    params.rfmTh = 64;
    core::Mithril tracker(1, params);
    Rng rng(5);
    std::vector<RowId> arr, sel;
    for (int i = 0; i < 50000; ++i)
        tracker.onActivate(
            0, static_cast<RowId>(rng.nextZipf(8192, 0.9)), 0, arr);
    for (auto _ : state) {
        tracker.onActivate(
            0, static_cast<RowId>(rng.nextZipf(8192, 0.9)), 0, arr);
        sel.clear();
        tracker.onRfm(0, 0, sel);
        benchmark::DoNotOptimize(sel.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MithrilRfm);

} // namespace

BENCHMARK_MAIN();
