/**
 * @file
 * Microbenchmarks for the hot paths: CbS table touch under different
 * hit rates, greedy reset, and the per-ACT cost of every tracker — the
 * operations a per-bank hardware pipeline (and this simulator) must
 * sustain at one ACT per tRC.
 *
 * Each case is one job on the runner's work-stealing pool; `jobs=1`
 * (the default here) times them back-to-back, higher values trade
 * timing fidelity for wall-clock. `iters=N` scales the loop counts.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "common/random.hh"
#include "runner/progress.hh"
#include "core/cbs_table.hh"
#include "core/mithril.hh"

using namespace mithril;

namespace
{

/** Keep a computed value alive without a store the optimizer can see
 *  through (the google-benchmark DoNotOptimize idiom). */
template <typename T>
inline void
doNotOptimize(T const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

struct MicroResult
{
    std::uint64_t iters = 0;
    double seconds = 0.0;
};

struct MicroCase
{
    std::string name;
    std::function<MicroResult(std::uint64_t)> run;
};

template <typename Fn>
MicroResult
timeLoop(std::uint64_t iters, Fn &&body)
{
    // Short untimed warm-up to fault in the tables and caches.
    for (std::uint64_t i = 0; i < iters / 16 + 1; ++i)
        body();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        body();
    const auto t1 = std::chrono::steady_clock::now();
    MicroResult r;
    r.iters = iters;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

MicroResult
cbsTouch(std::uint64_t iters, std::uint32_t entries,
         std::uint64_t working_set, std::uint64_t seed)
{
    core::CbsTable table(entries);
    Rng rng(seed);
    return timeLoop(iters, [&] {
        doNotOptimize(
            table.touch(static_cast<RowId>(rng.nextBounded(
                working_set))));
    });
}

MicroResult
cbsGreedyReset(std::uint64_t iters)
{
    core::CbsTable table(512);
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        table.touch(static_cast<RowId>(rng.nextZipf(4096, 1.0)));
    return timeLoop(iters, [&] {
        table.touch(static_cast<RowId>(rng.nextZipf(4096, 1.0)));
        doNotOptimize(table.resetMaxToMin());
    });
}

MicroResult
trackerActivate(std::uint64_t iters, const std::string &scheme)
{
    ParamSet params;
    params.set("flip", "6250");
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    auto tracker =
        registry::makeScheme(scheme, params, {timing, geom});
    Rng rng(4);
    std::vector<RowId> arr;
    Tick now = 0;
    return timeLoop(iters, [&] {
        arr.clear();
        tracker->onActivate(
            0, static_cast<RowId>(rng.nextBounded(65536)), now, arr);
        now += 48640;
        doNotOptimize(arr.data());
    });
}

MicroResult
mithrilRfm(std::uint64_t iters)
{
    core::MithrilParams params;
    params.nEntry = 512;
    params.rfmTh = 64;
    core::Mithril tracker(1, params);
    Rng rng(5);
    std::vector<RowId> arr, sel;
    for (int i = 0; i < 50000; ++i)
        tracker.onActivate(
            0, static_cast<RowId>(rng.nextZipf(8192, 0.9)), 0, arr);
    return timeLoop(iters, [&] {
        tracker.onActivate(
            0, static_cast<RowId>(rng.nextZipf(8192, 0.9)), 0, arr);
        sel.clear();
        tracker.onRfm(0, 0, sel);
        doNotOptimize(sel.data());
    });
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchScale scale =
        bench::BenchScale::fromArgs(argc, argv, {"iters"});
    bench::rejectArtifacts(scale, "micro_trackers");
    // Microbenchmarks time tight loops, so unlike the sweep benches
    // they default to one worker; jobs=N opts into parallel timing.
    if (!scale.params.has("jobs"))
        scale.jobs = 1;
    const std::uint64_t iters =
        scale.params.getUint("iters", 1000000);
    if (iters == 0)
        fatal("iters= must be positive");

    std::vector<MicroCase> cases;
    for (std::uint32_t entries : {64u, 512u, 4096u}) {
        cases.push_back(
            {"cbs_touch_hot/" + std::to_string(entries),
             [entries](std::uint64_t n) {
                 // Working set == table: every touch is a hit.
                 return cbsTouch(n, entries, entries, 1);
             }});
    }
    for (std::uint32_t entries : {64u, 512u, 4096u}) {
        cases.push_back(
            {"cbs_touch_cold/" + std::to_string(entries),
             [entries](std::uint64_t n) {
                 // Working set >> table: every touch evicts the min.
                 return cbsTouch(n, entries, 1u << 20, 2);
             }});
    }
    cases.push_back({"cbs_greedy_reset", [](std::uint64_t n) {
                         return cbsGreedyReset(n);
                     }});
    for (const char *scheme :
         {"mithril", "parfm", "blockhammer", "graphene", "twice",
          "cbt"}) {
        cases.push_back(
            {"tracker_act/" + registry::schemeDisplay(scheme),
             [scheme](std::uint64_t n) {
                 return trackerActivate(n, scheme);
             }});
    }
    cases.push_back({"mithril_act+rfm", [](std::uint64_t n) {
                         return mithrilRfm(n);
                     }});

    bench::banner("Tracker hot-path microbenchmarks");
    std::vector<MicroResult> results(cases.size());
    runner::ThreadPool pool(scale.jobs);
    runner::ProgressReporter progress(cases.size(), scale.progress);
    pool.parallelFor(cases.size(), [&](std::size_t i) {
        results[i] = cases[i].run(iters);
        progress.jobDone(cases[i].name);
    });

    TablePrinter table({"case", "iterations", "ns/op", "Mops/s"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const MicroResult &r = results[i];
        const double ns_per_op =
            1e9 * r.seconds / static_cast<double>(r.iters);
        table.beginRow()
            .cell(cases[i].name)
            .intCell(static_cast<long long>(r.iters))
            .num(ns_per_op, 1)
            .num(r.iters / r.seconds / 1e6, 2);
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nReading: a CbS touch is O(1) either way; the "
                "per-ACT cost of every tracker\nsits far under one "
                "tRC (~48ns), so the schemes are implementable at "
                "line rate.\n");
    return 0;
}
