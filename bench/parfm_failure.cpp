/**
 * @file
 * Appendix C — PARFM failure-probability analysis.
 *
 * Reports, per FlipTH: the largest RFM_TH meeting the 1e-15 system
 * failure target (22 simultaneously attackable banks, as the paper's
 * tFAW argument gives), the resulting bank/system failure exponents,
 * and the cost-effectiveness curve justifying the 1-ACT-per-row worst
 * case (Equation 5).
 */

#include <cstdio>

#include "analysis/parfm_failure.hh"
#include "bench_util.hh"
#include "core/mithril.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    // Uniform CLI; analytic, so only knob validation applies.
    const auto scale = bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "parfm_failure");
    bench::rejectParallelKnobs(scale, "parfm_failure");
    const dram::Timing timing = dram::ddr5_4800();

    bench::banner("PARFM RFM_TH for a 1e-15 system failure target");
    TablePrinter table({"FlipTH", "max RFM_TH", "log10 bank fail",
                        "log10 system fail", "Mithril RFM_TH"});
    for (std::uint32_t flip : bench::evalFlipThs()) {
        const std::uint32_t th = analysis::parfmMaxRfmTh(timing, flip);
        table.beginRow().cell(bench::flipThLabel(flip)).intCell(th);
        if (th > 0) {
            table
                .num(analysis::parfmBankFailLog10(timing, flip, th), 1)
                .num(analysis::parfmSystemFailLog10(timing, flip, th,
                                                    22),
                     1);
        } else {
            table.cell("-").cell("-");
        }
        table.intCell(core::defaultMithrilRfmTh(flip));
    }
    std::printf("%s", table.str().c_str());

    bench::banner("Equation 5: attacker cost-effectiveness of j ACTs "
                  "per row per interval (RFM_TH=64)");
    TablePrinter ce({"j", "cost-effectiveness"});
    for (std::uint32_t j : {1u, 2u, 4u, 8u, 16u, 32u, 64u})
        ce.beginRow().intCell(j).num(
            analysis::parfmCostEffectiveness(64, j), 4);
    std::printf("%s", ce.str().c_str());

    bench::banner("Failure exponent vs RFM_TH at FlipTH 6.25K");
    TablePrinter sweep({"RFM_TH", "log10 system fail (22 banks)",
                        "log10 system fail (1024 banks)"});
    for (std::uint32_t th : {16u, 32u, 64u, 68u, 96u, 128u, 256u}) {
        sweep.beginRow()
            .intCell(th)
            .num(analysis::parfmSystemFailLog10(timing, 6250, th, 22),
                 1)
            .num(analysis::parfmSystemFailLog10(timing, 6250, th,
                                                1024),
                 1);
    }
    std::printf("%s", sweep.str().c_str());
    std::printf("\nReading: PARFM must run its RFM_TH roughly 2x lower "
                "than Mithril's at every\nFlipTH (and lower still for "
                "bigger systems), which is where its energy and\n"
                "performance overheads come from.\n");
    return 0;
}
