/**
 * @file
 * Tables I-III — the paper's taxonomy and configuration tables,
 * regenerated from the implementation itself:
 *
 *  Table I: categorization of every implemented scheme (guarantee,
 *           remedy, location, tracking mechanism), with the location
 *           read from the live tracker objects.
 *  Table II: the DRAM refresh / RH / RFM symbols with this build's
 *           values.
 *  Table III: the simulated system's architectural parameters from
 *           the actual timing/geometry presets.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mithril;

namespace
{

const char *
locationName(trackers::Location loc)
{
    switch (loc) {
      case trackers::Location::Mc:         return "MC";
      case trackers::Location::Dram:       return "DRAM";
      case trackers::Location::BufferChip: return "buffer chip";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    // Uniform CLI; analytic, so only knob validation applies.
    const auto scale = mithril::bench::BenchScale::fromArgs(argc, argv);
    mithril::bench::rejectArtifacts(scale, "table1_taxonomy");
    mithril::bench::rejectParallelKnobs(scale, "table1_taxonomy");
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();

    bench::banner("Table I: categorization of the implemented "
                  "schemes");
    struct Row
    {
        const char *scheme;
        const char *guarantee;
        const char *remedy;
        const char *tracking;
    };
    const Row rows[] = {
        {"para", "Probabilistic", "ARR", "probabilistic sampling"},
        {"cbt", "Deterministic", "ARR", "grouped counters (tree)"},
        {"twice", "Deterministic", "ARR (feedback)",
         "streaming: Lossy Counting"},
        {"graphene", "Deterministic", "ARR",
         "streaming: Counter-based Summary"},
        {"blockhammer", "Deterministic", "throttling",
         "streaming: count-min sketch (CBFs)"},
        {"parfm", "Probabilistic", "RFM", "reservoir sampling"},
        {"mithril", "Deterministic", "RFM",
         "streaming: Counter-based Summary"},
        {"mithril+", "Deterministic", "RFM (+MRR skip)",
         "streaming: Counter-based Summary"},
    };
    TablePrinter t1({"scheme", "guarantee", "remedy", "location",
                     "tracking"});
    ParamSet scheme_params;
    scheme_params.set("flip", "6250");
    for (const Row &row : rows) {
        auto tracker = registry::makeScheme(row.scheme, scheme_params,
                                            {timing, geom});
        t1.beginRow()
            .cell(registry::schemeDisplay(row.scheme))
            .cell(row.guarantee)
            .cell(row.remedy)
            .cell(locationName(tracker->location()))
            .cell(row.tracking);
    }
    std::printf("%s", t1.str().c_str());

    bench::banner("Table II: refresh / RH / RFM symbols (this build)");
    TablePrinter t2({"symbol", "value", "meaning"});
    t2.beginRow().cell("tREFW").cell(
        formatFixed(tickToMs(timing.tREFW), 0) + " ms")
        .cell("per-row auto-refresh interval");
    t2.beginRow().cell("tREFI").cell(
        formatFixed(tickToNs(timing.tREFI) / 1000.0, 2) + " us")
        .cell("refresh command interval (8192 groups)");
    t2.beginRow().cell("tRFC").cell(
        formatFixed(tickToNs(timing.tRFC), 0) + " ns")
        .cell("all-bank refresh busy time");
    t2.beginRow().cell("tRFM").cell(
        formatFixed(tickToNs(timing.tRFM), 2) + " ns")
        .cell("per-bank RFM time margin");
    t2.beginRow().cell("FlipTH").cell("1.5k-50k")
        .cell("RH threshold swept by the evaluation");
    t2.beginRow().cell("RFM_TH").cell("16-512")
        .cell("ACTs per bank between RFM commands");
    std::printf("%s", t2.str().c_str());

    bench::banner("Table III: architectural parameters (presets)");
    TablePrinter t3({"parameter", "value"});
    t3.beginRow().cell("cores").cell("16 x 4-way OOO @ 3.6 GHz "
                                     "(MLP-window model)");
    t3.beginRow().cell("LLC").cell("16 MB, 16-way, LRU");
    t3.beginRow().cell("module").cell("DDR5-4800");
    t3.beginRow().cell("channels").intCell(geom.channels);
    t3.beginRow().cell("ranks/channel").intCell(geom.ranksPerChannel);
    t3.beginRow().cell("banks/rank").intCell(geom.banksPerRank);
    t3.beginRow().cell("rows/bank").intCell(geom.rowsPerBank);
    t3.beginRow().cell("row size").cell("8 KB");
    t3.beginRow().cell("scheduling").cell("BLISS");
    t3.beginRow().cell("page policy").cell("minimalist-open (4-hit "
                                           "cap)");
    t3.beginRow().cell("tRFC, tRC, tRFM").cell(
        formatFixed(tickToNs(timing.tRFC), 0) + ", " +
        formatFixed(tickToNs(timing.tRC), 2) + ", " +
        formatFixed(tickToNs(timing.tRFM), 2) + " ns");
    t3.beginRow().cell("tRCD, tRP, tCL").cell(
        formatFixed(tickToNs(timing.tRCD), 2) + " ns each");
    std::printf("%s", t3.str().c_str());
    return 0;
}
