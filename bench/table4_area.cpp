/**
 * @file
 * Table IV — per-bank counter-table size (KB) of every scheme across
 * FlipTH 50K..1.5K, from each scheme's own sizing rules. '-' cells
 * are the configurations the paper also marks infeasible/impractical.
 * Doubles as Figure 10(e).
 */

#include <cstdio>

#include "analysis/area_model.hh"
#include "bench_util.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    // Uniform CLI; analytic, so only knob validation applies.
    const auto scale = bench::BenchScale::fromArgs(argc, argv);
    bench::rejectArtifacts(scale, "table4_area");
    bench::rejectParallelKnobs(scale, "table4_area");
    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    analysis::AreaModel model(timing, geom);

    bench::banner("Table IV: per-bank table size (KB)");
    std::vector<std::string> headers = {"scheme"};
    for (std::uint32_t flip : analysis::tableIvFlipThs())
        headers.push_back(bench::flipThLabel(flip));
    TablePrinter table(headers);

    table.beginRow().cell("CBT @ MC");
    for (std::uint32_t flip : analysis::tableIvFlipThs())
        table.num(model.cbtBytes(flip) / 1024.0, 2);

    table.beginRow().cell("Graphene @ MC");
    for (std::uint32_t flip : analysis::tableIvFlipThs())
        table.num(model.grapheneBytes(flip) / 1024.0, 2);

    table.beginRow().cell("BlockHammer @ MC");
    for (std::uint32_t flip : analysis::tableIvFlipThs())
        table.num(model.blockHammerBytes(flip) / 1024.0, 2);

    table.beginRow().cell("TWiCe @ buffer chip");
    for (std::uint32_t flip : analysis::tableIvFlipThs())
        table.num(model.twiceBytes(flip) / 1024.0, 2);

    for (std::uint32_t rfm_th : {256u, 128u, 64u, 32u}) {
        table.beginRow().cell("Mithril-" + std::to_string(rfm_th) +
                              " @ DRAM");
        for (std::uint32_t flip : analysis::tableIvFlipThs()) {
            const auto bytes = model.mithrilBytes(flip, rfm_th);
            // The paper marks both infeasible and "overly high Nentry"
            // cells with '-'; reproduce that for >8KB tables.
            if (bytes && *bytes <= 8192.0)
                table.num(*bytes / 1024.0, 2);
            else
                table.cell("-");
        }
    }
    std::printf("%s", table.str().c_str());

    bench::banner("Figure 10(e) ratios: BlockHammer / Mithril "
                  "(paper: 4x-60x)");
    TablePrinter ratios({"FlipTH", "BlockHammer KB", "Mithril KB",
                         "ratio"});
    const std::uint32_t mithril_ths[] = {256, 256, 256, 128, 64, 32};
    std::size_t i = 0;
    for (std::uint32_t flip : analysis::tableIvFlipThs()) {
        const auto mithril = model.mithrilBytes(flip, mithril_ths[i]);
        ++i;
        if (!mithril)
            continue;
        const double bh = model.blockHammerBytes(flip);
        ratios.beginRow()
            .cell(bench::flipThLabel(flip))
            .num(bh / 1024.0, 2)
            .num(*mithril / 1024.0, 2)
            .num(bh / *mithril, 1);
    }
    std::printf("%s", ratios.str().c_str());
    return 0;
}
