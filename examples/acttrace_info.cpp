/**
 * @file
 * Inspect a captured mithril.acttrace.v1 file: validate header,
 * index, and footer, print the deterministic describe() dump
 * (geometry, seed, record totals, per-bank counts, meta line), then
 * the per-bank tick spans — decoded from the block index alone (two
 * block decodes per touched bank), never a full-stream scan. For
 * traces materialized by a trace-op pipeline the meta line is parsed
 * back into a stage/input summary.
 *
 *   acttrace_info trace.acttrace
 *
 * Exits non-zero (with the SpecError message) on anything that is
 * not a structurally valid v1 trace — which makes it a cheap CI
 * check for freshly captured artifacts.
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "engine/act_trace.hh"
#include "registry/registry.hh"
#include "trace/pipeline.hh"

using namespace mithril;

namespace
{

void
printBankSpans(engine::ActTraceSource &source)
{
    const std::vector<engine::ActTraceBankSpan> spans =
        source.bankSpans();
    Tick lo = 0, hi = 0;
    bool any = false;
    for (std::size_t b = 0; b < spans.size(); ++b) {
        if (spans[b].count == 0)
            continue;
        if (!any || spans[b].first < lo)
            lo = spans[b].first;
        if (!any || spans[b].last > hi)
            hi = spans[b].last;
        any = true;
        std::printf("bank %zu span: ticks [%lld, %lld]\n", b,
                    static_cast<long long>(spans[b].first),
                    static_cast<long long>(spans[b].last));
    }
    if (any)
        std::printf("tick span: [%lld, %lld]\n",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi));
}

/** For pipeline-built traces: fold the recorded spec back into a
 *  stage/input summary (merge inputs = tenant count). */
void
printPipelineSummary(const std::string &meta)
{
    const std::size_t prefix_len =
        std::strlen(trace::kPipelineMetaPrefix);
    if (meta.compare(0, prefix_len, trace::kPipelineMetaPrefix) != 0)
        return;
    const std::string spec = meta.substr(prefix_len);
    try {
        const std::vector<trace::PipelineStage> stages =
            trace::parsePipeline(spec);
        std::printf("composed by: %zu-stage pipeline\n",
                    stages.size());
        for (const trace::PipelineStage &stage : stages) {
            std::printf("  %s: %zu inputs", stage.op.c_str(),
                        stage.inputs.size());
            for (const std::string &key : stage.params.keys())
                std::printf(" %s=%s", key.c_str(),
                            stage.params.getString(key).c_str());
            std::printf("\n");
        }
    } catch (const registry::SpecError &) {
        // An op renamed since the capture: the raw meta line above
        // already shows the spec, so stay silent rather than fail
        // the inspection.
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2)
        fatal("usage: acttrace_info <trace file>");
    try {
        engine::ActTraceSource source(
            argv[1], engine::ActTraceReadOptions{/*mmap=*/true});
        const engine::ActTraceInfo &info = source.info();
        std::printf("%s", info.describe().c_str());
        printBankSpans(source);
        printPipelineSummary(info.meta);
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    } catch (const std::exception &err) {
        // Same one-line contract for non-SpecError failures (mmap
        // errors, allocation) — never a raw terminate().
        fatal("%s", err.what());
    }
    return 0;
}
