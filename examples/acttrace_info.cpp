/**
 * @file
 * Inspect a captured mithril.acttrace.v1 file: validate header,
 * index, and footer, and print the deterministic describe() dump
 * (geometry, seed, record totals, per-bank counts, meta line).
 *
 *   acttrace_info trace.acttrace
 *
 * Exits non-zero (with the SpecError message) on anything that is
 * not a structurally valid v1 trace — which makes it a cheap CI
 * check for freshly captured artifacts.
 */

#include <cstdio>

#include "common/logging.hh"
#include "engine/act_trace.hh"
#include "registry/registry.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    if (argc != 2)
        fatal("usage: acttrace_info <trace file>");
    try {
        const engine::ActTraceInfo info =
            engine::actTraceInfo(argv[1]);
        std::printf("%s", info.describe().c_str());
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    }
    return 0;
}
