/**
 * @file
 * Attack demo: fire the full Row Hammer attack battery at a chosen
 * protection scheme on the command-level harness and report the
 * ground-truth oracle's verdict for each pattern.
 *
 * Usage: attack_demo [scheme=mithril] [flip_th=6250] [rfm_th=0]
 *                    [ad_th=200] [windows=2]
 *
 * Try scheme=none to watch the bit flips happen, or
 * scheme=rfm-graphene to reproduce the Figure 2 failure.
 */

#include <cstdio>

#include "common/config.hh"
#include "common/random.hh"
#include "common/table_printer.hh"
#include "registry/scheme_registry.hh"
#include "sim/act_harness.hh"

using namespace mithril;

namespace
{

struct Pattern
{
    const char *name;
    RowId (*row)(std::uint64_t, Rng &);
};

const Pattern kPatterns[] = {
    {"double-sided",
     [](std::uint64_t i, Rng &) {
         return static_cast<RowId>(4000 + 2 * (i % 2));
     }},
    {"multi-sided (32 victims)",
     [](std::uint64_t i, Rng &) {
         return static_cast<RowId>(4000 + 2 * (i % 33));
     }},
    {"rotating 500 rows",
     [](std::uint64_t i, Rng &) {
         return static_cast<RowId>(4000 + 2 * (i % 500));
     }},
    {"random hot 256",
     [](std::uint64_t, Rng &rng) {
         return static_cast<RowId>(4000 + rng.nextBounded(256));
     }},
    {"zipf skew",
     [](std::uint64_t, Rng &rng) {
         return static_cast<RowId>(4000 + rng.nextZipf(2048, 1.2));
     }},
};

} // namespace

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    const std::string scheme_name =
        params.getString("scheme", "mithril");
    if (!registry::schemeRegistry().has(scheme_name))
        fatal("unknown scheme '%s' (registered schemes: %s)",
              scheme_name.c_str(),
              registry::joinSorted(
                  registry::schemeRegistry().names())
                  .c_str());
    const auto flip_th =
        static_cast<std::uint32_t>(params.getUint("flip_th", 6250));
    const auto windows = params.getUint("windows", 2);

    registry::SchemeKnobs knobs;
    knobs.flipTh = flip_th;
    knobs.rfmTh =
        static_cast<std::uint32_t>(params.getUint("rfm_th", 0));
    knobs.adTh =
        static_cast<std::uint32_t>(params.getUint("ad_th", 200));

    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    const std::uint64_t acts =
        dram::maxActsPerWindow(timing) * windows;

    std::printf("Attack battery vs %s at FlipTH %u (%llu ACTs ~= %llu "
                "tREFW windows, max rate)\n\n",
                registry::schemeDisplay(scheme_name).c_str(), flip_th,
                static_cast<unsigned long long>(acts),
                static_cast<unsigned long long>(windows));

    TablePrinter table({"pattern", "max disturbance", "bit flips",
                        "prev. refreshes", "RFMs", "verdict"});
    bool all_safe = true;
    for (const Pattern &pattern : kPatterns) {
        std::unique_ptr<trackers::RhProtection> tracker;
        try {
            tracker = registry::makeScheme(scheme_name,
                                           knobs.toParams(),
                                           {timing, geom});
        } catch (const registry::SpecError &err) {
            fatal("%s", err.what());
        }
        sim::ActHarnessConfig cfg;
        cfg.timing = timing;
        cfg.flipTh = flip_th;
        sim::ActHarness harness(cfg, tracker.get());
        Rng rng(99);
        harness.run(acts, [&](std::uint64_t i) {
            return pattern.row(i, rng);
        });

        const auto &oracle = harness.oracle();
        const bool safe = oracle.bitFlips() == 0;
        all_safe = all_safe && safe;
        table.beginRow()
            .cell(pattern.name)
            .num(oracle.maxDisturbanceEver(), 0)
            .intCell(static_cast<long long>(oracle.bitFlips()))
            .intCell(static_cast<long long>(
                harness.preventiveRefreshes()))
            .intCell(static_cast<long long>(harness.rfms()))
            .cell(safe ? "SAFE" : "FLIPPED");
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("%s\n", all_safe
                            ? "verdict: no victim ever reached FlipTH."
                            : "verdict: protection was defeated.");
    return all_safe ? 0 : 1;
}
