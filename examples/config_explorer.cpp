/**
 * @file
 * Configuration explorer: the tool a DRAM vendor would use to pick
 * Mithril's (Nentry, RFM_TH) for a chip (Section IV-D).
 *
 * Given a target FlipTH it prints every feasible RFM_TH with the
 * minimum table, the Theorem 1/2 bounds, the wrapping-counter width,
 * and how the table compares to the baselines' sizing at the same
 * FlipTH.
 *
 * Usage: config_explorer [flip_th=6250] [ad_th=200]
 */

#include <cstdio>

#include "analysis/area_model.hh"
#include "analysis/parfm_failure.hh"
#include "common/config.hh"
#include "common/table_printer.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    const auto flip_th =
        static_cast<std::uint32_t>(params.getUint("flip_th", 6250));
    const auto ad_th =
        static_cast<std::uint32_t>(params.getUint("ad_th", 200));

    const dram::Timing timing = dram::ddr5_4800();
    const dram::Geometry geom = dram::paperGeometry();
    core::ConfigSolver solver(timing, geom);

    std::printf("Mithril configuration space for FlipTH = %u "
                "(DDR5-4800, %u banks, %u rows/bank)\n\n",
                flip_th, geom.totalBanks(), geom.rowsPerBank);

    TablePrinter table({"RFM_TH", "W (intervals)", "Nentry",
                        "M (Thm 1)", "Nentry@AdTH", "M' (Thm 2)",
                        "ctr bits", "table KB"});
    for (std::uint32_t rfm_th : {16u, 32u, 64u, 128u, 256u, 512u}) {
        auto plain = solver.solve(flip_th, rfm_th, 0);
        if (!plain) {
            table.beginRow()
                .intCell(rfm_th)
                .intCell(static_cast<long long>(
                    core::windowIntervals(timing, rfm_th)))
                .cell("-")
                .cell("infeasible");
            continue;
        }
        auto adaptive = solver.solve(flip_th, rfm_th, ad_th);
        table.beginRow()
            .intCell(rfm_th)
            .intCell(static_cast<long long>(
                core::windowIntervals(timing, rfm_th)))
            .intCell(plain->nEntry)
            .num(plain->bound, 1)
            .cell(adaptive ? std::to_string(adaptive->nEntry) : "-")
            .cell(adaptive ? formatFixed(adaptive->bound, 1) : "-")
            .intCell(adaptive ? adaptive->counterBits
                              : plain->counterBits)
            .num((adaptive ? adaptive->tableBytes()
                           : plain->tableBytes()) /
                     1024.0,
                 2);
    }
    std::printf("%s", table.str().c_str());
    std::printf("\n(safety condition: M < FlipTH/2 = %.1f; AdTH = %u "
                "for the M' column)\n\n",
                flip_th / 2.0, ad_th);

    analysis::AreaModel area(timing, geom);
    std::printf("Baselines at the same FlipTH (KB/bank):\n");
    TablePrinter cmp({"scheme", "KB/bank"});
    cmp.beginRow().cell("Graphene @ MC").num(
        area.grapheneBytes(flip_th) / 1024.0, 2);
    cmp.beginRow().cell("TWiCe @ buffer chip").num(
        area.twiceBytes(flip_th) / 1024.0, 2);
    cmp.beginRow().cell("CBT @ MC").num(area.cbtBytes(flip_th) / 1024.0,
                                        2);
    cmp.beginRow().cell("BlockHammer @ MC").num(
        area.blockHammerBytes(flip_th) / 1024.0, 2);
    std::printf("%s", cmp.str().c_str());

    const std::uint32_t parfm_th =
        analysis::parfmMaxRfmTh(timing, flip_th);
    std::printf("\nPARFM would need RFM_TH <= %u for a 1e-15 failure "
                "target at this FlipTH.\n",
                parfm_th);
    return 0;
}
