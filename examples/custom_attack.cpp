/**
 * @file
 * Out-of-tree extension demo: define and register a brand-new attack
 * pattern WITHOUT touching src/sim, src/trackers, or src/runner —
 * exactly what a user repo would do. The generator class and its
 * Registrar block live in this file only; after registration the
 * attack sweeps, labels, validates, and lists like any built-in:
 *
 *   custom_attack                  # run the demo sweep below
 *   sweep_cli attacks=checkerboard # ...and it works there too, if
 *                                  # registered in that binary
 *
 * The pattern ("checkerboard") hammers alternating even rows of a
 * sliding window, a TRR-evasion-style spread pattern; `window=`
 * controls how many rows the checkerboard spans.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "registry/attack_registry.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/sweep_spec.hh"
#include "workload/attacks.hh"

using namespace mithril;

namespace
{

/** Alternating-parity hammer over a sliding row window. */
class CheckerboardAttack : public workload::TraceGenerator
{
  public:
    CheckerboardAttack(const workload::AttackTarget &target,
                       std::uint32_t window)
        : target_(target), window_(window)
    {
    }

    std::optional<workload::TraceRecord>
    next() override
    {
        if (produced_ >= target_.limit)
            return std::nullopt;
        // Sweep even rows of the window, then odd, so every victim
        // row sees aggressors on both sides once per two sweeps.
        const std::uint64_t phase = produced_ / window_;
        const RowId row = target_.baseRow +
                          2 * static_cast<RowId>(produced_ % window_) +
                          (phase % 2);
        ++produced_;
        workload::TraceRecord rec;
        rec.gap = 1;
        rec.uncached = true;
        rec.write = false;
        rec.addr = target_.map->compose(target_.channel, target_.rank,
                                        target_.bank, row, 0);
        return rec;
    }

    std::string
    name() const override
    {
        return "checkerboard";
    }

  private:
    workload::AttackTarget target_;
    std::uint32_t window_;
    std::uint64_t produced_ = 0;
};

// One Registrar object at file scope is the whole integration: the
// attack becomes sweepable, validated, and listable process-wide.
const registry::Registrar<registry::AttackTraits> kRegisterCheckerboard{{
    /*name=*/"checkerboard",
    /*display=*/"checkerboard",
    /*description=*/
    "alternating-parity hammer over a sliding row window",
    /*aliases=*/{},
    /*uses=*/"",
    /*params=*/
    {{"window", registry::ParamDesc::Type::Uint, "16", 2, 4096,
      "rows the checkerboard spans"}},
    /*make=*/
    [](const ParamSet &params, const registry::AttackContext &ctx)
        -> std::unique_ptr<workload::TraceGenerator> {
        workload::AttackTarget target;
        target.map = &ctx.map;
        target.bank = 5;
        target.baseRow = 0x3000;
        return std::make_unique<CheckerboardAttack>(
            target, params.getUint32("window", 16));
    },
}};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchScale scale =
        bench::BenchScale::fromArgs(argc, argv, {"window"});

    // The new attack drops straight into a declarative sweep — note
    // the entry-declared `window=` knob riding along.
    ParamSet params = scale.params;
    runner::SweepSpec spec = runner::SweepSpec::fromParams(
        ParamSet::fromString("schemes=mithril,graphene "
                             "attacks=checkerboard baseline=1"),
        {});
    spec.tunables.set("window",
                      params.getString("window", "16"));
    spec.cores = scale.cores;
    spec.instrPerCore = scale.instrPerCore;
    spec.seed = scale.seed;

    const runner::SweepRunner run(scale.runnerOptions());
    const runner::SweepResult result = run.run(spec);
    runner::TableSink().write(result, std::cout);
    bench::writeArtifacts(scale, result);

    const runner::JobResult &base =
        bench::need(result.baseline("mix-high", "checkerboard"),
                    "unprotected checkerboard");
    const runner::JobResult &mithril =
        bench::need(result.find("mithril", 6250, "mix-high",
                                "checkerboard"),
                    "mithril checkerboard");
    std::printf("\ncheckerboard attack: unprotected max disturbance "
                "%.0f, mithril max disturbance %.0f (flips %llu)\n",
                base.metrics.maxDisturbance,
                mithril.metrics.maxDisturbance,
                static_cast<unsigned long long>(
                    mithril.metrics.bitFlips));
    return mithril.metrics.bitFlips == 0 ? 0 : 1;
}
