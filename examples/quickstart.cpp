/**
 * @file
 * Quickstart: build a Table III system protected by Mithril, run a
 * memory-intensive 16-core workload plus one double-sided Row Hammer
 * attacker, and print performance, energy, protection activity, and
 * the ground-truth safety verdict.
 *
 * Usage: quickstart [flip_th=6250] [rfm_th=128] [ad_th=200]
 *                   [workload=mix-high] [instr=200000] [cores=16]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "core/bounds.hh"
#include "sim/experiment.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);

    const auto flip_th =
        static_cast<std::uint32_t>(params.getUint("flip_th", 6250));
    const auto rfm_th =
        static_cast<std::uint32_t>(params.getUint("rfm_th", 128));
    const auto ad_th =
        static_cast<std::uint32_t>(params.getUint("ad_th", 200));

    sim::RunConfig run;
    run.workload =
        sim::workloadFromName(params.getString("workload", "mix-high"));
    run.cores =
        static_cast<std::uint32_t>(params.getUint("cores", 16));
    run.instrPerCore = params.getUint("instr", 200000);
    run.attack = sim::AttackKind::DoubleSided;

    trackers::SchemeSpec scheme;
    scheme.kind = trackers::SchemeKind::Mithril;
    scheme.flipTh = flip_th;
    scheme.rfmTh = rfm_th;
    scheme.adTh = ad_th;

    std::printf("Mithril quickstart\n");
    std::printf("  workload: %s + 1 double-sided attacker\n",
                sim::workloadName(run.workload).c_str());
    std::printf("  FlipTH %u, RFM_TH %u, AdTH %u\n", flip_th, rfm_th,
                ad_th);
    const double bound = core::theorem2Bound(run.sys.timing, 512,
                                             rfm_th, ad_th);
    std::printf("  (Theorem 2 bound at Nentry=512: M' = %.1f, "
                "FlipTH/2 = %.1f)\n\n",
                bound, flip_th / 2.0);

    // Unprotected baseline first, then Mithril.
    trackers::SchemeSpec none = scheme;
    none.kind = trackers::SchemeKind::None;
    const sim::RunMetrics base = sim::runSystem(run, none);
    const sim::RunMetrics with = sim::runSystem(run, scheme);

    TablePrinter table({"metric", "unprotected", "mithril"});
    table.beginRow().cell("aggregate IPC").num(base.aggIpc, 3)
        .num(with.aggIpc, 3);
    table.beginRow().cell("relative perf (%)").num(100.0, 2)
        .num(sim::relativePerf(with, base), 2);
    table.beginRow().cell("dynamic energy (uJ)")
        .num(base.energyPj / 1e6, 2).num(with.energyPj / 1e6, 2);
    table.beginRow().cell("ACTs").intCell(
        static_cast<long long>(base.acts))
        .intCell(static_cast<long long>(with.acts));
    table.beginRow().cell("RFM commands").intCell(0)
        .intCell(static_cast<long long>(with.rfmIssued));
    table.beginRow().cell("preventive refreshes").intCell(0)
        .intCell(static_cast<long long>(with.preventiveRefreshes));
    table.beginRow().cell("max victim disturbance")
        .num(base.maxDisturbance, 0).num(with.maxDisturbance, 0);
    table.beginRow().cell("bit flips (ground truth)")
        .intCell(static_cast<long long>(base.bitFlips))
        .intCell(static_cast<long long>(with.bitFlips));
    std::printf("%s\n", table.str().c_str());

    if (with.bitFlips == 0 && with.maxDisturbance < flip_th) {
        std::printf("verdict: Mithril kept every victim below "
                    "FlipTH=%u (max disturbance %.0f)\n",
                    flip_th, with.maxDisturbance);
    } else {
        std::printf("verdict: PROTECTION FAILED — %llu bit flips\n",
                    static_cast<unsigned long long>(with.bitFlips));
        return 1;
    }
    return 0;
}
