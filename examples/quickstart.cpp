/**
 * @file
 * Quickstart: build a Table III system protected by Mithril, run a
 * memory-intensive 16-core workload plus one double-sided Row Hammer
 * attacker, and print performance, energy, protection activity, and
 * the ground-truth safety verdict. The whole experiment is ONE
 * ExperimentSpec parsed from the command line.
 *
 * Usage: quickstart [flip=6250] [rfm=128] [ad=200]
 *                   [workload=mix-high] [instr=200000] [cores=16]
 *                   [attack=double-sided] [scheme=mithril] ...
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/table_printer.hh"
#include "core/bounds.hh"
#include "sim/experiment.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    if (!params.has("attack"))
        params.set("attack", "double-sided");
    if (!params.has("rfm"))
        params.set("rfm", "128");
    sim::ExperimentSpec spec = sim::ExperimentSpec::fromParams(params);

    std::printf("Mithril quickstart\n");
    std::printf("  spec: %s\n", spec.describe().c_str());
    const double bound = core::theorem2Bound(spec.sys.timing, 512,
                                             spec.rfmTh, spec.adTh);
    std::printf("  (Theorem 2 bound at Nentry=512: M' = %.1f, "
                "FlipTH/2 = %.1f)\n\n",
                bound, spec.flipTh / 2.0);

    // Unprotected baseline first, then the requested scheme.
    sim::ExperimentSpec none = spec;
    none.scheme = "none";
    const sim::RunMetrics base = bench::runOrDie(none);
    const sim::RunMetrics with = bench::runOrDie(spec);

    TablePrinter table({"metric", "unprotected", spec.scheme});
    table.beginRow().cell("aggregate IPC").num(base.aggIpc, 3)
        .num(with.aggIpc, 3);
    table.beginRow().cell("relative perf (%)").num(100.0, 2)
        .num(sim::relativePerf(with, base), 2);
    table.beginRow().cell("dynamic energy (uJ)")
        .num(base.energyPj / 1e6, 2).num(with.energyPj / 1e6, 2);
    table.beginRow().cell("ACTs").intCell(
        static_cast<long long>(base.acts))
        .intCell(static_cast<long long>(with.acts));
    table.beginRow().cell("RFM commands").intCell(0)
        .intCell(static_cast<long long>(with.rfmIssued));
    table.beginRow().cell("preventive refreshes").intCell(0)
        .intCell(static_cast<long long>(with.preventiveRefreshes));
    table.beginRow().cell("max victim disturbance")
        .num(base.maxDisturbance, 0).num(with.maxDisturbance, 0);
    table.beginRow().cell("bit flips (ground truth)")
        .intCell(static_cast<long long>(base.bitFlips))
        .intCell(static_cast<long long>(with.bitFlips));
    std::printf("%s\n", table.str().c_str());

    if (with.bitFlips == 0 && with.maxDisturbance < spec.flipTh) {
        std::printf("verdict: %s kept every victim below "
                    "FlipTH=%u (max disturbance %.0f)\n",
                    spec.scheme.c_str(), spec.flipTh,
                    with.maxDisturbance);
    } else {
        std::printf("verdict: PROTECTION FAILED — %llu bit flips\n",
                    static_cast<unsigned long long>(with.bitFlips));
        return 1;
    }
    return 0;
}
