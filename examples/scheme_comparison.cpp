/**
 * @file
 * Scheme comparison: run every protection scheme on one workload (full
 * system simulation) and print performance, energy, protection
 * activity, and area side by side — a miniature of the paper's
 * Figures 10/11 for a single FlipTH.
 *
 * Usage: scheme_comparison [flip_th=6250] [workload=mix-high]
 *                          [cores=8] [instr=100000]
 *                          [attack=none|double|multi]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table_printer.hh"
#include "sim/experiment.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    const auto flip_th =
        static_cast<std::uint32_t>(params.getUint("flip_th", 6250));

    sim::RunConfig run;
    run.workload =
        sim::workloadFromName(params.getString("workload", "mix-high"));
    run.cores = static_cast<std::uint32_t>(params.getUint("cores", 8));
    run.instrPerCore = params.getUint("instr", 100000);
    const std::string attack = params.getString("attack", "none");
    if (attack == "double")
        run.attack = sim::AttackKind::DoubleSided;
    else if (attack == "multi")
        run.attack = sim::AttackKind::MultiSided;
    else if (attack != "none")
        fatal("unknown attack: %s", attack.c_str());

    std::printf("Scheme comparison: %s, %u cores, %llu instr/core, "
                "FlipTH %u, attack=%s\n\n",
                sim::workloadName(run.workload).c_str(), run.cores,
                static_cast<unsigned long long>(run.instrPerCore),
                flip_th, attack.c_str());

    trackers::SchemeSpec none;
    none.kind = trackers::SchemeKind::None;
    none.flipTh = flip_th;
    const sim::RunMetrics base = sim::runSystem(run, none);

    TablePrinter table({"scheme", "rel perf (%)", "energy ovh (%)",
                        "prev refreshes", "RFMs", "throttles",
                        "table KB", "max disturb", "flips"});
    table.beginRow()
        .cell("(unprotected)")
        .num(100.0, 2)
        .num(0.0, 2)
        .intCell(0)
        .intCell(0)
        .intCell(0)
        .num(0.0, 2)
        .num(base.maxDisturbance, 0)
        .intCell(static_cast<long long>(base.bitFlips));

    const trackers::SchemeKind kinds[] = {
        trackers::SchemeKind::Mithril,
        trackers::SchemeKind::MithrilPlus,
        trackers::SchemeKind::Parfm,
        trackers::SchemeKind::BlockHammer,
        trackers::SchemeKind::Para,
        trackers::SchemeKind::Graphene,
        trackers::SchemeKind::Twice,
        trackers::SchemeKind::Cbt,
    };
    for (trackers::SchemeKind kind : kinds) {
        trackers::SchemeSpec spec;
        spec.kind = kind;
        spec.flipTh = flip_th;
        const sim::RunMetrics m = sim::runSystem(run, spec);
        table.beginRow()
            .cell(trackers::schemeName(kind))
            .num(sim::relativePerf(m, base), 2)
            .num(sim::energyOverheadPct(m, base), 2)
            .intCell(static_cast<long long>(m.preventiveRefreshes))
            .intCell(static_cast<long long>(m.rfmIssued))
            .intCell(static_cast<long long>(m.throttleStalls))
            .num(m.trackerBytesPerBank / 1024.0, 2)
            .num(m.maxDisturbance, 0)
            .intCell(static_cast<long long>(m.bitFlips));
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
