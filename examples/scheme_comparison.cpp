/**
 * @file
 * Scheme comparison: run every registered protection scheme on one
 * workload (full system simulation) and print performance, energy,
 * protection activity, and area side by side — a miniature of the
 * paper's Figures 10/11 for a single FlipTH. The scheme list comes
 * straight from the registry, so a newly registered scheme shows up
 * here without touching this file.
 *
 * Usage: scheme_comparison [flip=6250] [workload=mix-high]
 *                          [cores=8] [instr=100000]
 *                          [attack=none|double-sided|multi-sided|...]
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/table_printer.hh"
#include "registry/scheme_registry.hh"
#include "sim/experiment.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    if (!params.has("cores"))
        params.set("cores", "8");
    if (!params.has("instr"))
        params.set("instr", "100000");
    sim::ExperimentSpec spec = sim::ExperimentSpec::fromParams(params);

    std::printf("Scheme comparison: %s, %u cores, %llu instr/core, "
                "FlipTH %u, attack=%s\n\n",
                spec.workload.c_str(), spec.cores,
                static_cast<unsigned long long>(spec.instrPerCore),
                spec.flipTh, spec.attack.c_str());

    sim::ExperimentSpec none = spec;
    none.scheme = "none";
    const sim::RunMetrics base = bench::runOrDie(none);

    TablePrinter table({"scheme", "rel perf (%)", "energy ovh (%)",
                        "prev refreshes", "RFMs", "throttles",
                        "table KB", "max disturb", "flips"});
    table.beginRow()
        .cell("(unprotected)")
        .num(100.0, 2)
        .num(0.0, 2)
        .intCell(0)
        .intCell(0)
        .intCell(0)
        .num(0.0, 2)
        .num(base.maxDisturbance, 0)
        .intCell(static_cast<long long>(base.bitFlips));

    // scheme= narrows the table to one scheme; default is all.
    std::vector<std::string> schemes;
    if (params.has("scheme"))
        schemes.push_back(spec.scheme);
    else
        schemes = registry::schemeRegistry().names();

    for (const std::string &scheme : schemes) {
        if (scheme == "none")
            continue;
        sim::ExperimentSpec run = spec;
        run.scheme = scheme;
        const sim::RunMetrics m = bench::runOrDie(run);
        table.beginRow()
            .cell(registry::schemeDisplay(scheme))
            .num(sim::relativePerf(m, base), 2)
            .num(sim::energyOverheadPct(m, base), 2)
            .intCell(static_cast<long long>(m.preventiveRefreshes))
            .intCell(static_cast<long long>(m.rfmIssued))
            .intCell(static_cast<long long>(m.throttleStalls))
            .num(m.trackerBytesPerBank / 1024.0, 2)
            .num(m.maxDisturbance, 0)
            .intCell(static_cast<long long>(m.bitFlips));
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
