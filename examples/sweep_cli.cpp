/**
 * @file
 * Run an arbitrary experiment sweep from the command line — no new
 * binary needed for a new grid. The cartesian product of `schemes=`,
 * `flip=`, `rfm=`, `workloads=`, and `attacks=` expands into jobs
 * that the work-stealing runner executes in parallel; results go to
 * an aligned table on stdout and optionally to JSON/CSV artifacts.
 * Every axis resolves through the scheme/workload/attack registries,
 * so user-registered entries sweep exactly like the built-ins, and
 * `--list` prints what is available.
 *
 * With `sources=` the matching jobs skip the System build entirely
 * and drive the max-rate sharded ActStream engine instead: a
 * scheme x source (x shards) grid runs every registered tracker
 * against trace replays or replicated attack patterns at engine
 * speed, parallel at two levels (jobs across the pool, bank shards
 * inside a job reusing the same pool).
 *
 * `record=PATH` captures the (single) job's ACT stream as a
 * mithril.acttrace.v1 file; `sources=act-trace trace=PATH` replays
 * it. Capture-once-replay-many is two invocations: one recording
 * System job, then an engine grid over every scheme (see README).
 *
 * Examples:
 *
 *   sweep_cli --list schemes
 *   sweep_cli schemes=mithril,parfm flip=50000,6250 workloads=mix-high
 *   sweep_cli schemes=mithril flip=6250 workloads=mix-high,mt-fft \
 *             attacks=none,multi-sided baseline=1 jobs=8 json=out.json
 *   sweep_cli schemes=blockhammer attacks=cbf-pollution cores=4 \
 *             instr=20000 seed-policy=per-job csv=out.csv
 *   sweep_cli schemes=mithril,graphene,para sources=attack \
 *             attacks=multi-sided acts=2000000 shards=4 jobs=8
 *   sweep_cli schemes=none attacks=multi-sided record=run.acttrace
 *   sweep_cli schemes=mithril,graphene,para,cbt,twice \
 *             sources=act-trace trace=run.acttrace jobs=8
 *   sweep_cli schemes=mithril,graphene sources=act-trace \
 *             trace=corpus.acttrace \
 *             trace-pipeline='merge:t0.acttrace,t1.acttrace|splice:attack=multi-sided,at=1000000'
 *
 * Knobs: cores= instr= seed= ad= warmup= baseline=0/1 blast-radius=
 *        acts=N (engine ACT budget with sources=)
 *        record=PATH (capture the single job's ACT stream)
 *        trace-pipeline=SPEC (compose the trace= corpus once before
 *        the sweep; ops via --list trace-ops, or trace_cli)
 *        seed-policy=shared|per-job jobs=N progress=0/1
 *        table=0/1 json=PATH csv=PATH
 *        plus any parameter a selected registry entry declares
 *        (e.g. victims= with attacks=multi-sided, trace= with
 *        sources=act-trace).
 *
 * Resilience (see README "Resilience"):
 *        journal=PATH (crash-safe per-job checkpoint journal)
 *        resume=0/1 (skip journaled jobs; artifacts stay
 *        byte-identical to an uninterrupted run)
 *        job-timeout=SECONDS (per-job watchdog; hung jobs become
 *        TIMEOUT rows) retries=N (deterministic re-attempts with
 *        exponential backoff) strict=0/1 or --strict (fail fast:
 *        skip everything after the first non-OK job)
 *        failpoints=SPEC (fault injection; --list failpoints)
 *
 * Exit status: 0 only when every job ended OK; 1 when any job
 * FAILED, timed out, or was skipped, with a per-status summary line
 * on stderr either way.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "registry/listing.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/sweep_spec.hh"
#include "runner/thread_pool.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    const ParamSet params = ParamSet::fromArgs(argc, argv);

    bool strict_flag = false;
    if (!params.positional().empty() &&
        params.positional().front() == "--list") {
        const std::string what = params.positional().size() > 1
                                     ? params.positional()[1]
                                     : "all";
        try {
            registry::listRegistries(std::cout, what);
        } catch (const registry::SpecError &err) {
            fatal("%s", err.what());
        }
        return 0;
    }
    for (const std::string &arg : params.positional()) {
        if (arg == "--strict") {
            strict_flag = true;
            continue;
        }
        fatal("unexpected argument '%s': all knobs are key=value "
              "(or --list [schemes|workloads|attacks|sources|"
              "trace-ops|failpoints], or --strict)",
              arg.c_str());
    }

    const runner::SweepSpec spec = runner::SweepSpec::fromParams(
        params, {"jobs", "progress", "table", "json", "csv",
                 "journal", "resume", "strict", "job-timeout",
                 "retries"});

    runner::RunnerOptions options;
    options.jobs = static_cast<unsigned>(
        params.getUint("jobs", runner::defaultThreadCount()));
    options.progress = params.getBool("progress", true);
    options.journal = params.getString("journal", "");
    options.resume = params.getBool("resume", false);
    options.strict = strict_flag || params.getBool("strict", false);
    options.jobTimeout = params.getDouble("job-timeout", 0.0);
    options.retries = static_cast<unsigned>(
        params.getUint("retries", 0));

    std::fprintf(stderr, "sweep: %zu jobs on %u workers\n",
                 spec.jobCount(),
                 options.jobs == 0 ? runner::defaultThreadCount()
                                   : options.jobs);

    const runner::SweepRunner run(options);
    runner::SweepResult result;
    try {
        result = run.run(spec);
    } catch (const registry::SpecError &err) {
        // Config-level resilience errors: resume without a journal,
        // a journal from a different sweep, an unknown failpoint.
        fatal("%s", err.what());
    }

    if (params.getBool("table", true))
        runner::TableSink().write(result, std::cout);

    bench::writeArtifacts(params.getString("json", ""),
                          params.getString("csv", ""), result);

    std::fprintf(stderr, "sweep: %s\n",
                 result.statusSummary().c_str());
    return result.failedCount() ? 1 : 0;
}
