/**
 * @file
 * Telemetry inspector: run one experiment with every telemetry
 * collector enabled and dump what it observed — the merged metric
 * sheet, the per-kind mitigation-event totals, and the bounded-memory
 * ACT heatmap (region tables per bank).
 *
 *   telemetry_cli scheme=mithril source=attack attack=multi-sided \
 *       acts=50000 shards=4
 *
 * Any ExperimentSpec key is accepted. Engine runs (source=) get the
 * full dump including the heatmap region tables; System runs print
 * the flattened metric sheet the sweep sinks would emit. Pass
 * trace-events=PATH to also write the Chrome trace-event JSON
 * (loadable at ui.perfetto.dev). Everything printed is deterministic
 * at any shard/thread count.
 */

#include <cstdio>
#include <memory>

#include "common/config.hh"
#include "common/logging.hh"
#include "engine/sharded_engine.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"
#include "telemetry/chrome_trace.hh"

using namespace mithril;

namespace
{

/** Engine-path dump: build the sharded engine directly (the same
 *  configuration runExperiment uses) so the merged heatmap and event
 *  stream are accessible, not just the flattened sheet. */
int
runEngine(const sim::ExperimentSpec &spec)
{
    const sim::SystemConfig &sys = spec.sys;
    const ParamSet params = spec.toParams();
    const registry::SchemeContext scheme_ctx{sys.timing,
                                             sys.geometry};

    engine::ShardedEngineConfig cfg;
    cfg.engine.timing = sys.timing;
    cfg.engine.geometry = sys.geometry;
    cfg.engine.flipTh = spec.flipTh;
    cfg.engine.blastRadius = spec.blastRadius;
    cfg.shards = spec.shards;
    cfg.telemetry.metrics = true;
    cfg.telemetry.events = true;
    cfg.telemetry.eventCapacityPerBank = spec.traceCapacity;
    cfg.telemetry.heatmap = true;
    cfg.telemetry.heatmapRegionBudget = spec.heatmapRegions;

    std::unique_ptr<runner::ThreadPool> pool;
    if (spec.threads > 1) {
        pool = std::make_unique<runner::ThreadPool>(spec.threads);
        cfg.pool = pool.get();
    }

    engine::ShardedActStreamEngine eng(cfg, [&] {
        return registry::makeScheme(spec.scheme, params, scheme_ctx);
    });
    const registry::SourceContext source_ctx{
        sys.timing, sys.geometry, spec.flipTh, spec.seed};
    eng.run(
        [&] {
            return registry::makeActSource(spec.source, params,
                                           source_ctx);
        },
        spec.engineActs);

    std::printf("== metric sheet (merged, %u shards) ==\n%s",
                eng.shardCount(),
                eng.telemetrySheet().dump().c_str());

    const std::vector<telemetry::TraceEvent> events =
        eng.mergedEvents();
    std::printf("\n== mitigation events (%zu retained) ==\n",
                events.size());
    for (std::size_t k = 0; k < telemetry::kEventKindCount; ++k) {
        std::uint64_t n = 0;
        for (const telemetry::TraceEvent &e : events) {
            if (e.kind == static_cast<telemetry::EventKind>(k))
                ++n;
        }
        if (n > 0)
            std::printf("%-16s %llu\n",
                        telemetry::eventKindName(
                            static_cast<telemetry::EventKind>(k)),
                        static_cast<unsigned long long>(n));
    }
    if (!spec.traceEvents.empty()) {
        telemetry::writeChromeTraceFile(spec.traceEvents, events,
                                        spec.scheme, eng.numBanks());
        std::fprintf(stderr, "wrote %s\n", spec.traceEvents.c_str());
    }

    std::printf("\n== ACT heatmap (budget %u regions/bank) ==\n%s",
                spec.heatmapRegions,
                eng.mergedHeatmap().dump().c_str());
    return 0;
}

/** System-path dump: run through runExperiment (which owns the
 *  controller/oracle/tracker taps) and print the flattened sheet. */
int
runSystem(sim::ExperimentSpec spec)
{
    spec.telemetry = true;
    const sim::RunMetrics m = sim::runExperiment(spec);
    std::printf("== metric sheet (flattened) ==\n");
    for (const auto &[name, value] : m.telemetry)
        std::printf("%-32s %.10g\n", name.c_str(), value);
    if (!spec.traceEvents.empty())
        std::fprintf(stderr, "wrote %s\n", spec.traceEvents.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    // Telemetry collection is this tool's whole point; the knob is
    // implied so the command line stays short.
    params.set("telemetry", "1");
    const sim::ExperimentSpec spec =
        sim::ExperimentSpec::fromParams(params);
    try {
        return spec.engineRun() ? runEngine(spec) : runSystem(spec);
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    }
    return 1;
}
