/**
 * @file
 * Compose captured ACT traces from the command line: run a trace-op
 * pipeline and materialize the result as a mithril.acttrace.v1 file.
 * This is the corpus factory — capture tenant traces once (record=),
 * then merge/remap/dilate/splice/slice them into multi-tenant
 * replay corpora that sweep_cli drives through every scheme.
 *
 * Usage:
 *
 *   trace_cli --list
 *   trace_cli out=PATH pipeline=SPEC [seed=N]
 *
 * The pipeline spec is stages separated by '|'; a stage is
 * `op[:arg,arg,...]` where `key=value` args are the op's declared
 * parameters and anything else is an input trace path. No whitespace
 * anywhere — the spec is one shell word.
 *
 * Examples:
 *
 *   trace_cli out=pair.acttrace \
 *     pipeline=merge:t0.acttrace,t1.acttrace
 *   trace_cli out=corpus.acttrace \
 *     pipeline='merge:t0.acttrace,t1.acttrace|remap:bank-rotate=4|splice:attack=multi-sided,at=1000000,burst-acts=50000|slice:to=2000000'
 */

#include <iostream>

#include "common/config.hh"
#include "common/logging.hh"
#include "registry/listing.hh"
#include "trace/pipeline.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    const ParamSet params = ParamSet::fromArgs(argc, argv);

    if (!params.positional().empty() &&
        params.positional().front() == "--list") {
        try {
            registry::listRegistries(std::cout, "trace-ops");
        } catch (const registry::SpecError &err) {
            fatal("%s", err.what());
        }
        return 0;
    }
    if (!params.positional().empty())
        fatal("unexpected argument '%s': knobs are out=PATH "
              "pipeline=SPEC [seed=N] (or --list)",
              params.positional().front().c_str());

    const std::string out = params.getString("out", "");
    const std::string pipeline = params.getString("pipeline", "");
    if (out.empty() || pipeline.empty())
        fatal("usage: trace_cli out=PATH pipeline=SPEC [seed=N] "
              "(or trace_cli --list for the registered ops)");
    const std::uint64_t seed = params.getUint("seed", 42);

    try {
        const engine::ActTraceInfo info =
            trace::materializePipeline(pipeline, out, seed);
        std::cout << info.describe();
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    } catch (const std::exception &err) {
        // Anything else (I/O, bad_alloc) still dies with one line
        // and a nonzero exit, never a raw terminate().
        fatal("%s", err.what());
    }
    return 0;
}
