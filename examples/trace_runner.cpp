/**
 * @file
 * Trace runner: drive the full system from trace files — the
 * Ramulator-style workflow for users with their own (converted)
 * traces.
 *
 * Usage:
 *   trace_runner trace=<file> [trace2=<file> ...] [scheme=mithril]
 *                [flip_th=6250] [loop=0] [instr=0]
 *
 * With no trace argument it records a demo trace from the built-in
 * lbm-like generator first and then runs it, so the binary is
 * self-contained.
 *
 * Trace format (one record per line): `<gap> <hex addr> <R|W> [U]`.
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"
#include "registry/scheme_registry.hh"
#include "sim/system.hh"
#include "workload/spec_like.hh"
#include "workload/trace_file.hh"

using namespace mithril;

int
main(int argc, char **argv)
{
    ParamSet params = ParamSet::fromArgs(argc, argv);
    const auto flip_th =
        static_cast<std::uint32_t>(params.getUint("flip_th", 6250));
    const bool loop = params.getBool("loop", false);
    const std::uint64_t instr = params.getUint("instr", 0);

    std::vector<std::string> files;
    if (params.has("trace"))
        files.push_back(params.getString("trace"));
    for (int i = 2; i < 17; ++i) {
        const std::string key = "trace" + std::to_string(i);
        if (params.has(key))
            files.push_back(params.getString(key));
    }
    if (files.empty()) {
        // Self-contained demo: record a synthetic trace and run it.
        const std::string demo = "/tmp/mithril_demo.trace";
        workload::SyntheticParams sp;
        sp.footprint = 64ull << 20;
        sp.meanGap = 28.0;
        sp.seed = 9;
        workload::StreamSweepGen gen(sp);
        const std::size_t n = workload::recordTrace(gen, 20000, demo);
        std::printf("no trace given; recorded %zu demo records to "
                    "%s\n",
                    n, demo.c_str());
        files.push_back(demo);
    }

    registry::SchemeKnobs knobs;
    knobs.flipTh = flip_th;

    sim::SystemConfig cfg;
    cfg.flipTh = flip_th;
    const std::string scheme = params.getString("scheme", "mithril");
    const ParamSet scheme_params = knobs.toParams();
    try {
        // Probe the name once so a typo fails before the System (and
        // its per-channel tracker instances) is built.
        registry::makeScheme(scheme, scheme_params,
                             {cfg.timing, cfg.geometry});
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    }
    sim::System system(cfg, [&] {
        return registry::makeScheme(scheme, scheme_params,
                                    {cfg.timing, cfg.geometry});
    });

    for (const auto &file : files) {
        cpu::CoreParams cp;
        cp.instrBudget = instr ? instr : ~0ull;
        system.addCore(cp, workload::loadTraceFile(file, loop));
        std::printf("core %zu <- %s\n", system.cores().size() - 1,
                    file.c_str());
    }

    system.run();

    const mc::ControllerStats stats = system.stats();
    TablePrinter table({"metric", "value"});
    table.beginRow().cell("simulated time (us)").num(
        tickToNs(system.now()) / 1000.0, 1);
    table.beginRow().cell("aggregate IPC").num(system.aggregateIpc(),
                                               3);
    table.beginRow().cell("reads / writes")
        .cell(std::to_string(stats.reads) + " / " +
              std::to_string(stats.writes));
    table.beginRow().cell("row hit rate (%)").num(
        100.0 * static_cast<double>(stats.rowHits) /
            static_cast<double>(
                std::max<std::uint64_t>(1, stats.rowHits +
                                               stats.rowMisses)),
        1);
    table.beginRow().cell("avg read latency (ns)").num(
        stats.avgReadLatencyNs(), 1);
    table.beginRow().cell("p95 read latency (ns)").num(
        stats.readLatencyNs.percentile(0.95), 0);
    table.beginRow().cell("RFM commands").intCell(
        static_cast<long long>(stats.rfmIssued));
    table.beginRow().cell("preventive refreshes").intCell(
        static_cast<long long>(system.preventiveCount() +
                               stats.arrExecuted));
    table.beginRow().cell("dynamic energy (uJ)").num(
        system.totalEnergyPj() / 1e6, 2);
    table.beginRow().cell("max victim disturbance").num(
        system.maxDisturbanceEver(), 0);
    table.beginRow().cell("bit flips").intCell(
        static_cast<long long>(system.bitFlips()));
    std::printf("\n%s", table.str().c_str());

    if (params.getBool("dump_stats", false)) {
        StatRegistry registry;
        system.exportStats(registry);
        std::printf("\n--- full stats ---\n%s",
                    registry.dump().c_str());
    }
    return system.bitFlips() == 0 ? 0 : 1;
}
