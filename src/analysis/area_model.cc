#include "area_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/config_solver.hh"

namespace mithril::analysis
{

AreaModel::AreaModel(const dram::Timing &timing,
                     const dram::Geometry &geometry)
    : timing_(timing), geometry_(geometry),
      maxActs_(dram::maxActsPerWindow(timing)),
      rowBits_(core::ceilLog2(geometry.rowsPerBank))
{
}

std::uint64_t
AreaModel::grapheneEntries(std::uint32_t flip_th) const
{
    MITHRIL_ASSERT(flip_th >= 4);
    const std::uint64_t threshold = flip_th / 4;
    return (maxActs_ + threshold - 1) / threshold;
}

double
AreaModel::grapheneBytes(std::uint32_t flip_th) const
{
    const std::uint64_t entries = grapheneEntries(flip_th);
    // Row address + counter wide enough for the threshold + spillover.
    const std::uint32_t counter_bits =
        core::ceilLog2(flip_th / 4) + 1;
    return static_cast<double>(entries) * (rowBits_ + counter_bits) /
           8.0;
}

double
AreaModel::twiceBytes(std::uint32_t flip_th) const
{
    // Lossy counting keeps every not-yet-pruned transient; relative to
    // the CbS entry count this costs the ln(stream/entries) factor, and
    // each TWiCe entry is wider (address + count + life + valid).
    const std::uint64_t base = grapheneEntries(flip_th);
    const double factor = std::max(
        1.0, std::log(static_cast<double>(maxActs_) /
                      static_cast<double>(base)));
    const double entries = static_cast<double>(base) * factor;
    const double entry_bits = 57.0;
    return entries * entry_bits / 8.0;
}

double
AreaModel::cbtBytes(std::uint32_t flip_th) const
{
    // The original CBT provisioning scales counters inversely with the
    // per-counter threshold; 12e6/FlipTH reproduces the counter budgets
    // of the paper's configuration.
    const double counters = 12.0e6 / static_cast<double>(flip_th);
    const double bits_per_counter = 16.0;
    return counters * bits_per_counter / 8.0;
}

std::pair<std::uint32_t, std::uint32_t>
AreaModel::blockHammerConfig(std::uint32_t flip_th)
{
    // (CBF size, NBL) pairs of Section VI-A.
    if (flip_th >= 50000)
        return {1024, 17100};
    if (flip_th >= 25000)
        return {1024, 8600};
    if (flip_th >= 12500)
        return {1024, 4300};
    if (flip_th >= 6250)
        return {2048, 2100};
    if (flip_th >= 3125)
        return {4096, 1100};
    return {8192, 490};
}

double
AreaModel::blockHammerBytes(std::uint32_t flip_th) const
{
    const auto [cbf_size, nbl] = blockHammerConfig(flip_th);
    const std::uint32_t counter_bits = core::ceilLog2(nbl) + 1;
    return 2.0 * static_cast<double>(cbf_size) * counter_bits / 8.0;
}

std::optional<double>
AreaModel::mithrilBytes(std::uint32_t flip_th,
                        std::uint32_t rfm_th) const
{
    core::ConfigSolver solver(timing_, geometry_);
    auto cfg = solver.solve(flip_th, rfm_th);
    if (!cfg)
        return std::nullopt;
    return cfg->tableBytes();
}

const std::vector<std::uint32_t> &
tableIvFlipThs()
{
    static const std::vector<std::uint32_t> values = {
        50000, 25000, 12500, 6250, 3125, 1500,
    };
    return values;
}

} // namespace mithril::analysis
