/**
 * @file
 * Per-scheme counter-table sizing model (Table IV, Figure 10(e)).
 *
 * Each function returns the counter-table bytes per bank under the
 * paper's configuration rules for that scheme at the given FlipTH.
 * MC-side schemes are sized against the conservative worst case the
 * paper describes; DRAM-side schemes against the per-device reality.
 */

#ifndef MITHRIL_ANALYSIS_AREA_MODEL_HH
#define MITHRIL_ANALYSIS_AREA_MODEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dram/timing.hh"

namespace mithril::analysis
{

/** Sizing model bound to one timing/geometry preset. */
class AreaModel
{
  public:
    AreaModel(const dram::Timing &timing,
              const dram::Geometry &geometry);

    /** Graphene @ MC: CbS sized for threshold FlipTH/4 per tREFW. */
    double grapheneBytes(std::uint32_t flip_th) const;

    /** Graphene's entry count (shared with the TWiCe model). */
    std::uint64_t grapheneEntries(std::uint32_t flip_th) const;

    /** TWiCe @ buffer chip: lossy-counting table (ln-factor larger). */
    double twiceBytes(std::uint32_t flip_th) const;

    /** CBT @ MC: counter-tree budget per the original configuration. */
    double cbtBytes(std::uint32_t flip_th) const;

    /**
     * BlockHammer @ MC: dual CBFs with the paper's (CBF size, NBL)
     * pairs; counter width = ceil(log2(NBL)) + 1.
     */
    double blockHammerBytes(std::uint32_t flip_th) const;

    /** The paper's (CBF size, NBL) configuration for a FlipTH. */
    static std::pair<std::uint32_t, std::uint32_t>
    blockHammerConfig(std::uint32_t flip_th);

    /**
     * Mithril @ DRAM via the Theorem 1 solver; empty when the
     * (FlipTH, RFM_TH) point is infeasible (the '-' cells of Table IV).
     */
    std::optional<double> mithrilBytes(std::uint32_t flip_th,
                                       std::uint32_t rfm_th) const;

    /** Max ACTs a bank can absorb per tREFW (sizing denominator). */
    std::uint64_t maxActs() const { return maxActs_; }

  private:
    dram::Timing timing_;
    dram::Geometry geometry_;
    std::uint64_t maxActs_;
    std::uint32_t rowBits_;
};

/** The FlipTH values of Table IV, descending. */
const std::vector<std::uint32_t> &tableIvFlipThs();

} // namespace mithril::analysis

#endif // MITHRIL_ANALYSIS_AREA_MODEL_HH
