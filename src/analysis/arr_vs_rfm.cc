#include "arr_vs_rfm.hh"

#include "common/logging.hh"

namespace mithril::analysis
{

std::uint64_t
arrGrapheneSafeFlipTh(std::uint32_t threshold)
{
    MITHRIL_ASSERT(threshold > 0);
    // Reset doubling (x2), double-sided attack (x2), plus the ACT that
    // lands while the ARR is in flight.
    return 4ull * threshold + 1;
}

std::uint64_t
concurrentThresholdRows(const dram::Timing &timing,
                        std::uint32_t threshold)
{
    MITHRIL_ASSERT(threshold > 0);
    return dram::maxActsPerWindow(timing) / threshold;
}

std::uint64_t
rfmGrapheneSafeFlipTh(const dram::Timing &timing,
                      std::uint32_t threshold, std::uint32_t rfm_th)
{
    const std::uint64_t queue = concurrentThresholdRows(timing, threshold);
    // While the last buffered row drains, its aggressors absorb another
    // queue * RFM_TH activations on top of the ARR-era bound.
    return arrGrapheneSafeFlipTh(threshold) +
           queue * static_cast<std::uint64_t>(rfm_th);
}

} // namespace mithril::analysis
