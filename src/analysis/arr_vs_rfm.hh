/**
 * @file
 * Analytic model behind Figure 2: why the reactive ARR policy breaks
 * on the RFM interface.
 *
 * ARR-Graphene refreshes a row's victims the instant its estimated
 * count reaches the predefined threshold T, so the safe FlipTH scales
 * linearly with T. The naive RFM port instead *buffers* rows crossing T
 * and drains one per RFM command (one per RFM_TH ACTs). The attacker
 * drives Q = maxActs/T rows across T almost simultaneously; the last
 * buffered row then waits through ~Q * RFM_TH further ACTs during which
 * its aggressor keeps hammering, so the achievable disturbance — and
 * hence the lowest FlipTH the scheme can protect — is bounded below by
 * roughly Q * RFM_TH regardless of how small T is made.
 */

#ifndef MITHRIL_ANALYSIS_ARR_VS_RFM_HH
#define MITHRIL_ANALYSIS_ARR_VS_RFM_HH

#include <cstdint>

#include "dram/timing.hh"

namespace mithril::analysis
{

/**
 * Safe FlipTH of the original ARR-Graphene at predefined threshold T
 * (the linear red line of Figure 2: table reset halves the margin,
 * double-sided attack halves it again, plus the in-flight ACT).
 */
std::uint64_t arrGrapheneSafeFlipTh(std::uint32_t threshold);

/**
 * Safe FlipTH of the buffered RFM-Graphene strawman: the ARR bound
 * plus the worst-case queue-drain wait Q * RFM_TH.
 */
std::uint64_t rfmGrapheneSafeFlipTh(const dram::Timing &timing,
                                    std::uint32_t threshold,
                                    std::uint32_t rfm_th);

/**
 * Number of rows an attacker can drive across the threshold within one
 * tREFW (the "310 rows" of the paper's worked example).
 */
std::uint64_t concurrentThresholdRows(const dram::Timing &timing,
                                      std::uint32_t threshold);

} // namespace mithril::analysis

#endif // MITHRIL_ANALYSIS_ARR_VS_RFM_HH
