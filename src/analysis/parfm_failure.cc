#include "parfm_failure.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace mithril::analysis
{

namespace
{

/** Natural log of (1 - 1/R)^(F/2). */
double
logSurvive(std::uint32_t flip_th, std::uint32_t rfm_th)
{
    const double half = static_cast<double>(flip_th) / 2.0;
    return half * std::log1p(-1.0 / static_cast<double>(rfm_th));
}

} // namespace

double
parfmRowFailLog10(const dram::Timing &timing, std::uint32_t flip_th,
                  std::uint32_t rfm_th)
{
    MITHRIL_ASSERT(flip_th >= 2 && rfm_th >= 2);
    const std::uint64_t w = dram::rfmIntervalsPerWindow(timing, rfm_th);
    const std::uint64_t half =
        static_cast<std::uint64_t>(flip_th) / 2;
    const double ln10 = std::log(10.0);

    if (w <= half) {
        // One ACT per interval cannot reach FlipTH/2 inside the
        // window; the attacker's best move is the smallest j > 1 ACTs
        // per interval that fits (cost-effectiveness, Equation 5,
        // favours the smallest feasible j). Survival per interval is
        // then (1 - j/R) across ceil(F/(2j)) sampled intervals.
        const std::uint64_t j = (half + w - 1) / w;
        if (j >= rfm_th)
            return -400.0;  // Sampled with certainty every interval.
        const std::uint64_t samplings = (half + j - 1) / j;
        const double ln_q =
            static_cast<double>(samplings) *
            std::log1p(-static_cast<double>(j) /
                       static_cast<double>(rfm_th));
        // Union bound over start positions inside the window.
        const double ln_fail =
            std::log(static_cast<double>(w)) + ln_q;
        return std::max(-400.0, std::min(0.0, ln_fail / ln10));
    }

    const double ln_q = logSurvive(flip_th, rfm_th);

    if (ln_q < -600.0) {
        // Recurrence term underflows; use the tight upper bound
        // Fail(1) <= (W - F/2) * q / R computed in log space.
        const double ln_fail =
            std::log(static_cast<double>(w - half)) -
            std::log(static_cast<double>(rfm_th)) + ln_q;
        return ln_fail / ln10;
    }

    // Exact recurrence in double precision.
    const double q = std::exp(ln_q);
    const double rate = q / static_cast<double>(rfm_th);
    std::vector<double> p(w + 1, 0.0);
    p[half] = q;
    for (std::uint64_t i = half + 1; i <= w; ++i) {
        const std::uint64_t back = i - half - 1;
        p[i] = p[i - 1] + rate * (1.0 - p[back]);
        p[i] = std::min(p[i], 1.0);
    }
    const double fail = p[w];
    if (fail <= 0.0)
        return -400.0;
    return std::log10(fail);
}

double
parfmBankFailLog10(const dram::Timing &timing, std::uint32_t flip_th,
                   std::uint32_t rfm_th)
{
    // Union bound: RFM_TH simultaneously attacked rows per bank.
    const double row = parfmRowFailLog10(timing, flip_th, rfm_th);
    return std::min(0.0,
                    row + std::log10(static_cast<double>(rfm_th)));
}

double
parfmSystemFailLog10(const dram::Timing &timing, std::uint32_t flip_th,
                     std::uint32_t rfm_th, std::uint32_t n_banks)
{
    MITHRIL_ASSERT(n_banks >= 1);
    const double bank = parfmBankFailLog10(timing, flip_th, rfm_th);
    if (bank > -12.0) {
        // Large enough to evaluate exactly.
        const double f = std::pow(10.0, bank);
        const double sys =
            1.0 - std::pow(1.0 - f, static_cast<double>(n_banks));
        return sys > 0.0 ? std::log10(sys) : -400.0;
    }
    // 1 - (1-f)^n ~= n*f for tiny f.
    return std::min(0.0,
                    bank + std::log10(static_cast<double>(n_banks)));
}

std::uint32_t
parfmMaxRfmTh(const dram::Timing &timing, std::uint32_t flip_th,
              double target_log10, std::uint32_t n_banks)
{
    // System failure grows monotonically with RFM_TH (fewer samples per
    // ACT), so binary search the largest safe value.
    std::uint32_t lo = 2;
    std::uint32_t hi = 4096;
    if (parfmSystemFailLog10(timing, flip_th, lo, n_banks) >
        target_log10) {
        return 0;
    }
    while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo + 1) / 2;
        const double fail =
            parfmSystemFailLog10(timing, flip_th, mid, n_banks);
        if (fail <= target_log10)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

double
parfmCostEffectiveness(std::uint32_t rfm_th, std::uint32_t j)
{
    MITHRIL_ASSERT(j >= 1 && j <= rfm_th);
    const double frac = static_cast<double>(j) /
                        static_cast<double>(rfm_th);
    return std::pow(1.0 - frac, 1.0 / static_cast<double>(j));
}

} // namespace mithril::analysis
