/**
 * @file
 * PARFM failure-probability analysis (Appendix C).
 *
 * Under PARFM the attacker's most cost-effective pattern activates
 * RFM_TH distinct rows once per RFM interval (Equation 5 is
 * monotonically decreasing in per-interval ACTs). A target row fails
 * when it survives FlipTH/2 consecutive RFM samplings without being
 * picked, captured by the recurrence
 *
 *   P[i] = P[i-1] + (1/R)(1 - 1/R)^(F/2) (1 - P[i - F/2 - 1])
 *
 * with R = RFM_TH and F = FlipTH, P[i] = 0 for i < F/2 and
 * P[F/2] = (1 - 1/R)^(F/2). Bank failure is bounded by
 * R * Fail(1) (first term of the inclusion-exclusion series) and
 * system failure by 1 - (1 - Fail_bank)^Nbanks.
 *
 * Because (1-1/R)^(F/2) underflows double precision for small R, the
 * implementation works in log space where needed.
 */

#ifndef MITHRIL_ANALYSIS_PARFM_FAILURE_HH
#define MITHRIL_ANALYSIS_PARFM_FAILURE_HH

#include <cstdint>

#include "dram/timing.hh"

namespace mithril::analysis
{

/** log10 of the single-row failure probability within one tREFW. */
double parfmRowFailLog10(const dram::Timing &timing,
                         std::uint32_t flip_th, std::uint32_t rfm_th);

/** log10 of the per-bank failure probability (union bound over the
 *  RFM_TH attacked rows). */
double parfmBankFailLog10(const dram::Timing &timing,
                          std::uint32_t flip_th, std::uint32_t rfm_th);

/** log10 of the system failure probability for n_banks banks attacked
 *  simultaneously (22 in the paper's tFAW-limited system). */
double parfmSystemFailLog10(const dram::Timing &timing,
                            std::uint32_t flip_th, std::uint32_t rfm_th,
                            std::uint32_t n_banks);

/**
 * Largest RFM_TH whose system failure probability stays below
 * 10^target_log10 (the paper uses -15). Returns 0 when even RFM_TH = 1
 * cannot meet the target.
 */
std::uint32_t parfmMaxRfmTh(const dram::Timing &timing,
                            std::uint32_t flip_th,
                            double target_log10 = -15.0,
                            std::uint32_t n_banks = 22);

/**
 * Equation 5: attacker cost-effectiveness of putting j ACTs on one row
 * per interval; monotonically decreasing in j, which justifies the
 * 1-ACT-per-row worst case.
 */
double parfmCostEffectiveness(std::uint32_t rfm_th, std::uint32_t j);

} // namespace mithril::analysis

#endif // MITHRIL_ANALYSIS_PARFM_FAILURE_HH
