#include "config.hh"

#include <cstdlib>

#include "logging.hh"

namespace mithril
{

ParamSet
ParamSet::fromArgs(int argc, const char *const *argv)
{
    ParamSet params;
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        auto eq = token.find('=');
        if (eq == std::string::npos) {
            params.positional_.push_back(token);
        } else {
            params.set(token.substr(0, eq), token.substr(eq + 1));
        }
    }
    return params;
}

void
ParamSet::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
ParamSet::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
ParamSet::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
ParamSet::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

std::uint64_t
ParamSet::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not an unsigned integer", key.c_str(),
              it->second.c_str());
    return v;
}

double
ParamSet::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

bool
ParamSet::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("parameter %s=%s is not a boolean", key.c_str(), v.c_str());
    return def;
}

std::vector<std::string>
ParamSet::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

} // namespace mithril
