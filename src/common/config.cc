#include "config.hh"

#include <cstdlib>
#include <sstream>

#include "logging.hh"

namespace mithril
{

ParamSet
ParamSet::fromArgs(int argc, const char *const *argv)
{
    std::vector<std::string> tokens;
    tokens.reserve(argc > 1 ? argc - 1 : 0);
    for (int i = 1; i < argc; ++i)
        tokens.emplace_back(argv[i]);
    return fromTokens(tokens);
}

ParamSet
ParamSet::fromTokens(const std::vector<std::string> &tokens)
{
    ParamSet params;
    for (const std::string &token : tokens) {
        auto eq = token.find('=');
        if (eq == std::string::npos) {
            params.positional_.push_back(token);
            continue;
        }
        const std::string key = token.substr(0, eq);
        if (params.has(key))
            fatal("duplicate parameter: %s (given more than once)",
                  key.c_str());
        params.set(key, token.substr(eq + 1));
    }
    return params;
}

ParamSet
ParamSet::fromString(const std::string &text)
{
    std::vector<std::string> tokens;
    std::stringstream ss(text);
    std::string token;
    while (ss >> token)
        tokens.push_back(token);
    return fromTokens(tokens);
}

void
ParamSet::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
ParamSet::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
ParamSet::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
ParamSet::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

std::uint64_t
ParamSet::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 0);
    // strtoull silently wraps negatives; reject them explicitly.
    if (end == it->second.c_str() || *end != '\0' ||
        it->second[0] == '-')
        fatal("parameter %s=%s is not an unsigned integer", key.c_str(),
              it->second.c_str());
    return v;
}

std::uint32_t
ParamSet::getUint32(const std::string &key, std::uint32_t def) const
{
    const std::uint64_t v = getUint(key, def);
    if (v > 0xffffffffull)
        fatal("parameter %s=%llu is out of range (max %u)",
              key.c_str(), static_cast<unsigned long long>(v),
              0xffffffffu);
    return static_cast<std::uint32_t>(v);
}

double
ParamSet::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

double
ParamSet::getDoubleIn(const std::string &key, double def, double min,
                      double max) const
{
    const double v = getDouble(key, def);
    if (v < min || v > max)
        fatal("parameter %s=%g is out of range [%g, %g]", key.c_str(),
              v, min, max);
    return v;
}

bool
ParamSet::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("parameter %s=%s is not a boolean", key.c_str(), v.c_str());
    return def;
}

std::vector<std::string>
ParamSet::getStringList(const std::string &key) const
{
    std::vector<std::string> out;
    std::string token;
    std::stringstream ss(getString(key, ""));
    while (std::getline(ss, token, ',')) {
        while (!token.empty() && token.front() == ' ')
            token.erase(token.begin());
        while (!token.empty() && token.back() == ' ')
            token.pop_back();
        if (!token.empty())
            out.push_back(token);
    }
    return out;
}

std::vector<std::uint64_t>
ParamSet::getUintList(const std::string &key) const
{
    std::vector<std::uint64_t> out;
    for (const std::string &token : getStringList(key)) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(token.c_str(), &end, 0);
        // strtoull silently wraps negatives; reject them explicitly.
        if (end == token.c_str() || *end != '\0' || token[0] == '-')
            fatal("parameter %s list entry '%s' is not an unsigned "
                  "integer",
                  key.c_str(), token.c_str());
        out.push_back(v);
    }
    return out;
}

std::vector<std::string>
ParamSet::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

} // namespace mithril
