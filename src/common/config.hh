/**
 * @file
 * Simple string key/value parameter set with typed accessors, used to
 * configure experiments and example binaries from the command line.
 */

#ifndef MITHRIL_COMMON_CONFIG_HH
#define MITHRIL_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mithril
{

/**
 * A flat parameter dictionary. Accessors return the stored value parsed
 * to the requested type or the provided default when the key is absent;
 * a malformed value is a fatal (user) error.
 */
class ParamSet
{
  public:
    ParamSet() = default;

    /** Parse "key=value" tokens (e.g. CLI arguments). Unrecognized
     *  tokens without '=' are collected as positional arguments.
     *  A duplicated key is a fatal (user) error — the second value
     *  must not silently win. */
    static ParamSet fromArgs(int argc, const char *const *argv);

    /** As fromArgs, over an already-split token list. */
    static ParamSet fromTokens(const std::vector<std::string> &tokens);

    /** As fromArgs, over a whitespace-separated "k=v k=v" string —
     *  the inverse of ExperimentSpec::describe(). */
    static ParamSet fromString(const std::string &text);

    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def = 0) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def = 0) const;
    /** As getUint, but fatal when the value exceeds 32 bits instead
     *  of silently truncating at the use site. */
    std::uint32_t getUint32(const std::string &key,
                            std::uint32_t def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    /** As getDouble, but fatal when the value falls outside the
     *  inclusive [min, max] range instead of letting a nonsensical
     *  knob propagate into a run. */
    double getDoubleIn(const std::string &key, double def, double min,
                       double max) const;
    bool getBool(const std::string &key, bool def = false) const;

    /** Comma-separated list of trimmed tokens; empty/missing value
     *  yields an empty vector. */
    std::vector<std::string>
    getStringList(const std::string &key) const;

    /** Comma-separated list of unsigned integers; a malformed entry
     *  is a fatal (user) error. */
    std::vector<std::uint64_t>
    getUintList(const std::string &key) const;

    const std::vector<std::string> &positional() const { return positional_; }

    /** All keys in order, for help/diagnostic output. */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_CONFIG_HH
