#include "common/failpoint.hh"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/random.hh"
#include "registry/registry.hh"

namespace mithril::failpoint
{

// -1 = MITHRIL_FAILPOINTS not consulted yet: anyArmed() stays true
// until the first evaluation (or an explicit arm/disarm) resolves it,
// after which an unarmed process pays one relaxed load per site.
std::atomic<int> g_armedCount{-1};

namespace
{

using registry::SpecError;

struct Armed
{
    enum class Action
    {
        Error,
        Eio,
        Stall,
    };

    Action action = Action::Error;
    std::uint64_t after = 0;  //!< Evaluations that pass first.
    std::uint64_t times = 0;  //!< Max fires; 0 = unlimited.
    double prob = 1.0;        //!< Fire probability per eligible hit.
    std::uint64_t seed = 42;  //!< Seed for the prob= decision.
    std::uint64_t stallMs = 100;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
};

struct State
{
    std::mutex mutex;
    std::map<std::string, std::string> sites; //!< name -> description
    std::map<std::string, Armed> armed;
    bool envConsulted = false;
};

State &
state()
{
    static State s;
    return s;
}

std::vector<std::string>
siteNames(const State &s)
{
    std::vector<std::string> names;
    names.reserve(s.sites.size());
    for (const auto &[name, desc] : s.sites)
        names.push_back(name);
    return names;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            out.push_back(text.substr(begin));
            break;
        }
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

std::uint64_t
parseUint(const std::string &entry, const std::string &key,
          const std::string &value)
{
    try {
        std::size_t used = 0;
        const unsigned long long v = std::stoull(value, &used);
        if (used == value.size())
            return v;
    } catch (...) {
    }
    throw SpecError("failpoint entry '" + entry + "': modifier " +
                    key + "=" + value + " is not an unsigned integer");
}

/** Parse one `site:action[:key=value]...` entry into the armed map. */
void
armEntryLocked(State &s, const std::string &entry)
{
    const std::vector<std::string> tokens = split(entry, ':');
    if (tokens.empty() || tokens[0].empty())
        throw SpecError("failpoint entry '" + entry +
                        "' names no site (want site:action[:k=v]...)");
    const std::string &site = tokens[0];
    if (!s.sites.count(site)) {
        throw SpecError("unknown failpoint '" + site +
                        "'; registered failpoints: " +
                        registry::joinSorted(siteNames(s)));
    }
    if (tokens.size() < 2 || tokens[1].empty())
        throw SpecError("failpoint entry '" + entry +
                        "' names no action (want error|eio|stall)");

    Armed armed;
    const std::string &action = tokens[1];
    if (action == "error")
        armed.action = Armed::Action::Error;
    else if (action == "eio")
        armed.action = Armed::Action::Eio;
    else if (action == "stall")
        armed.action = Armed::Action::Stall;
    else
        throw SpecError("failpoint entry '" + entry +
                        "': unknown action '" + action +
                        "' (want error|eio|stall)");

    for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0)
            throw SpecError("failpoint entry '" + entry +
                            "': malformed modifier '" + tokens[i] +
                            "' (want key=value)");
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "after") {
            armed.after = parseUint(entry, key, value);
        } else if (key == "times") {
            armed.times = parseUint(entry, key, value);
        } else if (key == "seed") {
            armed.seed = parseUint(entry, key, value);
        } else if (key == "ms") {
            armed.stallMs = parseUint(entry, key, value);
        } else if (key == "prob") {
            try {
                armed.prob = std::stod(value);
            } catch (...) {
                armed.prob = -1.0;
            }
            if (armed.prob < 0.0 || armed.prob > 1.0)
                throw SpecError("failpoint entry '" + entry +
                                "': prob=" + value +
                                " is not in [0, 1]");
        } else {
            throw SpecError("failpoint entry '" + entry +
                            "': unknown modifier '" + key +
                            "' (want after|times|prob|seed|ms)");
        }
    }
    s.armed[site] = armed;
}

void
armSpecLocked(State &s, const std::string &spec)
{
    for (const std::string &entry : split(spec, ',')) {
        if (!entry.empty())
            armEntryLocked(s, entry);
    }
    g_armedCount.store(static_cast<int>(s.armed.size()),
                       std::memory_order_relaxed);
}

/** Consume MITHRIL_FAILPOINTS exactly once, lazily — after static
 *  init, so every SiteRegistrar has run and unknown names report the
 *  full candidate list. A malformed env spec is fatal (it can only
 *  come from the user). */
void
ensureEnvLocked(State &s)
{
    if (s.envConsulted)
        return;
    s.envConsulted = true;
    const char *env = std::getenv("MITHRIL_FAILPOINTS");
    if (env != nullptr && *env != '\0') {
        try {
            armSpecLocked(s, env);
        } catch (const SpecError &err) {
            fatal("MITHRIL_FAILPOINTS: %s", err.what());
        }
    }
    g_armedCount.store(static_cast<int>(s.armed.size()),
                       std::memory_order_relaxed);
}

/** Deterministic [0, 1) draw for hit `hit` of a site armed with
 *  `seed` — independent of thread schedule and host. */
double
probDraw(std::uint64_t seed, std::uint64_t hit)
{
    return static_cast<double>(deriveSeed(seed, hit) >> 11) *
           (1.0 / 9007199254740992.0); // 2^-53
}

} // namespace

SiteRegistrar::SiteRegistrar(const char *name, const char *description)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.sites.emplace(name, description).second)
        fatal("duplicate failpoint registration: %s", name);
}

void
evaluate(const char *site)
{
    Armed::Action action;
    std::uint64_t stall_ms = 0;
    {
        State &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        ensureEnvLocked(s);
        MITHRIL_ASSERT_MSG(s.sites.count(site) != 0,
                           "failpoint '%s' evaluated but never "
                           "registered", site);
        auto it = s.armed.find(site);
        if (it == s.armed.end())
            return;
        Armed &armed = it->second;
        const std::uint64_t hit = armed.hits++;
        if (hit < armed.after)
            return;
        if (armed.times != 0 && armed.fired >= armed.times)
            return;
        if (armed.prob < 1.0 &&
            probDraw(armed.seed, hit) >= armed.prob)
            return;
        ++armed.fired;
        action = armed.action;
        stall_ms = armed.stallMs;
    }
    // The action runs outside the lock: a stall must not serialize
    // every other site, and a throw must not leave the mutex held.
    switch (action) {
      case Armed::Action::Error:
        throw SpecError(std::string("failpoint '") + site +
                        "' injected failure");
      case Armed::Action::Eio:
        throw SpecError(std::string("failpoint '") + site +
                        "' injected I/O error (EIO)");
      case Armed::Action::Stall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stall_ms));
        break;
    }
}

void
armFromSpec(const std::string &spec)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    ensureEnvLocked(s);
    armSpecLocked(s, spec);
}

void
disarmAll()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envConsulted = true; // Tests own the registry from here on.
    s.armed.clear();
    g_armedCount.store(0, std::memory_order_relaxed);
}

std::uint64_t
firedCount(const std::string &site)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.armed.find(site);
    return it == s.armed.end() ? 0 : it->second.fired;
}

std::vector<Site>
sites()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<Site> out;
    out.reserve(s.sites.size());
    for (const auto &[name, description] : s.sites)
        out.push_back({name, description}); // std::map: sorted.
    return out;
}

void
listSites(std::ostream &os)
{
    const std::vector<Site> all = sites();
    os << "failpoints (" << all.size() << " registered):\n";
    for (const Site &site : all) {
        os << "  ";
        os.width(24);
        os.setf(std::ios::left, std::ios::adjustfield);
        os << site.name;
        os.width(0);
        os << site.description << "\n";
    }
}

} // namespace mithril::failpoint
