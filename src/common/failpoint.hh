/**
 * @file
 * Deterministic fault-injection layer ("failpoints") for testing the
 * resilience machinery — retries, resume, degradation — under
 * injected truncations, EIO, and stalls, without patching any code.
 *
 * Every interesting I/O or dispatch site in the codebase declares a
 * named failpoint with a file-scope `SiteRegistrar` (the same
 * string-keyed self-registration pattern as the scheme/workload/
 * attack/trace-op registries: one self-contained declaration next to
 * the site, duplicate names fatal at startup, unknown names raise a
 * SpecError listing every registered candidate) and evaluates it with
 * `MITHRIL_FAILPOINT("name")`.
 *
 * Arming is explicit and process-global: the `MITHRIL_FAILPOINTS`
 * environment variable (read lazily on the first evaluation anywhere)
 * or `armFromSpec()` (the sweep spec's `failpoints=` knob). The spec
 * grammar is comma-separated entries
 *
 *   site:action[:key=value]...
 *
 * with actions
 *
 *   error       throw registry::SpecError (a rejected-input failure)
 *   eio         throw registry::SpecError flavored as an I/O error
 *   stall       sleep `ms=` milliseconds (default 100) and continue —
 *               what a hung disk or stuck shard looks like to the
 *               job watchdog
 *
 * and modifiers
 *
 *   after=N     let the first N evaluations pass, then start firing
 *   times=N     fire at most N times (default: unlimited)
 *   prob=P      fire each eligible hit with probability P, decided by
 *               a deterministic splitmix64 hash of (seed, hit index)
 *   seed=S      the seed for prob= (default 42)
 *
 * Example: MITHRIL_FAILPOINTS='act-trace.decode:error:after=100'
 * fails the 101st trace-block decode in the process with a SpecError,
 * exactly reproducibly.
 *
 * Cost when unset: one relaxed atomic load per evaluation (the
 * counter of armed sites), so failpoints are compiled in always and
 * byte-invariant when disarmed. Sites fire on every thread; hit
 * counters are process-global and atomic under the registry lock.
 */

#ifndef MITHRIL_COMMON_FAILPOINT_HH
#define MITHRIL_COMMON_FAILPOINT_HH

#include <atomic>
#include <ostream>
#include <string>
#include <vector>

namespace mithril::failpoint
{

/** One registered injection site (name + what failing here means). */
struct Site
{
    std::string name;
    std::string description;
};

/** File-scope self-registration of one site, next to the code that
 *  evaluates it. Duplicate names are fatal at startup. */
class SiteRegistrar
{
  public:
    SiteRegistrar(const char *name, const char *description);
};

/** Number of currently armed sites; -1 before the lazy
 *  MITHRIL_FAILPOINTS env read. Internal — use anyArmed(). */
extern std::atomic<int> g_armedCount;

/** Fast gate for MITHRIL_FAILPOINT: true when any site might be
 *  armed (or the env var has not been consulted yet). */
inline bool
anyArmed()
{
    return g_armedCount.load(std::memory_order_relaxed) != 0;
}

/**
 * Evaluate the named site: no-op unless an armed entry matches, in
 * which case the entry's action runs (throwing registry::SpecError
 * for error/eio, sleeping for stall). Unregistered names are a
 * programming error (fatal), not a SpecError — the macro should only
 * name sites a SiteRegistrar declared.
 */
void evaluate(const char *site);

/**
 * Arm sites from a spec string (grammar above). Unknown site names,
 * unknown actions, and malformed modifiers throw registry::SpecError
 * listing the registered candidates. An empty spec is a no-op.
 * Re-arming a site replaces its previous entry and resets counters.
 */
void armFromSpec(const std::string &spec);

/** Disarm every site and reset all hit counters. Also suppresses a
 *  pending MITHRIL_FAILPOINTS env read (tests own the registry). */
void disarmAll();

/** Times the named site's action has fired since it was armed. */
std::uint64_t firedCount(const std::string &site);

/** Every registered site, sorted by name. */
std::vector<Site> sites();

/** Deterministic "--list failpoints" dump (name + description per
 *  line), same shape as the other registry listings. */
void listSites(std::ostream &os);

} // namespace mithril::failpoint

/** Evaluate a failpoint site; one relaxed load when nothing is
 *  armed. Place at the top of the fallible operation. */
#define MITHRIL_FAILPOINT(site)                                        \
    do {                                                               \
        if (::mithril::failpoint::anyArmed())                          \
            ::mithril::failpoint::evaluate(site);                      \
    } while (0)

#endif // MITHRIL_COMMON_FAILPOINT_HH
