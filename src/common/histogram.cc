#include "histogram.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"

namespace mithril
{

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    MITHRIL_ASSERT(hi > lo);
    MITHRIL_ASSERT(buckets > 0);
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    total_ += weight;
    sum_ += v * static_cast<double>(weight);
    if (v < lo_) {
        underflow_ += weight;
    } else if (v >= hi_) {
        overflow_ += weight;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
        counts_[idx] += weight;
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

void
Histogram::mergeFrom(const Histogram &other)
{
    MITHRIL_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                   counts_.size() == other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + static_cast<double>(i) * width_;
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double
Histogram::percentile(double frac) const
{
    if (total_ == 0)
        return lo_;
    frac = std::clamp(frac, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(frac * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return bucketLo(i) + width_;
    }
    return hi_;
}

std::string
Histogram::dump() const
{
    std::ostringstream os;
    if (underflow_)
        os << "(<" << lo_ << ") " << underflow_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << "[" << bucketLo(i) << ", " << bucketLo(i) + width_ << ") "
           << counts_[i] << "\n";
    }
    if (overflow_)
        os << "(>=" << hi_ << ") " << overflow_ << "\n";
    return os.str();
}

} // namespace mithril
