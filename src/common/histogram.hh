/**
 * @file
 * Fixed-bucket histogram for latency and count distributions.
 */

#ifndef MITHRIL_COMMON_HISTOGRAM_HH
#define MITHRIL_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mithril
{

/**
 * Linear histogram over [lo, hi) with a fixed bucket count; samples
 * outside the range land in saturating under/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);
    void reset();

    /**
     * Fold another histogram of the identical shape (same lo/hi/bucket
     * count) into this one, bucket-wise. Exact for integer weights, so
     * per-shard histograms merge to the single-shard result.
     */
    void mergeFrom(const Histogram &other);

    std::uint64_t totalSamples() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucketValue(std::size_t i) const { return counts_.at(i); }

    /** Lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

    /** Mean of all samples (bucket midpoints for in-range samples). */
    double mean() const;

    /** Value below which the given fraction of samples fall. */
    double percentile(double frac) const;

    /** Render as "[lo, hi) count" lines, skipping empty buckets. */
    std::string dump() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace mithril

#endif // MITHRIL_COMMON_HISTOGRAM_HH
