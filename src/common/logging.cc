#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace mithril
{

namespace
{

std::string *captureBuffer = nullptr;
bool throwOnFatal = false;

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn:   return "warn: ";
      case LogLevel::Fatal:  return "fatal: ";
      case LogLevel::Panic:  return "panic: ";
    }
    return "?: ";
}

void
emit(LogLevel level, const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        len = 0;

    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);

    std::string line = std::string(levelPrefix(level)) + buf.data() + "\n";
    if (captureBuffer) {
        captureBuffer->append(line);
    } else {
        std::fputs(line.c_str(), stderr);
    }
}

} // namespace

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(level, fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Panic, fmt, args);
    va_end(args);
    if (throwOnFatal)
        throw std::runtime_error("panic");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Fatal, fmt, args);
    va_end(args);
    if (throwOnFatal)
        throw std::runtime_error("fatal");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Inform, fmt, args);
    va_end(args);
}

void
setLogCapture(std::string *capture)
{
    captureBuffer = capture;
}

void
setLogThrowOnFatal(bool enable)
{
    throwOnFatal = enable;
}

} // namespace mithril
