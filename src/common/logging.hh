/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  -- internal invariant violated; aborts (simulator bug).
 * fatal()  -- user/configuration error; exits with status 1.
 * warn()   -- something questionable happened but the run continues.
 * inform() -- plain status output.
 */

#ifndef MITHRIL_COMMON_LOGGING_HH
#define MITHRIL_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mithril
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Core log sink. Formats like printf and writes to stderr (or a
 * test-installed capture buffer). Fatal exits; Panic aborts.
 */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);

[[noreturn, gnu::format(printf, 1, 2)]]
void panic(const char *fmt, ...);

[[noreturn, gnu::format(printf, 1, 2)]]
void fatal(const char *fmt, ...);

[[gnu::format(printf, 1, 2)]]
void warn(const char *fmt, ...);

[[gnu::format(printf, 1, 2)]]
void inform(const char *fmt, ...);

/**
 * Redirect all log output into an in-memory buffer (for tests).
 * Passing nullptr restores stderr output.
 */
void setLogCapture(std::string *capture);

/** Make fatal()/panic() throw std::runtime_error instead of exiting. */
void setLogThrowOnFatal(bool enable);

/**
 * Assert an invariant; panics when it does not hold.
 * Unlike assert(), always enabled.
 */
#define MITHRIL_ASSERT(cond)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::mithril::panic("assertion failed: %s (%s:%d)", #cond,        \
                             __FILE__, __LINE__);                          \
        }                                                                  \
    } while (0)

/** Assert with a printf-style explanation appended. */
#define MITHRIL_ASSERT_MSG(cond, fmt, ...)                                 \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::mithril::panic("assertion failed: %s — " fmt, #cond,         \
                             ##__VA_ARGS__);                               \
        }                                                                  \
    } while (0)

} // namespace mithril

#endif // MITHRIL_COMMON_LOGGING_HH
