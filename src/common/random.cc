#include "random.hh"

#include <cmath>

namespace mithril
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t state = seed + stream * 0x9e3779b97f4a7c15ull;
    return splitmix64(state);
}

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Shifted geometric: X = 1 + floor(ln(U) / ln(1 - 1/mean)).
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double denom = std::log(1.0 - 1.0 / mean);
    return 1 + static_cast<std::uint64_t>(std::log(u) / denom);
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Rejection-inversion sampling (Hörmann & Derflinger).
    const double e = 1.0 - s;
    auto h = [&](double x) {
        if (std::fabs(e) < 1e-12)
            return std::log(x);
        return (std::pow(x, e) - 1.0) / e;
    };
    auto h_inv = [&](double x) {
        if (std::fabs(e) < 1e-12)
            return std::exp(x);
        return std::pow(1.0 + e * x, 1.0 / e);
    };
    const double hx0 = h(0.5) - std::pow(1.0, -s);
    const double hn = h(static_cast<double>(n) + 0.5);
    while (true) {
        double u = hx0 + nextDouble() * (hn - hx0);
        double x = h_inv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double kd = static_cast<double>(k);
        if (u >= h(kd + 0.5) - std::pow(kd, -s))
            return k - 1;
    }
}

} // namespace mithril
