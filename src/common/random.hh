/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component of the simulator (PARA/PARFM sampling,
 * workload generators) draws from an explicitly seeded Rng so that runs
 * are bit-reproducible. No component may use std::rand or wall-clock
 * seeding.
 */

#ifndef MITHRIL_COMMON_RANDOM_HH
#define MITHRIL_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace mithril
{

/**
 * One splitmix64 step: advances `state` by the golden-gamma increment
 * and returns the scrambled value. The seed expander behind Rng, also
 * usable directly for deriving independent sub-seeds (runner jobs).
 */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Sub-seed for stream `stream` of a base seed: one splitmix64 step
 * from the golden-gamma-spaced stream index. The single derivation
 * rule shared by every consumer that needs independent deterministic
 * streams — runner jobs (per-job seeds) and trackers (per-bank RNGs,
 * the property that makes the sharded engine's output independent of
 * its shard partition).
 */
std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t stream);

/**
 * xoshiro256** generator. Small, fast, and high quality; satisfies the
 * UniformRandomBitGenerator named requirement so it also plugs into
 * <random> distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p. */
    bool nextBool(double p);

    /**
     * Geometric-ish positive gap with the given mean (shifted geometric
     * distribution, support >= 1). Used by trace generators for
     * inter-request instruction gaps.
     */
    std::uint64_t nextGeometric(double mean);

    /** Zipf-distributed value in [0, n) with exponent s (precomputed CDF
     *  is not kept; this uses rejection-inversion, O(1) amortized). */
    std::uint64_t nextZipf(std::uint64_t n, double s);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_RANDOM_HH
