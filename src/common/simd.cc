#include "simd.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MITHRIL_SIMD_X86 1
#include <immintrin.h>
#endif

namespace mithril::simd
{

namespace
{

Level
detectMaxLevel()
{
#if MITHRIL_SIMD_X86
    // x86-64 guarantees SSE2; AVX2 needs a runtime check because the
    // tier is compiled with a per-function target attribute.
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    return Level::Sse2;
#else
    return Level::Scalar;
#endif
}

Level
clampToEnv(Level best)
{
    const char *env = std::getenv("MITHRIL_SIMD");
    if (env == nullptr || *env == '\0')
        return best;
    Level want;
    if (std::strcmp(env, "scalar") == 0) {
        want = Level::Scalar;
    } else if (std::strcmp(env, "sse2") == 0) {
        want = Level::Sse2;
    } else if (std::strcmp(env, "avx2") == 0) {
        want = Level::Avx2;
    } else {
        std::fprintf(stderr,
                     "MITHRIL_SIMD=%s unknown (scalar|sse2|avx2); "
                     "using %s\n",
                     env, levelName(best));
        return best;
    }
    return want < best ? want : best;
}

Level &
levelSlot()
{
    static Level level = clampToEnv(detectMaxLevel());
    return level;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Sse2:
        return "sse2";
    case Level::Avx2:
        return "avx2";
    }
    return "scalar";
}

Level
maxLevel()
{
    static const Level max = detectMaxLevel();
    return max;
}

Level
activeLevel()
{
    return levelSlot();
}

const char *
activeLevelName()
{
    return levelName(activeLevel());
}

Level
setLevelForTest(Level level)
{
    const Level clamped = level < maxLevel() ? level : maxLevel();
    levelSlot() = clamped;
    return clamped;
}

// ------------------------------------------------------------ U64Divisor

U64Divisor::U64Divisor(std::uint64_t divisor) : d(divisor)
{
    MITHRIL_ASSERT(divisor >= 1);
    // floor(2^64 / d); for d == 1 that overflows to 2^64, and ~0ull
    // (= 2^64 - 1) gives q_hat = x - 1 for x > 0, fixed by the same
    // conditional correction.
    m = (d == 1)
            ? ~0ull
            : static_cast<std::uint64_t>(
                  (static_cast<unsigned __int128>(1) << 64) / d);
}

// ---------------------------------------------------- scalar references

std::size_t
uniformPrefixScalar(const std::uint32_t *v, std::size_t n,
                    std::uint32_t x)
{
    std::size_t i = 0;
    while (i < n && v[i] == x)
        ++i;
    return i;
}

std::size_t
pairMatchPrefixScalar(const std::uint32_t *v, std::size_t n,
                      std::uint32_t a, std::uint32_t b)
{
    std::size_t i = 0;
    while (i < n && (v[i] == a || v[i] == b))
        ++i;
    return i;
}

std::size_t
countMatchesScalar(const std::uint32_t *v, std::size_t n,
                   std::uint32_t x)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += (v[i] == x) ? 1 : 0;
    return count;
}

void
bloomHashRowsScalar(const RowId *rows, std::size_t n, std::uint64_t seed,
                    std::uint32_t hashes, const U64Divisor &size,
                    std::uint32_t *slots)
{
    constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(rows[i]) + seed;
        for (std::uint32_t h = 0; h < hashes; ++h) {
            slots[i * hashes + h] = static_cast<std::uint32_t>(
                size.mod(mix64(base + kGolden * (h + 1))));
        }
    }
}

// ----------------------------------------------------------- SSE2 tier

#if MITHRIL_SIMD_X86

namespace
{

std::size_t
uniformPrefixSse2(const std::uint32_t *v, std::size_t n, std::uint32_t x)
{
    std::size_t i = 0;
    const __m128i target = _mm_set1_epi32(static_cast<int>(x));
    while (i + 4 <= n) {
        const __m128i chunk = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        const int mask =
            _mm_movemask_epi8(_mm_cmpeq_epi32(chunk, target));
        if (mask != 0xffff) {
            return i + static_cast<std::size_t>(
                           __builtin_ctz(~static_cast<unsigned>(mask)) /
                           4);
        }
        i += 4;
    }
    while (i < n && v[i] == x)
        ++i;
    return i;
}

std::size_t
pairMatchPrefixSse2(const std::uint32_t *v, std::size_t n,
                    std::uint32_t a, std::uint32_t b)
{
    std::size_t i = 0;
    const __m128i ta = _mm_set1_epi32(static_cast<int>(a));
    const __m128i tb = _mm_set1_epi32(static_cast<int>(b));
    while (i + 4 <= n) {
        const __m128i chunk = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        const __m128i hit =
            _mm_or_si128(_mm_cmpeq_epi32(chunk, ta),
                         _mm_cmpeq_epi32(chunk, tb));
        const int mask = _mm_movemask_epi8(hit);
        if (mask != 0xffff) {
            return i + static_cast<std::size_t>(
                           __builtin_ctz(~static_cast<unsigned>(mask)) /
                           4);
        }
        i += 4;
    }
    while (i < n && (v[i] == a || v[i] == b))
        ++i;
    return i;
}

std::size_t
countMatchesSse2(const std::uint32_t *v, std::size_t n, std::uint32_t x)
{
    std::size_t i = 0;
    std::size_t count = 0;
    const __m128i target = _mm_set1_epi32(static_cast<int>(x));
    // Each matching lane contributes -1; accumulate and negate.
    __m128i acc = _mm_setzero_si128();
    while (i + 4 <= n) {
        const __m128i chunk = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        acc = _mm_add_epi32(acc, _mm_cmpeq_epi32(chunk, target));
        i += 4;
    }
    alignas(16) std::int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
    count = static_cast<std::size_t>(
        -(static_cast<std::int64_t>(lanes[0]) + lanes[1] + lanes[2] +
          lanes[3]));
    for (; i < n; ++i)
        count += (v[i] == x) ? 1 : 0;
    return count;
}

} // namespace

// ----------------------------------------------------------- AVX2 tier
//
// Compiled with a per-function target attribute so the one binary runs
// on pre-AVX2 parts; only reached behind the cpuid check in
// detectMaxLevel().

namespace
{

__attribute__((target("avx2"))) std::size_t
uniformPrefixAvx2(const std::uint32_t *v, std::size_t n, std::uint32_t x)
{
    std::size_t i = 0;
    const __m256i target = _mm256_set1_epi32(static_cast<int>(x));
    while (i + 8 <= n) {
        const __m256i chunk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const auto mask = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi32(chunk, target)));
        if (mask != 0xffffffffu)
            return i + static_cast<std::size_t>(
                           __builtin_ctz(~mask) / 4);
        i += 8;
    }
    while (i < n && v[i] == x)
        ++i;
    return i;
}

__attribute__((target("avx2"))) std::size_t
pairMatchPrefixAvx2(const std::uint32_t *v, std::size_t n,
                    std::uint32_t a, std::uint32_t b)
{
    std::size_t i = 0;
    const __m256i ta = _mm256_set1_epi32(static_cast<int>(a));
    const __m256i tb = _mm256_set1_epi32(static_cast<int>(b));
    while (i + 8 <= n) {
        const __m256i chunk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const __m256i hit =
            _mm256_or_si256(_mm256_cmpeq_epi32(chunk, ta),
                            _mm256_cmpeq_epi32(chunk, tb));
        const auto mask =
            static_cast<unsigned>(_mm256_movemask_epi8(hit));
        if (mask != 0xffffffffu)
            return i + static_cast<std::size_t>(
                           __builtin_ctz(~mask) / 4);
        i += 8;
    }
    while (i < n && (v[i] == a || v[i] == b))
        ++i;
    return i;
}

__attribute__((target("avx2"))) std::size_t
countMatchesAvx2(const std::uint32_t *v, std::size_t n, std::uint32_t x)
{
    std::size_t i = 0;
    std::size_t count = 0;
    const __m256i target = _mm256_set1_epi32(static_cast<int>(x));
    __m256i acc = _mm256_setzero_si256();
    while (i + 8 <= n) {
        const __m256i chunk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        acc = _mm256_add_epi32(acc, _mm256_cmpeq_epi32(chunk, target));
        i += 8;
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::int64_t sum = 0;
    for (int lane = 0; lane < 8; ++lane)
        sum += lanes[lane];
    count = static_cast<std::size_t>(-sum);
    for (; i < n; ++i)
        count += (v[i] == x) ? 1 : 0;
    return count;
}

/** 64-bit lane-wise a * c (low 64) via 32x32 partial products — AVX2
 *  has no vpmullq, so synthesize it from vpmuludq. */
__attribute__((target("avx2"))) inline __m256i
mullo64Avx2(__m256i a, __m256i c_full, __m256i c_hi)
{
    const __m256i lo = _mm256_mul_epu32(a, c_full);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(a_hi, c_full), _mm256_mul_epu32(a, c_hi));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void
bloomHashRowsAvx2(const RowId *rows, std::size_t n, std::uint64_t seed,
                  const U64Divisor &size, std::uint32_t *slots)
{
    // hashes == 4: the four hash lanes of one row fill one vector.
    constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
    constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9ull;
    constexpr std::uint64_t kMix2 = 0x94d049bb133111ebull;
    const __m256i lane_add = _mm256_set_epi64x(
        static_cast<long long>(kGolden * 4),
        static_cast<long long>(kGolden * 3),
        static_cast<long long>(kGolden * 2),
        static_cast<long long>(kGolden * 1));
    const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kMix1));
    const __m256i m1_hi =
        _mm256_set1_epi64x(static_cast<long long>(kMix1 >> 32));
    const __m256i m2 = _mm256_set1_epi64x(static_cast<long long>(kMix2));
    const __m256i m2_hi =
        _mm256_set1_epi64x(static_cast<long long>(kMix2 >> 32));

    alignas(32) std::uint64_t h[4];
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(rows[i]) + seed;
        __m256i x = _mm256_add_epi64(
            _mm256_set1_epi64x(static_cast<long long>(base)), lane_add);
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
        x = mullo64Avx2(x, m1, m1_hi);
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
        x = mullo64Avx2(x, m2, m2_hi);
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
        _mm256_store_si256(reinterpret_cast<__m256i *>(h), x);
        slots[i * 4 + 0] = static_cast<std::uint32_t>(size.mod(h[0]));
        slots[i * 4 + 1] = static_cast<std::uint32_t>(size.mod(h[1]));
        slots[i * 4 + 2] = static_cast<std::uint32_t>(size.mod(h[2]));
        slots[i * 4 + 3] = static_cast<std::uint32_t>(size.mod(h[3]));
    }
}

} // namespace

#endif // MITHRIL_SIMD_X86

// ------------------------------------------------------------- dispatch

std::size_t
uniformPrefix(const std::uint32_t *v, std::size_t n, std::uint32_t x)
{
#if MITHRIL_SIMD_X86
    switch (activeLevel()) {
    case Level::Avx2:
        return uniformPrefixAvx2(v, n, x);
    case Level::Sse2:
        return uniformPrefixSse2(v, n, x);
    case Level::Scalar:
        break;
    }
#endif
    return uniformPrefixScalar(v, n, x);
}

std::size_t
pairMatchPrefix(const std::uint32_t *v, std::size_t n, std::uint32_t a,
                std::uint32_t b)
{
#if MITHRIL_SIMD_X86
    switch (activeLevel()) {
    case Level::Avx2:
        return pairMatchPrefixAvx2(v, n, a, b);
    case Level::Sse2:
        return pairMatchPrefixSse2(v, n, a, b);
    case Level::Scalar:
        break;
    }
#endif
    return pairMatchPrefixScalar(v, n, a, b);
}

std::size_t
countMatches(const std::uint32_t *v, std::size_t n, std::uint32_t x)
{
#if MITHRIL_SIMD_X86
    switch (activeLevel()) {
    case Level::Avx2:
        return countMatchesAvx2(v, n, x);
    case Level::Sse2:
        return countMatchesSse2(v, n, x);
    case Level::Scalar:
        break;
    }
#endif
    return countMatchesScalar(v, n, x);
}

void
bloomHashRows(const RowId *rows, std::size_t n, std::uint64_t seed,
              std::uint32_t hashes, const U64Divisor &size,
              std::uint32_t *slots)
{
#if MITHRIL_SIMD_X86
    // The vector tier covers the canonical 4-hash configuration; the
    // SSE2 tier has no 64-bit multiply worth emulating, so it shares
    // the scalar body (which already avoids the hardware divide).
    if (hashes == 4 && activeLevel() == Level::Avx2) {
        bloomHashRowsAvx2(rows, n, seed, size, slots);
        return;
    }
#endif
    bloomHashRowsScalar(rows, n, seed, hashes, size, slots);
}

} // namespace mithril::simd
