/**
 * @file
 * SIMD batch kernels for the engine hot paths, with a pinned scalar
 * reference for every kernel.
 *
 * Design rules (the differential suite in tests/test_simd.cc enforces
 * all of them):
 *
 *  - Every kernel is *byte-identical* to its `*Scalar` reference at
 *    any input size and any pointer alignment. Vector code only ever
 *    changes how a result is computed, never what it is.
 *  - Dispatch is a process-wide level chosen once: the best tier the
 *    build and the CPU both support, clamped by the MITHRIL_SIMD
 *    environment variable (`scalar`, `sse2`, `avx2`) and overridable
 *    from tests via setLevelForTest() so CI exercises every tier on
 *    one machine.
 *  - x86-64 guarantees SSE2, so the SSE2 tier is compiled
 *    unconditionally there; the AVX2 tier is built with a per-function
 *    target attribute and guarded by a runtime cpuid check, so one
 *    binary runs everywhere.
 *
 * The module also hosts U64Divisor: exact division/modulo by a runtime
 * invariant divisor via one multiply-high (Barrett reduction with a
 * single conditional correction). The engine uses it to strip the
 * hardware 64-bit divide from per-ACT paths (BlockHammer's Bloom slot
 * modulo, the engine's REF-boundary division) without changing a
 * single result.
 */

#ifndef MITHRIL_COMMON_SIMD_HH
#define MITHRIL_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace mithril::simd
{

/** Vector tier a kernel may run at. Ordered: higher includes lower. */
enum class Level : std::uint8_t
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** Short lowercase name ("scalar", "sse2", "avx2"). */
const char *levelName(Level level);

/** Best tier this build *and* this CPU support. */
Level maxLevel();

/** The process-wide tier kernels dispatch on: maxLevel() clamped by
 *  the MITHRIL_SIMD environment variable, until overridden. */
Level activeLevel();

/** levelName(activeLevel()) — what benches record per point. */
const char *activeLevelName();

/**
 * Force the dispatch tier (clamped to maxLevel(); returns the level
 * actually selected). Tests iterate this over every tier to pin the
 * vector kernels byte-identical to scalar; benches may also pin a
 * tier explicitly. Not thread-safe against concurrent kernel calls —
 * call it between runs only.
 */
Level setLevelForTest(Level level);

/**
 * Exact unsigned 64-bit division/modulo by an invariant divisor
 * (Barrett): precompute m = floor(2^64 / d) once, then
 *
 *   q_hat = mulhi64(m, x)  is  floor(x/d) or floor(x/d) - 1,
 *
 * fixed by one conditional subtract. Proof sketch: with
 * m*d = 2^64 - e (0 <= e < d) and x = q*d + r,
 * m*x / 2^64 = q + (m*r - q*e) / 2^64, and both |q*e| < 2^64 and
 * m*r < 2^64, so the floor lands on q or q-1. div()/mod() therefore
 * equal the hardware `/` and `%` for every x — the differential suite
 * checks millions of (x, d) pairs including adversarial divisors.
 */
struct U64Divisor
{
    std::uint64_t d = 1;
    std::uint64_t m = ~0ull;

    U64Divisor() = default;

    explicit U64Divisor(std::uint64_t divisor);

    std::uint64_t divisor() const { return d; }

    std::uint64_t div(std::uint64_t x) const
    {
        const auto q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(m) * x) >> 64);
        return q + (x - q * d >= d ? 1 : 0);
    }

    std::uint64_t mod(std::uint64_t x) const
    {
        const auto q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(m) * x) >> 64);
        const std::uint64_t r = x - q * d;
        return r >= d ? r - d : r;
    }
};

// --------------------------------------------------------------- kernels
//
// Each kernel has a `<name>Scalar` reference (the semantics) and a
// dispatching `<name>` entry point (the implementation selected by
// activeLevel()). References are exported so tests can pin the vector
// tiers against them directly.

/** Length of the longest prefix of v[0..n) equal to `x`. */
std::size_t uniformPrefixScalar(const std::uint32_t *v, std::size_t n,
                                std::uint32_t x);
std::size_t uniformPrefix(const std::uint32_t *v, std::size_t n,
                          std::uint32_t x);

/** Length of the longest prefix of v[0..n) whose elements are all
 *  `a` or `b` — the CbsTable 2-way cache-hit classifier. */
std::size_t pairMatchPrefixScalar(const std::uint32_t *v, std::size_t n,
                                  std::uint32_t a, std::uint32_t b);
std::size_t pairMatchPrefix(const std::uint32_t *v, std::size_t n,
                            std::uint32_t a, std::uint32_t b);

/** Number of elements of v[0..n) equal to `x` — the segment-bulk
 *  paths split a classified pair run into its two per-row totals
 *  with one counting sweep instead of per-element branches. */
std::size_t countMatchesScalar(const std::uint32_t *v, std::size_t n,
                               std::uint32_t x);
std::size_t countMatches(const std::uint32_t *v, std::size_t n,
                         std::uint32_t x);

/**
 * BlockHammer's Bloom hash, lane-parallel over a block of rows:
 * slots[i*hashes + h] = mix64(rows[i] + seed + K*(h+1)) mod size,
 * with K the 64-bit golden-ratio increment and `size` the CBF slot
 * count as a prepared divisor. Byte-identical to the historical
 * per-row hashSlot() loop.
 */
void bloomHashRowsScalar(const RowId *rows, std::size_t n,
                         std::uint64_t seed, std::uint32_t hashes,
                         const U64Divisor &size, std::uint32_t *slots);
void bloomHashRows(const RowId *rows, std::size_t n, std::uint64_t seed,
                   std::uint32_t hashes, const U64Divisor &size,
                   std::uint32_t *slots);

/** The 64-bit finalizer both Bloom paths share (splitmix64 tail). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace mithril::simd

#endif // MITHRIL_COMMON_SIMD_HH
