#include "stats.hh"

#include <algorithm>
#include <sstream>

namespace mithril
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
Average::mergeFrom(const Average &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatRegistry::average(const std::string &name)
{
    return averages_[name];
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::counters() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c.value());
    return out;
}

std::vector<std::pair<std::string, double>>
StatRegistry::averageMeans() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(averages_.size());
    for (const auto &[name, a] : averages_)
        out.emplace_back(name, a.mean());
    return out;
}

void
StatRegistry::mergeFrom(const StatRegistry &other)
{
    for (const auto &[name, c] : other.counters_)
        counters_[name].inc(c.value());
    for (const auto &[name, a] : other.averages_)
        averages_[name].mergeFrom(a);
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : averages_)
        a.reset();
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, a] : averages_)
        os << name << " " << a.mean() << "\n";
    return os.str();
}

} // namespace mithril
