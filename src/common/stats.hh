/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named scalar counters and averages with a
 * StatRegistry; experiments snapshot, diff, and print them. This mirrors
 * the role of the gem5 stats package at the scale this simulator needs.
 */

#ifndef MITHRIL_COMMON_STATS_HH
#define MITHRIL_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mithril
{

/** A single named counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples and reports their mean/min/max. */
class Average
{
  public:
    void sample(double v);
    void reset();

    /**
     * Fold another Average into this one, preserving count/sum/min/max
     * exactly. Merging the per-shard averages of a partitioned run in
     * any grouping yields the same result as sampling the union on one
     * instance; an empty side never contributes a spurious 0 to the
     * min/max.
     */
    void mergeFrom(const Average &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Hierarchical name -> stat map. Ownership of the stat objects stays with
 * the registry; components hold stable pointers.
 */
class StatRegistry
{
  public:
    /** Get or create a counter under the given dotted name. */
    Counter &counter(const std::string &name);

    /** Get or create an average under the given dotted name. */
    Average &average(const std::string &name);

    /** Value of a counter (0 when absent). */
    std::uint64_t counterValue(const std::string &name) const;

    /** All counters in name order, for printing. */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;

    /** All averages in name order. */
    std::vector<std::pair<std::string, double>> averageMeans() const;

    /**
     * Fold another registry into this one by name union: counters add,
     * averages merge via Average::mergeFrom(). Deterministic (name
     * order) and associative, so shard registries may be folded in any
     * grouping.
     */
    void mergeFrom(const StatRegistry &other);

    /** Reset every stat to zero. */
    void resetAll();

    /** Render all stats as "name value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_STATS_HH
