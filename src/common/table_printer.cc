#include "table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mithril
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    flushCurrent();
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

TablePrinter &
TablePrinter::beginRow()
{
    flushCurrent();
    building_ = true;
    current_.clear();
    return *this;
}

TablePrinter &
TablePrinter::cell(const std::string &text)
{
    current_.push_back(text);
    return *this;
}

TablePrinter &
TablePrinter::num(double value, int precision)
{
    current_.push_back(formatFixed(value, precision));
    return *this;
}

TablePrinter &
TablePrinter::intCell(long long value)
{
    current_.push_back(std::to_string(value));
    return *this;
}

void
TablePrinter::flushCurrent()
{
    if (building_) {
        current_.resize(headers_.size());
        rows_.push_back(current_);
        current_.clear();
        building_ = false;
    }
}

std::string
TablePrinter::str() const
{
    // Copy so that a pending beginRow() row is included.
    TablePrinter copy(*this);
    copy.flushCurrent();

    std::vector<std::size_t> widths(copy.headers_.size());
    for (std::size_t c = 0; c < copy.headers_.size(); ++c)
        widths[c] = copy.headers_[c].size();
    for (const auto &row : copy.rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " ";
        }
        os << "|\n";
    };

    emit_row(copy.headers_);
    for (std::size_t c = 0; c < widths.size(); ++c)
        os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto &row : copy.rows_)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    os << str();
}

std::string
formatFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatKiB(double bytes, int precision)
{
    return formatFixed(bytes / 1024.0, precision) + " KB";
}

} // namespace mithril
