/**
 * @file
 * Aligned ASCII table output used by the benchmark binaries to print the
 * rows/series of each paper table and figure.
 */

#ifndef MITHRIL_COMMON_TABLE_PRINTER_HH
#define MITHRIL_COMMON_TABLE_PRINTER_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mithril
{

/**
 * Collects rows of string cells and renders them with per-column
 * alignment. Numeric helpers format with fixed precision.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a fully formatted row; pads or truncates to column count. */
    void addRow(std::vector<std::string> cells);

    /** Start a fresh row to be filled with cell()/num() calls. */
    TablePrinter &beginRow();

    /** Append a string cell to the row being built. */
    TablePrinter &cell(const std::string &text);

    /** Append a numeric cell with the given decimal precision. */
    TablePrinter &num(double value, int precision = 2);

    /** Append an integer cell. */
    TablePrinter &intCell(long long value);

    /** Render the table to a string. */
    std::string str() const;

    /** Render the table to the given stream. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far (including one in progress). */
    std::size_t rowCount() const
    {
        return rows_.size() + (building_ ? 1 : 0);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> current_;
    bool building_ = false;

    void flushCurrent();
};

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision);

/** Format a count of bytes as "x.yz KB". */
std::string formatKiB(double bytes, int precision = 2);

} // namespace mithril

#endif // MITHRIL_COMMON_TABLE_PRINTER_HH
