/**
 * @file
 * Fundamental scalar types and time units shared across the simulator.
 *
 * Simulated time is kept in integer picoseconds (Tick) so that all DDR5
 * timing parameters (tCK = 416.67 ps for DDR5-4800) can be expressed
 * exactly enough without floating-point drift in long runs.
 */

#ifndef MITHRIL_COMMON_TYPES_HH
#define MITHRIL_COMMON_TYPES_HH

#include <cstdint>

namespace mithril
{

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** A DRAM row index within one bank. */
using RowId = std::uint32_t;

/** A flat bank index within the whole memory system. */
using BankId = std::uint32_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Sentinel for "no row". */
inline constexpr RowId kInvalidRow = 0xffffffffu;

/** Sentinel for "never" / unbounded time. */
inline constexpr Tick kTickMax = INT64_MAX;

/** Ticks per nanosecond (1 tick = 1 ps). */
inline constexpr Tick kTickPerNs = 1000;

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
nsToTick(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTickPerNs) + 0.5);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTick(double us)
{
    return nsToTick(us * 1e3);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTick(double ms)
{
    return nsToTick(ms * 1e6);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
tickToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTickPerNs);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
tickToMs(Tick t)
{
    return static_cast<double>(t) / (1e6 * static_cast<double>(kTickPerNs));
}

} // namespace mithril

#endif // MITHRIL_COMMON_TYPES_HH
