#include "bounds.hh"

#include <cmath>

#include "common/logging.hh"

namespace mithril::core
{

double
harmonic(std::uint64_t n)
{
    if (n < 64) {
        double h = 0.0;
        for (std::uint64_t k = 1; k <= n; ++k)
            h += 1.0 / static_cast<double>(k);
        return h;
    }
    // Asymptotic expansion; error < 1e-10 for n >= 64.
    const double nd = static_cast<double>(n);
    const double euler = 0.5772156649015329;
    return std::log(nd) + euler + 1.0 / (2.0 * nd) -
           1.0 / (12.0 * nd * nd);
}

std::uint64_t
windowIntervals(const dram::Timing &timing, std::uint32_t rfm_th)
{
    return dram::rfmIntervalsPerWindow(timing, rfm_th);
}

double
theorem1Bound(const dram::Timing &timing, std::uint32_t n_entry,
              std::uint32_t rfm_th)
{
    MITHRIL_ASSERT(n_entry > 0 && rfm_th > 0);
    const double w = static_cast<double>(windowIntervals(timing, rfm_th));
    const double n = static_cast<double>(n_entry);
    const double th = static_cast<double>(rfm_th);
    return th * harmonic(n_entry) + th / n * (w - 2.0);
}

std::uint64_t
adaptiveNStar(std::uint32_t n_entry, std::uint32_t rfm_th,
              std::uint32_t ad_th)
{
    const std::uint64_t num =
        static_cast<std::uint64_t>(n_entry) * rfm_th;
    const std::uint64_t den = static_cast<std::uint64_t>(rfm_th) + ad_th;
    return (num + den - 1) / den;
}

double
theorem2Bound(const dram::Timing &timing, std::uint32_t n_entry,
              std::uint32_t rfm_th, std::uint32_t ad_th)
{
    MITHRIL_ASSERT(n_entry > 0 && rfm_th > 0);
    if (ad_th == 0)
        return theorem1Bound(timing, n_entry, rfm_th);

    const double w = static_cast<double>(windowIntervals(timing, rfm_th));
    const double n = static_cast<double>(n_entry);
    const double th = static_cast<double>(rfm_th);
    const std::uint64_t n_star = adaptiveNStar(n_entry, rfm_th, ad_th);
    const double ns = static_cast<double>(n_star);

    return th * harmonic(n_star) +
           ((w - ns + n - 2.0) * th +
            (n - ns) * static_cast<double>(ad_th)) /
               n;
}

bool
isSafeConfig(const dram::Timing &timing, std::uint32_t n_entry,
             std::uint32_t rfm_th, std::uint32_t flip_th,
             std::uint32_t ad_th, double aggregated_effect)
{
    MITHRIL_ASSERT(aggregated_effect > 0.0);
    const double m = theorem2Bound(timing, n_entry, rfm_th, ad_th);
    return m < static_cast<double>(flip_th) / aggregated_effect;
}

double
aggregatedEffect(std::uint32_t blast_radius)
{
    MITHRIL_ASSERT(blast_radius >= 1 && blast_radius <= 3);
    switch (blast_radius) {
      case 1: return 2.0;
      case 2: return 2.5;
      default: return 3.5;  // Section V-C / BlockHammer's figure.
    }
}

std::uint32_t
wrappingCounterBits(const dram::Timing &timing, std::uint32_t n_entry,
                    std::uint32_t rfm_th, std::uint32_t ad_th)
{
    // The max-min spread never exceeds the per-window growth bound plus
    // one interval of slack; the wrapping comparison needs one extra
    // bit so the spread stays below half the counter range.
    const double m = theorem2Bound(timing, n_entry, rfm_th, ad_th);
    const double spread = m + static_cast<double>(rfm_th) +
                          static_cast<double>(ad_th);
    std::uint32_t bits = 2;
    while ((1ull << (bits - 1)) <= static_cast<std::uint64_t>(spread) &&
           bits < 63) {
        ++bits;
    }
    return bits;
}

std::uint64_t
lossyCountingEntries(const dram::Timing &timing, std::uint32_t rfm_th,
                     std::uint32_t flip_th)
{
    // Find the CbS entry requirement first.
    std::uint64_t n_cbs = 0;
    double h = 0.0;
    const double w = static_cast<double>(windowIntervals(timing, rfm_th));
    const double th = static_cast<double>(rfm_th);
    const double target = static_cast<double>(flip_th) / 2.0;
    for (std::uint64_t n = 1; n <= 1u << 22; ++n) {
        h += 1.0 / static_cast<double>(n);
        const double m = th * h + th / static_cast<double>(n) * (w - 2.0);
        if (m < target) {
            n_cbs = n;
            break;
        }
        if (th * h >= target)
            return 0;  // infeasible even with infinite entries
    }
    if (n_cbs == 0)
        return 0;

    // Manku-Motwani lossy counting needs O((1/eps) * ln(eps * L))
    // entries for stream length L and error eps; matching the CbS error
    // budget eps = 1/n_cbs over the per-window ACT stream L = W*RFM_TH
    // yields the multiplicative ln factor below.
    const double stream = w * th;
    const double factor =
        std::max(1.0, std::log(stream / static_cast<double>(n_cbs)));
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(n_cbs) * factor));
}

} // namespace mithril::core
