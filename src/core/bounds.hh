/**
 * @file
 * Closed-form safety bounds of the Mithril paper.
 *
 * Theorem 1: with Nentry counter entries and an RFM threshold RFM_TH,
 * the estimated count of any single row can grow by at most
 *
 *   M = sum_{k=1..N} RFM_TH / k  +  (RFM_TH / N) * (W - 2)
 *
 * inside one tREFW window, where
 *
 *   W = ceil( (tREFW - (tREFW/tREFI) * tRFC) / (tRC * RFM_TH + tRFM) )
 *
 * is the number of RFM intervals per window. Configuring M < FlipTH/2
 * yields deterministic protection against double-sided hammering.
 *
 * Theorem 2 extends the bound to the adaptive refresh policy with
 * skip threshold AdTH:
 *
 *   M' = sum_{k=1..n*} RFM_TH / k
 *      + ((W - n* + N - 2) * RFM_TH + (N - n*) * AdTH) / N
 *   n* = ceil(N * RFM_TH / (RFM_TH + AdTH))
 */

#ifndef MITHRIL_CORE_BOUNDS_HH
#define MITHRIL_CORE_BOUNDS_HH

#include <cstdint>

#include "dram/timing.hh"

namespace mithril::core
{

/** Harmonic number H_n = sum_{k=1..n} 1/k. */
double harmonic(std::uint64_t n);

/** The W term: RFM intervals per tREFW window. */
std::uint64_t windowIntervals(const dram::Timing &timing,
                              std::uint32_t rfm_th);

/** Theorem 1 bound M on estimated-count growth per tREFW window. */
double theorem1Bound(const dram::Timing &timing, std::uint32_t n_entry,
                     std::uint32_t rfm_th);

/** Theorem 2 bound M' under adaptive refresh with threshold ad_th.
 *  With ad_th == 0 this reduces to Theorem 1's M. */
double theorem2Bound(const dram::Timing &timing, std::uint32_t n_entry,
                     std::uint32_t rfm_th, std::uint32_t ad_th);

/** The n* term of Theorem 2. */
std::uint64_t adaptiveNStar(std::uint32_t n_entry, std::uint32_t rfm_th,
                            std::uint32_t ad_th);

/**
 * True when the configuration deterministically protects the given
 * FlipTH against aggressors with the given aggregated RH effect
 * (2.0 for classic double-sided; 3.5 for the radius-3 non-adjacent
 * case of Section V-C).
 */
bool isSafeConfig(const dram::Timing &timing, std::uint32_t n_entry,
                  std::uint32_t rfm_th, std::uint32_t flip_th,
                  std::uint32_t ad_th = 0,
                  double aggregated_effect = 2.0);

/**
 * Aggregated RH effect for a disturbance radius (Section V-C): 2.0
 * for the classic double-sided case, 3.5 within a radius of 3. The
 * safety condition becomes M < FlipTH / effect, and a preventive
 * refresh must cover 2*radius victim rows.
 */
double aggregatedEffect(std::uint32_t blast_radius);

/**
 * Minimum counter width (bits) for the wrapping-counter implementation
 * of Section IV-E: enough to express twice the maximum in-table spread
 * (M rounded up, plus one RFM interval of slack).
 */
std::uint32_t wrappingCounterBits(const dram::Timing &timing,
                                  std::uint32_t n_entry,
                                  std::uint32_t rfm_th,
                                  std::uint32_t ad_th = 0);

/**
 * Lossy-Counting (TWiCe-style) table sizing for an RFM-based scheme,
 * used as the dotted comparison lines of Figure 6. Returns the entry
 * count needed to guarantee the same FlipTH at the given RFM_TH; Lossy
 * Counting must provision one entry per row whose count can exceed the
 * pruning threshold within a window, which is larger than the CbS
 * requirement by roughly the W/N overlap factor.
 */
std::uint64_t lossyCountingEntries(const dram::Timing &timing,
                                   std::uint32_t rfm_th,
                                   std::uint32_t flip_th);

} // namespace mithril::core

#endif // MITHRIL_CORE_BOUNDS_HH
