#include "cbs_table.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mithril::core
{

CbsTable::CbsTable(std::uint32_t n_entry, std::uint32_t counter_bits)
    : capacity_(n_entry), counterBits_(counter_bits)
{
    MITHRIL_ASSERT(capacity_ > 0);
    MITHRIL_ASSERT(counter_bits >= 2 && counter_bits <= 64);
    layoutArena();
    resetState();
}

void
CbsTable::layoutArena()
{
    bucketCap_ = capacity_ + 2;
    // Index sized to a power of two >= 2x capacity: load factor <= 1/2
    // keeps linear-probe chains short and guarantees empty slots.
    std::uint32_t slots = 16;
    while (slots < 2 * capacity_)
        slots <<= 1;
    indexMask_ = slots - 1;

    const auto align64 = [](std::size_t x) {
        return (x + 63) & ~static_cast<std::size_t>(63);
    };
    std::size_t off = 0;
    const auto carve = [&](std::size_t bytes) {
        const std::size_t at = off;
        off += align64(bytes);
        return at;
    };
    const std::size_t cap = capacity_;
    const std::size_t o_rows = carve(cap * sizeof(RowId));
    const std::size_t o_counts = carve(cap * sizeof(std::uint64_t));
    const std::size_t o_eb = carve(cap * sizeof(std::uint32_t));
    const std::size_t o_ep = carve(cap * sizeof(std::uint32_t));
    const std::size_t o_en = carve(cap * sizeof(std::uint32_t));
    const std::size_t o_bc = carve(bucketCap_ * sizeof(std::uint64_t));
    const std::size_t o_bh = carve(bucketCap_ * sizeof(std::uint32_t));
    const std::size_t o_bp = carve(bucketCap_ * sizeof(std::uint32_t));
    const std::size_t o_bn = carve(bucketCap_ * sizeof(std::uint32_t));
    const std::size_t o_bs = carve(bucketCap_ * sizeof(std::uint32_t));
    const std::size_t o_ix =
        carve(static_cast<std::size_t>(slots) * sizeof(IndexSlot));

    arena_ = std::make_unique<std::byte[]>(off + 63);
    auto *base = reinterpret_cast<std::byte *>(
        (reinterpret_cast<std::uintptr_t>(arena_.get()) + 63) &
        ~static_cast<std::uintptr_t>(63));
    rows_ = reinterpret_cast<RowId *>(base + o_rows);
    counts_ = reinterpret_cast<std::uint64_t *>(base + o_counts);
    entryBucket_ = reinterpret_cast<std::uint32_t *>(base + o_eb);
    entryPrev_ = reinterpret_cast<std::uint32_t *>(base + o_ep);
    entryNext_ = reinterpret_cast<std::uint32_t *>(base + o_en);
    bucketCount_ = reinterpret_cast<std::uint64_t *>(base + o_bc);
    bucketHead_ = reinterpret_cast<std::uint32_t *>(base + o_bh);
    bucketPrev_ = reinterpret_cast<std::uint32_t *>(base + o_bp);
    bucketNext_ = reinterpret_cast<std::uint32_t *>(base + o_bn);
    bucketSize_ = reinterpret_cast<std::uint32_t *>(base + o_bs);
    index_ = reinterpret_cast<IndexSlot *>(base + o_ix);
}

void
CbsTable::resetState()
{
    // Like the hardware, the table is always "full": every entry exists
    // from the start with counter 0 and an invalid row address. One
    // bucket (count 0) initially holds all entries.
    for (std::uint32_t e = 0; e < capacity_; ++e) {
        rows_[e] = kInvalidRow;
        counts_[e] = 0;
        entryBucket_[e] = 0;
        entryPrev_[e] = (e == 0) ? kNone : e - 1;
        entryNext_[e] = (e + 1 == capacity_) ? kNone : e + 1;
    }
    bucketCount_[0] = 0;
    bucketHead_[0] = 0;
    bucketPrev_[0] = kNone;
    bucketNext_[0] = kNone;
    bucketSize_[0] = capacity_;
    bucketUsed_ = 1;
    bucketFree_ = kNone;
    minBucket_ = 0;
    maxBucket_ = 0;

    for (std::uint32_t i = 0; i <= indexMask_; ++i)
        index_[i] = IndexSlot{kInvalidRow, 0};
    indexCount_ = 0;

    size_ = 0;
    touches_ = 0;
    inserts_ = 0;
    evictions_ = 0;
    cacheRow_[0] = kInvalidRow;
    cacheRow_[1] = kInvalidRow;
    cacheEntry_[0] = 0;
    cacheEntry_[1] = 0;
}

// ------------------------------------------------------------ flat index

std::uint32_t
CbsTable::indexFind(RowId row) const
{
    std::uint32_t i = hashRow(row) & indexMask_;
    while (index_[i].row != kInvalidRow) {
        if (index_[i].row == row)
            return i;
        i = (i + 1) & indexMask_;
    }
    return kNone;
}

void
CbsTable::indexInsert(RowId row, std::uint32_t entry)
{
    std::uint32_t i = hashRow(row) & indexMask_;
    while (index_[i].row != kInvalidRow)
        i = (i + 1) & indexMask_;
    index_[i] = IndexSlot{row, entry};
    ++indexCount_;
}

void
CbsTable::indexErase(RowId row)
{
    std::uint32_t i = indexFind(row);
    MITHRIL_ASSERT(i != kNone);
    --indexCount_;
    // Backward-shift deletion: pull every displaced element of the
    // probe chain over the hole so no tombstones accumulate.
    std::uint32_t j = i;
    for (;;) {
        j = (j + 1) & indexMask_;
        if (index_[j].row == kInvalidRow)
            break;
        const std::uint32_t home = hashRow(index_[j].row) & indexMask_;
        // j's element may fill the hole at i iff its probe path
        // covers i: dist(home -> j) >= dist(i -> j), cyclically.
        if (((j - home) & indexMask_) >= ((j - i) & indexMask_)) {
            index_[i] = index_[j];
            i = j;
        }
    }
    index_[i].row = kInvalidRow;
}

// ---------------------------------------------------------------- buckets

std::uint32_t
CbsTable::allocBucket(std::uint64_t count)
{
    std::uint32_t b;
    if (bucketFree_ != kNone) {
        b = bucketFree_;
        bucketFree_ = bucketNext_[b];
    } else {
        MITHRIL_ASSERT(bucketUsed_ < bucketCap_);
        b = bucketUsed_++;
    }
    bucketCount_[b] = count;
    bucketHead_[b] = kNone;
    bucketPrev_[b] = kNone;
    bucketNext_[b] = kNone;
    bucketSize_[b] = 0;
    return b;
}

void
CbsTable::freeBucket(std::uint32_t b)
{
    bucketNext_[b] = bucketFree_;
    bucketFree_ = b;
}

void
CbsTable::detachEntry(std::uint32_t e)
{
    const std::uint32_t b = entryBucket_[e];
    const std::uint32_t prev = entryPrev_[e];
    const std::uint32_t next = entryNext_[e];
    if (prev != kNone)
        entryNext_[prev] = next;
    else
        bucketHead_[b] = next;
    if (next != kNone)
        entryPrev_[next] = prev;
    entryPrev_[e] = kNone;
    entryNext_[e] = kNone;
    --bucketSize_[b];

    if (bucketSize_[b] == 0) {
        const std::uint32_t bp = bucketPrev_[b];
        const std::uint32_t bn = bucketNext_[b];
        if (bp != kNone)
            bucketNext_[bp] = bn;
        else
            minBucket_ = bn;
        if (bn != kNone)
            bucketPrev_[bn] = bp;
        else
            maxBucket_ = bp;
        freeBucket(b);
    }
}

void
CbsTable::attachWithCount(std::uint32_t e, std::uint64_t count,
                          std::uint32_t hint_bucket)
{
    // Find the bucket with this count, or the position to create it,
    // scanning forward from the hint (which is at most one step away in
    // every call pattern used by this class).
    std::uint32_t prev = kNone;
    std::uint32_t cur = (hint_bucket != kNone) ? hint_bucket : minBucket_;
    if (cur != kNone && bucketCount_[cur] > count) {
        // Walk back to the start; only happens when hint is past the
        // target (reset-to-min paths pass minBucket_, so this is rare).
        cur = minBucket_;
    }
    while (cur != kNone && bucketCount_[cur] < count) {
        prev = cur;
        cur = bucketNext_[cur];
    }

    std::uint32_t target;
    if (cur != kNone && bucketCount_[cur] == count) {
        target = cur;
    } else {
        target = allocBucket(count);
        bucketPrev_[target] = prev;
        bucketNext_[target] = cur;
        if (prev != kNone)
            bucketNext_[prev] = target;
        else
            minBucket_ = target;
        if (cur != kNone)
            bucketPrev_[cur] = target;
        else
            maxBucket_ = target;
    }

    entryBucket_[e] = target;
    entryPrev_[e] = kNone;
    entryNext_[e] = bucketHead_[target];
    if (bucketHead_[target] != kNone)
        entryPrev_[bucketHead_[target]] = e;
    bucketHead_[target] = e;
    ++bucketSize_[target];
    counts_[e] = count;
}

std::uint32_t
CbsTable::lookupOrEvict(RowId row)
{
    MITHRIL_ASSERT(row != kInvalidRow);
    const std::uint32_t slot = indexFind(row);
    if (slot != kNone)
        return index_[slot].entry;
    // Miss: evict the head of the minimum bucket and rename it.
    const std::uint32_t e = bucketHead_[minBucket_];
    if (rows_[e] != kInvalidRow) {
        indexErase(rows_[e]);
        ++evictions_;
    } else {
        ++size_;
    }
    ++inserts_;
    rows_[e] = row;
    indexInsert(row, e);
    return e;
}

std::uint64_t
CbsTable::touch(RowId row)
{
    ++touches_;
    return incrementEntry(lookupOrEvict(row));
}

std::uint64_t
CbsTable::touchFast(RowId row)
{
    ++touches_;
    std::uint32_t e;
    if (cacheRow_[0] == row && rows_[cacheEntry_[0]] == row) {
        e = cacheEntry_[0];
    } else if (cacheRow_[1] == row && rows_[cacheEntry_[1]] == row) {
        e = cacheEntry_[1];
        // Promote to way 0 so an alternating pair always hits.
        cacheRow_[1] = cacheRow_[0];
        cacheEntry_[1] = cacheEntry_[0];
        cacheRow_[0] = row;
        cacheEntry_[0] = e;
    } else {
        e = lookupOrEvict(row);
        cacheRow_[1] = cacheRow_[0];
        cacheEntry_[1] = cacheEntry_[0];
        cacheRow_[0] = row;
        cacheEntry_[0] = e;
    }
    return incrementEntry(e);
}

std::size_t
CbsTable::touchRun(const RowId *rows, std::size_t n,
                   std::uint64_t divisor, bool *hit)
{
    if (hit)
        *hit = false;
    // Divisibility by multiplication (Lemire & Kaser): for d >= 2,
    // x % d == 0  iff  x * M <= M - 1 (mod 2^64), M = 2^64/d + 1.
    const bool check = divisor > 1;
    const std::uint64_t magic = check ? (~0ull / divisor + 1) : 0;
    RowId cr0 = cacheRow_[0], cr1 = cacheRow_[1];
    std::uint32_t ce0 = cacheEntry_[0], ce1 = cacheEntry_[1];
    std::size_t i = 0;
    while (i < n) {
        const RowId first = rows[i];
        const bool hit0 = (cr0 == first && rows_[ce0] == first);
        const bool hit1 = (cr1 == first && rows_[ce1] == first);
        if (!hit0 && !hit1) {
            // Miss (or cold way): the faithful scalar step.
            const std::uint32_t e = lookupOrEvict(first);
            cr1 = cr0;
            ce1 = ce0;
            cr0 = first;
            ce0 = e;
            const std::uint64_t est = incrementEntry(e);
            ++i;
            if (divisor == 1 || (check && est * magic <= magic - 1)) {
                if (hit)
                    *hit = true;
                break;
            }
            continue;
        }

        // A run of cache hits performs no eviction, so neither way
        // can be renamed inside it: classify its full length in one
        // SIMD sweep, then increment without re-validating. A way is
        // usable for the run only while it is currently valid.
        const bool ok0 = (rows_[ce0] == cr0);
        const bool ok1 = (rows_[ce1] == cr1);
        std::size_t seg;
        std::size_t k0;
        if (ok0 && ok1) {
            seg = simd::pairMatchPrefix(rows + i, n - i, cr0, cr1);
            k0 = simd::countMatches(rows + i, seg, cr0);
        } else if (ok0) {
            seg = simd::uniformPrefix(rows + i, n - i, cr0);
            k0 = seg;
        } else {
            seg = simd::uniformPrefix(rows + i, n - i, cr1);
            k0 = 0;
        }
        const std::size_t k1 = seg - k0;

        // Bulk-apply the whole segment when no touch inside it can
        // trip the divisor stop: each way then moves buckets once
        // instead of once per ACT, and the result is identical (an
        // entry's resting place depends only on its final count). A
        // stop exists iff (c, c+k] holds a multiple of d, i.e.
        // c/d != (c+k)/d; divisor == 1 stops on the first touch, so
        // only the per-element loop below handles it.
        bool bulk = (divisor == 0);
        if (check) {
            const std::uint64_t c0 = counts_[ce0];
            const std::uint64_t c1 = counts_[ce1];
            bulk = (c0 / divisor == (c0 + k0) / divisor) &&
                   (c1 / divisor == (c1 + k1) / divisor);
        }
        if (bulk) {
            // Head order in a shared final bucket mirrors recency of
            // the *last* touch, so the last row's entry is applied
            // second (most recent attach lands at the bucket head).
            if (rows[i + seg - 1] == cr0) {
                addToEntry(ce1, k1);
                addToEntry(ce0, k0);
            } else {
                addToEntry(ce0, k0);
                addToEntry(ce1, k1);
                std::swap(cr0, cr1);
                std::swap(ce0, ce1);
            }
            i += seg;
            continue;
        }

        std::size_t k = 0;
        bool stop = false;
        while (k < seg) {
            const RowId row = rows[i + k];
            const std::uint32_t e = (row == cr0) ? ce0 : ce1;
            const std::uint64_t est = incrementEntry(e);
            ++k;
            if (divisor == 1 || (check && est * magic <= magic - 1)) {
                if (hit)
                    *hit = true;
                stop = true;
                break;
            }
        }
        // Ways only ever swap inside a hit run (the row set is
        // invariant), so the final cache order is decided by the last
        // row touched: way 0 holds it, way 1 the other pair.
        if (rows[i + k - 1] != cr0) {
            std::swap(cr0, cr1);
            std::swap(ce0, ce1);
        }
        i += k;
        if (stop)
            break;
    }
    touches_ += i;
    cacheRow_[0] = cr0;
    cacheRow_[1] = cr1;
    cacheEntry_[0] = ce0;
    cacheEntry_[1] = ce1;
    return i;
}

void
CbsTable::addToEntry(std::uint32_t e, std::uint64_t k)
{
    if (k == 0)
        return;
    const std::uint32_t b = entryBucket_[e];
    const std::uint64_t target = counts_[e] + k;
    const std::uint32_t next = bucketNext_[b];

    if (bucketSize_[b] == 1 &&
        (next == kNone || bucketCount_[next] > target)) {
        // Singleton bucket, no bucket in (count, target]: bump in
        // place, exactly like k in-place single increments.
        bucketCount_[b] = target;
        counts_[e] = target;
        return;
    }
    // The walk hint must survive e's detach: b itself while it keeps
    // other entries, else its predecessor (detach frees an emptied b).
    const std::uint32_t hint =
        (bucketSize_[b] > 1) ? b : bucketPrev_[b];
    detachEntry(e);
    attachWithCount(e, target, hint);
}

std::uint64_t
CbsTable::incrementEntry(std::uint32_t e)
{
    // Increment: move the entry from its bucket (count c) into the
    // bucket with count c+1.
    const std::uint32_t b = entryBucket_[e];
    const std::uint64_t target = counts_[e] + 1;
    const std::uint32_t next = bucketNext_[b];

    if (bucketSize_[b] == 1 &&
        (next == kNone || bucketCount_[next] > target)) {
        // Singleton bucket and no collision ahead: bump in place.
        bucketCount_[b] = target;
        counts_[e] = target;
    } else if (next != kNone && bucketCount_[next] == target) {
        detachEntry(e);
        entryBucket_[e] = next;
        entryPrev_[e] = kNone;
        entryNext_[e] = bucketHead_[next];
        if (bucketHead_[next] != kNone)
            entryPrev_[bucketHead_[next]] = e;
        bucketHead_[next] = e;
        ++bucketSize_[next];
        counts_[e] = target;
    } else {
        // Need a fresh bucket between b and next. b survives because it
        // holds at least one other entry.
        detachEntry(e);
        attachWithCount(e, target, b);
    }
    return counts_[e];
}

bool
CbsTable::contains(RowId row) const
{
    return indexFind(row) != kNone;
}

std::uint64_t
CbsTable::estimate(RowId row) const
{
    const std::uint32_t slot = indexFind(row);
    if (slot != kNone)
        return counts_[index_[slot].entry];
    return minValue();
}

std::uint64_t
CbsTable::minValue() const
{
    return bucketCount_[minBucket_];
}

std::uint64_t
CbsTable::maxValue() const
{
    return bucketCount_[maxBucket_];
}

RowId
CbsTable::maxRow() const
{
    const std::uint32_t e = bucketHead_[maxBucket_];
    return rows_[e];
}

RowId
CbsTable::resetMaxToMin()
{
    const std::uint32_t e = bucketHead_[maxBucket_];
    const RowId row = rows_[e];
    if (row == kInvalidRow)
        return kInvalidRow;
    if (maxBucket_ == minBucket_)
        return row;

    const std::uint64_t target = bucketCount_[minBucket_];
    detachEntry(e);
    attachWithCount(e, target, minBucket_);
    return row;
}

bool
CbsTable::resetRowToMin(RowId row)
{
    const std::uint32_t slot = indexFind(row);
    if (slot == kNone)
        return false;
    const std::uint32_t e = index_[slot].entry;
    if (entryBucket_[e] == minBucket_)
        return true;
    const std::uint64_t target = bucketCount_[minBucket_];
    detachEntry(e);
    attachWithCount(e, target, minBucket_);
    return true;
}

void
CbsTable::clear()
{
    resetState();
}

std::vector<CbsTable::Entry>
CbsTable::entries() const
{
    std::vector<Entry> out;
    out.reserve(size_);
    for (std::uint32_t e = 0; e < capacity_; ++e) {
        if (rows_[e] != kInvalidRow)
            out.push_back(Entry{rows_[e], counts_[e]});
    }
    return out;
}

std::uint64_t
CbsTable::wrappedValue(RowId row) const
{
    const std::uint64_t mask = (counterBits_ >= 64)
                                   ? ~0ull
                                   : ((1ull << counterBits_) - 1);
    return estimate(row) & mask;
}

bool
CbsTable::wrappedLess(std::uint64_t a, std::uint64_t b, std::uint32_t bits)
{
    MITHRIL_ASSERT(bits >= 2 && bits <= 64);
    const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
    const std::uint64_t diff = (a - b) & mask;
    const std::uint64_t half = 1ull << (bits - 1);
    return diff != 0 && diff >= half;
}

bool
CbsTable::hotStateCacheAligned() const
{
    const auto aligned = [](const void *p) {
        return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
    };
    return aligned(rows_) && aligned(counts_) && aligned(entryBucket_) &&
           aligned(entryPrev_) && aligned(entryNext_) &&
           aligned(bucketCount_) && aligned(bucketHead_) &&
           aligned(bucketPrev_) && aligned(bucketNext_) &&
           aligned(bucketSize_) && aligned(index_);
}

bool
CbsTable::checkInvariants() const
{
    // Bucket list strictly ascending, consistent linkage, sizes match.
    std::uint32_t seen_entries = 0;
    std::uint32_t prev_bucket = kNone;
    std::uint64_t prev_count = 0;
    bool first = true;
    for (std::uint32_t b = minBucket_; b != kNone; b = bucketNext_[b]) {
        if (bucketPrev_[b] != prev_bucket)
            return false;
        if (!first && bucketCount_[b] <= prev_count)
            return false;
        if (bucketSize_[b] == 0)
            return false;
        std::uint32_t n = 0;
        std::uint32_t prev_e = kNone;
        for (std::uint32_t e = bucketHead_[b]; e != kNone;
             e = entryNext_[e]) {
            if (entryBucket_[e] != b)
                return false;
            if (entryPrev_[e] != prev_e)
                return false;
            if (counts_[e] != bucketCount_[b])
                return false;
            prev_e = e;
            ++n;
            if (n > capacity_)
                return false;
        }
        if (n != bucketSize_[b])
            return false;
        seen_entries += n;
        prev_bucket = b;
        prev_count = bucketCount_[b];
        first = false;
    }
    if (prev_bucket != maxBucket_)
        return false;
    if (seen_entries != capacity_)
        return false;

    // Index consistency: every occupied slot maps to a live entry AND
    // is reachable by its probe chain (no break left by a bad
    // backward-shift delete).
    std::uint32_t occupied = 0;
    for (std::uint32_t i = 0; i <= indexMask_; ++i) {
        const RowId row = index_[i].row;
        if (row == kInvalidRow)
            continue;
        ++occupied;
        const std::uint32_t e = index_[i].entry;
        if (e >= capacity_ || rows_[e] != row)
            return false;
        for (std::uint32_t p = hashRow(row) & indexMask_;;
             p = (p + 1) & indexMask_) {
            if (p == i)
                break;
            if (index_[p].row == kInvalidRow)
                return false;
        }
    }
    if (occupied != indexCount_)
        return false;

    std::uint32_t valid = 0;
    for (std::uint32_t e = 0; e < capacity_; ++e) {
        if (rows_[e] != kInvalidRow) {
            ++valid;
            if (indexFind(rows_[e]) == kNone)
                return false;
        }
    }
    return valid == size_ && valid == indexCount_;
}

} // namespace mithril::core
