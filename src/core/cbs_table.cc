#include "cbs_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::core
{

CbsTable::CbsTable(std::uint32_t n_entry, std::uint32_t counter_bits)
    : capacity_(n_entry), counterBits_(counter_bits)
{
    MITHRIL_ASSERT(capacity_ > 0);
    MITHRIL_ASSERT(counter_bits >= 2 && counter_bits <= 64);

    rows_.assign(capacity_, kInvalidRow);
    counts_.assign(capacity_, 0);
    entryBucket_.assign(capacity_, 0);
    entryPrev_.assign(capacity_, kNone);
    entryNext_.assign(capacity_, kNone);

    // Like the hardware, the table is always "full": every entry exists
    // from the start with counter 0 and an invalid row address. One
    // bucket (count 0) initially holds all entries.
    bucketCount_.assign(1, 0);
    bucketHead_.assign(1, 0);
    bucketPrev_.assign(1, kNone);
    bucketNext_.assign(1, kNone);
    bucketSize_.assign(1, capacity_);

    for (std::uint32_t e = 0; e < capacity_; ++e) {
        entryPrev_[e] = (e == 0) ? kNone : e - 1;
        entryNext_[e] = (e + 1 == capacity_) ? kNone : e + 1;
    }
    minBucket_ = 0;
    maxBucket_ = 0;
}

std::uint32_t
CbsTable::allocBucket(std::uint64_t count)
{
    std::uint32_t b;
    if (bucketFree_ != kNone) {
        b = bucketFree_;
        bucketFree_ = bucketNext_[b];
    } else {
        b = static_cast<std::uint32_t>(bucketCount_.size());
        bucketCount_.push_back(0);
        bucketHead_.push_back(kNone);
        bucketPrev_.push_back(kNone);
        bucketNext_.push_back(kNone);
        bucketSize_.push_back(0);
    }
    bucketCount_[b] = count;
    bucketHead_[b] = kNone;
    bucketPrev_[b] = kNone;
    bucketNext_[b] = kNone;
    bucketSize_[b] = 0;
    return b;
}

void
CbsTable::freeBucket(std::uint32_t b)
{
    bucketNext_[b] = bucketFree_;
    bucketFree_ = b;
}

void
CbsTable::detachEntry(std::uint32_t e)
{
    const std::uint32_t b = entryBucket_[e];
    const std::uint32_t prev = entryPrev_[e];
    const std::uint32_t next = entryNext_[e];
    if (prev != kNone)
        entryNext_[prev] = next;
    else
        bucketHead_[b] = next;
    if (next != kNone)
        entryPrev_[next] = prev;
    entryPrev_[e] = kNone;
    entryNext_[e] = kNone;
    --bucketSize_[b];

    if (bucketSize_[b] == 0) {
        const std::uint32_t bp = bucketPrev_[b];
        const std::uint32_t bn = bucketNext_[b];
        if (bp != kNone)
            bucketNext_[bp] = bn;
        else
            minBucket_ = bn;
        if (bn != kNone)
            bucketPrev_[bn] = bp;
        else
            maxBucket_ = bp;
        freeBucket(b);
    }
}

void
CbsTable::attachWithCount(std::uint32_t e, std::uint64_t count,
                          std::uint32_t hint_bucket)
{
    // Find the bucket with this count, or the position to create it,
    // scanning forward from the hint (which is at most one step away in
    // every call pattern used by this class).
    std::uint32_t prev = kNone;
    std::uint32_t cur = (hint_bucket != kNone) ? hint_bucket : minBucket_;
    if (cur != kNone && bucketCount_[cur] > count) {
        // Walk back to the start; only happens when hint is past the
        // target (reset-to-min paths pass minBucket_, so this is rare).
        cur = minBucket_;
    }
    while (cur != kNone && bucketCount_[cur] < count) {
        prev = cur;
        cur = bucketNext_[cur];
    }

    std::uint32_t target;
    if (cur != kNone && bucketCount_[cur] == count) {
        target = cur;
    } else {
        target = allocBucket(count);
        bucketPrev_[target] = prev;
        bucketNext_[target] = cur;
        if (prev != kNone)
            bucketNext_[prev] = target;
        else
            minBucket_ = target;
        if (cur != kNone)
            bucketPrev_[cur] = target;
        else
            maxBucket_ = target;
    }

    entryBucket_[e] = target;
    entryPrev_[e] = kNone;
    entryNext_[e] = bucketHead_[target];
    if (bucketHead_[target] != kNone)
        entryPrev_[bucketHead_[target]] = e;
    bucketHead_[target] = e;
    ++bucketSize_[target];
    counts_[e] = count;
}

std::uint32_t
CbsTable::lookupOrEvict(RowId row)
{
    auto it = index_.find(row);
    if (it != index_.end())
        return it->second;
    // Miss: evict the head of the minimum bucket and rename it.
    const std::uint32_t e = bucketHead_[minBucket_];
    if (rows_[e] != kInvalidRow) {
        index_.erase(rows_[e]);
        ++evictions_;
    } else {
        ++size_;
    }
    ++inserts_;
    rows_[e] = row;
    index_[row] = e;
    return e;
}

std::uint64_t
CbsTable::touch(RowId row)
{
    ++touches_;
    return incrementEntry(lookupOrEvict(row));
}

std::uint64_t
CbsTable::touchFast(RowId row)
{
    ++touches_;
    std::uint32_t e;
    if (cacheRow_[0] == row && rows_[cacheEntry_[0]] == row) {
        e = cacheEntry_[0];
    } else if (cacheRow_[1] == row && rows_[cacheEntry_[1]] == row) {
        e = cacheEntry_[1];
        // Promote to way 0 so an alternating pair always hits.
        cacheRow_[1] = cacheRow_[0];
        cacheEntry_[1] = cacheEntry_[0];
        cacheRow_[0] = row;
        cacheEntry_[0] = e;
    } else {
        e = lookupOrEvict(row);
        cacheRow_[1] = cacheRow_[0];
        cacheEntry_[1] = cacheEntry_[0];
        cacheRow_[0] = row;
        cacheEntry_[0] = e;
    }
    return incrementEntry(e);
}

std::size_t
CbsTable::touchRun(const RowId *rows, std::size_t n,
                   std::uint64_t divisor, bool *hit)
{
    if (hit)
        *hit = false;
    // Divisibility by multiplication (Lemire & Kaser): for d >= 2,
    // x % d == 0  iff  x * M <= M - 1 (mod 2^64), M = 2^64/d + 1.
    const bool check = divisor > 1;
    const std::uint64_t magic = check ? (~0ull / divisor + 1) : 0;
    RowId cr0 = cacheRow_[0], cr1 = cacheRow_[1];
    std::uint32_t ce0 = cacheEntry_[0], ce1 = cacheEntry_[1];
    std::size_t i = 0;
    while (i < n) {
        const RowId row = rows[i];
        ++i;
        std::uint32_t e;
        if (cr0 == row && rows_[ce0] == row) {
            e = ce0;
        } else {
            if (cr1 == row && rows_[ce1] == row) {
                e = ce1;
            } else {
                e = lookupOrEvict(row);
            }
            cr1 = cr0;
            ce1 = ce0;
            cr0 = row;
            ce0 = e;
        }
        const std::uint64_t est = incrementEntry(e);
        if (divisor == 1 || (check && est * magic <= magic - 1)) {
            if (hit)
                *hit = true;
            break;
        }
    }
    touches_ += i;
    cacheRow_[0] = cr0;
    cacheRow_[1] = cr1;
    cacheEntry_[0] = ce0;
    cacheEntry_[1] = ce1;
    return i;
}

std::uint64_t
CbsTable::incrementEntry(std::uint32_t e)
{
    // Increment: move the entry from its bucket (count c) into the
    // bucket with count c+1.
    const std::uint32_t b = entryBucket_[e];
    const std::uint64_t target = counts_[e] + 1;
    const std::uint32_t next = bucketNext_[b];

    if (bucketSize_[b] == 1 &&
        (next == kNone || bucketCount_[next] > target)) {
        // Singleton bucket and no collision ahead: bump in place.
        bucketCount_[b] = target;
        counts_[e] = target;
    } else if (next != kNone && bucketCount_[next] == target) {
        detachEntry(e);
        entryBucket_[e] = next;
        entryPrev_[e] = kNone;
        entryNext_[e] = bucketHead_[next];
        if (bucketHead_[next] != kNone)
            entryPrev_[bucketHead_[next]] = e;
        bucketHead_[next] = e;
        ++bucketSize_[next];
        counts_[e] = target;
    } else {
        // Need a fresh bucket between b and next. b survives because it
        // holds at least one other entry.
        detachEntry(e);
        attachWithCount(e, target, b);
    }
    return counts_[e];
}

bool
CbsTable::contains(RowId row) const
{
    return index_.count(row) > 0;
}

std::uint64_t
CbsTable::estimate(RowId row) const
{
    auto it = index_.find(row);
    if (it != index_.end())
        return counts_[it->second];
    return minValue();
}

std::uint64_t
CbsTable::minValue() const
{
    return bucketCount_[minBucket_];
}

std::uint64_t
CbsTable::maxValue() const
{
    return bucketCount_[maxBucket_];
}

RowId
CbsTable::maxRow() const
{
    const std::uint32_t e = bucketHead_[maxBucket_];
    return rows_[e];
}

RowId
CbsTable::resetMaxToMin()
{
    const std::uint32_t e = bucketHead_[maxBucket_];
    const RowId row = rows_[e];
    if (row == kInvalidRow)
        return kInvalidRow;
    if (maxBucket_ == minBucket_)
        return row;

    const std::uint64_t target = bucketCount_[minBucket_];
    detachEntry(e);
    attachWithCount(e, target, minBucket_);
    return row;
}

bool
CbsTable::resetRowToMin(RowId row)
{
    auto it = index_.find(row);
    if (it == index_.end())
        return false;
    const std::uint32_t e = it->second;
    if (entryBucket_[e] == minBucket_)
        return true;
    const std::uint64_t target = bucketCount_[minBucket_];
    detachEntry(e);
    attachWithCount(e, target, minBucket_);
    return true;
}

void
CbsTable::clear()
{
    const std::uint32_t cap = capacity_;
    const std::uint32_t bits = counterBits_;
    *this = CbsTable(cap, bits);
}

std::vector<CbsTable::Entry>
CbsTable::entries() const
{
    std::vector<Entry> out;
    out.reserve(size_);
    for (std::uint32_t e = 0; e < capacity_; ++e) {
        if (rows_[e] != kInvalidRow)
            out.push_back(Entry{rows_[e], counts_[e]});
    }
    return out;
}

std::uint64_t
CbsTable::wrappedValue(RowId row) const
{
    const std::uint64_t mask = (counterBits_ >= 64)
                                   ? ~0ull
                                   : ((1ull << counterBits_) - 1);
    return estimate(row) & mask;
}

bool
CbsTable::wrappedLess(std::uint64_t a, std::uint64_t b, std::uint32_t bits)
{
    MITHRIL_ASSERT(bits >= 2 && bits <= 64);
    const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
    const std::uint64_t diff = (a - b) & mask;
    const std::uint64_t half = 1ull << (bits - 1);
    return diff != 0 && diff >= half;
}

bool
CbsTable::checkInvariants() const
{
    // Bucket list strictly ascending, consistent linkage, sizes match.
    std::uint32_t seen_entries = 0;
    std::uint32_t prev_bucket = kNone;
    std::uint64_t prev_count = 0;
    bool first = true;
    for (std::uint32_t b = minBucket_; b != kNone; b = bucketNext_[b]) {
        if (bucketPrev_[b] != prev_bucket)
            return false;
        if (!first && bucketCount_[b] <= prev_count)
            return false;
        if (bucketSize_[b] == 0)
            return false;
        std::uint32_t n = 0;
        std::uint32_t prev_e = kNone;
        for (std::uint32_t e = bucketHead_[b]; e != kNone;
             e = entryNext_[e]) {
            if (entryBucket_[e] != b)
                return false;
            if (entryPrev_[e] != prev_e)
                return false;
            if (counts_[e] != bucketCount_[b])
                return false;
            prev_e = e;
            ++n;
            if (n > capacity_)
                return false;
        }
        if (n != bucketSize_[b])
            return false;
        seen_entries += n;
        prev_bucket = b;
        prev_count = bucketCount_[b];
        first = false;
    }
    if (prev_bucket != maxBucket_)
        return false;
    if (seen_entries != capacity_)
        return false;

    // Index consistency.
    for (const auto &[row, e] : index_) {
        if (e >= capacity_ || rows_[e] != row)
            return false;
    }
    std::uint32_t valid = 0;
    for (std::uint32_t e = 0; e < capacity_; ++e) {
        if (rows_[e] != kInvalidRow) {
            ++valid;
            if (!index_.count(rows_[e]))
                return false;
        }
    }
    return valid == size_ && valid == index_.size();
}

} // namespace mithril::core
