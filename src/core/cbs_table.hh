/**
 * @file
 * Counter-based Summary (CbS) table — the tracking structure at the
 * heart of Mithril (Section III-C).
 *
 * This is the Misra-Gries / Space-Saving frequent-items summary: a fixed
 * set of (row address, counter) entries. A hit increments the entry's
 * counter; a miss evicts the entry holding the table-wide minimum,
 * renames it to the new row, and increments it. The estimated count of
 * an on-table row is its counter; of an off-table row, the table
 * minimum. The two CbS bounds the paper relies on are
 *
 *   (1)  actual <= estimated                      (lower bound on est)
 *   (2)  estimated <= actual + min                (upper bound on est)
 *
 * which make the greedy max-selection + decrement-to-min operation of
 * Mithril sound.
 *
 * Implementation: the classic stream-summary structure — entries grouped
 * into buckets of equal count, buckets kept in a doubly linked list in
 * ascending count order — giving O(1) hit, miss, min, max, and
 * reset-max-to-min operations. MinPtr/MaxPtr of the paper's hardware are
 * the first/last buckets of the list.
 *
 * Memory layout: every array (entries, buckets, and the row->entry
 * index) lives in ONE cache-line-aligned arena sized at construction,
 * and the index is a fixed-capacity open-addressing table (linear
 * probing, backward-shift deletion) instead of a node-based hash map.
 * Consequences the sharded engine depends on: steady-state operation —
 * including every eviction and clear() — performs zero heap
 * allocations (no cross-shard allocator contention), and no hot
 * CbsTable state shares a cache line with another shard's.
 *
 * Counters are kept as absolute 64-bit values internally; the hardware's
 * *wrapping* counters (Section IV-E) are equivalent as long as the
 * max-min spread stays below half the counter range, which Theorem 1
 * guarantees. wrappedValue()/wrappedLess() expose the hardware semantics
 * for verification.
 */

#ifndef MITHRIL_CORE_CBS_TABLE_HH
#define MITHRIL_CORE_CBS_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace mithril::core
{

/** Fixed-capacity Counter-based Summary with O(1) operations. */
class CbsTable
{
  public:
    /** One (row, counter) pair as seen from outside. */
    struct Entry
    {
        RowId row;
        std::uint64_t count;
    };

    /**
     * @param n_entry      Number of table entries (Nentry).
     * @param counter_bits Width of the hardware wrapping counter; used
     *                     only by the wrapped-view helpers.
     */
    explicit CbsTable(std::uint32_t n_entry, std::uint32_t counter_bits = 32);

    CbsTable(CbsTable &&) noexcept = default;
    CbsTable &operator=(CbsTable &&) noexcept = default;
    CbsTable(const CbsTable &) = delete;
    CbsTable &operator=(const CbsTable &) = delete;

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const { return size_; }
    std::uint32_t counterBits() const { return counterBits_; }

    /**
     * Process one activation of the given row (hit increment or
     * min-eviction insert). Returns the row's new estimated count.
     */
    std::uint64_t touch(RowId row);

    /**
     * touch() with a 2-way row->entry cache in front of the hash
     * index — the batched-dispatch hot path. Hammer patterns
     * alternate between a handful of rows, so the cache converts the
     * dominant hash lookup into two compares. Value-identical to
     * touch() (the cache is validated against the entry array, so
     * evictions/renames can never serve a stale hit).
     */
    std::uint64_t touchFast(RowId row);

    /**
     * Batched touch: process rows[0..n) with the cache ways held in
     * registers. With `divisor` > 0, stop after (and including) the
     * first touch whose new estimate is a multiple of `divisor` —
     * the Graphene-family ARR/buffer trigger, evaluated without a
     * per-touch division (Lemire divisibility) — and set *hit.
     * Runs of cache hits are classified in one SIMD sweep
     * (simd::pairMatchPrefix): no eviction can rename an entry inside
     * a hit run, so the two ways stay valid for its whole length.
     * Returns the number of rows touched; value-identical to calling
     * touch() that many times.
     */
    std::size_t touchRun(const RowId *rows, std::size_t n,
                         std::uint64_t divisor = 0,
                         bool *hit = nullptr);

    /** True when the row currently occupies a table entry. */
    bool contains(RowId row) const;

    /**
     * Estimated count: the entry counter for an on-table row, the table
     * minimum for an off-table row.
     */
    std::uint64_t estimate(RowId row) const;

    /** Table-wide minimum counter (0 while unfilled slots remain). */
    std::uint64_t minValue() const;

    /** Table-wide maximum counter (0 when empty). */
    std::uint64_t maxValue() const;

    /** A row holding the maximum counter (kInvalidRow when empty). */
    RowId maxRow() const;

    /** MaxPtr - MinPtr spread; the adaptive-refresh signal (Sec. V-A). */
    std::uint64_t spread() const { return maxValue() - minValue(); }

    /**
     * Greedy-selection reset: lower the maximum entry's counter to the
     * current table minimum (the post-preventive-refresh adjustment of
     * Section IV-B). Returns the row that was selected, or kInvalidRow
     * when the table is empty.
     */
    RowId resetMaxToMin();

    /** Reset the given on-table row's counter to the table minimum. */
    bool resetRowToMin(RowId row);

    /** Remove every entry (used only by baselines with table resets).
     *  Resets in place — never touches the allocator. */
    void clear();

    /** Snapshot of all entries (unspecified order). */
    std::vector<Entry> entries() const;

    /** Counter value under the hardware's wrapping-counter view. */
    std::uint64_t wrappedValue(RowId row) const;

    /**
     * Hardware comparison of two wrapped counter values: a < b in the
     * modular sense, valid while |a-b| < 2^(bits-1).
     */
    static bool wrappedLess(std::uint64_t a, std::uint64_t b,
                            std::uint32_t bits);

    /**
     * Verify internal structure invariants (bucket ordering, linkage,
     * index consistency). For tests; returns false on corruption.
     */
    bool checkInvariants() const;

    /** True when every hot arena array starts on its own cache line
     *  (the padding guarantee the sharded engine relies on). */
    bool hotStateCacheAligned() const;

    /** Total touch operations processed. */
    std::uint64_t touches() const { return touches_; }

    /** Rows ever installed into an entry (misses). */
    std::uint64_t inserts() const { return inserts_; }

    /** Installed rows that displaced a live minimum entry. */
    std::uint64_t evictions() const { return evictions_; }

  private:
    static constexpr std::uint32_t kNone = 0xffffffffu;

    /** Open-addressing index slot; row == kInvalidRow marks empty. */
    struct IndexSlot
    {
        RowId row;
        std::uint32_t entry;
    };

    /** 32-bit finalizer (murmur3 fmix32) for the index hash. */
    static std::uint32_t hashRow(RowId row)
    {
        std::uint32_t h = row;
        h ^= h >> 16;
        h *= 0x85ebca6bu;
        h ^= h >> 13;
        h *= 0xc2b2ae35u;
        h ^= h >> 16;
        return h;
    }

    /** Carve every array out of one 64-byte-aligned arena. */
    void layoutArena();

    /** Reset all arrays to the freshly-constructed state (no
     *  allocation; shared by the constructor and clear()). */
    void resetState();

    // Flat-index primitives (load factor <= 1/2 by construction, so
    // linear probing always terminates at an empty slot).
    std::uint32_t indexFind(RowId row) const;
    void indexInsert(RowId row, std::uint32_t entry);
    void indexErase(RowId row);

    /** Hit-or-evict lookup shared by touch()/touchFast(): the entry
     *  now holding `row` (index updated on eviction). */
    std::uint32_t lookupOrEvict(RowId row);

    /** The counter-increment bucket dance for entry e; returns the
     *  new count. */
    std::uint64_t incrementEntry(std::uint32_t e);

    /**
     * Add k to entry e in one bucket move — the bulk form of k
     * incrementEntry() calls. Final-state-identical to the sequential
     * increments: an entry's resting place depends only on its final
     * count (transits through intermediate buckets leave no trace),
     * and the caller orders the per-entry bulk adds so head order in
     * a shared final bucket matches the sequential interleaving.
     */
    void addToEntry(std::uint32_t e, std::uint64_t k);

    /** Detach entry e from its bucket (bucket freed if emptied). */
    void detachEntry(std::uint32_t e);

    /** Attach entry e to a bucket holding exactly `count`, known to
     *  belong adjacent to bucket hint (searched locally). */
    void attachWithCount(std::uint32_t e, std::uint64_t count,
                         std::uint32_t hint_bucket);

    std::uint32_t allocBucket(std::uint64_t count);
    void freeBucket(std::uint32_t b);

    std::uint32_t capacity_;
    std::uint32_t counterBits_;
    std::uint32_t size_ = 0;
    std::uint64_t touches_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t evictions_ = 0;

    /** Backing storage for every array below (single allocation). */
    std::unique_ptr<std::byte[]> arena_;

    // Entry arrays (index = entry id), in the arena.
    RowId *rows_ = nullptr;
    std::uint64_t *counts_ = nullptr;
    std::uint32_t *entryBucket_ = nullptr;
    std::uint32_t *entryPrev_ = nullptr;
    std::uint32_t *entryNext_ = nullptr;

    // Bucket arrays (index = bucket id), free-listed, in the arena.
    // At most capacity buckets are live (plus one in flight), so
    // bucketCap_ = capacity + 2 never overflows.
    std::uint64_t *bucketCount_ = nullptr;
    std::uint32_t *bucketHead_ = nullptr;
    std::uint32_t *bucketPrev_ = nullptr;
    std::uint32_t *bucketNext_ = nullptr;
    std::uint32_t *bucketSize_ = nullptr;
    std::uint32_t bucketCap_ = 0;
    std::uint32_t bucketUsed_ = 0;  //!< High-water of allocated ids.
    std::uint32_t bucketFree_ = kNone;

    // Open-addressing row->entry index, in the arena.
    IndexSlot *index_ = nullptr;
    std::uint32_t indexMask_ = 0;
    std::uint32_t indexCount_ = 0;

    std::uint32_t minBucket_ = kNone;  //!< MinPtr.
    std::uint32_t maxBucket_ = kNone;  //!< MaxPtr.

    /** touchFast() front cache: last two (row, entry) pairs, way 0
     *  most recent. Validated against rows_ before use. */
    RowId cacheRow_[2] = {kInvalidRow, kInvalidRow};
    std::uint32_t cacheEntry_[2] = {0, 0};
};

} // namespace mithril::core

#endif // MITHRIL_CORE_CBS_TABLE_HH
