#include "config_solver.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/bounds.hh"

namespace mithril::core
{

std::uint32_t
ceilLog2(std::uint64_t x)
{
    MITHRIL_ASSERT(x >= 1);
    std::uint32_t bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

ConfigSolver::ConfigSolver(const dram::Timing &timing,
                           const dram::Geometry &geometry)
    : timing_(timing), rowBits_(ceilLog2(geometry.rowsPerBank))
{
}

std::uint64_t
ConfigSolver::minEntries(std::uint32_t flip_th, std::uint32_t rfm_th,
                         std::uint32_t ad_th, double effect) const
{
    MITHRIL_ASSERT(flip_th > 0 && rfm_th > 0 && effect > 0.0);
    const double target = static_cast<double>(flip_th) / effect;
    const double w =
        static_cast<double>(windowIntervals(timing_, rfm_th));
    const double th = static_cast<double>(rfm_th);
    const double ad = static_cast<double>(ad_th);

    // Scan N upward with an incremental harmonic sum. M is dominated by
    // the (W-2)/N term for small N and by the harmonic term for large
    // N; once the harmonic part alone crosses the target the search
    // cannot succeed.
    double h = 0.0;          // H_n
    double h_nstar = 0.0;    // H_{n*}; recomputed cheaply since n* <= n
    std::uint64_t nstar_prev = 0;
    for (std::uint64_t n = 1; n <= (1ull << 24); ++n) {
        h += 1.0 / static_cast<double>(n);
        double m;
        if (ad_th == 0) {
            m = th * h + th / static_cast<double>(n) * (w - 2.0);
            if (th * h >= target)
                return 0;
        } else {
            const std::uint64_t n_star = adaptiveNStar(
                static_cast<std::uint32_t>(n), rfm_th, ad_th);
            while (nstar_prev < n_star) {
                ++nstar_prev;
                h_nstar += 1.0 / static_cast<double>(nstar_prev);
            }
            const double nd = static_cast<double>(n);
            const double ns = static_cast<double>(n_star);
            m = th * h_nstar +
                ((w - ns + nd - 2.0) * th + (nd - ns) * ad) / nd;
            if (th * h_nstar >= target && n_star == n)
                return 0;
        }
        if (m < target)
            return n;
    }
    return 0;
}

std::optional<MithrilConfig>
ConfigSolver::solve(std::uint32_t flip_th, std::uint32_t rfm_th,
                    std::uint32_t ad_th, double effect) const
{
    const std::uint64_t n = minEntries(flip_th, rfm_th, ad_th, effect);
    if (n == 0)
        return std::nullopt;

    MithrilConfig cfg{};
    cfg.flipTh = flip_th;
    cfg.nEntry = static_cast<std::uint32_t>(n);
    cfg.rfmTh = rfm_th;
    cfg.adTh = ad_th;
    cfg.rowBits = rowBits_;
    cfg.bound = theorem2Bound(timing_, cfg.nEntry, rfm_th, ad_th);
    cfg.counterBits =
        wrappingCounterBits(timing_, cfg.nEntry, rfm_th, ad_th);
    return cfg;
}

std::vector<MithrilConfig>
ConfigSolver::sweepRfmTh(std::uint32_t flip_th,
                         const std::vector<std::uint32_t> &rfm_ths,
                         std::uint32_t ad_th) const
{
    std::vector<MithrilConfig> out;
    for (std::uint32_t th : rfm_ths) {
        auto cfg = solve(flip_th, th, ad_th);
        if (cfg)
            out.push_back(*cfg);
    }
    return out;
}

} // namespace mithril::core
