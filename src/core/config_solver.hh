/**
 * @file
 * Mithril configuration solver (Section IV-D, Figure 6).
 *
 * For a target FlipTH, many (Nentry, RFM_TH) pairs satisfy the Theorem 1
 * condition M < FlipTH/2. The solver finds the smallest table for a
 * given RFM_TH (and optional adaptive-refresh AdTH via Theorem 2), and
 * produces the feasibility curves of Figure 6.
 */

#ifndef MITHRIL_CORE_CONFIG_SOLVER_HH
#define MITHRIL_CORE_CONFIG_SOLVER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "dram/timing.hh"

namespace mithril::core
{

/** A concrete, provably safe Mithril configuration. */
struct MithrilConfig
{
    std::uint32_t flipTh;       //!< Target RH threshold.
    std::uint32_t nEntry;       //!< Counter entries per bank.
    std::uint32_t rfmTh;        //!< RFM threshold the MC must honour.
    std::uint32_t adTh;         //!< Adaptive refresh threshold (0 = off).
    std::uint32_t rowBits;      //!< Row-address CAM width.
    std::uint32_t counterBits;  //!< Wrapping counter width.
    double bound;               //!< M (or M') for this configuration.

    /** Counter-table bytes per bank: Nentry x (rowBits+counterBits). */
    double tableBytes() const
    {
        return static_cast<double>(nEntry) * (rowBits + counterBits) /
               8.0;
    }
};

/** Solver bound to one timing/geometry preset. */
class ConfigSolver
{
  public:
    ConfigSolver(const dram::Timing &timing,
                 const dram::Geometry &geometry);

    /**
     * Smallest Nentry with M(') < flipTh / effect, or 0 when no entry
     * count can satisfy it (harmonic term alone exceeds the target).
     */
    std::uint64_t minEntries(std::uint32_t flip_th, std::uint32_t rfm_th,
                             std::uint32_t ad_th = 0,
                             double effect = 2.0) const;

    /** Full configuration for the minimum table, when feasible. */
    std::optional<MithrilConfig> solve(std::uint32_t flip_th,
                                       std::uint32_t rfm_th,
                                       std::uint32_t ad_th = 0,
                                       double effect = 2.0) const;

    /**
     * Figure 6 sweep: feasible configurations across RFM_TH values for
     * one FlipTH. Infeasible RFM_TH points are skipped.
     */
    std::vector<MithrilConfig>
    sweepRfmTh(std::uint32_t flip_th,
               const std::vector<std::uint32_t> &rfm_ths,
               std::uint32_t ad_th = 0) const;

    const dram::Timing &timing() const { return timing_; }

  private:
    dram::Timing timing_;
    std::uint32_t rowBits_;
};

/** ceil(log2(x)) for x >= 1. */
std::uint32_t ceilLog2(std::uint64_t x);

} // namespace mithril::core

#endif // MITHRIL_CORE_CONFIG_SOLVER_HH
