#include "mithril.hh"

#include "common/logging.hh"

namespace mithril::core
{

Mithril::Mithril(std::uint32_t num_banks, const MithrilParams &params)
    : params_(params)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nEntry > 0);
    MITHRIL_ASSERT(params_.rfmTh > 0);
    tables_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        tables_.emplace_back(params_.nEntry, params_.counterBits);
}

std::string
Mithril::name() const
{
    return params_.plusMode ? "Mithril+" : "Mithril";
}

void
Mithril::onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors)
{
    (void)now;
    (void)arr_aggressors;  // Mithril never requests ARR.
    tables_.at(bank).touch(row);
    countOp();
}

void
Mithril::onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
{
    (void)now;
    CbsTable &table = tables_.at(bank);
    countOp();  // MaxPtr lookup / spread comparison.

    if (params_.adTh > 0 && table.spread() <= params_.adTh) {
        ++adaptiveSkips_;
        return;
    }
    const RowId target = table.resetMaxToMin();
    if (target == kInvalidRow)
        return;  // Empty table: nothing has ever been activated.
    aggressors.push_back(target);
}

bool
Mithril::rfmPending(BankId bank) const
{
    if (!params_.plusMode)
        return true;
    // The mode-register flag: set when a preventive refresh would
    // actually happen on the next RFM.
    const CbsTable &table = tables_.at(bank);
    return params_.adTh == 0 || table.spread() > params_.adTh;
}

double
Mithril::tableBytesPerBank() const
{
    return static_cast<double>(params_.nEntry) *
           (params_.rowBits + params_.counterBits) / 8.0;
}

} // namespace mithril::core
