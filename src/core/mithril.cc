#include "mithril.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "registry/scheme_registry.hh"
#include "telemetry/event_trace.hh"
#include "telemetry/metric_sheet.hh"

namespace mithril::core
{

Mithril::Mithril(std::uint32_t num_banks, const MithrilParams &params)
    : params_(params)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nEntry > 0);
    MITHRIL_ASSERT(params_.rfmTh > 0);
    tables_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        tables_.emplace_back(params_.nEntry, params_.counterBits);
}

std::string
Mithril::name() const
{
    return params_.plusMode ? "Mithril+" : "Mithril";
}

void
Mithril::onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors)
{
    (void)arr_aggressors;  // Mithril never requests ARR.
    CbsTable &table = tables_.at(bank);
    if (eventRecorder_) {
        const std::uint64_t inserts = table.inserts();
        const std::uint64_t evictions = table.evictions();
        table.touch(row);
        if (table.evictions() != evictions) {
            eventRecorder_->record(telemetry::EventKind::CbsEvict,
                                   now, bank, row);
        } else if (table.inserts() != inserts) {
            eventRecorder_->record(telemetry::EventKind::CbsInsert,
                                   now, bank, row);
        }
    } else {
        table.touch(row);
    }
    countOp();
}

std::size_t
Mithril::onActivateBatch(const trackers::ActSpan &span,
                         std::vector<RowId> &arr_aggressors)
{
    // While tracing, take the base scalar loop so per-record table
    // events carry exact ticks; byte-identical in effect by the
    // onActivateBatch() contract (pinned by the equivalence tests).
    if (eventRecorder_)
        return RhProtection::onActivateBatch(span, arr_aggressors);
    (void)arr_aggressors;  // Mithril never requests ARR.
    tables_.at(span.bank).touchRun(span.rows, span.size);
    countOp(span.size);
    return span.size;
}

void
Mithril::onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
{
    (void)now;
    CbsTable &table = tables_.at(bank);
    countOp();  // MaxPtr lookup / spread comparison.

    if (params_.adTh > 0 && table.spread() <= params_.adTh) {
        ++adaptiveSkips_;
        return;
    }
    const RowId target = table.resetMaxToMin();
    if (target == kInvalidRow)
        return;  // Empty table: nothing has ever been activated.
    aggressors.push_back(target);
}

bool
Mithril::rfmPending(BankId bank) const
{
    if (!params_.plusMode)
        return true;
    // The mode-register flag: set when a preventive refresh would
    // actually happen on the next RFM.
    const CbsTable &table = tables_.at(bank);
    return params_.adTh == 0 || table.spread() > params_.adTh;
}

double
Mithril::tableBytesPerBank() const
{
    return static_cast<double>(params_.nEntry) *
           (params_.rowBits + params_.counterBits) / 8.0;
}

void
Mithril::mergeStatsFrom(const trackers::RhProtection &other)
{
    RhProtection::mergeStatsFrom(other);
    adaptiveSkips_ += dynamic_cast<const Mithril &>(other).adaptiveSkips_;
}

void
Mithril::exportMetrics(telemetry::MetricSheet &sheet) const
{
    RhProtection::exportMetrics(sheet);
    std::uint64_t touches = 0, inserts = 0, evictions = 0;
    std::uint64_t spread = 0;
    for (const CbsTable &table : tables_) {
        touches += table.touches();
        inserts += table.inserts();
        evictions += table.evictions();
        spread = std::max(spread, table.spread());
    }
    sheet.setCounter("tracker.cbs.touches", touches);
    sheet.setCounter("tracker.cbs.inserts", inserts);
    sheet.setCounter("tracker.cbs.evictions", evictions);
    sheet.setCounter("tracker.adaptive_skips", adaptiveSkips_);
    sheet.setGauge("tracker.cbs.max_spread",
                   static_cast<double>(spread));
}

std::uint32_t
defaultMithrilRfmTh(std::uint32_t flip_th)
{
    if (flip_th >= 12500)
        return 256;
    if (flip_th >= 6250)
        return 128;
    if (flip_th >= 3125)
        return 64;
    return 32;
}

// ------------------------------------------------------ registration
//
// "none" and the two Mithril variants register here; every other
// scheme registers in its own translation unit.

namespace
{

std::unique_ptr<trackers::RhProtection>
makeMithrilEntry(const ParamSet &params,
                 const registry::SchemeContext &ctx, bool plus_mode)
{
    const auto knobs = registry::SchemeKnobs::fromParams(params);
    const std::uint32_t rfm_th =
        knobs.rfmTh ? knobs.rfmTh : defaultMithrilRfmTh(knobs.flipTh);
    ConfigSolver solver(ctx.timing, ctx.geometry);
    const double effect = aggregatedEffect(knobs.blastRadius);
    auto cfg = solver.solve(knobs.flipTh, rfm_th, knobs.adTh, effect);
    if (!cfg) {
        throw registry::SpecError(
            "Mithril infeasible at flip=" +
            std::to_string(knobs.flipTh) + " rfm=" +
            std::to_string(rfm_th) + " ad=" +
            std::to_string(knobs.adTh) + " blast-radius=" +
            std::to_string(knobs.blastRadius));
    }
    MithrilParams mparams;
    mparams.nEntry = cfg->nEntry;
    mparams.rfmTh = rfm_th;
    mparams.adTh = knobs.adTh;
    mparams.rowBits = ceilLog2(ctx.geometry.rowsPerBank);
    mparams.counterBits = cfg->counterBits;
    mparams.plusMode = plus_mode;
    return std::make_unique<Mithril>(ctx.geometry.totalBanks(),
                                     mparams);
}

const registry::Registrar<registry::SchemeTraits> kRegisterNone{{
    /*name=*/"none",
    /*display=*/"None",
    /*description=*/"unprotected baseline (no tracker)",
    /*aliases=*/{},
    /*uses=*/"",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &, const registry::SchemeContext &)
        -> std::unique_ptr<trackers::RhProtection> { return nullptr; },
}};

const registry::Registrar<registry::SchemeTraits> kRegisterMithril{{
    /*name=*/"mithril",
    /*display=*/"Mithril",
    /*description=*/
    "CbS-tracked RFM scheme sized by the Theorem 1/2 solver",
    /*aliases=*/{},
    /*uses=*/"flip, rfm (0 = paper default), ad, blast-radius",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx) {
        return makeMithrilEntry(params, ctx, false);
    },
}};

const registry::Registrar<registry::SchemeTraits> kRegisterMithrilPlus{{
    /*name=*/"mithril+",
    /*display=*/"Mithril+",
    /*description=*/
    "Mithril with the MRR poll that skips needless RFM commands",
    /*aliases=*/{"mithril_plus"},
    /*uses=*/"flip, rfm (0 = paper default), ad, blast-radius",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx) {
        return makeMithrilEntry(params, ctx, true);
    },
}};

} // namespace

} // namespace mithril::core
