/**
 * @file
 * The Mithril RH-protection scheme (Section IV) and its Mithril+
 * extension (Section V-B).
 *
 * Per bank, Mithril keeps a CbS table (address CAM + count CAM with
 * MaxPtr/MinPtr). Every ACT updates the table; every RFM command
 * greedily selects the MaxPtr row, preventively refreshes its victims,
 * and lowers its counter to the table minimum. With
 * M(Nentry, RFM_TH) < FlipTH/2 (Theorem 1) the scheme is
 * deterministically safe.
 *
 * Adaptive refresh (AdTH > 0): the preventive refresh is skipped when
 * the MaxPtr-MinPtr spread is at most AdTH, which filters the benign
 * large-object-sweep patterns of ordinary workloads (Figure 8) and
 * nearly eliminates the scheme's energy overhead (Figure 7). Safety
 * then follows from the Theorem 2 bound M'.
 *
 * Mithril+ (plusMode): the spread>AdTH flag is exposed through a mode
 * register; the MC polls it with a standard MRR read at every RAA epoch
 * and skips issuing the RFM command entirely when clear, removing the
 * performance overhead as well.
 */

#ifndef MITHRIL_CORE_MITHRIL_HH
#define MITHRIL_CORE_MITHRIL_HH

#include <cstdint>
#include <vector>

#include "core/cbs_table.hh"
#include "trackers/rh_protection.hh"

namespace mithril::core
{

/** Construction parameters for the Mithril logic. */
struct MithrilParams
{
    std::uint32_t nEntry = 512;      //!< CbS entries per bank.
    std::uint32_t rfmTh = 64;        //!< RFM threshold for the MC.
    std::uint32_t adTh = 0;          //!< Adaptive threshold (0 = always
                                     //!< refresh on RFM).
    std::uint32_t rowBits = 16;      //!< Address CAM width.
    std::uint32_t counterBits = 32;  //!< Wrapping counter width.
    bool plusMode = false;           //!< Mithril+ MRR-skip extension.
};

/** Mithril / Mithril+ tracker, one CbS table per bank. */
class Mithril : public trackers::RhProtection
{
  public:
    Mithril(std::uint32_t num_banks, const MithrilParams &params);

    std::string name() const override;
    trackers::Location location() const override
    {
        return trackers::Location::Dram;
    }

    bool usesRfm() const override { return true; }
    std::uint32_t rfmTh() const override { return params_.rfmTh; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: Mithril never requests ARR, so the whole
     *  span collapses into one cached-touch loop per bank table. */
    std::size_t onActivateBatch(const trackers::ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    void onRfm(BankId bank, Tick now,
               std::vector<RowId> &aggressors) override;

    bool rfmPending(BankId bank) const override;

    double tableBytesPerBank() const override;

    void mergeStatsFrom(const trackers::RhProtection &other) override;

    void exportMetrics(telemetry::MetricSheet &sheet) const override;

    /** Direct table access for tests and analysis. */
    const CbsTable &table(BankId bank) const { return tables_.at(bank); }

    const MithrilParams &params() const { return params_; }

    /** RFM commands whose preventive refresh was skipped (adaptive). */
    std::uint64_t adaptiveSkips() const { return adaptiveSkips_; }

  private:
    MithrilParams params_;
    std::vector<CbsTable> tables_;
    std::uint64_t adaptiveSkips_ = 0;
};

/** The paper's default RFM_TH for Mithril at a given FlipTH
 *  (Section VI-A: 256 at >=12.5K, down to 32 at 1.5K). */
std::uint32_t defaultMithrilRfmTh(std::uint32_t flip_th);

} // namespace mithril::core

#endif // MITHRIL_CORE_MITHRIL_HH
