#include "cache.hh"

#include "common/logging.hh"
#include "core/config_solver.hh"

namespace mithril::cpu
{

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    MITHRIL_ASSERT(params_.ways > 0);
    MITHRIL_ASSERT(params_.lineBytes > 0);
    const std::uint64_t lines =
        params_.sizeBytes / params_.lineBytes;
    MITHRIL_ASSERT(lines % params_.ways == 0);
    sets_ = static_cast<std::uint32_t>(lines / params_.ways);
    MITHRIL_ASSERT((sets_ & (sets_ - 1)) == 0);
    lineShift_ = core::ceilLog2(params_.lineBytes);
    lines_.assign(static_cast<std::size_t>(sets_) * params_.ways,
                  Line{});
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr & (sets_ - 1));
    // The full line address is the tag; no information is lost, so a
    // dirty victim's writeback address is exact.
    const std::uint64_t tag = line_addr;
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];

    ++useClock_;
    AccessResult result;

    Line *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || is_write;
            ++hits_;
            result.hit = true;
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        result.writeback = true;
        result.writebackAddr = victim->tag << lineShift_;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lastUse = useClock_;
    return result;
}

Cache::VictimInfo
Cache::peekVictim(Addr addr) const
{
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr & (sets_ - 1));
    const std::uint64_t tag = line_addr;
    const Line *base =
        &lines_[static_cast<std::size_t>(set) * params_.ways];

    VictimInfo info;
    // Mirrors access()'s victim selection exactly (including its
    // preference order between invalid ways) so the preview and the
    // committed access always agree.
    const Line *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        const Line &line = base[w];
        if (line.valid && line.tag == tag) {
            info.hit = true;
            return info;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    if (victim->valid && victim->dirty) {
        info.writeback = true;
        info.writebackAddr = victim->tag << lineShift_;
    }
    return info;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace mithril::cpu
