/**
 * @file
 * Shared last-level cache model (16 MB, 16-way, LRU in the paper's
 * Table III configuration). Misses and dirty evictions become DRAM
 * requests; everything above the LLC is folded into the trace
 * generators' inter-request instruction gaps.
 */

#ifndef MITHRIL_CPU_CACHE_HH
#define MITHRIL_CPU_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mithril::cpu
{

/** LLC construction parameters. */
struct CacheParams
{
    std::uint64_t sizeBytes = 16ull << 20;
    std::uint32_t ways = 16;
    std::uint32_t lineBytes = 64;
};

/** Set-associative write-back cache with LRU replacement. */
class Cache
{
  public:
    /** Outcome of one access. */
    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;  //!< A dirty victim was evicted.
        Addr writebackAddr = 0;
    };

    /** What a miss on addr would evict, computed without mutation. */
    struct VictimInfo
    {
        bool hit = false;        //!< The line is present: no victim.
        bool writeback = false;  //!< The victim would be dirty.
        Addr writebackAddr = 0;
    };

    explicit Cache(const CacheParams &params);

    /** Look up (and on miss, fill) the line holding addr. */
    AccessResult access(Addr addr, bool is_write);

    /**
     * Preview the eviction decision access(addr, *) would make right
     * now, without touching LRU or fill state. Lets the caller reserve
     * downstream resources (e.g. a slot in the writeback's memory
     * channel queue) before committing the access, and retry later
     * with identical cache state if reservation fails.
     */
    VictimInfo peekVictim(Addr addr) const;

    /** Drop every line (used between experiment phases). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    double hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    struct Line
    {
        std::uint64_t tag = ~0ull;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    CacheParams params_;
    std::uint32_t sets_;
    std::uint32_t lineShift_;
    std::vector<Line> lines_;  //!< sets_ x ways, row-major.
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace mithril::cpu

#endif // MITHRIL_CPU_CACHE_HH
