#include "core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::cpu
{

Core::Core(std::uint32_t id, const CoreParams &params,
           workload::TraceGenerator *trace)
    : id_(id), params_(params), trace_(trace)
{
    MITHRIL_ASSERT(params_.width > 0);
    MITHRIL_ASSERT(params_.maxOutstanding > 0);
    MITHRIL_ASSERT(trace_ != nullptr);
    cycleTick_ = nsToTick(1.0 / params_.freqGhz);
}

Tick
Core::tryProgress(Tick now)
{
    MITHRIL_ASSERT(access_ != nullptr);
    while (!done_) {
        if (blockedOnWindow_)
            return kTickMax;  // Woken by onCompletion().

        if (!havePending_) {
            if (retired_ >= params_.instrBudget) {
                done_ = true;
                endTick_ = std::max(readyTick_, now);
                return kTickMax;
            }
            auto rec = trace_->next();
            if (!rec) {
                done_ = true;
                endTick_ = std::max(readyTick_, now);
                return kTickMax;
            }
            pending_ = *rec;
            havePending_ = true;
            // The gap instructions retire at the peak width.
            retired_ += pending_.gap;
            readyTick_ +=
                static_cast<Tick>((pending_.gap + params_.width - 1) /
                                  params_.width) *
                cycleTick_;
        }

        if (now < readyTick_)
            return readyTick_;

        AccessOutcome outcome = access_(id_, pending_, now);
        if (!outcome.accepted)
            return now + params_.retryInterval;

        if (outcome.missOutstanding) {
            ++outstanding_;
            ++retired_;  // The memory instruction itself.
            havePending_ = false;
            if (outstanding_ >= params_.maxOutstanding) {
                blockedOnWindow_ = true;
                return kTickMax;
            }
        } else {
            // LLC hit (or posted write): charge the hit latency to the
            // dependent instruction stream.
            if (!pending_.write)
                readyTick_ += params_.llcHitLatency;
            ++retired_;
            havePending_ = false;
        }
    }
    return kTickMax;
}

void
Core::onCompletion(Tick now)
{
    MITHRIL_ASSERT(outstanding_ > 0);
    --outstanding_;
    if (blockedOnWindow_) {
        blockedOnWindow_ = false;
        // The stalled stream resumes once the window has space.
        readyTick_ = std::max(readyTick_, now);
    }
}

double
Core::elapsedCycles() const
{
    const Tick end = done_ ? endTick_ : readyTick_;
    return static_cast<double>(end) / static_cast<double>(cycleTick_);
}

double
Core::ipc() const
{
    const double cycles = elapsedCycles();
    return cycles > 0.0 ? static_cast<double>(retired_) / cycles : 0.0;
}

} // namespace mithril::cpu
