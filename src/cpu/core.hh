/**
 * @file
 * Trace-driven core model.
 *
 * Approximates the paper's 4-way out-of-order cores with the standard
 * MLP-window abstraction: instructions retire at the peak width until
 * the next memory record is due; LLC misses become DRAM reads that stay
 * outstanding, and the core stalls only when its miss window (ROB MSHR
 * budget) is full. Writes are posted. IPC falls out of instructions
 * retired over elapsed cycles.
 */

#ifndef MITHRIL_CPU_CORE_HH
#define MITHRIL_CPU_CORE_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "workload/trace.hh"

namespace mithril::cpu
{

/** Core construction parameters (Table III defaults). */
struct CoreParams
{
    double freqGhz = 3.6;
    std::uint32_t width = 4;             //!< Peak retire rate.
    std::uint32_t maxOutstanding = 16;   //!< Miss window (MLP).
    Tick llcHitLatency = nsToTick(5.0); //!< Exposed (non-overlapped)
                                        //!< part of an LLC hit.
    std::uint64_t instrBudget = 500000;  //!< Instructions to retire.
    bool excluded = false;               //!< Attacker thread: runs but
                                         //!< its IPC is not reported.
    Tick retryInterval = nsToTick(40.0); //!< MC-queue-full backoff.
};

/** One trace-driven core. */
class Core
{
  public:
    /**
     * The memory-access callback: the System decides LLC hit/miss and
     * enqueues DRAM requests. Returns the outcome the core needs.
     */
    struct AccessOutcome
    {
        bool accepted = true;    //!< False: MC queue full, retry later.
        bool missOutstanding = false;  //!< A read miss now in flight.
    };

    using AccessFn = std::function<AccessOutcome(
        std::uint32_t core_id, const workload::TraceRecord &rec,
        Tick now)>;

    Core(std::uint32_t id, const CoreParams &params,
         workload::TraceGenerator *trace);

    void setAccessFn(AccessFn fn) { access_ = std::move(fn); }

    /**
     * Run the core forward at `now`: retire instructions, issue memory
     * accesses. Returns the next tick the core needs a wakeup, or
     * kTickMax when blocked on a completion / finished.
     */
    Tick tryProgress(Tick now);

    /** A previously issued read miss completed. */
    void onCompletion(Tick now);

    bool done() const { return done_; }
    bool excluded() const { return params_.excluded; }
    std::uint32_t id() const { return id_; }

    std::uint64_t instructionsRetired() const { return retired_; }
    std::uint64_t outstanding() const { return outstanding_; }

    /** Elapsed core cycles from tick 0 to the end of its work. */
    double elapsedCycles() const;

    /** Retired instructions per cycle. */
    double ipc() const;

    /** Ticks per core cycle. */
    Tick cycleTick() const { return cycleTick_; }

  private:
    std::uint32_t id_;
    CoreParams params_;
    workload::TraceGenerator *trace_;
    AccessFn access_;

    Tick cycleTick_;
    Tick readyTick_ = 0;   //!< When the pending record may issue.
    Tick endTick_ = 0;     //!< When the budget was exhausted.
    std::uint64_t retired_ = 0;
    std::uint64_t outstanding_ = 0;
    bool blockedOnWindow_ = false;
    bool done_ = false;
    bool havePending_ = false;
    workload::TraceRecord pending_;
};

} // namespace mithril::cpu

#endif // MITHRIL_CPU_CORE_HH
