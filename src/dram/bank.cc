#include "bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::dram
{

Bank::Bank(const Timing &timing)
    : timing_(timing)
{
}

Tick
Bank::earliestAct(Tick now) const
{
    return std::max(now, nextAct_);
}

Tick
Bank::earliestPre(Tick now) const
{
    return std::max(now, nextPre_);
}

Tick
Bank::earliestCol(Tick now) const
{
    return std::max(now, nextCol_);
}

Tick
Bank::earliestRefresh(Tick now) const
{
    // Refresh needs the bank precharged; model as max of ACT fence (the
    // point where the bank is guaranteed idle and closed).
    return std::max(now, nextAct_);
}

void
Bank::doActivate(Tick t, RowId row)
{
    MITHRIL_ASSERT(!isOpen());
    MITHRIL_ASSERT(t >= nextAct_);
    openRow_ = row;
    ++actCount_;
    nextCol_ = t + timing_.tRCD;
    nextPre_ = t + timing_.tRAS;
    nextAct_ = t + timing_.tRC;
}

void
Bank::doPrecharge(Tick t)
{
    MITHRIL_ASSERT(isOpen());
    MITHRIL_ASSERT(t >= nextPre_);
    openRow_ = kInvalidRow;
    nextAct_ = std::max(nextAct_, t + timing_.tRP);
}

Tick
Bank::doRead(Tick t)
{
    MITHRIL_ASSERT(isOpen());
    MITHRIL_ASSERT(t >= nextCol_);
    nextCol_ = t + timing_.tCCD;
    nextPre_ = std::max(nextPre_, t + timing_.tRTP);
    return t + timing_.tCL + timing_.tBL;
}

Tick
Bank::doWrite(Tick t)
{
    MITHRIL_ASSERT(isOpen());
    MITHRIL_ASSERT(t >= nextCol_);
    nextCol_ = t + timing_.tCCD;
    // Write recovery: data burst lands tCWL+tBL after issue, then tWR
    // must elapse before a precharge.
    nextPre_ = std::max(nextPre_,
                        t + timing_.tCWL + timing_.tBL + timing_.tWR);
    return t + timing_.tCWL + timing_.tBL;
}

void
Bank::doRefresh(Tick t, Tick duration)
{
    MITHRIL_ASSERT(!isOpen());
    MITHRIL_ASSERT(t >= nextAct_);
    nextAct_ = t + duration;
    nextPre_ = t + duration;
    nextCol_ = t + duration;
}

} // namespace mithril::dram
