/**
 * @file
 * Per-bank DRAM state machine enforcing intra-bank timing constraints.
 *
 * The memory controller queries earliestX() to find when a command may
 * legally issue, then calls the matching doX() to commit it. Inter-bank
 * constraints (tRRD/tFAW, command bus) live in Rank/Controller.
 */

#ifndef MITHRIL_DRAM_BANK_HH
#define MITHRIL_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace mithril::dram
{

/** One DRAM bank: row-buffer state plus timing fences. */
class Bank
{
  public:
    explicit Bank(const Timing &timing);

    /** Row currently latched in the row buffer (kInvalidRow if closed). */
    RowId openRow() const { return openRow_; }
    bool isOpen() const { return openRow_ != kInvalidRow; }

    /** Earliest tick an ACT may issue (bank must be precharged). */
    Tick earliestAct(Tick now) const;
    /** Earliest tick a PRE may issue. */
    Tick earliestPre(Tick now) const;
    /** Earliest tick a RD/WR may issue (row must be open). */
    Tick earliestCol(Tick now) const;
    /** Earliest tick a REF/RFM may start (bank precharged and idle). */
    Tick earliestRefresh(Tick now) const;

    /** Commit an ACT at tick t opening the given row. */
    void doActivate(Tick t, RowId row);
    /** Commit a PRE at tick t. */
    void doPrecharge(Tick t);
    /** Commit a RD at tick t; returns the tick the data burst completes. */
    Tick doRead(Tick t);
    /** Commit a WR at tick t; returns the tick the data burst completes. */
    Tick doWrite(Tick t);
    /** Occupy the bank for a refresh-like operation of given duration
     *  (REF uses tRFC, RFM uses tRFM, ARR uses caller-provided time). */
    void doRefresh(Tick t, Tick duration);

    /** Number of ACTs committed to this bank so far. */
    std::uint64_t actCount() const { return actCount_; }

  private:
    const Timing &timing_;
    RowId openRow_ = kInvalidRow;

    Tick nextAct_ = 0;   //!< Earliest next ACT.
    Tick nextPre_ = 0;   //!< Earliest next PRE.
    Tick nextCol_ = 0;   //!< Earliest next RD/WR.
    std::uint64_t actCount_ = 0;
};

} // namespace mithril::dram

#endif // MITHRIL_DRAM_BANK_HH
