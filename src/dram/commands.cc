#include "commands.hh"

namespace mithril::dram
{

const char *
commandName(Command cmd)
{
    switch (cmd) {
      case Command::Act: return "ACT";
      case Command::Pre: return "PRE";
      case Command::Rd:  return "RD";
      case Command::Wr:  return "WR";
      case Command::Ref: return "REF";
      case Command::Rfm: return "RFM";
      case Command::Arr: return "ARR";
      case Command::Mrr: return "MRR";
    }
    return "???";
}

} // namespace mithril::dram
