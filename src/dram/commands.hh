/**
 * @file
 * DRAM command vocabulary shared between the memory controller and the
 * device model.
 */

#ifndef MITHRIL_DRAM_COMMANDS_HH
#define MITHRIL_DRAM_COMMANDS_HH

namespace mithril::dram
{

/** Commands the MC can place on the command bus. */
enum class Command
{
    Act,     //!< Activate a row (opens the row buffer).
    Pre,     //!< Precharge (closes the open row).
    Rd,      //!< Column read burst.
    Wr,      //!< Column write burst.
    Ref,     //!< Auto-refresh (all-bank, tRFC busy).
    Rfm,     //!< Refresh management (per-bank, tRFM busy). DDR5/LPDDR5.
    Arr,     //!< Adjacent-row-refresh (legacy, row-addressed; used only
             //!< by the non-RFM baseline schemes).
    Mrr,     //!< Mode register read (used by Mithril+ to poll the
             //!< refresh-needed flag).
};

/** Human-readable command mnemonic. */
const char *commandName(Command cmd);

} // namespace mithril::dram

#endif // MITHRIL_DRAM_COMMANDS_HH
