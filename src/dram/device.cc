#include "device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::dram
{

Device::Device(const Timing &timing, const Geometry &geometry,
               std::uint32_t flip_th, std::uint32_t blast_radius)
    : timing_(timing), geometry_(geometry),
      oracle_(geometry.totalBanks(), geometry.rowsPerBank, flip_th,
              blast_radius),
      blastRadius_(blast_radius)
{
    const std::uint32_t total_banks = geometry_.totalBanks();
    banks_.reserve(total_banks);
    for (std::uint32_t b = 0; b < total_banks; ++b)
        banks_.emplace_back(timing_);

    const std::uint32_t total_ranks =
        geometry_.channels * geometry_.ranksPerChannel;
    ranks_.reserve(total_ranks);
    for (std::uint32_t r = 0; r < total_ranks; ++r)
        ranks_.emplace_back(timing_);
}

Tick
Device::earliestAct(BankId b, Tick now) const
{
    const Bank &bank = banks_.at(b);
    const RankTiming &rank = ranks_.at(rankOf(b));
    return std::max(bank.earliestAct(now), rank.earliestAct(now));
}

void
Device::activate(BankId b, RowId row, Tick t, std::vector<RowId> &arr_out)
{
    banks_.at(b).doActivate(t, row);
    ranks_.at(rankOf(b)).recordAct(t);
    energy_.addAct();
    // Event-timestamp cursor for oracle flip/near-miss tracing (one
    // dead store when no recorder is attached).
    oracle_.setNow(t);
    oracle_.onActivate(b, row);
    if (actObserver_)
        actObserver_(b, row, t);
    if (tracker_)
        tracker_->onActivate(b, row, t, arr_out);
}

void
Device::precharge(BankId b, Tick t)
{
    banks_.at(b).doPrecharge(t);
    energy_.addPre();
}

Tick
Device::read(BankId b, Tick t)
{
    energy_.addRead();
    return banks_.at(b).doRead(t);
}

Tick
Device::write(BankId b, Tick t)
{
    energy_.addWrite();
    return banks_.at(b).doWrite(t);
}

void
Device::autoRefreshRank(std::uint32_t flat_rank, Tick t)
{
    const std::uint32_t groups = refreshGroups(timing_);
    const std::uint32_t rows_per_group =
        (geometry_.rowsPerBank + groups - 1) / groups;
    const BankId first = flat_rank * geometry_.banksPerRank;
    for (std::uint32_t i = 0; i < geometry_.banksPerRank; ++i) {
        const BankId b = first + i;
        Bank &bank = banks_.at(b);
        // The controller must have closed the bank already.
        MITHRIL_ASSERT(!bank.isOpen());
        bank.doRefresh(std::max(t, bank.earliestRefresh(t)), timing_.tRFC);
        oracle_.onAutoRefresh(b, groups);
        energy_.addRefreshRows(rows_per_group);
        if (tracker_)
            tracker_->onRefresh(b, t);
    }
}

void
Device::autoRefreshBank(BankId b, Tick t)
{
    const std::uint32_t groups = refreshGroups(timing_);
    const std::uint32_t rows_per_group =
        (geometry_.rowsPerBank + groups - 1) / groups;
    Bank &bank = banks_.at(b);
    MITHRIL_ASSERT(!bank.isOpen());
    bank.doRefresh(std::max(t, bank.earliestRefresh(t)),
                   timing_.tRFCsb);
    oracle_.onAutoRefresh(b, groups);
    energy_.addRefreshRows(rows_per_group);
    if (tracker_)
        tracker_->onRefresh(b, t);
}

std::size_t
Device::rfm(BankId b, Tick t)
{
    Bank &bank = banks_.at(b);
    MITHRIL_ASSERT(!bank.isOpen());
    bank.doRefresh(t, timing_.tRFM);
    ++rfmCount_;

    scratch_.reset();
    if (tracker_)
        tracker_->onRfm(b, t, scratch_.arr);

    if (scratch_.arr.empty()) {
        ++rfmSkipped_;
        return 0;
    }
    for (RowId aggressor : scratch_.arr) {
        oracle_.onNeighborRefresh(b, aggressor);
        energy_.addPreventiveRows(2ull * blastRadius_);
        ++preventiveCount_;
    }
    return scratch_.arr.size();
}

void
Device::preventiveRefresh(BankId b, RowId aggressor, Tick t)
{
    Bank &bank = banks_.at(b);
    MITHRIL_ASSERT(!bank.isOpen());
    // Refreshing the 2*radius victims costs about one row cycle each.
    const Tick duration =
        static_cast<Tick>(2 * blastRadius_) * timing_.tRC;
    bank.doRefresh(std::max(t, bank.earliestRefresh(t)), duration);
    oracle_.onNeighborRefresh(b, aggressor);
    energy_.addPreventiveRows(2ull * blastRadius_);
    ++preventiveCount_;
}

} // namespace mithril::dram
