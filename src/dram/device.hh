/**
 * @file
 * Whole-system DRAM device model.
 *
 * Owns every bank's state machine, rank-level ACT pacing, the ground
 * truth RH oracle, the energy meter, and the hook into the active RH
 * protection scheme. The memory controller drives it by committing
 * commands; the device executes them, keeps the oracle honest, and
 * meters energy.
 */

#ifndef MITHRIL_DRAM_DEVICE_HH
#define MITHRIL_DRAM_DEVICE_HH

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/energy.hh"
#include "dram/rank.hh"
#include "dram/rh_oracle.hh"
#include "dram/timing.hh"
#include "trackers/rh_protection.hh"

namespace mithril::dram
{

/** The DRAM subsystem across all channels/ranks/banks. */
class Device
{
  public:
    /**
     * @param timing       Timing preset (e.g. ddr5_4800()).
     * @param geometry     System geometry.
     * @param flip_th      Ground-truth RH threshold for the oracle.
     * @param blast_radius Oracle disturbance radius.
     */
    Device(const Timing &timing, const Geometry &geometry,
           std::uint32_t flip_th, std::uint32_t blast_radius = 1);

    /** Attach the active protection scheme (may be null = unprotected). */
    void setTracker(trackers::RhProtection *tracker) { tracker_ = tracker; }
    trackers::RhProtection *tracker() const { return tracker_; }

    /** Observes every committed ACT (bank, row, issue tick) — the
     *  tap an act-trace recorder captures a System run through.
     *  Preventive/auto refreshes are not ACTs and are not reported. */
    using ActObserver = std::function<void(BankId, RowId, Tick)>;
    void setActObserver(ActObserver observer)
    {
        actObserver_ = std::move(observer);
    }

    const Timing &timing() const { return timing_; }
    const Geometry &geometry() const { return geometry_; }

    Bank &bank(BankId b) { return banks_.at(b); }
    const Bank &bank(BankId b) const { return banks_.at(b); }

    /** Flat rank index of a bank. */
    std::uint32_t rankOf(BankId b) const
    {
        return b / geometry_.banksPerRank;
    }

    /** Channel index of a bank. */
    std::uint32_t channelOf(BankId b) const
    {
        return b / (geometry_.banksPerRank * geometry_.ranksPerChannel);
    }

    RankTiming &rankTiming(std::uint32_t flat_rank)
    {
        return ranks_.at(flat_rank);
    }

    /** Earliest tick an ACT to this bank satisfies bank+rank timing. */
    Tick earliestAct(BankId b, Tick now) const;

    /**
     * Commit an ACT. Informs the tracker and the oracle.
     * @param arr_out Aggressor rows the (ARR-based) tracker wants
     *                refreshed immediately; the controller must follow
     *                up with preventiveRefresh() calls.
     */
    void activate(BankId b, RowId row, Tick t,
                  std::vector<RowId> &arr_out);

    /** Commit a PRE. */
    void precharge(BankId b, Tick t);

    /** Commit a RD; returns data-ready tick. */
    Tick read(BankId b, Tick t);

    /** Commit a WR; returns data-done tick. */
    Tick write(BankId b, Tick t);

    /**
     * Commit an all-bank REF for one rank at tick t: every bank of the
     * rank is busy for tRFC and one refresh group of rows is refreshed.
     */
    void autoRefreshRank(std::uint32_t flat_rank, Tick t);

    /**
     * Commit a same-bank REF (DDR5 REFsb) at tick t: only this bank is
     * busy (tRFCsb) and one refresh group of its rows is refreshed.
     */
    void autoRefreshBank(BankId b, Tick t);

    /**
     * Commit an RFM to a bank: the bank is busy for tRFM and the
     * tracker decides which aggressors' victims to refresh.
     * @return Number of aggressor rows treated (0 = skipped refresh).
     */
    std::size_t rfm(BankId b, Tick t);

    /**
     * Execute a preventive refresh around an aggressor row (used both
     * for ARR commands and inside RFM windows). Occupies the bank for
     * roughly one row cycle per victim row.
     */
    void preventiveRefresh(BankId b, RowId aggressor, Tick t);

    RhOracle &oracle() { return oracle_; }
    const RhOracle &oracle() const { return oracle_; }

    EnergyMeter &energy() { return energy_; }
    const EnergyMeter &energy() const { return energy_; }

    /** Total RFM commands executed. */
    std::uint64_t rfmCount() const { return rfmCount_; }
    /** RFM commands whose preventive refresh was skipped (adaptive). */
    std::uint64_t rfmSkipped() const { return rfmSkipped_; }
    /** Preventive refresh operations (aggressors treated). */
    std::uint64_t preventiveCount() const { return preventiveCount_; }

  private:
    Timing timing_;
    Geometry geometry_;
    std::vector<Bank> banks_;
    std::vector<RankTiming> ranks_;
    RhOracle oracle_;
    EnergyMeter energy_;
    trackers::RhProtection *tracker_ = nullptr;
    ActObserver actObserver_;
    std::uint32_t blastRadius_;

    std::uint64_t rfmCount_ = 0;
    std::uint64_t rfmSkipped_ = 0;
    std::uint64_t preventiveCount_ = 0;

    /** RFM aggressor scratch — the shared reusable-buffer protocol
     *  (trackers append, frontend drains). */
    trackers::ActScratch scratch_;
};

} // namespace mithril::dram

#endif // MITHRIL_DRAM_DEVICE_HH
