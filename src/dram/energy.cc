#include "energy.hh"

namespace mithril::dram
{

double
EnergyMeter::totalPj() const
{
    double pj = 0.0;
    pj += params_.actPj * static_cast<double>(acts_);
    pj += params_.prePj * static_cast<double>(pres_);
    pj += params_.rdPj * static_cast<double>(reads_);
    pj += params_.wrPj * static_cast<double>(writes_);
    pj += params_.refRowPj * static_cast<double>(refRows_);
    pj += params_.prevRefRowPj * static_cast<double>(prevRows_);
    pj += params_.trackerOpPj * static_cast<double>(trackerOps_);
    return pj;
}

double
EnergyMeter::protectionPj() const
{
    return params_.prevRefRowPj * static_cast<double>(prevRows_) +
           params_.trackerOpPj * static_cast<double>(trackerOps_);
}

void
EnergyMeter::reset()
{
    acts_ = 0;
    pres_ = 0;
    reads_ = 0;
    writes_ = 0;
    refRows_ = 0;
    prevRows_ = 0;
    trackerOps_ = 0;
}

} // namespace mithril::dram
