/**
 * @file
 * Dynamic-energy accounting for the DRAM subsystem.
 *
 * Following the paper's methodology (Section VI-A), energy is computed by
 * counting ACTs, PREs, column bursts, auto-refresh row work, and executed
 * preventive refreshes, each weighted by a per-operation energy constant.
 * Absolute joules are not the point; the per-scheme *relative* dynamic
 * energy overhead is what the paper's Figures 7, 10(d), and 11(c) report.
 */

#ifndef MITHRIL_DRAM_ENERGY_HH
#define MITHRIL_DRAM_ENERGY_HH

#include <cstdint>

namespace mithril::dram
{

/** Per-operation dynamic energy constants (picojoules). */
struct EnergyParams
{
    double actPj = 170.0;        //!< Row activation.
    double prePj = 60.0;         //!< Precharge.
    double rdPj = 150.0;         //!< 64B read burst.
    double wrPj = 160.0;         //!< 64B write burst.
    double refRowPj = 230.0;     //!< Per-row auto-refresh work.
    double prevRefRowPj = 230.0; //!< Per-row preventive refresh work.
    double trackerOpPj = 2.0;    //!< One CAM search/update (from the
                                 //!< paper's 40nm synthesis, scaled).
};

/** Accumulates per-operation counts and reports total picojoules. */
class EnergyMeter
{
  public:
    explicit EnergyMeter(EnergyParams params = EnergyParams{})
        : params_(params)
    {
    }

    void addAct(std::uint64_t n = 1) { acts_ += n; }
    void addPre(std::uint64_t n = 1) { pres_ += n; }
    void addRead(std::uint64_t n = 1) { reads_ += n; }
    void addWrite(std::uint64_t n = 1) { writes_ += n; }
    void addRefreshRows(std::uint64_t rows) { refRows_ += rows; }
    void addPreventiveRows(std::uint64_t rows) { prevRows_ += rows; }
    void addTrackerOps(std::uint64_t n = 1) { trackerOps_ += n; }

    std::uint64_t acts() const { return acts_; }
    std::uint64_t pres() const { return pres_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t refreshRows() const { return refRows_; }
    std::uint64_t preventiveRows() const { return prevRows_; }
    std::uint64_t trackerOps() const { return trackerOps_; }

    /** Total dynamic energy in picojoules. */
    double totalPj() const;

    /** Energy attributable to RH protection (preventive refresh rows +
     *  tracker logic). */
    double protectionPj() const;

    void reset();

    /** Fold another meter's counts into this one (per-channel meters
     *  merge in channel order for deterministic totals). Energy
     *  params are taken from *this. */
    void mergeFrom(const EnergyMeter &other)
    {
        acts_ += other.acts_;
        pres_ += other.pres_;
        reads_ += other.reads_;
        writes_ += other.writes_;
        refRows_ += other.refRows_;
        prevRows_ += other.prevRows_;
        trackerOps_ += other.trackerOps_;
    }

  private:
    EnergyParams params_;
    std::uint64_t acts_ = 0;
    std::uint64_t pres_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t refRows_ = 0;
    std::uint64_t prevRows_ = 0;
    std::uint64_t trackerOps_ = 0;
};

} // namespace mithril::dram

#endif // MITHRIL_DRAM_ENERGY_HH
