#include "rank.hh"

#include <algorithm>

namespace mithril::dram
{

RankTiming::RankTiming(const Timing &timing)
    : timing_(timing)
{
    recentActs_.fill(-1);
}

Tick
RankTiming::earliestAct(Tick now) const
{
    Tick t = now;
    if (lastAct_ >= 0)
        t = std::max(t, lastAct_ + timing_.tRRD);
    // The oldest of the last four ACTs gates the next one by tFAW.
    Tick oldest = recentActs_[head_];
    if (oldest >= 0)
        t = std::max(t, oldest + timing_.tFAW);
    return t;
}

void
RankTiming::recordAct(Tick t)
{
    lastAct_ = t;
    recentActs_[head_] = t;
    head_ = (head_ + 1) % recentActs_.size();
}

} // namespace mithril::dram
