/**
 * @file
 * Per-rank inter-bank activation constraints: tRRD and the tFAW
 * four-activate window.
 */

#ifndef MITHRIL_DRAM_RANK_HH
#define MITHRIL_DRAM_RANK_HH

#include <array>

#include "common/types.hh"
#include "dram/timing.hh"

namespace mithril::dram
{

/** Tracks rank-level ACT pacing (tRRD, tFAW). */
class RankTiming
{
  public:
    explicit RankTiming(const Timing &timing);

    /** Earliest tick a new ACT may issue anywhere in this rank. */
    Tick earliestAct(Tick now) const;

    /** Record an ACT committed at tick t. */
    void recordAct(Tick t);

  private:
    const Timing &timing_;
    Tick lastAct_ = -1;
    /** Circular buffer of the last four ACT times (for tFAW). */
    std::array<Tick, 4> recentActs_;
    unsigned head_ = 0;
};

} // namespace mithril::dram

#endif // MITHRIL_DRAM_RANK_HH
