#include "rh_oracle.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/event_trace.hh"

namespace mithril::dram
{

RhOracle::RhOracle(std::uint32_t banks, std::uint32_t rows_per_bank,
                   std::uint32_t flip_th, std::uint32_t blast_radius)
    : banks_(banks), rowsPerBank_(rows_per_bank), flipTh_(flip_th),
      blastRadius_(blast_radius), refreshPtr_(banks, 0)
{
    MITHRIL_ASSERT(banks_ > 0);
    MITHRIL_ASSERT(rowsPerBank_ > 0);
    MITHRIL_ASSERT(flipTh_ > 0);
    MITHRIL_ASSERT(blast_radius >= 1 && blast_radius <= 3);
}

void
RhOracle::disturb(BankId bank, RowId row, std::uint32_t weight_q)
{
    auto &count = counts_[RowKey{bank, row}];
    const std::uint64_t threshold_q = static_cast<std::uint64_t>(flipTh_) * 4;
    const bool was_below = count < threshold_q;
    count += weight_q;
    maxDisturbanceQ_ = std::max(maxDisturbanceQ_, count);
    if (was_below && count >= threshold_q) {
        ++bitFlips_;
        flippedRows_[RowKey{bank, row}] = true;
        if (recorder_) {
            recorder_->record(
                telemetry::EventKind::OracleFlip, now_, bank, row,
                static_cast<std::uint32_t>(flippedRows_.size()));
        }
    } else if (recorder_ && count < threshold_q) {
        // Near-miss line: within 1/8 of FlipTH. Emit once, on the
        // crossing (pure observation; no oracle state changes).
        const std::uint64_t near_q = threshold_q - threshold_q / 8;
        if (count >= near_q && count - weight_q < near_q) {
            recorder_->record(
                telemetry::EventKind::NearMiss, now_, bank, row,
                static_cast<std::uint32_t>(threshold_q - count));
        }
    }
}

void
RhOracle::onActivate(BankId bank, RowId row)
{
    MITHRIL_ASSERT(bank < banks_);
    MITHRIL_ASSERT(row < rowsPerBank_);
    // Distance-1 neighbours take a full hit; distance-2 a quarter hit
    // (half-double style coupling); distance-3 a sixteenth, rounded to
    // zero in quarter units, so radius 3 reuses the quarter weight to
    // stay conservative.
    for (std::uint32_t d = 1; d <= blastRadius_; ++d) {
        const std::uint32_t weight_q = (d == 1) ? 4 : 1;
        if (row >= d)
            disturb(bank, row - d, weight_q);
        if (row + d < rowsPerBank_)
            disturb(bank, row + d, weight_q);
    }
}

void
RhOracle::onRowRefresh(BankId bank, RowId row)
{
    counts_.erase(RowKey{bank, row});
}

void
RhOracle::onNeighborRefresh(BankId bank, RowId aggressor)
{
    for (std::uint32_t d = 1; d <= blastRadius_; ++d) {
        if (aggressor >= d)
            onRowRefresh(bank, aggressor - d);
        if (aggressor + d < rowsPerBank_)
            onRowRefresh(bank, aggressor + d);
    }
}

void
RhOracle::onAutoRefresh(BankId bank, std::uint32_t groups)
{
    MITHRIL_ASSERT(bank < banks_);
    MITHRIL_ASSERT(groups > 0);
    std::uint32_t rows = (rowsPerBank_ + groups - 1) / groups;
    RowId &ptr = refreshPtr_[bank];
    for (std::uint32_t i = 0; i < rows; ++i) {
        onRowRefresh(bank, ptr);
        ptr = (ptr + 1) % rowsPerBank_;
    }
}

double
RhOracle::disturbance(BankId bank, RowId row) const
{
    auto it = counts_.find(RowKey{bank, row});
    if (it == counts_.end())
        return 0.0;
    return static_cast<double>(it->second) / 4.0;
}

void
RhOracle::resetCounts()
{
    counts_.clear();
    std::fill(refreshPtr_.begin(), refreshPtr_.end(), 0);
}

} // namespace mithril::dram
