/**
 * @file
 * Ground-truth Row Hammer oracle.
 *
 * Independent of any protection scheme, the oracle maintains for every
 * row the number of disturbances (aggressor activations weighted by
 * distance) it has absorbed since it was last refreshed by any means
 * (auto-refresh, ARR, or an RFM preventive refresh). A row whose
 * disturbance count reaches FlipTH has, by definition, flipped bits.
 *
 * The oracle is the arbiter of every safety claim in this repository:
 * a scheme is deterministically safe iff no workload can drive the
 * oracle's high-water mark to FlipTH.
 */

#ifndef MITHRIL_DRAM_RH_ORACLE_HH
#define MITHRIL_DRAM_RH_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mithril::telemetry
{
class EventRecorder;
}

namespace mithril::dram
{

/** Disturbance bookkeeping for one or more banks. */
class RhOracle
{
  public:
    /**
     * @param banks        Number of banks tracked.
     * @param rows_per_bank Rows per bank.
     * @param flip_th      Disturbance count at which a bit flip occurs.
     * @param blast_radius How far (in rows) an aggressor disturbs its
     *                     neighbours. 1 models the classic double-sided
     *                     setting; 2 adds half-double style coupling
     *                     with quarter weight.
     */
    RhOracle(std::uint32_t banks, std::uint32_t rows_per_bank,
             std::uint32_t flip_th, std::uint32_t blast_radius = 1);

    /** Record one activation of the given row. */
    void onActivate(BankId bank, RowId row);

    /** Record a refresh of exactly this row (resets its disturbance). */
    void onRowRefresh(BankId bank, RowId row);

    /**
     * Record a preventive refresh around an aggressor: refreshes the
     * 2*radius neighbouring victim rows (not the aggressor itself).
     */
    void onNeighborRefresh(BankId bank, RowId aggressor);

    /**
     * Record an auto-refresh REF command: the next rows-per-group rows
     * (per the rotating refresh pointer) of every bank covered by the
     * REF are refreshed.
     * @param bank   Bank the REF applies to.
     * @param groups Number of refresh groups per tREFW (typically 8192).
     */
    void onAutoRefresh(BankId bank, std::uint32_t groups);

    /** Current disturbance count of a row (scaled by 4 internally to
     *  express quarter weights; this returns the full-ACT equivalent). */
    double disturbance(BankId bank, RowId row) const;

    /** Highest disturbance any row has ever reached before a refresh. */
    double maxDisturbanceEver() const
    {
        return static_cast<double>(maxDisturbanceQ_) / 4.0;
    }

    /** Number of (row, episode) bit-flip events: a row crossing FlipTH. */
    std::uint64_t bitFlips() const { return bitFlips_; }

    /** Number of distinct rows that have ever flipped. */
    std::uint64_t flippedRows() const { return flippedRows_.size(); }

    /** Configured FlipTH. */
    std::uint32_t flipTh() const { return flipTh_; }

    /** Reset all disturbance state (not the high-water mark). */
    void resetCounts();

    /**
     * Attach a mitigation-event recorder: flip and near-miss
     * crossings emit OracleFlip / NearMiss events stamped with the
     * tick last given to setNow(). Observation only — attaching a
     * recorder never changes oracle state. Null detaches.
     */
    void setEventRecorder(telemetry::EventRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Event timestamp cursor: the oracle has no clock of its own,
     *  so the frontend stamps each activation's tick before the
     *  onActivate() call (only needed while tracing). */
    void setNow(Tick now) { now_ = now; }

  private:
    struct RowKey
    {
        BankId bank;
        RowId row;
        bool operator==(const RowKey &o) const
        {
            return bank == o.bank && row == o.row;
        }
    };

    struct RowKeyHash
    {
        std::size_t operator()(const RowKey &k) const
        {
            return (static_cast<std::size_t>(k.bank) << 32) ^ k.row;
        }
    };

    void disturb(BankId bank, RowId row, std::uint32_t weight_q);

    std::uint32_t banks_;
    std::uint32_t rowsPerBank_;
    std::uint32_t flipTh_;
    std::uint32_t blastRadius_;

    /** Disturbance counts in quarter-ACT units, sparse. */
    std::unordered_map<RowKey, std::uint64_t, RowKeyHash> counts_;
    /** Per-bank auto-refresh rotation pointer (next row to refresh). */
    std::vector<RowId> refreshPtr_;

    std::uint64_t maxDisturbanceQ_ = 0;
    std::uint64_t bitFlips_ = 0;
    std::unordered_map<RowKey, bool, RowKeyHash> flippedRows_;

    telemetry::EventRecorder *recorder_ = nullptr;
    Tick now_ = 0;
};

} // namespace mithril::dram

#endif // MITHRIL_DRAM_RH_ORACLE_HH
