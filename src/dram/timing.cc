#include "timing.hh"

#include <cmath>

#include "common/logging.hh"

namespace mithril::dram
{

Timing
ddr5_4800()
{
    Timing t{};
    t.tCK = nsToTick(1.0 / 2.4);        // 2400 MHz command clock
    t.tRCD = nsToTick(16.64);
    t.tRP = nsToTick(16.64);
    t.tCL = nsToTick(16.64);
    t.tCWL = nsToTick(14.98);
    t.tRAS = nsToTick(32.0);
    t.tRC = nsToTick(48.64);            // Table III
    t.tBL = nsToTick(16.0 / 4.8);       // BL16 at 4800 MT/s = 3.33 ns
    t.tCCD = nsToTick(3.33);
    t.tRRD = nsToTick(3.33);            // 8 tCK
    t.tFAW = nsToTick(13.33);           // 32 tCK

    t.tWR = nsToTick(30.0);
    t.tRTP = nsToTick(7.5);
    t.tRFC = nsToTick(295.0);           // Table III
    t.tRFCsb = nsToTick(130.0);         // DDR5 same-bank refresh
    t.tREFW = msToTick(32.0);
    t.tREFI = t.tREFW / 8192;           // 8192 refresh groups
    t.tRFM = nsToTick(97.28);           // Table III
    return t;
}

Geometry
paperGeometry()
{
    Geometry g{};
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.banksPerRank = 32;
    g.rowsPerBank = 65536;
    g.rowBytes = 8192;                  // 8KB DRAM row (Section V-A)
    g.lineBytes = 64;
    return g;
}

std::uint32_t
refreshGroups(const Timing &t)
{
    MITHRIL_ASSERT(t.tREFI > 0);
    return static_cast<std::uint32_t>(t.tREFW / t.tREFI);
}

std::uint64_t
rfmIntervalsPerWindow(const Timing &t, std::uint32_t rfm_th)
{
    MITHRIL_ASSERT(rfm_th > 0);
    const double refs = static_cast<double>(t.tREFW) /
                        static_cast<double>(t.tREFI);
    const double usable = static_cast<double>(t.tREFW) -
                          refs * static_cast<double>(t.tRFC);
    const double interval = static_cast<double>(t.tRC) * rfm_th +
                            static_cast<double>(t.tRFM);
    return static_cast<std::uint64_t>(std::ceil(usable / interval));
}

std::uint64_t
maxActsPerWindow(const Timing &t)
{
    const double refs = static_cast<double>(t.tREFW) /
                        static_cast<double>(t.tREFI);
    const double usable = static_cast<double>(t.tREFW) -
                          refs * static_cast<double>(t.tRFC);
    return static_cast<std::uint64_t>(usable /
                                      static_cast<double>(t.tRC));
}

} // namespace mithril::dram
