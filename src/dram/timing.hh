/**
 * @file
 * DDR timing parameters and system geometry.
 *
 * The default preset reproduces Table III of the Mithril paper:
 * DDR5-4800, 2 channels, 1 rank, 32 banks/rank, tRFC 295 ns,
 * tRC 48.64 ns, tRFM 97.28 ns, tRCD = tRP = tCL = 16.64 ns.
 */

#ifndef MITHRIL_DRAM_TIMING_HH
#define MITHRIL_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace mithril::dram
{

/** All DRAM timing constraints, in ticks (picoseconds). */
struct Timing
{
    Tick tCK;    //!< Command clock period.
    Tick tRCD;   //!< ACT to column command.
    Tick tRP;    //!< PRE to ACT.
    Tick tCL;    //!< Read CAS latency.
    Tick tCWL;   //!< Write CAS latency.
    Tick tRAS;   //!< ACT to PRE (minimum row open time).
    Tick tRC;    //!< ACT to ACT, same bank (row cycle).
    Tick tBL;    //!< Burst duration on the data bus.
    Tick tCCD;   //!< Column command to column command, same bank group.
    Tick tRRD;   //!< ACT to ACT, different banks of a rank.
    Tick tFAW;   //!< Four-activate window per rank.
    Tick tWR;    //!< Write recovery before PRE.
    Tick tRTP;   //!< Read to PRE.
    Tick tRFC;   //!< REF busy time (all-bank).
    Tick tRFCsb; //!< Same-bank (per-bank) REF busy time (DDR5 REFsb).
    Tick tREFI;  //!< REF command interval.
    Tick tREFW;  //!< Refresh window (every row refreshed once per tREFW).
    Tick tRFM;   //!< RFM busy time (per-bank).
};

/** Memory system geometry. */
struct Geometry
{
    std::uint32_t channels;     //!< Independent channels.
    std::uint32_t ranksPerChannel;
    std::uint32_t banksPerRank;
    std::uint32_t rowsPerBank;
    std::uint32_t rowBytes;     //!< DRAM page (row buffer) size.
    std::uint32_t lineBytes;    //!< Cache line / access granularity.

    std::uint32_t totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    std::uint32_t columnsPerRow() const { return rowBytes / lineBytes; }

    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(totalBanks()) * rowsPerBank *
               rowBytes;
    }
};

/** Table III DDR5-4800 timing preset. */
Timing ddr5_4800();

/** Table III system geometry: 2 channels x 1 rank x 32 banks, 8KB rows. */
Geometry paperGeometry();

/** Number of REF commands per tREFW window (refresh groups). */
std::uint32_t refreshGroups(const Timing &t);

/**
 * Maximum number of RFM intervals inside one tREFW window (the W term of
 * Theorem 1):
 *   W = ceil((tREFW - (tREFW/tREFI) * tRFC) / (tRC * RFM_TH + tRFM)).
 */
std::uint64_t rfmIntervalsPerWindow(const Timing &t, std::uint32_t rfm_th);

/** Maximum ACT count a single bank can absorb in one tREFW window. */
std::uint64_t maxActsPerWindow(const Timing &t);

} // namespace mithril::dram

#endif // MITHRIL_DRAM_TIMING_HH
