/**
 * @file
 * The activation-stream vocabulary of the ActStream engine: fixed-size
 * structure-of-arrays batches of ActRecord{bank, row, tick} and the
 * pull interface every engine-drivable workload implements.
 *
 * The tick column is a source-defined replay hint, not simulated
 * time: TraceActSource stores the record's ordinal in its trace, and
 * sources with nothing to say fill 0. The engine never reads it — it
 * runs banks at the maximum legal rate and resolves the
 * authoritative per-bank ticks internally. Keeping the column in the
 * batch makes the record layout ready for a capture/replay format
 * without another schema change.
 */

#ifndef MITHRIL_ENGINE_ACT_SOURCE_HH
#define MITHRIL_ENGINE_ACT_SOURCE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/types.hh"

namespace mithril::engine
{

/** One activation as sources describe it (AoS view of a batch slot). */
struct ActRecord
{
    BankId bank = 0;
    RowId row = 0;
    Tick tick = 0;
};

/** Fixed-capacity SoA activation batch. */
class ActBatch
{
  public:
    static constexpr std::size_t kCapacity = 4096;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == kCapacity; }
    void clear() { size_ = 0; }

    /** Append one record; false when the batch is full. */
    bool
    push(BankId bank, RowId row, Tick tick = 0)
    {
        if (size_ == kCapacity)
            return false;
        bank_[size_] = bank;
        row_[size_] = row;
        tick_[size_] = tick;
        ++size_;
        return true;
    }

    ActRecord
    record(std::size_t i) const
    {
        return ActRecord{bank_[i], row_[i], tick_[i]};
    }

    const BankId *banks() const { return bank_.data(); }
    const RowId *rows() const { return row_.data(); }
    const Tick *ticks() const { return tick_.data(); }

  private:
    std::array<BankId, kCapacity> bank_;
    std::array<RowId, kCapacity> row_;
    std::array<Tick, kCapacity> tick_;
    std::size_t size_ = 0;
};

/** Pull-based activation source the engine drains batch by batch. */
class ActSource
{
  public:
    virtual ~ActSource() = default;

    /** Human-readable source name. */
    virtual std::string name() const = 0;

    /**
     * Append up to min(limit, free capacity) records; returns the
     * number appended. 0 means the source is exhausted (the engine
     * stops pulling). The limit lets a budget-bounded engine run ask
     * for exactly the records it will dispatch, so the source's
     * cursor never runs ahead of the simulation.
     */
    virtual std::size_t fill(ActBatch &batch, std::size_t limit) = 0;

    /**
     * A native slice of this stream restricted to banks [lo, hi) and
     * to the first `budget` records of the global stream — exactly
     * what a BankFilterSource over a fresh copy would deliver, but
     * produced without scanning the out-of-range records (e.g. an
     * act-trace reader seeking through its per-bank block index).
     * The sharded engine asks every stream for one and falls back to
     * BankFilterSource on nullptr (the default). Slicing must not
     * disturb this source — implementations open fresh state.
     */
    virtual std::unique_ptr<ActSource>
    shardSlice(BankId lo, BankId hi, std::uint64_t budget)
    {
        (void)lo;
        (void)hi;
        (void)budget;
        return nullptr;
    }
};

/**
 * Single-bank index-addressed callback source — the adapter behind
 * the classic ActHarness::run(count, row_source) surface.
 */
class CallbackSource : public ActSource
{
  public:
    CallbackSource(std::uint64_t count,
                   std::function<RowId(std::uint64_t)> row_source,
                   BankId bank = 0)
        : count_(count), rowSource_(std::move(row_source)), bank_(bank)
    {
    }

    std::string name() const override { return "callback"; }

    std::size_t
    fill(ActBatch &batch, std::size_t limit) override
    {
        std::size_t appended = 0;
        while (produced_ < count_ && appended < limit &&
               !batch.full()) {
            batch.push(bank_, rowSource_(produced_));
            ++produced_;
            ++appended;
        }
        return appended;
    }

  private:
    std::uint64_t count_;
    std::function<RowId(std::uint64_t)> rowSource_;
    BankId bank_;
    std::uint64_t produced_ = 0;
};

} // namespace mithril::engine

#endif // MITHRIL_ENGINE_ACT_SOURCE_HH
