#include "act_stream_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace mithril::engine
{

EngineConfig
EngineConfig::singleBank(const dram::Timing &timing,
                         std::uint32_t rows_per_bank,
                         std::uint32_t flip_th,
                         std::uint32_t blast_radius)
{
    EngineConfig cfg;
    cfg.timing = timing;
    cfg.geometry.channels = 1;
    cfg.geometry.ranksPerChannel = 1;
    cfg.geometry.banksPerRank = 1;
    cfg.geometry.rowsPerBank = rows_per_bank;
    cfg.geometry.rowBytes = 8192;
    cfg.geometry.lineBytes = 64;
    cfg.flipTh = flip_th;
    cfg.blastRadius = blast_radius;
    return cfg;
}

ActStreamEngine::ActStreamEngine(const EngineConfig &config,
                                 trackers::RhProtection *tracker)
    : config_(config), tracker_(tracker),
      oracle_(config.geometry.totalBanks(), config.geometry.rowsPerBank,
              config.flipTh, config.blastRadius),
      refreshGroups_(dram::refreshGroups(config.timing)),
      banks_(config.geometry.totalBanks())
{
    MITHRIL_ASSERT(config_.geometry.totalBanks() > 0);
    MITHRIL_ASSERT(config_.timing.tRC > 0);
    tRcDiv_ = simd::U64Divisor(
        static_cast<std::uint64_t>(config_.timing.tRC));
    const auto num_banks =
        static_cast<std::uint32_t>(banks_.size());
    partCount_.assign(num_banks, 0);
    partOffset_.assign(num_banks, 0);
    partCursor_.assign(num_banks, 0);
    partRows_.resize(ActBatch::kCapacity);
    for (BankState &bs : banks_)
        bs.nextRef = config_.timing.tREFI;
    if (tracker_) {
        usesRfm_ = tracker_->usesRfm();
        rfmTh_ = tracker_->rfmTh();
    }
    if (config_.telemetry) {
        events_ = config_.telemetry->events();
        heatmap_ = config_.telemetry->heatmap();
        if (config_.telemetry->config().phases)
            phases_ = &config_.telemetry->phases();
        if (events_) {
            oracle_.setEventRecorder(events_);
            if (tracker_)
                tracker_->setEventRecorder(events_);
        }
    }
}

void
ActStreamEngine::maybeRefresh(BankState &bs, BankId bank)
{
    while (bs.now >= bs.nextRef) {
        if (config_.enableOracle)
            oracle_.onAutoRefresh(bank, refreshGroups_);
        if (tracker_)
            tracker_->onRefresh(bank, bs.nextRef);
        bs.now += config_.timing.tRFC;  // Bank blocked for tRFC.
        bs.nextRef += config_.timing.tREFI;
        ++bs.refs;
        ++refs_;
    }
}

void
ActStreamEngine::applyArr(BankState &bs, BankId bank)
{
    if (events_ && !scratch_.arr.empty()) {
        events_->record(
            telemetry::EventKind::ArrFired, bs.now, bank,
            scratch_.arr.front(),
            static_cast<std::uint32_t>(scratch_.arr.size()));
    }
    for (RowId aggressor : scratch_.arr) {
        if (config_.enableOracle)
            oracle_.onNeighborRefresh(bank, aggressor);
        bs.now += static_cast<Tick>(2 * config_.blastRadius) *
                  config_.timing.tRC;
        ++bs.preventive;
        ++preventive_;
    }
}

void
ActStreamEngine::maybeRfm(BankState &bs, BankId bank,
                          std::uint32_t consumed)
{
    if (!tracker_ || !usesRfm_)
        return;
    bs.raa += consumed;
    if (bs.raa < rfmTh_)
        return;
    bs.raa = 0;
    if (tracker_->rfmPending(bank)) {
        scratch_.reset();
        tracker_->onRfm(bank, bs.now, scratch_.arr);
        if (events_) {
            events_->record(
                telemetry::EventKind::RfmIssued, bs.now, bank,
                scratch_.arr.empty() ? kInvalidRow
                                     : scratch_.arr.front(),
                static_cast<std::uint32_t>(scratch_.arr.size()));
        }
        for (RowId aggressor : scratch_.arr) {
            if (config_.enableOracle)
                oracle_.onNeighborRefresh(bank, aggressor);
            ++bs.preventive;
            ++preventive_;
        }
        bs.now += config_.timing.tRFM;
        ++bs.rfms;
        ++rfms_;
    } else if (events_) {
        events_->record(telemetry::EventKind::RfmSkipped, bs.now,
                        bank, kInvalidRow);
    }
    // Mithril+ MRR skip: no time cost beyond the poll.
}

void
ActStreamEngine::activate(BankId bank, RowId row)
{
    BankState &bs = banks_.at(bank);
    maybeRefresh(bs, bank);

    if (config_.honorThrottle && tracker_) {
        const Tick earliest = tracker_->throttleAct(bank, row, bs.now);
        if (earliest > bs.now) {
            if (events_) {
                events_->record(telemetry::EventKind::ThrottleStall,
                                bs.now, bank, row, 0,
                                earliest - bs.now);
            }
            ++throttleStalls_;
            bs.now = earliest;
            maybeRefresh(bs, bank);
        }
    }

    if (heatmap_)
        heatmap_->touch(bank, row);
    if (config_.enableOracle) {
        if (events_)
            oracle_.setNow(bs.now);
        oracle_.onActivate(bank, row);
    }
    ++bs.acts;
    ++acts_;
    scratch_.reset();
    if (tracker_)
        tracker_->onActivate(bank, row, bs.now, scratch_.arr);
    bs.now += config_.timing.tRC;

    // Immediate ARR work requested by reactive schemes.
    applyArr(bs, bank);

    // RFM cadence. Scalar dispatch re-reads the virtual per ACT,
    // faithful to the historical harness loop; the cached values it
    // must agree with are pinned constant by the RhProtection
    // contract.
    if (tracker_ && tracker_->usesRfm())
        maybeRfm(bs, bank, 1);
}

void
ActStreamEngine::processRun(BankState &bs, BankId bank,
                            const RowId *rows, std::size_t n)
{
    const Tick t_rc = config_.timing.tRC;
    while (n > 0) {
        maybeRefresh(bs, bank);

        // Cut the run at the next REF boundary and RFM epoch so the
        // span's ticks are exact under the uniform tRC stride.
        // until_ref > 0 after maybeRefresh(), so the prepared-divisor
        // ceil equals the signed expression it replaced.
        const Tick until_ref = bs.nextRef - bs.now;
        std::uint64_t cap = tRcDiv_.div(
            static_cast<std::uint64_t>(until_ref + t_rc - 1));
        if (usesRfm_)
            cap = std::min<std::uint64_t>(cap, rfmTh_ - bs.raa);
        cap = std::min<std::uint64_t>(cap, n);

        trackers::ActSpan span;
        span.bank = bank;
        span.rows = rows;
        span.size = static_cast<std::size_t>(cap);
        span.tick0 = bs.now;
        span.tickStride = t_rc;

        scratch_.reset();
        std::size_t consumed = span.size;
        if (tracker_) {
            consumed = tracker_->onActivateBatch(span, scratch_.arr);
            MITHRIL_ASSERT(consumed >= 1 && consumed <= span.size);
        }

        if (heatmap_) {
            for (std::size_t i = 0; i < consumed; ++i)
                heatmap_->touch(bank, rows[i]);
        }
        if (config_.enableOracle) {
            if (events_) {
                // Tracing variant: stamp the oracle's event clock
                // with each record's exact tick.
                for (std::size_t i = 0; i < consumed; ++i) {
                    oracle_.setNow(span.tick0 +
                                   static_cast<Tick>(i) * t_rc);
                    oracle_.onActivate(bank, rows[i]);
                }
            } else {
                for (std::size_t i = 0; i < consumed; ++i)
                    oracle_.onActivate(bank, rows[i]);
            }
        }
        bs.acts += consumed;
        acts_ += consumed;
        bs.now += static_cast<Tick>(consumed) * t_rc;

        applyArr(bs, bank);
        maybeRfm(bs, bank, static_cast<std::uint32_t>(consumed));

        rows += consumed;
        n -= consumed;
    }
}

void
ActStreamEngine::dispatchBatch(const ActBatch &batch, std::size_t n)
{
    if (n == 0)
        return;
    const BankId *bank_col = batch.banks();
    const RowId *row_col = batch.rows();
    const auto num_banks = static_cast<std::uint32_t>(banks_.size());
    const bool scalar =
        config_.dispatch == EngineConfig::Dispatch::Scalar ||
        config_.honorThrottle;

    // Uniform-bank fast path: sharded runs and single-bank workloads
    // deliver whole batches on one bank; one SIMD sweep detects that
    // and skips the partition entirely. Dispatch order is trivially
    // identical (one bank, stream order).
    if (simd::uniformPrefix(bank_col, n, bank_col[0]) == n) {
        const BankId bank = bank_col[0];
        MITHRIL_ASSERT(bank < num_banks);
        if (scalar) {
            for (std::size_t i = 0; i < n; ++i)
                activate(bank, row_col[i]);
        } else {
            processRun(banks_[bank], bank, row_col, n);
        }
        return;
    }

    // Counting-sort partition into one flat reused buffer (stable, so
    // each bank's slice keeps stream order). Both dispatch modes
    // traverse the partition in ascending bank order so they agree on
    // the interleaving seen by process-wide tracker state (shared
    // RNGs, logic-op counters).
    std::fill(partCount_.begin(), partCount_.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
        MITHRIL_ASSERT(bank_col[i] < num_banks);
        ++partCount_[bank_col[i]];
    }
    std::uint32_t off = 0;
    for (std::uint32_t b = 0; b < num_banks; ++b) {
        partOffset_[b] = off;
        partCursor_[b] = off;
        off += partCount_[b];
    }
    for (std::size_t i = 0; i < n; ++i)
        partRows_[partCursor_[bank_col[i]]++] = row_col[i];

    for (BankId bank = 0; bank < num_banks; ++bank) {
        const std::uint32_t count = partCount_[bank];
        if (count == 0)
            continue;
        const RowId *rows = partRows_.data() + partOffset_[bank];
        if (scalar) {
            for (std::uint32_t i = 0; i < count; ++i)
                activate(bank, rows[i]);
        } else {
            processRun(banks_[bank], bank, rows, count);
        }
    }
}

std::uint64_t
ActStreamEngine::run(ActSource &source)
{
    return run(source, ~0ull);
}

std::uint64_t
ActStreamEngine::run(ActSource &source, std::uint64_t max_acts)
{
    std::uint64_t done = 0;
    telemetry::PhaseTimer timer;
    while (done < max_acts) {
        batch_.clear();
        const auto limit = static_cast<std::size_t>(
            std::min<std::uint64_t>(ActBatch::kCapacity,
                                    max_acts - done));
        if (phases_)
            timer.lap();
        const std::size_t n = source.fill(batch_, limit);
        if (phases_)
            phases_->addSource(timer.lap());
        if (n == 0)
            break;
        MITHRIL_ASSERT(n <= limit);
        dispatchBatch(batch_, n);
        if (phases_)
            phases_->addDispatch(timer.lap());
        done += n;
    }
    return done;
}

void
ActStreamEngine::exportTelemetry()
{
    if (!config_.telemetry)
        return;
    telemetry::MetricSheet &sheet = config_.telemetry->sheet();
    sheet.setCounter("engine.acts", acts_);
    sheet.setCounter("engine.refs", refs_);
    sheet.setCounter("engine.rfms", rfms_);
    sheet.setCounter("engine.preventive", preventive_);
    sheet.setCounter("engine.throttle_stalls", throttleStalls_);
    if (config_.enableOracle) {
        sheet.setCounter("oracle.bit_flips", oracle_.bitFlips());
        sheet.setCounter("oracle.flipped_rows",
                         oracle_.flippedRows());
        sheet.setGauge("oracle.max_disturbance",
                       oracle_.maxDisturbanceEver());
    }
    if (events_) {
        std::uint64_t emitted = 0;
        for (BankId b = 0; b < events_->numBanks(); ++b)
            emitted += events_->emitted(b);
        sheet.setCounter("trace.emitted", emitted);
        sheet.setCounter("trace.dropped", events_->dropped());
    }
    if (heatmap_) {
        sheet.setCounter("heatmap.acts", heatmap_->totalActs());
        std::uint64_t folds = 0, regions = 0;
        std::uint32_t max_gran = 0;
        for (BankId b = 0; b < heatmap_->numBanks(); ++b) {
            folds += heatmap_->folds(b);
            max_gran =
                std::max(max_gran, heatmap_->granularityLog2(b));
        }
        for (const auto &snap : heatmap_->snapshot())
            regions += snap.regions.size();
        sheet.setCounter("heatmap.folds", folds);
        sheet.setCounter("heatmap.regions", regions);
        sheet.setGauge("heatmap.max_granularity_log2",
                       static_cast<double>(max_gran));
    }
    if (tracker_)
        tracker_->exportMetrics(sheet);
}

} // namespace mithril::engine
