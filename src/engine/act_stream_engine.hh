/**
 * @file
 * The ActStream engine: the one command-level simulation core every
 * maximum-rate frontend drives.
 *
 * It generalizes the historical single-bank ActHarness to the full
 * dram::Geometry (channels x ranks x banks, each bank an independent
 * clock at one ACT per tRC), consumes SoA batches of activations from
 * an ActSource, and interleaves REF (every tREFI, per the refresh-group
 * rotation), RFM (every rfmTh() ACTs), immediate ARR work, and —
 * optionally — BlockHammer-style throttling per bank exactly as the
 * harness always has, while keeping the ground-truth oracle and the
 * ACT/REF/RFM/preventive counters per bank.
 *
 * Two dispatch modes share all bookkeeping:
 *
 *  - Scalar: the faithful per-ACT port of ActHarness::activate() —
 *    one virtual tracker call per activation.
 *  - Batched (default): activations are partitioned per bank and cut
 *    into maximal runs that cross no REF or RFM boundary; each run is
 *    handed to RhProtection::onActivateBatch() with precomputed ticks
 *    (tick = run start + i*tRC), so the hot trackers amortize virtual
 *    dispatch, table lookup, and scratch management over the whole
 *    run. ARR triggers terminate a run (preventive refreshes advance
 *    the bank clock), which keeps both modes byte-identical at any
 *    batch size — pinned by the engine equivalence golden test.
 *
 * Every buffer (batch, partition scratch, ARR scratch) is reused
 * across the run, so the steady-state loop performs zero heap
 * allocations. Per-bank hot state is cache-line-aligned (one
 * `BankState` per line) so engines running on different shard threads
 * never false-share, and the batch partition is a flat counting sort
 * into one reused buffer — with a SIMD uniform-bank fast path that
 * skips it entirely for the single-bank batches sharded runs produce.
 */

#ifndef MITHRIL_ENGINE_ACT_STREAM_ENGINE_HH
#define MITHRIL_ENGINE_ACT_STREAM_ENGINE_HH

#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "dram/rh_oracle.hh"
#include "dram/timing.hh"
#include "engine/act_source.hh"
#include "trackers/rh_protection.hh"

namespace mithril::telemetry
{
class ActHeatmap;
class EngineTelemetry;
class EventRecorder;
class PhaseProfile;
}

namespace mithril::engine
{

/** Engine configuration. */
struct EngineConfig
{
    /** Tracker dispatch strategy (see file header). */
    enum class Dispatch
    {
        Batched,
        Scalar,
    };

    dram::Timing timing;
    dram::Geometry geometry;
    std::uint32_t flipTh = 6250;
    std::uint32_t blastRadius = 1;
    Dispatch dispatch = Dispatch::Batched;
    /** Ground-truth safety accounting. Throughput benches may disable
     *  it to time the tracker/dispatch hot loop alone; safety
     *  experiments must keep it on. */
    bool enableOracle = true;
    /** Honour RhProtection::throttleAct() (System-style frontends).
     *  Off by default — the harness never throttled, and max-rate
     *  safety sweeps model an attacker that ignores advisories.
     *  Throttling is an inherently per-ACT decision, so enabling it
     *  forces scalar dispatch regardless of `dispatch`. */
    bool honorThrottle = false;

    /**
     * Optional telemetry bundle (not owned; must outlive the engine
     * and its tracker). Null — the default — costs the hot loop one
     * pointer check per batch; non-null never changes simulated
     * outcomes, only observes them.
     */
    telemetry::EngineTelemetry *telemetry = nullptr;

    /** The historical ActHarness shape: one bank, default geometry
     *  elsewhere. */
    static EngineConfig singleBank(const dram::Timing &timing,
                                   std::uint32_t rows_per_bank,
                                   std::uint32_t flip_th,
                                   std::uint32_t blast_radius);
};

/** Multi-bank maximum-rate command stream engine. */
class ActStreamEngine
{
  public:
    ActStreamEngine(const EngineConfig &config,
                    trackers::RhProtection *tracker);

    /** Feed one activation on one bank (scalar path; advances that
     *  bank's clock by tRC, interleaving REF/RFM/ARR work as due). */
    void activate(BankId bank, RowId row);

    /** Drain the source until exhausted; returns ACTs performed. */
    std::uint64_t run(ActSource &source);

    /**
     * Drain the source until exhausted or `max_acts` activations.
     * The source is only ever asked for the remaining budget, so
     * bounded incremental runs dispatch every record they pull and
     * stay in lockstep with the source's cursor.
     */
    std::uint64_t run(ActSource &source, std::uint64_t max_acts);

    const dram::RhOracle &oracle() const { return oracle_; }
    dram::RhOracle &oracle() { return oracle_; }

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** Per-bank virtual clock. */
    Tick now(BankId bank = 0) const { return banks_.at(bank).now; }

    // Aggregate counters (sum over banks).
    std::uint64_t acts() const { return acts_; }
    std::uint64_t refs() const { return refs_; }
    std::uint64_t rfms() const { return rfms_; }
    std::uint64_t preventiveRefreshes() const { return preventive_; }
    std::uint64_t throttleStalls() const { return throttleStalls_; }

    // Per-bank counters.
    std::uint64_t actsAt(BankId bank) const
    {
        return banks_.at(bank).acts;
    }
    std::uint64_t refsAt(BankId bank) const
    {
        return banks_.at(bank).refs;
    }
    std::uint64_t rfmsAt(BankId bank) const
    {
        return banks_.at(bank).rfms;
    }
    std::uint64_t preventiveRefreshesAt(BankId bank) const
    {
        return banks_.at(bank).preventive;
    }

    const EngineConfig &config() const { return config_; }

    /**
     * Export engine, oracle, trace, heatmap, and tracker metrics into
     * the attached telemetry sheet (no-op without a bundle).
     * Idempotent — counters are set, not added — so it may run after
     * every incremental run() call.
     */
    void exportTelemetry();

  private:
    /** Per-bank interleaving state, padded to exactly one cache line
     *  so adjacent banks — and engines on different shard threads —
     *  never false-share. */
    struct alignas(64) BankState
    {
        Tick now = 0;
        Tick nextRef = 0;
        std::uint32_t raa = 0;
        std::uint64_t acts = 0;
        std::uint64_t refs = 0;
        std::uint64_t rfms = 0;
        std::uint64_t preventive = 0;
    };
    static_assert(sizeof(BankState) == 64,
                  "BankState must fill exactly one cache line");
    static_assert(alignof(BankState) == 64,
                  "BankState must start on a cache-line boundary");

    /** Catch the bank up on every REF due at or before its clock. */
    void maybeRefresh(BankState &bs, BankId bank);

    /** Execute the immediate ARR work in scratch_ for the bank. */
    void applyArr(BankState &bs, BankId bank);

    /** Per-ACT RFM cadence bookkeeping after `consumed` ACTs. */
    void maybeRfm(BankState &bs, BankId bank, std::uint32_t consumed);

    /** Batched-dispatch processing of one bank's contiguous rows. */
    void processRun(BankState &bs, BankId bank, const RowId *rows,
                    std::size_t n);

    /** Partition a batch per bank and dispatch it. */
    void dispatchBatch(const ActBatch &batch, std::size_t n);

    EngineConfig config_;
    trackers::RhProtection *tracker_;
    dram::RhOracle oracle_;

    // Telemetry taps hoisted out of the bundle (all null when off).
    telemetry::EventRecorder *events_ = nullptr;
    telemetry::ActHeatmap *heatmap_ = nullptr;
    telemetry::PhaseProfile *phases_ = nullptr;

    // Tracker constants hoisted out of the hot loop (batched path).
    bool usesRfm_ = false;
    std::uint32_t rfmTh_ = 0;
    std::uint32_t refreshGroups_;

    std::vector<BankState> banks_;
    trackers::ActScratch scratch_;
    ActBatch batch_;

    /** REF-boundary division by tRC without a hardware divide. */
    simd::U64Divisor tRcDiv_;

    // Flat counting-sort partition scratch (reused; see
    // dispatchBatch()). partRows_ holds the batch's rows grouped by
    // bank: bank b's slice is [partOffset_[b], partOffset_[b] +
    // partCount_[b]).
    std::vector<std::uint32_t> partCount_;
    std::vector<std::uint32_t> partOffset_;
    std::vector<std::uint32_t> partCursor_;
    std::vector<RowId> partRows_;

    std::uint64_t acts_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t rfms_ = 0;
    std::uint64_t preventive_ = 0;
    std::uint64_t throttleStalls_ = 0;
};

} // namespace mithril::engine

#endif // MITHRIL_ENGINE_ACT_STREAM_ENGINE_HH
