#include "act_trace.hh"

#include <sys/mman.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "registry/registry.hh"
#include "registry/source_registry.hh"

namespace mithril::engine
{

// 19 chars + '\n'; the version lives in the magic itself.
const char kActTraceMagic[21] = "mithril.acttrace.v1\n";

namespace
{

using registry::SpecError;

constexpr std::size_t kMagicBytes = 20;
constexpr std::uint32_t kChunkMagic = 0x4b4e4843; // "CHNK" LE
constexpr std::uint32_t kIndexMagic = 0x31584449; // "IDX1" LE
constexpr char kEndMagic[9] = "mact.end";
constexpr std::size_t kEndMagicBytes = 8;
constexpr std::size_t kFooterBytes = 8 + 8 + kEndMagicBytes;
// magic + 4 geometry u32 + seed u64 + meta length u32.
constexpr std::size_t kHeaderFixedBytes = kMagicBytes + 16 + 8 + 4;
constexpr std::size_t kMaxMetaBytes = 1 << 20;

[[noreturn]] void
corrupt(const std::string &path, const std::string &what)
{
    throw SpecError("act-trace '" + path + "': " + what);
}

// ------------------------------------------- little-endian scalars

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

void
putBytes(std::vector<std::uint8_t> &out, const char *data,
         std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(data[i]));
}

/** Bounds-checked cursor over a byte buffer; throws on overrun. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size,
               const std::string &path, const char *what)
        : data_(data), size_(size), path_(path), what_(what)
    {
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i])
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    /** LEB128 unsigned varint (max 10 bytes). */
    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            need(1);
            const std::uint8_t byte = data_[pos_++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        corrupt(path_, std::string(what_) + ": varint overruns 64 bits");
    }

  private:
    void
    need(std::size_t n)
    {
        if (size_ - pos_ < n)
            corrupt(path_, std::string(what_) +
                               ": ends mid-record (wanted " +
                               std::to_string(n) + " more bytes)");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    const std::string &path_;
    const char *what_;
};

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

std::string
geometryText(std::uint32_t channels, std::uint32_t ranks,
             std::uint32_t banks, std::uint32_t rows)
{
    return std::to_string(channels) + "x" + std::to_string(ranks) +
           "x" + std::to_string(banks) + " banks, " +
           std::to_string(rows) + " rows";
}

/** fread exactly n bytes at the current position; throws on short
 *  reads (truncated file). */
void
readExact(std::FILE *file, void *out, std::size_t n,
          const std::string &path, const char *what)
{
    if (std::fread(out, 1, n, file) != n)
        corrupt(path, std::string(what) + " is truncated");
}

void
seekTo(std::FILE *file, std::uint64_t offset, const std::string &path)
{
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0)
        corrupt(path, "seek to offset " + std::to_string(offset) +
                          " failed");
}

std::uint64_t
fileSize(std::FILE *file, const std::string &path)
{
    if (std::fseek(file, 0, SEEK_END) != 0)
        corrupt(path, "seek to end failed");
    const long size = std::ftell(file);
    if (size < 0)
        corrupt(path, "ftell failed");
    return static_cast<std::uint64_t>(size);
}

} // namespace

// ----------------------------------------------------- ActTraceInfo

bool
ActTraceInfo::matches(const dram::Geometry &geometry) const
{
    return channels == geometry.channels &&
           ranksPerChannel == geometry.ranksPerChannel &&
           banksPerRank == geometry.banksPerRank &&
           rowsPerBank == geometry.rowsPerBank;
}

std::string
ActTraceInfo::describe() const
{
    std::ostringstream os;
    os << "mithril.acttrace.v1 channels=" << channels
       << " ranks=" << ranksPerChannel << " banks=" << banksPerRank
       << " rows=" << rowsPerBank << " seed=" << seed
       << " records=" << records << " chunks=" << chunks
       << " meta=\"" << meta << "\"\n";
    for (std::size_t b = 0; b < perBank.size(); ++b) {
        if (perBank[b] != 0)
            os << "bank " << b << ": " << perBank[b] << "\n";
    }
    return os.str();
}

// --------------------------------------------------- ActTraceWriter

ActTraceWriter::ActTraceWriter(const std::string &path,
                               const dram::Geometry &geometry,
                               std::uint64_t seed,
                               const std::string &meta)
    : path_(path), tmpPath_(path + ".tmp"),
      totalBanks_(geometry.totalBanks()),
      rowsPerBank_(geometry.rowsPerBank)
{
    if (totalBanks_ == 0 || rowsPerBank_ == 0)
        throw SpecError("act-trace '" + path +
                        "': cannot record an empty geometry");
    if (meta.size() > kMaxMetaBytes)
        throw SpecError("act-trace '" + path + "': meta exceeds " +
                        std::to_string(kMaxMetaBytes) + " bytes");
    // Crash safety: every byte lands in the temporary until
    // finalize() renames it into place, so `path` either holds a
    // complete earlier trace or nothing — never a torn capture.
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    if (!file_)
        throw SpecError("act-trace '" + path +
                        "': cannot open '" + tmpPath_ +
                        "' for writing: " + std::strerror(errno));
    buffers_.resize(totalBanks_);
    lastTick_.assign(totalBanks_, std::numeric_limits<Tick>::min());

    scratch_.clear();
    putBytes(scratch_, kActTraceMagic, kMagicBytes);
    putU32(scratch_, geometry.channels);
    putU32(scratch_, geometry.ranksPerChannel);
    putU32(scratch_, geometry.banksPerRank);
    putU32(scratch_, geometry.rowsPerBank);
    putU64(scratch_, seed);
    putU32(scratch_, static_cast<std::uint32_t>(meta.size()));
    putBytes(scratch_, meta.data(), meta.size());
    writeRaw(scratch_.data(), scratch_.size());
}

ActTraceWriter::~ActTraceWriter()
{
    if (finalized_)
        return;
    // Deliberately NO finalize here: the destructor mostly runs
    // during exception unwind (a capture that died mid-run), and
    // publishing a valid index+footer over partial data would produce
    // a truncated trace indistinguishable from a complete one. Drop
    // the temporary — nothing appears at the published path — and
    // say so.
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
        std::remove(tmpPath_.c_str());
    }
    if (records_ > 0)
        warn("act-trace '%s': abandoned without finalize() after "
             "%llu records; the partial capture was discarded",
             path_.c_str(),
             static_cast<unsigned long long>(records_));
}

void
ActTraceWriter::writeRaw(const void *data, std::size_t n)
{
    MITHRIL_ASSERT(file_ != nullptr);
    if (std::fwrite(data, 1, n, file_) != n)
        throw SpecError("act-trace '" + path_ + "': write failed");
    fileOffset_ += n;
}

void
ActTraceWriter::append(BankId bank, RowId row, Tick tick)
{
    if (finalized_)
        throw SpecError("act-trace '" + path_ +
                        "': append after finalize");
    if (bank >= totalBanks_) {
        throw SpecError("act-trace '" + path_ + "': bank " +
                        std::to_string(bank) +
                        " outside the declared geometry (" +
                        std::to_string(totalBanks_) + " banks)");
    }
    if (row >= rowsPerBank_) {
        throw SpecError("act-trace '" + path_ + "': row " +
                        std::to_string(row) +
                        " outside the declared geometry (" +
                        std::to_string(rowsPerBank_) + " rows)");
    }
    if (tick < 0 || (lastTick_[bank] !=
                         std::numeric_limits<Tick>::min() &&
                     tick < lastTick_[bank])) {
        throw SpecError(
            "act-trace '" + path_ + "': tick " +
            std::to_string(tick) + " regresses on bank " +
            std::to_string(bank) +
            " (ticks must be non-decreasing per bank)");
    }
    lastTick_[bank] = tick;
    buffers_[bank].rows.push_back(row);
    buffers_[bank].ticks.push_back(tick);
    ++buffered_;
    ++records_;
    if (buffered_ >= kChunkRecords)
        flushChunk();
}

void
ActTraceWriter::flushChunk()
{
    if (buffered_ == 0)
        return;

    IndexChunk chunk;
    chunk.offset = fileOffset_;

    // Chunk header: magic + block count.
    std::uint32_t block_count = 0;
    for (const BankBuffer &buf : buffers_)
        block_count += buf.rows.empty() ? 0 : 1;
    scratch_.clear();
    putU32(scratch_, kChunkMagic);
    putU32(scratch_, block_count);
    writeRaw(scratch_.data(), scratch_.size());

    // Blocks in ascending bank order (the canonical replay order).
    for (std::uint32_t bank = 0; bank < totalBanks_; ++bank) {
        BankBuffer &buf = buffers_[bank];
        if (buf.rows.empty())
            continue;

        scratch_.clear();
        RowId prev_row = 0;
        Tick prev_tick = 0;
        for (std::size_t i = 0; i < buf.rows.size(); ++i) {
            if (i == 0) {
                putVarint(scratch_, buf.rows[i]);
                putVarint(scratch_,
                          static_cast<std::uint64_t>(buf.ticks[i]));
            } else {
                putVarint(scratch_,
                          zigzag(static_cast<std::int64_t>(
                                     buf.rows[i]) -
                                 static_cast<std::int64_t>(prev_row)));
                putVarint(scratch_, static_cast<std::uint64_t>(
                                        buf.ticks[i] - prev_tick));
            }
            prev_row = buf.rows[i];
            prev_tick = buf.ticks[i];
        }

        IndexBlock block;
        block.bank = bank;
        block.count = static_cast<std::uint32_t>(buf.rows.size());
        block.payloadBytes =
            static_cast<std::uint32_t>(scratch_.size());
        chunk.blocks.push_back(block);

        std::vector<std::uint8_t> head;
        putU32(head, block.bank);
        putU32(head, block.count);
        putU32(head, block.payloadBytes);
        writeRaw(head.data(), head.size());
        writeRaw(scratch_.data(), scratch_.size());

        buf.rows.clear();
        buf.ticks.clear();
    }

    index_.push_back(std::move(chunk));
    buffered_ = 0;
}

void
ActTraceWriter::finalize()
{
    if (finalized_)
        return;
    // Before any footer byte lands: an injected failure here must
    // leave only the temporary (which the destructor removes), never
    // a published half-trace.
    MITHRIL_FAILPOINT("act-trace.finalize");
    flushChunk();

    const std::uint64_t index_offset = fileOffset_;
    scratch_.clear();
    putU32(scratch_, kIndexMagic);
    putU64(scratch_, index_.size());
    for (const IndexChunk &chunk : index_) {
        putU64(scratch_, chunk.offset);
        putU32(scratch_, static_cast<std::uint32_t>(
                             chunk.blocks.size()));
        for (const IndexBlock &block : chunk.blocks) {
            putU32(scratch_, block.bank);
            putU32(scratch_, block.count);
            putU32(scratch_, block.payloadBytes);
        }
    }
    putU64(scratch_, index_offset);
    putU64(scratch_, records_);
    putBytes(scratch_, kEndMagic, kEndMagicBytes);
    writeRaw(scratch_.data(), scratch_.size());

    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        std::remove(tmpPath_.c_str());
        throw SpecError("act-trace '" + path_ + "': close failed");
    }
    file_ = nullptr;
    // Atomic publish: readers either see the previous complete file
    // or this one, never a prefix.
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        std::remove(tmpPath_.c_str());
        throw SpecError("act-trace '" + path_ + "': renaming '" +
                        tmpPath_ + "' into place failed");
    }
    finalized_ = true;
}

// ----------------------------------------------------- trace parsing

namespace
{

/** Injection sites for the resilience machinery (see --list
 *  failpoints and README "Resilience"). */
const failpoint::SiteRegistrar kFpDecode{
    "act-trace.decode",
    "fail a trace block decode (ActTraceSource::loadBlock) — what a "
    "truncated or bit-rotted replay corpus looks like to a sweep job"};
const failpoint::SiteRegistrar kFpFinalize{
    "act-trace.finalize",
    "fail ActTraceWriter::finalize before the tmp+rename publish — "
    "the capture/compose is lost but no torn file appears"};

std::FILE *
openTrace(const std::string &path)
{
    // Diagnose the path before fopen: on Linux fopen("rb") happily
    // opens a directory and the failure would otherwise surface as a
    // misleading "header is truncated" mid-parse.
    struct ::stat st;
    if (::stat(path.c_str(), &st) != 0) {
        throw SpecError("act-trace '" + path +
                        "': " + std::strerror(errno));
    }
    if (S_ISDIR(st.st_mode))
        throw SpecError("act-trace '" + path +
                        "': is a directory, not a trace file");
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw SpecError("act-trace '" + path + "': cannot open for "
                        "reading: " + std::strerror(errno));
    return file;
}

} // namespace

ActTraceSource::Mapping::~Mapping()
{
    if (data)
        ::munmap(const_cast<std::uint8_t *>(data), size);
}

std::shared_ptr<const ActTraceSource::Parsed>
ActTraceSource::parse(std::FILE *file, const std::string &path,
                      bool want_mmap)
{
    auto parsed = std::make_shared<Parsed>();
    Parsed &out = *parsed;
    const std::uint64_t size = fileSize(file, path);

    // ---- header
    if (size < kHeaderFixedBytes)
        corrupt(path, "truncated header (" + std::to_string(size) +
                          " bytes)");
    std::vector<std::uint8_t> head(kHeaderFixedBytes);
    seekTo(file, 0, path);
    readExact(file, head.data(), head.size(), path, "header");
    if (std::memcmp(head.data(), kActTraceMagic, kMagicBytes) != 0)
        corrupt(path, "bad magic (not a mithril.acttrace.v1 file)");
    ByteReader header(head.data() + kMagicBytes,
                      head.size() - kMagicBytes, path, "header");
    ActTraceInfo &info = out.info;
    info.channels = header.u32();
    info.ranksPerChannel = header.u32();
    info.banksPerRank = header.u32();
    info.rowsPerBank = header.u32();
    info.seed = header.u64();
    const std::uint32_t meta_len = header.u32();
    // Bound the geometry BEFORE sizing anything by it: a crafted
    // header must become a SpecError, not a multi-gigabyte perBank
    // allocation (and the 64-bit product also rejects fields whose
    // uint32 totalBanks() would wrap to something small).
    const std::uint64_t banks64 =
        static_cast<std::uint64_t>(info.channels) *
        info.ranksPerChannel * info.banksPerRank;
    if (banks64 == 0 || info.rowsPerBank == 0)
        corrupt(path, "header declares an empty geometry");
    if (banks64 > (1u << 20) || info.rowsPerBank > (1u << 30))
        corrupt(path, "header declares an implausible geometry (" +
                          std::to_string(banks64) + " banks, " +
                          std::to_string(info.rowsPerBank) +
                          " rows)");
    if (meta_len > kMaxMetaBytes ||
        kHeaderFixedBytes + meta_len > size)
        corrupt(path, "meta length " + std::to_string(meta_len) +
                          " overruns the file");
    info.meta.resize(meta_len);
    if (meta_len > 0)
        readExact(file, info.meta.data(), meta_len, path, "meta");
    const std::uint64_t data_begin = kHeaderFixedBytes + meta_len;

    // ---- footer
    if (size < data_begin + kFooterBytes)
        corrupt(path, "truncated footer (no index written — "
                      "incomplete capture?)");
    std::uint8_t foot[kFooterBytes];
    seekTo(file, size - kFooterBytes, path);
    readExact(file, foot, kFooterBytes, path, "footer");
    if (std::memcmp(foot + 16, kEndMagic, kEndMagicBytes) != 0)
        corrupt(path, "bad end marker (incomplete capture?)");
    ByteReader footer(foot, 16, path, "footer");
    const std::uint64_t index_offset = footer.u64();
    const std::uint64_t total_records = footer.u64();
    if (index_offset < data_begin ||
        index_offset > size - kFooterBytes)
        corrupt(path, "index offset " +
                          std::to_string(index_offset) +
                          " outside the file");

    // ---- index
    const std::size_t index_bytes = static_cast<std::size_t>(
        size - kFooterBytes - index_offset);
    std::vector<std::uint8_t> raw(index_bytes);
    seekTo(file, index_offset, path);
    readExact(file, raw.data(), raw.size(), path, "index");
    ByteReader index(raw.data(), raw.size(), path, "index");
    if (index.u32() != kIndexMagic)
        corrupt(path, "bad index magic");
    const std::uint64_t chunk_count = index.u64();
    // Every chunk needs >= 12 index bytes; reject absurd counts
    // before the loop below walks off a lie.
    if (chunk_count > index_bytes)
        corrupt(path, "index declares " +
                          std::to_string(chunk_count) + " chunks in " +
                          std::to_string(index_bytes) + " bytes");
    info.chunks = chunk_count;
    info.perBank.assign(info.totalBanks(), 0);

    std::uint64_t expected_offset = data_begin;
    std::uint64_t records = 0;
    for (std::uint64_t c = 0; c < chunk_count; ++c) {
        const std::uint64_t chunk_offset = index.u64();
        const std::uint32_t block_count = index.u32();
        if (chunk_offset != expected_offset)
            corrupt(path, "chunk " + std::to_string(c) +
                              " offset mismatch (index says " +
                              std::to_string(chunk_offset) +
                              ", expected " +
                              std::to_string(expected_offset) + ")");
        if (block_count == 0 || block_count > info.totalBanks())
            corrupt(path, "chunk " + std::to_string(c) +
                              " declares " +
                              std::to_string(block_count) +
                              " blocks for " +
                              std::to_string(info.totalBanks()) +
                              " banks");
        // Cross-check the in-band chunk header against the index, so
        // corruption in the data section's framing is caught at open
        // (loadBlock does the same for the per-block headers).
        {
            std::uint8_t chunk_head[8];
            seekTo(file, chunk_offset, path);
            readExact(file, chunk_head, sizeof(chunk_head), path,
                      "chunk header");
            ByteReader head(chunk_head, sizeof(chunk_head), path,
                            "chunk header");
            if (head.u32() != kChunkMagic ||
                head.u32() != block_count)
                corrupt(path, "chunk " + std::to_string(c) +
                                  " header disagrees with the "
                                  "index");
        }
        // Payloads start after the chunk header and each block's
        // 12-byte header.
        std::uint64_t cursor = chunk_offset + 8;
        std::uint32_t prev_bank = 0;
        bool first = true;
        for (std::uint32_t b = 0; b < block_count; ++b) {
            IndexBlock block;
            block.bank = index.u32();
            block.count = index.u32();
            block.payloadBytes = index.u32();
            if (block.bank >= info.totalBanks())
                corrupt(path, "block bank " +
                                  std::to_string(block.bank) +
                                  " outside the declared geometry (" +
                                  std::to_string(info.totalBanks()) +
                                  " banks)");
            if (!first && block.bank <= prev_bank)
                corrupt(path, "chunk " + std::to_string(c) +
                                  " blocks are not in ascending "
                                  "bank order");
            if (block.count == 0)
                corrupt(path, "empty block for bank " +
                                  std::to_string(block.bank));
            // A record takes at least 2 payload bytes (row + tick
            // varints); an impossible count/size pair is corruption,
            // caught here rather than mid-decode.
            if (block.payloadBytes < 2ull * block.count)
                corrupt(path, "block for bank " +
                                  std::to_string(block.bank) +
                                  " declares " +
                                  std::to_string(block.count) +
                                  " records in " +
                                  std::to_string(block.payloadBytes) +
                                  " bytes");
            cursor += 12;
            block.payloadOffset = cursor;
            cursor += block.payloadBytes;
            if (cursor > index_offset)
                corrupt(path, "block payload for bank " +
                                  std::to_string(block.bank) +
                                  " overruns into the index");
            records += block.count;
            info.perBank[block.bank] += block.count;
            prev_bank = block.bank;
            first = false;
            out.blocks.push_back(block);
        }
        expected_offset = cursor;
    }
    if (expected_offset != index_offset)
        corrupt(path, "data section ends at " +
                          std::to_string(expected_offset) +
                          " but the index starts at " +
                          std::to_string(index_offset));
    if (index.remaining() != 0)
        corrupt(path, "index has " +
                          std::to_string(index.remaining()) +
                          " trailing bytes");
    if (records != total_records)
        corrupt(path, "footer declares " +
                          std::to_string(total_records) +
                          " records but the index sums to " +
                          std::to_string(records));
    info.records = records;

    // Zero-copy mode: map the (now structurally validated) file once;
    // every slice decodes straight from the page cache through this
    // shared mapping. A failed map is not an error — the buffered
    // fread path below serves the same bytes.
    if (want_mmap) {
        void *mem = ::mmap(nullptr, static_cast<std::size_t>(size),
                           PROT_READ, MAP_PRIVATE, fileno(file), 0);
        if (mem == MAP_FAILED) {
            warn("act-trace '%s': mmap failed; falling back to "
                 "buffered reads",
                 path.c_str());
        } else {
            auto map = std::make_unique<Mapping>();
            map->data = static_cast<const std::uint8_t *>(mem);
            map->size = static_cast<std::size_t>(size);
            out.map = std::move(map);
        }
    }
    return parsed;
}

ActTraceInfo
actTraceInfo(const std::string &path)
{
    return ActTraceSource(path).info();
}

// --------------------------------------------------- ActTraceSource

ActTraceSource::ActTraceSource(const std::string &path,
                               std::uint64_t max_records)
    : ActTraceSource(path, 0, ~BankId{0}, max_records)
{
    // Full stream = the range [0, max bank id): no sentinel, an
    // explicit [0, 0) range really is empty.
}

ActTraceSource::ActTraceSource(const std::string &path, BankId lo,
                               BankId hi, std::uint64_t max_records)
    : path_(path), lo_(lo), hi_(hi), budget_(max_records)
{
    file_ = openTrace(path);
    try {
        parsed_ = parse(file_, path_, false);
    } catch (...) {
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
}

ActTraceSource::ActTraceSource(const std::string &path,
                               ActTraceReadOptions opts,
                               std::uint64_t max_records)
    : path_(path), lo_(0), hi_(~BankId{0}), budget_(max_records)
{
    file_ = openTrace(path);
    try {
        parsed_ = parse(file_, path_, opts.mmap);
    } catch (...) {
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
    // A mapped reader never touches the handle again — the mapping
    // outlives the fd — so mmap readers (and all their slices) hold
    // no file descriptors at all.
    if (parsed_->map) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

ActTraceSource::ActTraceSource(const ActTraceSource &parsed,
                               BankId lo, BankId hi,
                               std::uint64_t max_records)
    : path_(parsed.path_), parsed_(parsed.parsed_), lo_(lo),
      hi_(hi), budget_(max_records)
{
    if (!parsed_->map)
        file_ = openTrace(path_);
}

bool
ActTraceSource::mapped() const
{
    return parsed_->map != nullptr;
}

ActTraceSource::~ActTraceSource()
{
    if (file_)
        std::fclose(file_);
}

std::string
ActTraceSource::name() const
{
    std::string name = "act-trace:" + path_;
    if (lo_ != 0 || hi_ < info().totalBanks())
        name += "[" + std::to_string(lo_) + "," +
                std::to_string(hi_) + ")";
    return name;
}

std::unique_ptr<ActSource>
ActTraceSource::shardSlice(BankId lo, BankId hi, std::uint64_t budget)
{
    // Slices only make sense off the pristine full stream.
    MITHRIL_ASSERT(blockCursor_ == 0 && blockRemaining_ == 0);
    // The header/index are immutable once parsed: the slice reuses
    // them and only opens its own file handle, so a 16-shard replay
    // parses the index once, not 16 more times.
    return std::unique_ptr<ActSource>(new ActTraceSource(
        *this, lo, hi, std::min(budget, budget_)));
}

void
ActTraceSource::loadBlock(const IndexBlock &block)
{
    MITHRIL_FAILPOINT("act-trace.decode");
    // Cross-check the in-band block header against the index before
    // trusting the payload (catches spliced/overwritten data that a
    // consistent index would otherwise hide).
    std::uint8_t head_buf[12];
    const std::uint8_t *head;
    if (const Mapping *map = parsed_->map.get()) {
        // parse() bounded every payload inside [data_begin,
        // index_offset), so header and payload both sit inside the
        // mapping.
        head = map->data + (block.payloadOffset - 12);
        blockData_ = map->data + block.payloadOffset;
    } else {
        seekTo(file_, block.payloadOffset - 12, path_);
        readExact(file_, head_buf, sizeof(head_buf), path_,
                  "block header");
        head = head_buf;
    }
    ByteReader reader(head, 12, path_, "block header");
    const std::uint32_t bank = reader.u32();
    const std::uint32_t count = reader.u32();
    const std::uint32_t bytes = reader.u32();
    if (bank != block.bank || count != block.count ||
        bytes != block.payloadBytes)
        corrupt(path_, "block header disagrees with the index "
                       "(bank " +
                           std::to_string(bank) + " vs " +
                           std::to_string(block.bank) + ")");
    if (!parsed_->map) {
        decode_.resize(block.payloadBytes);
        readExact(file_, decode_.data(), decode_.size(), path_,
                  "block payload");
        blockData_ = decode_.data();
    }
    blockSize_ = block.payloadBytes;
    decodePos_ = 0;
    first_ = true;
    blockBank_ = block.bank;
}

bool
ActTraceSource::nextBlock()
{
    while (blockCursor_ < parsed_->blocks.size()) {
        if (budget_ == 0)
            return false;
        const IndexBlock &block = parsed_->blocks[blockCursor_];
        ++blockCursor_;
        // The canonical prefix consumes this block's records whether
        // or not they fall in our bank range.
        const std::uint64_t take =
            std::min<std::uint64_t>(block.count, budget_);
        budget_ -= take;
        if (block.bank < lo_ || block.bank >= hi_)
            continue;
        loadBlock(block);
        blockRemaining_ = take;
        blockTruncated_ = take < block.count;
        return true;
    }
    return false;
}

void
ActTraceSource::blockTickSpan(const IndexBlock &block, Tick *first,
                              Tick *last)
{
    const std::uint8_t *payload;
    std::vector<std::uint8_t> local;
    if (const Mapping *map = parsed_->map.get()) {
        payload = map->data + block.payloadOffset;
    } else {
        local.resize(block.payloadBytes);
        seekTo(file_, block.payloadOffset, path_);
        readExact(file_, local.data(), local.size(), path_,
                  "block payload");
        payload = local.data();
    }
    ByteReader r(payload, block.payloadBytes, path_, "block payload");
    r.varint(); // First row (zigzag-encoded raw value; unused here).
    const std::uint64_t raw_tick = r.varint();
    if (raw_tick > static_cast<std::uint64_t>(kTickMax))
        corrupt(path_, "tick overflows");
    Tick tick = static_cast<Tick>(raw_tick);
    *first = tick;
    for (std::uint32_t i = 1; i < block.count; ++i) {
        r.varint(); // Row delta.
        const std::uint64_t delta = r.varint();
        if (delta > static_cast<std::uint64_t>(kTickMax) -
                        static_cast<std::uint64_t>(tick))
            corrupt(path_, "tick overflows");
        tick += static_cast<Tick>(delta);
    }
    *last = tick;
}

std::vector<ActTraceBankSpan>
ActTraceSource::bankSpans()
{
    // The index orders blocks canonically (chunk-major, ascending
    // bank within a chunk) and each bank's subsequence is tick-
    // monotone across blocks, so a bank's span is [first tick of its
    // first block, last tick of its last block] — two block decodes
    // per touched bank, never a full scan.
    const std::uint32_t banks = info().totalBanks();
    std::vector<const IndexBlock *> head(banks, nullptr);
    std::vector<const IndexBlock *> tail(banks, nullptr);
    for (const IndexBlock &block : parsed_->blocks) {
        if (!head[block.bank])
            head[block.bank] = &block;
        tail[block.bank] = &block;
    }
    std::vector<ActTraceBankSpan> spans(banks);
    for (std::uint32_t b = 0; b < banks; ++b) {
        spans[b].count = info().perBank[b];
        if (!head[b])
            continue;
        Tick last_of_first;
        blockTickSpan(*head[b], &spans[b].first, &last_of_first);
        if (tail[b] == head[b]) {
            spans[b].last = last_of_first;
        } else {
            Tick first_of_last;
            blockTickSpan(*tail[b], &first_of_last, &spans[b].last);
        }
    }
    return spans;
}

std::size_t
ActTraceSource::fill(ActBatch &batch, std::size_t limit)
{
    std::size_t appended = 0;
    while (appended < limit && !batch.full()) {
        if (blockRemaining_ == 0) {
            if (!nextBlock())
                break;
        }
        while (blockRemaining_ > 0 && appended < limit &&
               !batch.full()) {
            ByteReader r(blockData_ + decodePos_,
                         blockSize_ - decodePos_, path_,
                         "block payload");
            RowId row;
            Tick tick;
            if (first_) {
                const std::uint64_t raw_row = r.varint();
                const std::uint64_t raw_tick = r.varint();
                if (raw_row >= info().rowsPerBank)
                    corrupt(path_,
                            "row " + std::to_string(raw_row) +
                                " outside the declared geometry (" +
                                std::to_string(info().rowsPerBank) +
                                " rows)");
                if (raw_tick >
                    static_cast<std::uint64_t>(kTickMax))
                    corrupt(path_, "tick overflows");
                row = static_cast<RowId>(raw_row);
                tick = static_cast<Tick>(raw_tick);
                first_ = false;
            } else {
                const std::int64_t row_delta =
                    unzigzag(r.varint());
                const std::uint64_t tick_delta = r.varint();
                const std::int64_t next_row =
                    static_cast<std::int64_t>(prevRow_) + row_delta;
                if (next_row < 0 ||
                    next_row >=
                        static_cast<std::int64_t>(info().rowsPerBank))
                    corrupt(path_,
                            "row delta leaves the declared "
                            "geometry (row " +
                                std::to_string(next_row) + ")");
                if (tick_delta >
                    static_cast<std::uint64_t>(kTickMax) -
                        static_cast<std::uint64_t>(prevTick_))
                    corrupt(path_, "tick overflows");
                row = static_cast<RowId>(next_row);
                tick = prevTick_ + static_cast<Tick>(tick_delta);
            }
            decodePos_ += r.pos();
            prevRow_ = row;
            prevTick_ = tick;
            batch.push(blockBank_, row, tick);
            ++appended;
            --blockRemaining_;
        }
        // Trailing payload bytes after the last promised record are
        // corruption — unless the replay budget truncated the block,
        // in which case the undecoded tail is expected.
        if (blockRemaining_ == 0 && !blockTruncated_ &&
            decodePos_ != blockSize_)
            corrupt(path_, "block payload for bank " +
                               std::to_string(blockBank_) +
                               " has trailing bytes");
    }
    return appended;
}

// -------------------------------------------------- RecordingSource

RecordingSource::RecordingSource(std::unique_ptr<ActSource> inner,
                                 ActTraceWriter *writer)
    : inner_(std::move(inner)), writer_(writer)
{
    MITHRIL_ASSERT(inner_ != nullptr && writer_ != nullptr);
}

std::string
RecordingSource::name() const
{
    return "record:" + inner_->name();
}

std::size_t
RecordingSource::fill(ActBatch &batch, std::size_t limit)
{
    const std::size_t before = batch.size();
    const std::size_t n = inner_->fill(batch, limit);
    for (std::size_t i = before; i < before + n; ++i) {
        const ActRecord rec = batch.record(i);
        writer_->append(rec.bank, rec.row, rec.tick);
    }
    return n;
}

// ---------------------------------------------------- registration
//
// The replay entry: a captured raw ACT stream driven back through the
// engine. Distinct from "trace-file", which replays instruction-level
// Ramulator-style traces through the address map.

namespace
{

const registry::Registrar<registry::SourceTraits> kRegisterActTrace{{
    /*name=*/"act-trace",
    /*display=*/"act-trace",
    /*description=*/
    "replay a captured mithril.acttrace.v1 ACT stream (written by "
    "record= or composed by the trace-ops pipeline; see --list "
    "trace-ops), seeking per shard through its bank index",
    /*aliases=*/{"act_trace"},
    /*uses=*/"acts (replay budget), seed (ignored: the stream is "
             "already fixed)",
    /*params=*/
    {{"trace", registry::ParamDesc::Type::String, "", 0, 0,
      "path of the captured .acttrace file (required)"},
     {"mmap", registry::ParamDesc::Type::Bool, "1", 0, 1,
      "decode blocks zero-copy from an mmap of the file; falls back "
      "to buffered reads when mapping fails"}},
    /*make=*/
    [](const ParamSet &params, const registry::SourceContext &ctx)
        -> std::unique_ptr<ActSource> {
        const std::string path = params.getString("trace", "");
        if (path.empty()) {
            throw registry::SpecError(
                "source 'act-trace' needs trace=<path> (capture one "
                "with record=<path> on any run, or compose one with "
                "trace_cli)");
        }
        auto source = std::make_unique<ActTraceSource>(
            path, ActTraceReadOptions{params.getBool("mmap", true)});
        const ActTraceInfo &info = source->info();
        if (!info.matches(ctx.geometry)) {
            throw registry::SpecError(
                "act-trace '" + path + "': geometry mismatch — "
                "trace was captured on " +
                geometryText(info.channels, info.ranksPerChannel,
                             info.banksPerRank, info.rowsPerBank) +
                ", this run has " +
                geometryText(ctx.geometry.channels,
                             ctx.geometry.ranksPerChannel,
                             ctx.geometry.banksPerRank,
                             ctx.geometry.rowsPerBank));
        }
        return source;
    },
}};

} // namespace

} // namespace mithril::engine
