/**
 * @file
 * The on-disk ACT-stream capture/replay format `mithril.acttrace.v1`
 * and its writer/reader sources.
 *
 * A trace is the activation stream a run fed its tracker — the
 * per-bank subsequences of (tick, bank, row) — captured once so every
 * protection scheme can replay it at engine speed, sharded. Layout:
 *
 *   header   20-byte magic "mithril.acttrace.v1\n", the geometry the
 *            stream aims at (channels/ranks/banks/rows), the run
 *            seed, and a free-form meta string (the capturing spec's
 *            describe() line).
 *   chunks   records buffered in arrival order and flushed as chunks
 *            of per-bank sub-blocks (ascending bank). Within a block,
 *            rows are zigzag-delta varints and ticks non-negative
 *            delta varints against the previous record of the SAME
 *            bank in the block (first record raw), so blocks are
 *            self-contained and seekable.
 *   index    one entry per chunk listing every block's (bank, count,
 *            payload bytes) — what lets a shard reader seek straight
 *            to its own banks without touching the rest of the file.
 *   footer   fixed 24-byte tail: index offset, total records, end
 *            marker.
 *
 * Chunking canonicalizes the *cross-bank* interleaving (a chunk
 * replays its blocks in ascending bank order) while preserving every
 * per-bank subsequence exactly. Engine results are invariant to
 * cross-bank order — each bank is an independent clock — so a replay
 * is byte-identical to the run the stream was captured from, at any
 * shard or pool count. A bounded replay (acts= below the record
 * count) takes a prefix of the canonical order, identically in the
 * linear and the seeking reader.
 *
 * Every structural defect — truncation, bad magic, out-of-range
 * bank/row, a payload that ends mid-record, index/footer mismatch —
 * raises registry::SpecError, so a corrupt trace fails its job
 * cleanly in the sweep sinks instead of corrupting a run.
 */

#ifndef MITHRIL_ENGINE_ACT_TRACE_HH
#define MITHRIL_ENGINE_ACT_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dram/timing.hh"
#include "engine/act_source.hh"

namespace mithril::engine
{

/** The 20-byte file magic (includes the format version). */
extern const char kActTraceMagic[21];

/** Parsed header + index summary of one trace file. */
struct ActTraceInfo
{
    std::uint32_t channels = 0;
    std::uint32_t ranksPerChannel = 0;
    std::uint32_t banksPerRank = 0;
    std::uint32_t rowsPerBank = 0;
    std::uint64_t seed = 0;
    std::string meta;
    std::uint64_t records = 0;
    std::uint64_t chunks = 0;
    /** Records per bank (flat index, length = total banks). */
    std::vector<std::uint64_t> perBank;

    std::uint32_t totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** True when the trace aims at exactly this run geometry. */
    bool matches(const dram::Geometry &geometry) const;

    /**
     * Deterministic multi-line dump (header line, then one
     * "bank N: count" line per non-empty bank) — the golden-file
     * surface that pins the format across PRs.
     */
    std::string describe() const;
};

/** One bank's tick extent, computed from the block index alone. */
struct ActTraceBankSpan
{
    std::uint64_t count = 0;
    Tick first = 0;
    Tick last = 0;
};

/** How a trace file is read back. */
struct ActTraceReadOptions
{
    /** Decode blocks straight out of an mmap of the file (zero-copy,
     *  shared by every shard slice). Falls back to the buffered
     *  fread reader when the mapping cannot be established. */
    bool mmap = false;
};

/**
 * Streaming trace writer. append() validates eagerly (bank/row inside
 * the declared geometry, ticks non-decreasing per bank) and throws
 * registry::SpecError on violation or I/O failure; finalize() flushes
 * the last chunk, writes index + footer, and atomically renames the
 * file into place — all bytes land in `<path>.tmp` until then, so an
 * interrupted capture or compose never leaves a half-written trace
 * at the published path for a later sweep job to trip over. The
 * destructor only closes and removes the temporary (with a warning):
 * it mostly runs during exception unwind, and publishing a partial
 * capture would make a truncated trace indistinguishable from a
 * complete one. A capture that dies before finalize() leaves nothing
 * at `path`.
 */
class ActTraceWriter
{
  public:
    /** Records buffered before a chunk is flushed. */
    static constexpr std::size_t kChunkRecords = 8192;

    ActTraceWriter(const std::string &path,
                   const dram::Geometry &geometry, std::uint64_t seed,
                   const std::string &meta);
    ~ActTraceWriter();

    ActTraceWriter(const ActTraceWriter &) = delete;
    ActTraceWriter &operator=(const ActTraceWriter &) = delete;

    /** Append one activation (arrival order). */
    void append(BankId bank, RowId row, Tick tick);

    /** Flush, write index + footer, close, rename into place.
     *  Idempotent. */
    void finalize();

    std::uint64_t records() const { return records_; }
    const std::string &path() const { return path_; }

  private:
    struct BankBuffer
    {
        std::vector<RowId> rows;
        std::vector<Tick> ticks;
    };

    struct IndexBlock
    {
        std::uint32_t bank = 0;
        std::uint32_t count = 0;
        std::uint32_t payloadBytes = 0;
    };

    struct IndexChunk
    {
        std::uint64_t offset = 0; //!< Chunk header file offset.
        std::vector<IndexBlock> blocks;
    };

    void flushChunk();
    void writeRaw(const void *data, std::size_t n);

    std::string path_;
    std::string tmpPath_;   //!< Where bytes land until finalize().
    std::FILE *file_ = nullptr;
    std::uint32_t totalBanks_;
    std::uint32_t rowsPerBank_;

    std::vector<BankBuffer> buffers_;    //!< Per bank.
    std::vector<Tick> lastTick_;         //!< Per bank, monotonicity.
    std::size_t buffered_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t fileOffset_ = 0;
    std::vector<IndexChunk> index_;
    std::vector<std::uint8_t> scratch_;  //!< Encode buffer, reused.
    bool finalized_ = false;
};

/** Parse a trace's header + index; throws registry::SpecError. */
ActTraceInfo actTraceInfo(const std::string &path);

/**
 * Replay source over a trace file — the whole stream in canonical
 * order, or a bank-range slice [lo, hi) that *seeks*: blocks of other
 * banks are skipped via the index without reading their payloads.
 * `max_records` bounds the canonical global prefix the source will
 * replay (out-of-range blocks still consume budget), so a range
 * slice emits exactly the in-range records a BankFilterSource over
 * the bounded full stream would — the contract behind shardSlice().
 *
 * Each buffered source owns its own file handle, so per-shard
 * readers can run on different threads; mmap readers share one
 * read-only mapping (the page cache is the buffer) and need no
 * handle at all, so per-(bank) cursors are cheap enough for k-way
 * merges over many inputs.
 */
class ActTraceSource : public ActSource
{
  public:
    explicit ActTraceSource(const std::string &path,
                            std::uint64_t max_records = ~0ull);
    ActTraceSource(const std::string &path, BankId lo, BankId hi,
                   std::uint64_t max_records = ~0ull);
    ActTraceSource(const std::string &path, ActTraceReadOptions opts,
                   std::uint64_t max_records = ~0ull);
    ~ActTraceSource() override;

    const ActTraceInfo &info() const { return parsed_->info; }

    /** True when this reader decodes from a shared mapping. */
    bool mapped() const;

    std::string name() const override;

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

    /** Native seeking slice of the same file (fresh handle, or the
     *  shared mapping when this reader is mmap-backed). */
    std::unique_ptr<ActSource> shardSlice(
        BankId lo, BankId hi, std::uint64_t budget) override;

    /**
     * Per-bank (count, first tick, last tick), decoding only each
     * bank's first and last indexed block — O(banks) block decodes,
     * never a full-stream scan. Entries with count == 0 are banks the
     * trace never touches.
     */
    std::vector<ActTraceBankSpan> bankSpans();

  private:
    struct IndexBlock
    {
        std::uint32_t bank;
        std::uint32_t count;
        std::uint32_t payloadBytes;
        std::uint64_t payloadOffset;
    };

    /** A read-only mmap of the whole file, shared by all slices. */
    struct Mapping
    {
        const std::uint8_t *data = nullptr;
        std::size_t size = 0;
        ~Mapping();
    };

    /** The immutable parse result (header + flattened canonical
     *  block index, plus the mapping when mmap was requested),
     *  shared by a full reader and all its slices so a sharded
     *  replay parses AND stores the index exactly once. */
    struct Parsed
    {
        ActTraceInfo info;
        std::vector<IndexBlock> blocks;
        std::unique_ptr<Mapping> map;
    };

    /** Slice off an already-parsed source: shares the header/index
     *  state (and the mapping) and opens at most a fresh handle. */
    ActTraceSource(const ActTraceSource &parsed, BankId lo, BankId hi,
                   std::uint64_t max_records);

    /** Parse + structurally validate header, index, and footer;
     *  establishes the shared mapping when `want_mmap`. */
    static std::shared_ptr<const Parsed>
    parse(std::FILE *file, const std::string &path, bool want_mmap);

    /** Advance to the next in-range block; false when exhausted. */
    bool nextBlock();

    /** Point blockData_ at the current block's validated payload —
     *  into the mapping (zero-copy) or freshly read into decode_. */
    void loadBlock(const IndexBlock &block);

    /** First and last tick of one indexed block (decodes it). */
    void blockTickSpan(const IndexBlock &block, Tick *first,
                       Tick *last);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::shared_ptr<const Parsed> parsed_;
    BankId lo_;
    BankId hi_;
    std::uint64_t budget_;            //!< Remaining canonical records.

    std::size_t blockCursor_ = 0;     //!< Next block to consider.
    std::uint64_t blockRemaining_ = 0; //!< Records left in cur block.
    bool blockTruncated_ = false;     //!< Budget cut the cur block.
    std::uint32_t blockBank_ = 0;
    std::vector<std::uint8_t> decode_; //!< Buffered payload storage.
    const std::uint8_t *blockData_ = nullptr; //!< Cur block payload.
    std::size_t blockSize_ = 0;
    std::size_t decodePos_ = 0;
    RowId prevRow_ = 0;
    Tick prevTick_ = 0;
    bool first_ = true;               //!< First record of cur block.
};

/**
 * Tee: forwards the wrapped source unchanged while appending every
 * record that passes through to a writer. The writer is borrowed —
 * the caller finalizes it after the run.
 */
class RecordingSource : public ActSource
{
  public:
    RecordingSource(std::unique_ptr<ActSource> inner,
                    ActTraceWriter *writer);

    std::string name() const override;

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

  private:
    std::unique_ptr<ActSource> inner_;
    ActTraceWriter *writer_;
};

} // namespace mithril::engine

#endif // MITHRIL_ENGINE_ACT_TRACE_HH
