/**
 * @file
 * The on-disk ACT-stream capture/replay format `mithril.acttrace.v1`
 * and its writer/reader sources.
 *
 * A trace is the activation stream a run fed its tracker — the
 * per-bank subsequences of (tick, bank, row) — captured once so every
 * protection scheme can replay it at engine speed, sharded. Layout:
 *
 *   header   20-byte magic "mithril.acttrace.v1\n", the geometry the
 *            stream aims at (channels/ranks/banks/rows), the run
 *            seed, and a free-form meta string (the capturing spec's
 *            describe() line).
 *   chunks   records buffered in arrival order and flushed as chunks
 *            of per-bank sub-blocks (ascending bank). Within a block,
 *            rows are zigzag-delta varints and ticks non-negative
 *            delta varints against the previous record of the SAME
 *            bank in the block (first record raw), so blocks are
 *            self-contained and seekable.
 *   index    one entry per chunk listing every block's (bank, count,
 *            payload bytes) — what lets a shard reader seek straight
 *            to its own banks without touching the rest of the file.
 *   footer   fixed 24-byte tail: index offset, total records, end
 *            marker.
 *
 * Chunking canonicalizes the *cross-bank* interleaving (a chunk
 * replays its blocks in ascending bank order) while preserving every
 * per-bank subsequence exactly. Engine results are invariant to
 * cross-bank order — each bank is an independent clock — so a replay
 * is byte-identical to the run the stream was captured from, at any
 * shard or pool count. A bounded replay (acts= below the record
 * count) takes a prefix of the canonical order, identically in the
 * linear and the seeking reader.
 *
 * Every structural defect — truncation, bad magic, out-of-range
 * bank/row, a payload that ends mid-record, index/footer mismatch —
 * raises registry::SpecError, so a corrupt trace fails its job
 * cleanly in the sweep sinks instead of corrupting a run.
 */

#ifndef MITHRIL_ENGINE_ACT_TRACE_HH
#define MITHRIL_ENGINE_ACT_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dram/timing.hh"
#include "engine/act_source.hh"

namespace mithril::engine
{

/** The 20-byte file magic (includes the format version). */
extern const char kActTraceMagic[21];

/** Parsed header + index summary of one trace file. */
struct ActTraceInfo
{
    std::uint32_t channels = 0;
    std::uint32_t ranksPerChannel = 0;
    std::uint32_t banksPerRank = 0;
    std::uint32_t rowsPerBank = 0;
    std::uint64_t seed = 0;
    std::string meta;
    std::uint64_t records = 0;
    std::uint64_t chunks = 0;
    /** Records per bank (flat index, length = total banks). */
    std::vector<std::uint64_t> perBank;

    std::uint32_t totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** True when the trace aims at exactly this run geometry. */
    bool matches(const dram::Geometry &geometry) const;

    /**
     * Deterministic multi-line dump (header line, then one
     * "bank N: count" line per non-empty bank) — the golden-file
     * surface that pins the format across PRs.
     */
    std::string describe() const;
};

/**
 * Streaming trace writer. append() validates eagerly (bank/row inside
 * the declared geometry, ticks non-decreasing per bank) and throws
 * registry::SpecError on violation or I/O failure; finalize() flushes
 * the last chunk and writes index + footer, and MUST be called for
 * the file to be readable. The destructor only closes (with a
 * warning): it mostly runs during exception unwind, and writing a
 * valid footer over a partial capture would make a truncated trace
 * indistinguishable from a complete one. A capture that dies before
 * finalize() leaves a file readers reject.
 */
class ActTraceWriter
{
  public:
    /** Records buffered before a chunk is flushed. */
    static constexpr std::size_t kChunkRecords = 8192;

    ActTraceWriter(const std::string &path,
                   const dram::Geometry &geometry, std::uint64_t seed,
                   const std::string &meta);
    ~ActTraceWriter();

    ActTraceWriter(const ActTraceWriter &) = delete;
    ActTraceWriter &operator=(const ActTraceWriter &) = delete;

    /** Append one activation (arrival order). */
    void append(BankId bank, RowId row, Tick tick);

    /** Flush, write index + footer, close. Idempotent. */
    void finalize();

    std::uint64_t records() const { return records_; }
    const std::string &path() const { return path_; }

  private:
    struct BankBuffer
    {
        std::vector<RowId> rows;
        std::vector<Tick> ticks;
    };

    struct IndexBlock
    {
        std::uint32_t bank = 0;
        std::uint32_t count = 0;
        std::uint32_t payloadBytes = 0;
    };

    struct IndexChunk
    {
        std::uint64_t offset = 0; //!< Chunk header file offset.
        std::vector<IndexBlock> blocks;
    };

    void flushChunk();
    void writeRaw(const void *data, std::size_t n);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint32_t totalBanks_;
    std::uint32_t rowsPerBank_;

    std::vector<BankBuffer> buffers_;    //!< Per bank.
    std::vector<Tick> lastTick_;         //!< Per bank, monotonicity.
    std::size_t buffered_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t fileOffset_ = 0;
    std::vector<IndexChunk> index_;
    std::vector<std::uint8_t> scratch_;  //!< Encode buffer, reused.
    bool finalized_ = false;
};

/** Parse a trace's header + index; throws registry::SpecError. */
ActTraceInfo actTraceInfo(const std::string &path);

/**
 * Replay source over a trace file — the whole stream in canonical
 * order, or a bank-range slice [lo, hi) that *seeks*: blocks of other
 * banks are skipped via the index without reading their payloads.
 * `max_records` bounds the canonical global prefix the source will
 * replay (out-of-range blocks still consume budget), so a range
 * slice emits exactly the in-range records a BankFilterSource over
 * the bounded full stream would — the contract behind shardSlice().
 *
 * Each source owns its own file handle, so per-shard readers can run
 * on different threads.
 */
class ActTraceSource : public ActSource
{
  public:
    explicit ActTraceSource(const std::string &path,
                            std::uint64_t max_records = ~0ull);
    ActTraceSource(const std::string &path, BankId lo, BankId hi,
                   std::uint64_t max_records = ~0ull);
    ~ActTraceSource() override;

    const ActTraceInfo &info() const { return parsed_->info; }

    std::string name() const override;

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

    /** Native seeking slice of the same file (fresh handle). */
    std::unique_ptr<ActSource> shardSlice(
        BankId lo, BankId hi, std::uint64_t budget) override;

  private:
    struct IndexBlock
    {
        std::uint32_t bank;
        std::uint32_t count;
        std::uint32_t payloadBytes;
        std::uint64_t payloadOffset;
    };

    /** The immutable parse result (header + flattened canonical
     *  block index), shared by a full reader and all its slices so a
     *  sharded replay parses AND stores the index exactly once. */
    struct Parsed
    {
        ActTraceInfo info;
        std::vector<IndexBlock> blocks;
    };

    /** Slice off an already-parsed source: shares the header/index
     *  state and opens only a fresh file handle. */
    ActTraceSource(const ActTraceSource &parsed, BankId lo, BankId hi,
                   std::uint64_t max_records);

    /** Parse + structurally validate header, index, and footer. */
    static std::shared_ptr<const Parsed>
    parse(std::FILE *file, const std::string &path);

    /** Advance to the next in-range block; false when exhausted. */
    bool nextBlock();

    /** Load + validate the current block's payload into decode_. */
    void loadBlock(const IndexBlock &block);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::shared_ptr<const Parsed> parsed_;
    BankId lo_;
    BankId hi_;
    std::uint64_t budget_;            //!< Remaining canonical records.

    std::size_t blockCursor_ = 0;     //!< Next block to consider.
    std::uint64_t blockRemaining_ = 0; //!< Records left in cur block.
    bool blockTruncated_ = false;     //!< Budget cut the cur block.
    std::uint32_t blockBank_ = 0;
    std::vector<std::uint8_t> decode_; //!< Current payload bytes.
    std::size_t decodePos_ = 0;
    RowId prevRow_ = 0;
    Tick prevTick_ = 0;
    bool first_ = true;               //!< First record of cur block.
};

/**
 * Tee: forwards the wrapped source unchanged while appending every
 * record that passes through to a writer. The writer is borrowed —
 * the caller finalizes it after the run.
 */
class RecordingSource : public ActSource
{
  public:
    RecordingSource(std::unique_ptr<ActSource> inner,
                    ActTraceWriter *writer);

    std::string name() const override;

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

  private:
    std::unique_ptr<ActSource> inner_;
    ActTraceWriter *writer_;
};

} // namespace mithril::engine

#endif // MITHRIL_ENGINE_ACT_TRACE_HH
