#include "sharded_engine.hh"

#include <algorithm>

#include "common/failpoint.hh"
#include "common/logging.hh"

namespace mithril::engine
{

namespace
{

/** Resilience injection site: a shard body that throws or stalls —
 *  what a wedged worker looks like to the sweep watchdog. */
const failpoint::SiteRegistrar kFpShardDispatch{
    "engine.shard-dispatch",
    "fail or stall a shard body at dispatch "
    "(ShardedActStreamEngine::runShards) — exercises exception "
    "propagation through parallelFor and the job watchdog"};

} // namespace

// ------------------------------------------------ BankFilterSource

std::size_t
BankFilterSource::fill(ActBatch &batch, std::size_t limit)
{
    std::size_t appended = 0;
    while (appended < limit && !batch.full()) {
        if (pos_ == size_) {
            // Refill the staging buffer from the wrapped stream,
            // never pulling past the global budget.
            buffer_.clear();
            const auto want = static_cast<std::size_t>(
                std::min<std::uint64_t>(ActBatch::kCapacity,
                                        budget_));
            if (want == 0)
                break;
            size_ = inner_->fill(buffer_, want);
            pos_ = 0;
            if (size_ == 0)
                break;
            budget_ -= size_;
        }
        while (pos_ < size_ && appended < limit && !batch.full()) {
            const ActRecord rec = buffer_.record(pos_);
            if (rec.bank >= lo_ && rec.bank < hi_) {
                batch.push(rec.bank, rec.row, rec.tick);
                ++appended;
            }
            ++pos_;
        }
    }
    return appended;
}

// -------------------------------------------- ShardedActStreamEngine

ShardedActStreamEngine::ShardedActStreamEngine(
    const ShardedEngineConfig &config,
    const TrackerFactory &make_tracker)
    : config_(config), numBanks_(config.engine.geometry.totalBanks())
{
    MITHRIL_ASSERT(numBanks_ > 0);
    std::uint32_t shards = config_.shards;
    if (shards == 0)
        shards = config_.engine.geometry.channels;
    shards = std::max(1u, std::min(shards, numBanks_));
    config_.shards = shards;

    shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        Shard shard;
        // Balanced contiguous partition: shard s owns
        // [s*B/S, (s+1)*B/S).
        shard.lo = static_cast<BankId>(
            (static_cast<std::uint64_t>(numBanks_) * s) / shards);
        shard.hi = static_cast<BankId>(
            (static_cast<std::uint64_t>(numBanks_) * (s + 1)) /
            shards);
        MITHRIL_ASSERT(shard.hi > shard.lo);
        shard.tracker = make_tracker ? make_tracker() : nullptr;
        EngineConfig engine_config = config_.engine;
        if (config_.telemetry.any()) {
            shard.telemetry =
                std::make_unique<telemetry::EngineTelemetry>(
                    config_.telemetry, numBanks_);
            engine_config.telemetry = shard.telemetry.get();
        }
        shard.engine = std::make_unique<ActStreamEngine>(
            engine_config, shard.tracker.get());
        shards_.push_back(std::move(shard));
    }
    slots_.assign(shards_.size(), ShardSlot{});
}

bool
ShardedActStreamEngine::shardSlotsCacheAligned() const
{
    for (const ShardSlot &slot : slots_) {
        if ((reinterpret_cast<std::uintptr_t>(&slot) & 63u) != 0)
            return false;
    }
    return true;
}

std::uint32_t
ShardedActStreamEngine::shardFor(BankId bank) const
{
    MITHRIL_ASSERT(bank < numBanks_);
    // The inverse of the balanced partition above.
    const auto s = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(bank) * shards_.size()) /
        numBanks_);
    // Integer rounding can land one off; fix up locally.
    for (std::uint32_t probe :
         {s, s > 0 ? s - 1 : s,
          s + 1 < shards_.size() ? s + 1 : s}) {
        if (bank >= shards_[probe].lo && bank < shards_[probe].hi)
            return probe;
    }
    MITHRIL_ASSERT_MSG(false, "bank %u not covered by any shard",
                       bank);
    return 0;
}

std::uint64_t
ShardedActStreamEngine::run(const StreamFactory &make_stream,
                            std::uint64_t max_acts)
{
    std::vector<std::unique_ptr<ActSource>> sources;
    sources.reserve(shards_.size());
    // A stream that can slice itself natively (an act-trace reader
    // seeking through its bank index) skips the filter-and-discard
    // scan — and every shard slices off the SAME parsed instance, so
    // the trace header/index are parsed once per run, not per shard.
    // Both paths deliver the identical bounded per-bank
    // subsequences.
    auto probe = make_stream();
    if (auto native = probe->shardSlice(shards_[0].lo, shards_[0].hi,
                                        max_acts)) {
        sources.push_back(std::move(native));
        for (std::size_t s = 1; s < shards_.size(); ++s) {
            sources.push_back(probe->shardSlice(
                shards_[s].lo, shards_[s].hi, max_acts));
            MITHRIL_ASSERT(sources.back() != nullptr);
        }
    } else {
        for (const Shard &shard : shards_) {
            if (!probe)
                probe = make_stream();
            sources.push_back(std::make_unique<BankFilterSource>(
                std::move(probe), shard.lo, shard.hi, max_acts));
        }
    }
    return runShards(sources);
}

std::uint64_t
ShardedActStreamEngine::runSliced(const SliceFactory &make_slice)
{
    std::vector<std::unique_ptr<ActSource>> sources;
    sources.reserve(shards_.size());
    for (std::uint32_t s = 0; s < shards_.size(); ++s)
        sources.push_back(
            make_slice(s, shards_[s].lo, shards_[s].hi));
    return runShards(sources);
}

std::uint64_t
ShardedActStreamEngine::runShards(
    std::vector<std::unique_ptr<ActSource>> &sources)
{
    MITHRIL_ASSERT(sources.size() == shards_.size());
    // Each shard writes only its own cache-line-padded slot: no
    // false sharing between workers, and the merged result below is
    // deterministic regardless of scheduling or completion order.
    const bool phases = config_.telemetry.phases;
    for (ShardSlot &slot : slots_)
        slot.done = 0;
    auto body = [&](std::size_t s) {
        MITHRIL_FAILPOINT("engine.shard-dispatch");
        telemetry::PhaseTimer timer;
        slots_[s].done = shards_[s].engine->run(*sources[s]);
        if (phases)
            slots_[s].wallSec += timer.lap();
    };

    telemetry::PhaseTimer total_timer;
    runner::ThreadPool *pool =
        config_.pool ? config_.pool : runner::ThreadPool::current();
    if (pool && shards_.size() > 1) {
        pool->parallelFor(shards_.size(), body);
    } else {
        for (std::size_t s = 0; s < shards_.size(); ++s)
            body(s);
    }
    if (phases) {
        // Join overhead: the wall the caller waited beyond the
        // slowest shard (scheduling + merge barrier).
        const double wall = total_timer.lap();
        double slowest = 0.0;
        for (const ShardSlot &slot : slots_)
            slowest = std::max(slowest, slot.wallSec);
        joinSec_ += std::max(0.0, wall - slowest);
    }

    std::uint64_t total = 0;
    for (const ShardSlot &slot : slots_)
        total += slot.done;
    return total;
}

std::uint64_t
ShardedActStreamEngine::acts() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->acts();
    return sum;
}

std::uint64_t
ShardedActStreamEngine::refs() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->refs();
    return sum;
}

std::uint64_t
ShardedActStreamEngine::rfms() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->rfms();
    return sum;
}

std::uint64_t
ShardedActStreamEngine::preventiveRefreshes() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->preventiveRefreshes();
    return sum;
}

std::uint64_t
ShardedActStreamEngine::throttleStalls() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->throttleStalls();
    return sum;
}

double
ShardedActStreamEngine::maxDisturbanceEver() const
{
    double max = 0.0;
    for (const Shard &s : shards_)
        max = std::max(max, s.engine->oracle().maxDisturbanceEver());
    return max;
}

std::uint64_t
ShardedActStreamEngine::bitFlips() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->oracle().bitFlips();
    return sum;
}

std::uint64_t
ShardedActStreamEngine::flippedRows() const
{
    // Shards own disjoint banks, so distinct-row counts add exactly.
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.engine->oracle().flippedRows();
    return sum;
}

std::uint64_t
ShardedActStreamEngine::logicOps() const
{
    std::uint64_t sum = 0;
    for (const Shard &s : shards_)
        sum += s.tracker ? s.tracker->logicOps() : 0;
    return sum;
}

void
ShardedActStreamEngine::mergeTrackerStatsInto(
    trackers::RhProtection &target) const
{
    for (const Shard &s : shards_) {
        MITHRIL_ASSERT(s.tracker.get() != &target);
        if (s.tracker)
            target.mergeStatsFrom(*s.tracker);
    }
}

telemetry::MetricSheet
ShardedActStreamEngine::telemetrySheet()
{
    telemetry::MetricSheet merged;
    for (const Shard &s : shards_) {
        if (!s.telemetry)
            continue;
        s.engine->exportTelemetry();
        merged.mergeFrom(s.telemetry->sheet());
    }
    return merged;
}

std::vector<telemetry::TraceEvent>
ShardedActStreamEngine::mergedEvents() const
{
    std::vector<const telemetry::EventRecorder *> recorders;
    for (const Shard &s : shards_) {
        if (s.telemetry && s.telemetry->events())
            recorders.push_back(s.telemetry->events());
    }
    return telemetry::mergeEvents(recorders);
}

telemetry::ActHeatmap
ShardedActStreamEngine::mergedHeatmap() const
{
    MITHRIL_ASSERT(config_.telemetry.heatmap);
    telemetry::ActHeatmap merged(
        numBanks_, config_.telemetry.heatmapRegionBudget);
    for (const Shard &s : shards_) {
        if (s.telemetry && s.telemetry->heatmap())
            merged.mergeFrom(*s.telemetry->heatmap());
    }
    return merged;
}

} // namespace mithril::engine
