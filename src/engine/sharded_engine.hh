/**
 * @file
 * The sharded ActStream engine: the bank partition of a
 * `dram::Geometry` split into contiguous shards (one per channel by
 * default, configurable down to one bank each), every shard running
 * the full single-threaded `ActStreamEngine` over its own banks on a
 * `runner::ThreadPool` worker, with a deterministic merge on join.
 *
 * Why this is *byte-identical* to the single-threaded engine at any
 * shard count and any pool size:
 *
 *  - Every bank is an independent virtual clock, and all engine
 *    bookkeeping (REF rotation, RFM cadence, ARR work, oracle rows,
 *    counters) is per-bank state.
 *  - Tracker state is per-bank by construction; the two historic
 *    exceptions — PARA's and PARFM's shared RNG — now draw from
 *    per-bank streams seeded via `RhProtection::bankSeed()`, so a
 *    bank's draw sequence depends only on (seed, bank).
 *  - Each shard therefore only needs the *per-bank subsequences* of
 *    the global activation stream for its banks, which is exactly
 *    what a `BankFilterSource` slice (or a caller-provided native
 *    slice) delivers. Cross-bank interleaving is irrelevant.
 *  - Each shard runs its own tracker instance (built by the same
 *    factory, observing a disjoint bank set) and its own oracle; the
 *    join reduces counters by sum, high-water marks by max, and the
 *    logic-op counter through `RhProtection::mergeStatsFrom()`. Each
 *    shard writes only its own slot, so the merged result is
 *    independent of completion order.
 *
 * Parallelism comes from an explicitly passed pool, else the ambient
 * `runner::ThreadPool::current()` when the run is already executing
 * inside a pool task (a sweep job that shards reuses the sweep's own
 * workers — no second pool, no oversubscription), else the shards run
 * inline on the calling thread.
 */

#ifndef MITHRIL_ENGINE_SHARDED_ENGINE_HH
#define MITHRIL_ENGINE_SHARDED_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "engine/act_stream_engine.hh"
#include "runner/thread_pool.hh"
#include "telemetry/telemetry.hh"

namespace mithril::engine
{

/**
 * Restriction of a full activation stream to one shard's bank range
 * [lo, hi): pulls batches from the wrapped source, forwards matching
 * records, discards the rest, and stops after `budget` *global*
 * records — so every shard slices the same bounded prefix of the
 * stream and the shard union equals a single-threaded run of that
 * prefix exactly.
 */
class BankFilterSource : public ActSource
{
  public:
    BankFilterSource(std::unique_ptr<ActSource> inner, BankId lo,
                     BankId hi, std::uint64_t budget = ~0ull)
        : inner_(std::move(inner)), lo_(lo), hi_(hi), budget_(budget)
    {
    }

    std::string name() const override
    {
        return inner_->name() + "[" + std::to_string(lo_) + "," +
               std::to_string(hi_) + ")";
    }

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

  private:
    std::unique_ptr<ActSource> inner_;
    BankId lo_;
    BankId hi_;
    std::uint64_t budget_;  //!< Remaining *global* records.

    /** Staging buffer of unfiltered records (pos_ .. size_ pending). */
    ActBatch buffer_;
    std::size_t pos_ = 0;
    std::size_t size_ = 0;
};

/** Sharded engine configuration. */
struct ShardedEngineConfig
{
    /** Per-shard engine configuration (geometry spans ALL banks; each
     *  shard simply only ever sees its own banks' records). */
    EngineConfig engine;

    /** Number of bank shards; 0 = one per channel. Clamped to the
     *  bank count. The shard partition never affects results — only
     *  the available parallelism. */
    std::uint32_t shards = 0;

    /** Worker pool for the shard runs. nullptr = use the ambient
     *  ThreadPool::current() when running inside a pool task, else
     *  run the shards inline on the calling thread. */
    runner::ThreadPool *pool = nullptr;

    /** What to collect (off by default). Each shard gets its own
     *  telemetry bundle; the accessors below merge deterministically
     *  in shard order, so sheets/traces are byte-identical at any
     *  shard/pool count. */
    telemetry::TelemetryConfig telemetry;
};

/** Multi-threaded bank-sharded ActStream engine. */
class ShardedActStreamEngine
{
  public:
    /** Builds one tracker instance per shard (nullptr = untracked). */
    using TrackerFactory =
        std::function<std::unique_ptr<trackers::RhProtection>()>;

    /** Builds one full-stream instance (wrapped in BankFilterSource
     *  per shard). Called once per shard, serially, in shard order. */
    using StreamFactory = std::function<std::unique_ptr<ActSource>()>;

    /** Builds one shard's native slice of the stream: only records of
     *  banks in [lo, hi), preserving per-bank subsequences of the
     *  global stream. */
    using SliceFactory = std::function<std::unique_ptr<ActSource>(
        std::uint32_t shard, BankId lo, BankId hi)>;

    ShardedActStreamEngine(const ShardedEngineConfig &config,
                           const TrackerFactory &make_tracker);

    /**
     * Drain the first `max_acts` records of the stream through the
     * shards and merge on join; returns total ACTs performed. Each
     * shard filters its own fresh copy of the stream, so the factory
     * must produce identical streams on every call (all registry
     * sources and generators do — they are deterministic in their
     * seed).
     */
    std::uint64_t run(const StreamFactory &make_stream,
                      std::uint64_t max_acts = ~0ull);

    /**
     * As run(), but with caller-provided native slices (no filtering
     * overhead). The slices bound themselves; the caller guarantees
     * each equals the global stream restricted to the shard's banks.
     */
    std::uint64_t runSliced(const SliceFactory &make_slice);

    // ------------------------------------------------ shard topology
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /** Bank range [lo, hi) of a shard. */
    std::pair<BankId, BankId> shardRange(std::uint32_t shard) const
    {
        const Shard &s = shards_.at(shard);
        return {s.lo, s.hi};
    }

    /** Shard owning a bank. */
    std::uint32_t shardFor(BankId bank) const;

    std::uint32_t numBanks() const { return numBanks_; }

    // ----------------------------------- merged aggregate counters
    std::uint64_t acts() const;
    std::uint64_t refs() const;
    std::uint64_t rfms() const;
    std::uint64_t preventiveRefreshes() const;
    std::uint64_t throttleStalls() const;

    /** Merged ground-truth oracle reductions. */
    double maxDisturbanceEver() const;
    std::uint64_t bitFlips() const;
    std::uint64_t flippedRows() const;

    /** Total tracker logic operations across all shards. */
    std::uint64_t logicOps() const;

    // ----------------------------------------- per-bank accessors
    Tick now(BankId bank) const { return engineFor(bank).now(bank); }
    std::uint64_t actsAt(BankId bank) const
    {
        return engineFor(bank).actsAt(bank);
    }
    std::uint64_t refsAt(BankId bank) const
    {
        return engineFor(bank).refsAt(bank);
    }
    std::uint64_t rfmsAt(BankId bank) const
    {
        return engineFor(bank).rfmsAt(bank);
    }
    std::uint64_t preventiveRefreshesAt(BankId bank) const
    {
        return engineFor(bank).preventiveRefreshesAt(bank);
    }

    /** The oracle that tracked this bank (its owning shard's). */
    const dram::RhOracle &oracleFor(BankId bank) const
    {
        return engineFor(bank).oracle();
    }

    /** A shard's tracker (nullptr when untracked). */
    trackers::RhProtection *tracker(std::uint32_t shard) const
    {
        return shards_.at(shard).tracker.get();
    }

    /**
     * Fold every shard tracker's statistics into `target` via
     * RhProtection::mergeStatsFrom() — the join protocol for
     * cross-bank stat counters (sums) and high-water marks (max).
     * `target` must be a fresh tracker of the same configuration, not
     * one of the shard trackers.
     */
    void mergeTrackerStatsInto(trackers::RhProtection &target) const;

    const ShardedEngineConfig &config() const { return config_; }

    // --------------------------------------------------- telemetry

    /** A shard's telemetry bundle (null when telemetry is off). */
    const telemetry::EngineTelemetry *
    shardTelemetry(std::uint32_t shard) const
    {
        return shards_.at(shard).telemetry.get();
    }

    /**
     * Export every shard's telemetry and fold the sheets in shard
     * order: counters add, gauges max, averages/histograms merge
     * exactly. Deterministic at any shard/pool count.
     */
    telemetry::MetricSheet telemetrySheet();

    /** Tick-ordered merge of every shard's retained trace events
     *  (empty when event tracing is off). */
    std::vector<telemetry::TraceEvent> mergedEvents() const;

    /** Union of the per-shard heatmaps (banks are disjoint, so this
     *  is exact). Callable only when the heatmap is enabled. */
    telemetry::ActHeatmap mergedHeatmap() const;

    /** Wall seconds shard s spent inside its run loop (phase
     *  profiling only; 0 otherwise). */
    double shardWallSec(std::uint32_t shard) const
    {
        return slots_.at(shard).wallSec;
    }

    /** True when every per-shard result slot starts on its own cache
     *  line (the padding guarantee runShards() relies on). */
    bool shardSlotsCacheAligned() const;

    /** Wall seconds of join overhead: total runShards wall minus the
     *  slowest shard (phase profiling only). */
    double joinSec() const { return joinSec_; }

  private:
    struct Shard
    {
        BankId lo = 0;
        BankId hi = 0;
        std::unique_ptr<trackers::RhProtection> tracker;
        std::unique_ptr<telemetry::EngineTelemetry> telemetry;
        std::unique_ptr<ActStreamEngine> engine;
    };

    /** Per-shard result slot written by that shard's pool worker
     *  during runShards(). Padded to one cache line: every worker
     *  stores into its own line, so the hot loop never false-shares
     *  the result array. */
    struct alignas(64) ShardSlot
    {
        std::uint64_t done = 0;
        double wallSec = 0.0;
    };
    static_assert(sizeof(ShardSlot) == 64,
                  "ShardSlot must fill exactly one cache line");
    static_assert(alignof(ShardSlot) == 64,
                  "ShardSlot must start on a cache-line boundary");

    const ActStreamEngine &engineFor(BankId bank) const
    {
        return *shards_.at(shardFor(bank)).engine;
    }

    /** Run `sources[s]` through shard s, on the pool when one is
     *  available (explicit, else ambient), inline otherwise. */
    std::uint64_t
    runShards(std::vector<std::unique_ptr<ActSource>> &sources);

    ShardedEngineConfig config_;
    std::uint32_t numBanks_;
    std::vector<Shard> shards_;
    std::vector<ShardSlot> slots_;
    double joinSec_ = 0.0;
};

} // namespace mithril::engine

#endif // MITHRIL_ENGINE_SHARDED_ENGINE_HH
