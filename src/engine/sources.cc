#include "sources.hh"

#include <utility>

#include "common/logging.hh"
#include "mc/request.hh"
#include "registry/attack_registry.hh"
#include "registry/source_registry.hh"
#include "workload/trace_file.hh"

namespace mithril::engine
{

// ------------------------------------------------- TraceActSource

TraceActSource::TraceActSource(
    std::unique_ptr<workload::TraceGenerator> generator,
    const dram::Geometry &geometry)
    : map_(geometry), generator_(std::move(generator))
{
    MITHRIL_ASSERT(generator_ != nullptr);
}

std::string
TraceActSource::name() const
{
    return "trace:" + generator_->name();
}

std::size_t
TraceActSource::fill(ActBatch &batch, std::size_t limit)
{
    std::size_t appended = 0;
    mc::Request req;
    while (appended < limit && !batch.full()) {
        auto rec = generator_->next();
        if (!rec)
            break;
        req.addr = rec->addr;
        map_.decode(req);
        batch.push(req.bank, req.row,
                   static_cast<Tick>(produced_));
        ++produced_;
        ++appended;
    }
    return appended;
}

// ------------------------------------------------- MultiBankSource

MultiBankSource::MultiBankSource(std::string name,
                                 const dram::Geometry &geometry)
    : name_(std::move(name)), map_(geometry)
{
}

void
MultiBankSource::addGenerator(
    std::unique_ptr<workload::TraceGenerator> gen)
{
    MITHRIL_ASSERT(gen != nullptr);
    generators_.push_back(std::move(gen));
}

std::size_t
MultiBankSource::fill(ActBatch &batch, std::size_t limit)
{
    std::size_t appended = 0;
    mc::Request req;
    while (appended < limit && !generators_.empty() &&
           !batch.full()) {
        if (cursor_ >= generators_.size())
            cursor_ = 0;
        auto rec = generators_[cursor_]->next();
        if (!rec) {
            generators_.erase(generators_.begin() +
                              static_cast<std::ptrdiff_t>(cursor_));
            continue;
        }
        req.addr = rec->addr;
        map_.decode(req);
        batch.push(req.bank, req.row);
        ++cursor_;
        ++appended;
    }
    return appended;
}

// ---------------------------------------------------- registration
//
// The engine-drivable workloads: trace files and the attack
// registry's patterns replicated across banks.

namespace
{

const registry::Registrar<registry::SourceTraits> kRegisterTraceFile{{
    /*name=*/"trace-file",
    /*display=*/"trace-file",
    /*description=*/
    "replay an instruction-level trace file (Ramulator-style gap/addr "
    "records decoded through the MC map); raw captured ACT streams "
    "replay via act-trace and compose via the trace-ops pipeline",
    /*aliases=*/{"trace_file"},
    /*uses=*/"",
    /*params=*/
    {{"trace-file", registry::ParamDesc::Type::String, "", 0, 0,
      "path of the trace to replay (required)"},
     {"trace-loop", registry::ParamDesc::Type::Bool, "0", 0, 1,
      "loop the trace forever (bound the run with an ACT budget)"}},
    /*make=*/
    [](const ParamSet &params, const registry::SourceContext &ctx)
        -> std::unique_ptr<ActSource> {
        const std::string path = params.getString("trace-file", "");
        if (path.empty()) {
            throw registry::SpecError(
                "source 'trace-file' needs trace-file=<path>");
        }
        return std::make_unique<TraceActSource>(
            workload::loadTraceFile(path,
                                    params.getBool("trace-loop",
                                                   false)),
            ctx.geometry);
    },
}};

const registry::Registrar<registry::SourceTraits> kRegisterAttack{{
    /*name=*/"attack",
    /*display=*/"attack",
    /*description=*/
    "a registered attack pattern replicated on N banks, every bank "
    "hammering at full rate",
    /*aliases=*/{},
    /*uses=*/"flip (attack sizing), plus the chosen attack's params",
    /*params=*/
    {{"attack", registry::ParamDesc::Type::String, "double-sided", 0,
      0, "attack registry entry to replicate"},
     {"source-banks", registry::ParamDesc::Type::Uint, "0", 0, 65536,
      "banks to attack concurrently (0 = every bank of channel 0, "
      "rank 0)"}},
    /*make=*/
    [](const ParamSet &params, const registry::SourceContext &ctx)
        -> std::unique_ptr<ActSource> {
        const std::string attack =
            params.getString("attack", "double-sided");
        if (attack == "none") {
            throw registry::SpecError(
                "source 'attack' needs a real attack entry "
                "(attack=none produces no stream)");
        }
        if (params.has("attack-bank")) {
            throw registry::SpecError(
                "source 'attack' assigns attack-bank itself (one "
                "generator per replicated bank); drop attack-bank= "
                "and choose the width with source-banks=");
        }
        // The attack factories aim inside channel 0 / rank 0, so the
        // replication width is capped at banksPerRank.
        std::uint32_t banks =
            params.getUint32("source-banks", 0);
        if (banks == 0)
            banks = ctx.geometry.banksPerRank;
        if (banks > ctx.geometry.banksPerRank) {
            throw registry::SpecError(
                "source-banks=" + std::to_string(banks) +
                " exceeds banksPerRank=" +
                std::to_string(ctx.geometry.banksPerRank));
        }
        auto source = std::make_unique<MultiBankSource>(
            "attack:" + attack + "x" + std::to_string(banks),
            ctx.geometry);
        for (std::uint32_t b = 0; b < banks; ++b) {
            ParamSet per_bank = params;
            per_bank.set("attack-bank", std::to_string(b));
            const registry::AttackContext attack_ctx{
                source->map(), ctx.flipTh, /*benignCores=*/0,
                ctx.seed, /*benignThread=*/{}};
            source->addGenerator(registry::makeAttack(
                attack, per_bank, attack_ctx));
        }
        return source;
    },
}};

} // namespace

} // namespace mithril::engine
