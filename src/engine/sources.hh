/**
 * @file
 * Engine-drivable workload sources: adapters that turn the existing
 * trace-record generators (trace files, the attack registry's
 * patterns) into multi-bank activation streams for ActStreamEngine.
 *
 * Both adapters decode each record's physical address through the MC
 * address map, so a source aims at exactly the (channel, rank, bank,
 * row) its generator composed — the same address semantics the full
 * System uses. The registry entries ("trace-file", "attack") live in
 * sources.cc; registry::makeActSource() builds them by name.
 */

#ifndef MITHRIL_ENGINE_SOURCES_HH
#define MITHRIL_ENGINE_SOURCES_HH

#include <memory>
#include <string>
#include <vector>

#include "engine/act_source.hh"
#include "mc/address_map.hh"
#include "workload/trace.hh"

namespace mithril::engine
{

/**
 * One trace-record generator decoded to (bank, row) activations over
 * the full geometry. The record's instruction gap is ignored — the
 * engine drives banks at the maximum legal rate — and the record
 * index is carried in the batch's tick column as a replay hint.
 */
class TraceActSource : public ActSource
{
  public:
    TraceActSource(std::unique_ptr<workload::TraceGenerator> generator,
                   const dram::Geometry &geometry);

    std::string name() const override;

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

  private:
    mc::AddressMap map_;
    std::unique_ptr<workload::TraceGenerator> generator_;
    std::uint64_t produced_ = 0;
};

/**
 * N concurrent per-bank generators drained round-robin — the
 * multi-bank attack shape: every targeted bank hammers at its own
 * full ACT rate, the worst case the paper's Theorem 1/2 margins are
 * sized for. Owns the address map its generators compose through.
 */
class MultiBankSource : public ActSource
{
  public:
    MultiBankSource(std::string name, const dram::Geometry &geometry);

    /** The map generators must aim through (alive as long as the
     *  source). */
    const mc::AddressMap &map() const { return map_; }

    /** Append one per-bank generator (ownership transferred). */
    void addGenerator(std::unique_ptr<workload::TraceGenerator> gen);

    std::string name() const override { return name_; }

    std::size_t fill(ActBatch &batch, std::size_t limit) override;

  private:
    std::string name_;
    mc::AddressMap map_;
    std::vector<std::unique_ptr<workload::TraceGenerator>> generators_;
    std::size_t cursor_ = 0;
};

} // namespace mithril::engine

#endif // MITHRIL_ENGINE_SOURCES_HH
