#include "address_map.hh"

#include "common/logging.hh"
#include "core/config_solver.hh"

namespace mithril::mc
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

AddressMap::AddressMap(const dram::Geometry &geometry)
    : geometry_(geometry)
{
    MITHRIL_ASSERT(isPow2(geometry_.lineBytes));
    MITHRIL_ASSERT(isPow2(geometry_.channels));
    MITHRIL_ASSERT(isPow2(geometry_.ranksPerChannel));
    MITHRIL_ASSERT(isPow2(geometry_.banksPerRank));
    MITHRIL_ASSERT(isPow2(geometry_.rowsPerBank));
    MITHRIL_ASSERT(isPow2(geometry_.columnsPerRow()));

    lineShift_ = core::ceilLog2(geometry_.lineBytes);
    channelBits_ = core::ceilLog2(geometry_.channels);
    const std::uint32_t column_bits =
        core::ceilLog2(geometry_.columnsPerRow());
    columnLoBits_ = std::min(2u, column_bits);
    columnHiBits_ = column_bits - columnLoBits_;
    bankBits_ = core::ceilLog2(geometry_.banksPerRank);
    rankBits_ = core::ceilLog2(geometry_.ranksPerChannel);
    rowBits_ = core::ceilLog2(geometry_.rowsPerBank);
}

BankId
AddressMap::flatBank(std::uint32_t channel, std::uint32_t rank,
                     std::uint32_t bank_in_rank) const
{
    return (channel * geometry_.ranksPerChannel + rank) *
               geometry_.banksPerRank +
           bank_in_rank;
}

void
AddressMap::decode(Request &req) const
{
    std::uint64_t line = req.addr >> lineShift_;

    req.channel =
        static_cast<std::uint32_t>(line & (geometry_.channels - 1));
    line >>= channelBits_;

    const std::uint32_t col_lo = static_cast<std::uint32_t>(
        line & ((1u << columnLoBits_) - 1));
    line >>= columnLoBits_;

    std::uint32_t bank_in_rank =
        static_cast<std::uint32_t>(line & (geometry_.banksPerRank - 1));
    line >>= bankBits_;

    req.rank = static_cast<std::uint32_t>(
        line & (geometry_.ranksPerChannel - 1));
    line >>= rankBits_;

    const std::uint32_t col_hi = static_cast<std::uint32_t>(
        line & ((1u << columnHiBits_) - 1));
    line >>= columnHiBits_;

    req.column = (col_hi << columnLoBits_) | col_lo;
    req.row =
        static_cast<RowId>(line & (geometry_.rowsPerBank - 1));

    // Row-XOR bank permutation to spread row-sequential streams.
    bank_in_rank ^= static_cast<std::uint32_t>(
        req.row & (geometry_.banksPerRank - 1));

    req.bank = flatBank(req.channel, req.rank, bank_in_rank);
}

Addr
AddressMap::compose(std::uint32_t channel, std::uint32_t rank,
                    std::uint32_t bank_in_rank, RowId row,
                    std::uint32_t column) const
{
    MITHRIL_ASSERT(channel < geometry_.channels);
    MITHRIL_ASSERT(rank < geometry_.ranksPerChannel);
    MITHRIL_ASSERT(bank_in_rank < geometry_.banksPerRank);
    MITHRIL_ASSERT(row < geometry_.rowsPerBank);
    MITHRIL_ASSERT(column < geometry_.columnsPerRow());

    // Invert the decode-side XOR permutation so the caller's bank is
    // the bank decode() will produce.
    const std::uint32_t stored_bank =
        bank_in_rank ^
        static_cast<std::uint32_t>(row & (geometry_.banksPerRank - 1));

    const std::uint32_t col_lo = column & ((1u << columnLoBits_) - 1);
    const std::uint32_t col_hi = column >> columnLoBits_;

    std::uint64_t line = row;
    line = (line << columnHiBits_) | col_hi;
    line = (line << rankBits_) | rank;
    line = (line << bankBits_) | stored_bank;
    line = (line << columnLoBits_) | col_lo;
    line = (line << channelBits_) | channel;
    return line << lineShift_;
}

} // namespace mithril::mc
