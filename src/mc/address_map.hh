/**
 * @file
 * Physical address <-> (channel, rank, bank, row, column) mapping.
 *
 * Layout (low to high): line offset | channel | column-low (4 lines) |
 * bank | rank | column-high | row — the minimalist-open mapping of
 * Kaseridis et al.: a stream touches 4 consecutive lines of one row,
 * then hops to the next bank, so the policy's 4-access-per-ACT cap
 * matches the natural chunk size and banks serve streams in parallel.
 * A row-XOR permutation on the bank bits spreads row conflicts.
 */

#ifndef MITHRIL_MC_ADDRESS_MAP_HH
#define MITHRIL_MC_ADDRESS_MAP_HH

#include "common/types.hh"
#include "dram/timing.hh"
#include "mc/request.hh"

namespace mithril::mc
{

/** Bidirectional address mapper for a power-of-two geometry. */
class AddressMap
{
  public:
    explicit AddressMap(const dram::Geometry &geometry);

    /** Fill the decoded fields of a request from its address. */
    void decode(Request &req) const;

    /** Compose a physical address targeting a specific location. */
    Addr compose(std::uint32_t channel, std::uint32_t rank,
                 std::uint32_t bank_in_rank, RowId row,
                 std::uint32_t column) const;

    /** Flat system-wide bank id for the location. */
    BankId flatBank(std::uint32_t channel, std::uint32_t rank,
                    std::uint32_t bank_in_rank) const;

    const dram::Geometry &geometry() const { return geometry_; }

  private:
    dram::Geometry geometry_;
    std::uint32_t lineShift_;
    std::uint32_t channelBits_;
    std::uint32_t columnLoBits_;
    std::uint32_t columnHiBits_;
    std::uint32_t bankBits_;
    std::uint32_t rankBits_;
    std::uint32_t rowBits_;
};

} // namespace mithril::mc

#endif // MITHRIL_MC_ADDRESS_MAP_HH
