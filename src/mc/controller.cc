#include "controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/event_trace.hh"

namespace mithril::mc
{

void
ControllerStats::mergeFrom(const ControllerStats &other)
{
    reads += other.reads;
    writes += other.writes;
    rowHits += other.rowHits;
    rowMisses += other.rowMisses;
    activates += other.activates;
    precharges += other.precharges;
    refreshes += other.refreshes;
    rfmIssued += other.rfmIssued;
    rfmSkippedByMrr += other.rfmSkippedByMrr;
    arrExecuted += other.arrExecuted;
    throttleStalls += other.throttleStalls;
    totalReadLatencyNs += other.totalReadLatencyNs;
    readLatencyNs.mergeFrom(other.readLatencyNs);
}

Controller::Controller(dram::Device &device, const AddressMap &map,
                       const ControllerParams &params,
                       std::uint32_t channel)
    : device_(device), map_(map), params_(params), channel_(channel)
{
    const auto &geom = device_.geometry();
    MITHRIL_ASSERT(channel_ < geom.channels);
    firstRank_ = channel_ * geom.ranksPerChannel;
    firstBank_ = firstRank_ * geom.banksPerRank;
    banks_.resize(geom.ranksPerChannel * geom.banksPerRank);

    const std::uint32_t total_ranks =
        geom.channels * geom.ranksPerChannel;
    refreshDue_.resize(geom.ranksPerChannel);
    refreshBankPtr_.assign(geom.ranksPerChannel, 0);
    refsbCarry_.assign(geom.ranksPerChannel, 0);
    const Tick interval =
        params_.perBankRefresh
            ? device_.timing().tREFI / geom.banksPerRank
            : device_.timing().tREFI;
    for (std::uint32_t r = 0; r < geom.ranksPerChannel; ++r) {
        // Stagger by the *global* rank index so the system-wide
        // refresh phases match the historical single-frontend layout
        // and refreshes never collide across channels.
        const auto g = static_cast<Tick>(firstRank_ + r);
        refreshDue_[r] = interval + g * (interval / total_ranks);
    }
}

bool
Controller::enqueue(const Request &req, Tick now)
{
    MITHRIL_ASSERT_MSG(req.channel == channel_,
                       "request for channel %u enqueued on the "
                       "channel-%u controller",
                       req.channel, channel_);
    if (queue_.size() >= params_.queueCapacity)
        return false;
    Request stored = req;
    stored.arrival = now;
    stored.seq = seq_++;
    queue_.push_back(stored);
    return true;
}

bool
Controller::idle() const
{
    if (!queue_.empty())
        return false;
    for (const auto &bank : banks_)
        if (bank.rfmRequired || !bank.pendingArr.empty())
            return false;
    return true;
}

bool
Controller::blacklisted(std::uint32_t core, Tick t) const
{
    if (!params_.useBliss)
        return false;
    auto it = bliss_.blacklistUntil.find(core);
    return it != bliss_.blacklistUntil.end() && it->second > t;
}

void
Controller::noteServed(std::uint32_t core, Tick t)
{
    if (!params_.useBliss)
        return;
    if (bliss_.lastCore == core) {
        if (++bliss_.streak > params_.blissStreak)
            bliss_.blacklistUntil[core] = t + params_.blissDuration;
    } else {
        bliss_.lastCore = core;
        bliss_.streak = 1;
    }
}

bool
Controller::refreshPressing(std::uint32_t rank, BankId bank,
                            Tick t) const
{
    if (t < refreshDue_.at(rank - firstRank_) -
                2 * device_.timing().tRC)
        return false;
    if (!params_.perBankRefresh)
        return true;  // All-bank REF drains the whole rank.
    // Same-bank REF only fences the rotation's current target.
    const BankId target =
        rank * device_.geometry().banksPerRank +
        refreshBankPtr_.at(rank - firstRank_);
    return bank == target;
}

void
Controller::decrementRaa(BankId bank)
{
    if (params_.raaRefDecrement == 0)
        return;
    BankCtl &ctl = bankCtl(bank);
    if (ctl.rfmRequired)
        return;  // An owed RFM is not cancelled by a REF.
    ctl.raa = ctl.raa > params_.raaRefDecrement
                  ? ctl.raa - params_.raaRefDecrement
                  : 0;
}

void
Controller::handleActSideEffects(BankId bank, Tick t,
                                 std::vector<RowId> &arr_out)
{
    (void)t;
    BankCtl &ctl = bankCtl(bank);
    auto *tracker = device_.tracker();
    if (tracker && tracker->usesRfm()) {
        if (++ctl.raa >= tracker->rfmTh())
            ctl.rfmRequired = true;
    }
    for (RowId aggressor : arr_out)
        ctl.pendingArr.push_back(aggressor);
    arr_out.clear();
}

Controller::Decision
Controller::choose(Tick t0)
{
    const auto &geom = device_.geometry();
    const std::uint32_t banks_per_channel =
        geom.ranksPerChannel * geom.banksPerRank;

    // Commands that cannot issue yet are kept only as wake-up hints so
    // that a stalled high-priority command never blocks ready work on
    // other banks.
    Decision future;
    future.kind = Decision::Kind::None;

    // Priority 1: overdue auto-refresh (all-bank REF or DDR5 REFsb).
    for (std::uint32_t r = 0; r < geom.ranksPerChannel; ++r) {
        const std::uint32_t rank = firstRank_ + r;
        if (t0 < refreshDue_[r])
            continue;
        const BankId rank_first = rank * geom.banksPerRank;
        Decision d;
        if (params_.perBankRefresh) {
            const BankId b = rank_first + refreshBankPtr_[r];
            const auto &bank = device_.bank(b);
            d.bank = b;
            d.rank = rank;
            if (bank.isOpen()) {
                d.kind = Decision::Kind::Pre;
                d.issue = bank.earliestPre(t0);
            } else {
                d.kind = Decision::Kind::RefSb;
                d.issue = bank.earliestRefresh(t0);
            }
        } else {
            Tick ready = t0;
            // Close any open bank first (cheapest one).
            Decision pre;
            for (std::uint32_t i = 0; i < geom.banksPerRank; ++i) {
                const BankId b = rank_first + i;
                const auto &bank = device_.bank(b);
                if (bank.isOpen()) {
                    const Tick t = bank.earliestPre(t0);
                    if (t < pre.issue) {
                        pre.kind = Decision::Kind::Pre;
                        pre.issue = t;
                        pre.bank = b;
                    }
                } else {
                    ready = std::max(ready, bank.earliestRefresh(t0));
                }
            }
            if (pre.kind == Decision::Kind::Pre) {
                d = pre;
            } else {
                d.kind = Decision::Kind::Ref;
                d.rank = rank;
                d.issue = ready;
            }
        }
        if (d.issue <= t0)
            return d;
        if (d.issue < future.issue)
            future = d;
    }

    // Priority 2: RFM-required banks and pending ARR work.
    Decision best;
    auto *tracker = device_.tracker();
    for (std::uint32_t i = 0; i < banks_per_channel; ++i) {
        const BankId b = firstBank_ + i;
        BankCtl &ctl = banks_[i];
        if (!ctl.rfmRequired && ctl.pendingArr.empty())
            continue;
        const auto &bank = device_.bank(b);
        Decision d;
        d.bank = b;
        if (ctl.rfmRequired && tracker && !tracker->rfmPending(b)) {
            // Mithril+ MRR poll says no refresh needed: skip the RFM.
            d.kind = Decision::Kind::MrrSkip;
            d.issue = t0;
        } else if (bank.isOpen()) {
            d.kind = Decision::Kind::Pre;
            d.issue = bank.earliestPre(t0);
        } else if (ctl.rfmRequired) {
            d.kind = Decision::Kind::Rfm;
            d.issue = bank.earliestRefresh(t0);
        } else {
            d.kind = Decision::Kind::Arr;
            d.issue = bank.earliestRefresh(t0);
            d.arrAggressor = ctl.pendingArr.front();
        }
        if (d.issue < best.issue)
            best = d;
    }
    if (best.kind != Decision::Kind::None) {
        if (best.issue <= t0)
            return best;
        if (best.issue < future.issue)
            future = best;
        best = Decision{};
    }

    // Priority 3: demand requests, BLISS + FR-FCFS + minimalist-open.
    int best_class = 4;
    std::uint64_t best_seq = ~0ull;
    // Blacklist lookups are hash probes; memoize per core for this
    // scheduling pass (core ids are small).
    std::uint64_t bl_known = 0;
    std::uint64_t bl_set = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Request &req = queue_[i];
        BankCtl &ctl = bankCtl(req.bank);
        if (ctl.rfmRequired || !ctl.pendingArr.empty())
            continue;  // Bank fenced for protection work.
        if (refreshPressing(firstRank_ + req.rank, req.bank, t0))
            continue;  // Bank/rank draining for REF.

        const std::uint64_t bl_bit = 1ull << (req.coreId & 63);
        if (!(bl_known & bl_bit)) {
            bl_known |= bl_bit;
            if (blacklisted(req.coreId, t0))
                bl_set |= bl_bit;
        }
        const auto &bank = device_.bank(req.bank);
        const bool open_hit = bank.isOpen() &&
                              bank.openRow() == req.row &&
                              ctl.rowHitStreak < params_.maxRowHits;
        const int cls = ((bl_set & bl_bit) ? 2 : 0) +
                        (open_hit ? 0 : 1);
        if (cls > best_class ||
            (cls == best_class && req.seq >= best_seq)) {
            continue;  // A ready candidate already beats this one.
        }

        Decision d;
        d.bank = req.bank;
        d.reqIndex = i;
        if (open_hit) {
            d.kind = req.isWrite ? Decision::Kind::Wr
                                 : Decision::Kind::Rd;
            d.issue = bank.earliestCol(t0);
        } else if (bank.isOpen()) {
            d.kind = Decision::Kind::Pre;
            d.issue = bank.earliestPre(t0);
        } else {
            d.kind = Decision::Kind::Act;
            Tick t = device_.earliestAct(req.bank, t0);
            if (tracker) {
                const Tick throttled =
                    tracker->throttleAct(req.bank, req.row, t);
                if (throttled > t) {
                    if (eventRecorder_) {
                        eventRecorder_->record(
                            telemetry::EventKind::ThrottleStall, t,
                            req.bank, req.row, 0, throttled - t);
                    }
                    ++stats_.throttleStalls;
                    t = throttled;
                }
            }
            d.issue = t;
        }
        if (d.issue <= t0) {
            best = d;
            best_class = cls;
            best_seq = req.seq;
        } else if (d.issue < future.issue) {
            future = d;
        }
    }
    if (best.kind != Decision::Kind::None)
        return best;
    if (future.issue != kTickMax) {
        // Nothing is ready; report the earliest future command as the
        // wake-up hint without executing it.
        Decision d;
        d.kind = Decision::Kind::None;
        d.issue = future.issue;
        return d;
    }

    // Fully idle; the next auto-refresh still needs a wakeup.
    Decision d;
    for (std::uint32_t r = 0; r < geom.ranksPerChannel; ++r)
        d.issue = std::min(d.issue, refreshDue_[r]);
    d.kind = Decision::Kind::None;
    return d;
}

Tick
Controller::execute(const Decision &d)
{
    const auto &timing = device_.timing();
    Tick bus_done = d.issue + params_.commandSlot;

    switch (d.kind) {
      case Decision::Kind::Pre: {
        device_.precharge(d.bank, d.issue);
        bankCtl(d.bank).rowHitStreak = 0;
        ++stats_.precharges;
        break;
      }
      case Decision::Kind::Act: {
        const Request &req = queue_[d.reqIndex];
        scratch_.reset();
        device_.activate(d.bank, req.row, d.issue, scratch_.arr);
        handleActSideEffects(d.bank, d.issue, scratch_.arr);
        bankCtl(d.bank).rowHitStreak = 0;
        ++stats_.activates;
        ++stats_.rowMisses;
        break;
      }
      case Decision::Kind::Rd:
      case Decision::Kind::Wr: {
        Request req = queue_[d.reqIndex];
        queue_[d.reqIndex] = queue_.back();
        queue_.pop_back();
        Tick data;
        if (d.kind == Decision::Kind::Rd) {
            data = device_.read(d.bank, d.issue);
            ++stats_.reads;
            const double lat_ns = tickToNs(data - req.arrival);
            stats_.totalReadLatencyNs += lat_ns;
            stats_.readLatencyNs.sample(lat_ns);
        } else {
            data = device_.write(d.bank, d.issue);
            ++stats_.writes;
        }
        ++stats_.rowHits;
        ++bankCtl(d.bank).rowHitStreak;
        noteServed(req.coreId, d.issue);
        if (onComplete_)
            onComplete_(req, data);
        break;
      }
      case Decision::Kind::Ref: {
        device_.autoRefreshRank(d.rank, d.issue);
        refreshDue_[d.rank - firstRank_] += timing.tREFI;
        ++stats_.refreshes;
        const BankId first =
            d.rank * device_.geometry().banksPerRank;
        for (std::uint32_t i = 0;
             i < device_.geometry().banksPerRank; ++i) {
            decrementRaa(first + i);
        }
        break;
      }
      case Decision::Kind::RefSb: {
        device_.autoRefreshBank(d.bank, d.issue);
        // Bresenham remainder carry: banksPerRank REFsb steps must
        // span exactly tREFI, but the integer step truncates up to
        // banksPerRank-1 ticks per rotation. Spreading the remainder
        // keeps the per-bank cadence drift-free over long runs.
        const std::uint32_t r = d.rank - firstRank_;
        const auto bpr =
            static_cast<Tick>(device_.geometry().banksPerRank);
        Tick step = timing.tREFI / bpr;
        refsbCarry_[r] += timing.tREFI % bpr;
        if (refsbCarry_[r] >= bpr) {
            refsbCarry_[r] -= bpr;
            ++step;
        }
        refreshDue_[r] += step;
        refreshBankPtr_[r] =
            (refreshBankPtr_[r] + 1) %
            device_.geometry().banksPerRank;
        ++stats_.refreshes;
        decrementRaa(d.bank);
        break;
      }
      case Decision::Kind::Rfm: {
        const std::size_t treated = device_.rfm(d.bank, d.issue);
        bankCtl(d.bank).raa = 0;
        bankCtl(d.bank).rfmRequired = false;
        ++stats_.rfmIssued;
        if (eventRecorder_) {
            eventRecorder_->record(
                telemetry::EventKind::RfmIssued, d.issue, d.bank,
                kInvalidRow, static_cast<std::uint32_t>(treated));
        }
        break;
      }
      case Decision::Kind::MrrSkip: {
        bankCtl(d.bank).raa = 0;
        bankCtl(d.bank).rfmRequired = false;
        ++stats_.rfmSkippedByMrr;
        bus_done = d.issue + params_.mrrLatency;
        if (eventRecorder_) {
            eventRecorder_->record(telemetry::EventKind::RfmSkipped,
                                   d.issue, d.bank, kInvalidRow);
        }
        break;
      }
      case Decision::Kind::Arr: {
        BankCtl &ctl = bankCtl(d.bank);
        MITHRIL_ASSERT(!ctl.pendingArr.empty());
        device_.preventiveRefresh(d.bank, d.arrAggressor, d.issue);
        ctl.pendingArr.pop_front();
        ++stats_.arrExecuted;
        if (eventRecorder_) {
            eventRecorder_->record(telemetry::EventKind::ArrFired,
                                   d.issue, d.bank, d.arrAggressor,
                                   1);
        }
        break;
      }
      case Decision::Kind::None:
        panic("executing a None decision");
    }
    return bus_done;
}

Tick
Controller::service(Tick now)
{
    Tick next = kTickMax;
    while (true) {
        const Tick t0 = std::max(now, busFree_);
        if (t0 > now) {
            next = std::min(next, t0);
            break;
        }
        Decision d = choose(t0);
        if (d.kind == Decision::Kind::None) {
            next = std::min(next, d.issue);
            break;
        }
        if (d.issue > now) {
            next = std::min(next, d.issue);
            break;
        }
        busFree_ = execute(d);
    }
    return next;
}

} // namespace mithril::mc
