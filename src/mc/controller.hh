/**
 * @file
 * The memory controller.
 *
 * Per channel it owns a request queue and a command bus; per bank it
 * tracks the DDR5 RAA (rolling accumulated ACT) counter and issues RFM
 * commands at RFM_TH per Figure 1, executes pending ARR preventive
 * refreshes for the ARR-based baselines, schedules auto-refresh every
 * tREFI, and arbitrates requests with BLISS (FR-FCFS + served-streak
 * blacklisting) under a minimalist-open page policy.
 *
 * The controller is event-driven: service(now) issues every command
 * legal at `now` and returns the next tick it needs servicing.
 */

#ifndef MITHRIL_MC_CONTROLLER_HH
#define MITHRIL_MC_CONTROLLER_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"
#include "dram/device.hh"
#include "mc/address_map.hh"
#include "mc/request.hh"
#include "trackers/rh_protection.hh"

namespace mithril::telemetry
{
class EventRecorder;
}

namespace mithril::mc
{

/** Controller tuning knobs. */
struct ControllerParams
{
    std::uint32_t queueCapacity = 64;   //!< Requests per channel.
    bool useBliss = true;               //!< BLISS vs plain FR-FCFS.
    std::uint32_t blissStreak = 4;      //!< Served streak before
                                        //!< blacklisting.
    Tick blissDuration = usToTick(8.0); //!< Blacklist duration.
    std::uint32_t maxRowHits = 4;       //!< Minimalist-open hit cap.
    /** Use DDR5 same-bank refresh (REFsb): one bank refreshed every
     *  tREFI/banksPerRank instead of an all-bank REF every tREFI. */
    bool perBankRefresh = false;
    /** DDR5 RAA decrement applied by each REF the bank receives
     *  (0 = the paper's reset-only RAA semantics). */
    std::uint32_t raaRefDecrement = 0;
    Tick commandSlot = nsToTick(0.83);  //!< Command bus occupancy.
    Tick mrrLatency = nsToTick(2.0);    //!< Mithril+ MRR poll cost
                                        //!< (command-bus occupancy).
};

/** Aggregate controller statistics. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rfmIssued = 0;
    std::uint64_t rfmSkippedByMrr = 0;  //!< Mithril+ avoided commands.
    std::uint64_t arrExecuted = 0;
    std::uint64_t throttleStalls = 0;
    double totalReadLatencyNs = 0.0;
    /** Read latency distribution (ns), 20ns buckets up to 2us. */
    Histogram readLatencyNs{0.0, 2000.0, 100};

    double avgReadLatencyNs() const
    {
        return reads ? totalReadLatencyNs / static_cast<double>(reads)
                     : 0.0;
    }
};

/** Event-driven DDR5 memory controller with RFM support. */
class Controller
{
  public:
    /** Callback fired when a request's data completes. */
    using CompletionFn =
        std::function<void(const Request &, Tick completion)>;

    Controller(dram::Device &device, const AddressMap &map,
               const ControllerParams &params);

    void setCompletionCallback(CompletionFn fn)
    {
        onComplete_ = std::move(fn);
    }

    /** Enqueue a decoded request; false when the channel queue is full. */
    bool enqueue(const Request &req, Tick now);

    /** Outstanding requests in a channel queue. */
    std::size_t queueDepth(std::uint32_t channel) const
    {
        return queues_.at(channel).size();
    }

    /**
     * Issue every command legal at `now`; returns the next tick the
     * controller can make progress (kTickMax when fully idle).
     */
    Tick service(Tick now);

    const ControllerStats &stats() const { return stats_; }
    dram::Device &device() { return device_; }

    /**
     * Attach a mitigation-event recorder: RFM issue/skip, executed
     * ARRs, and throttle stalls emit trace events at their issue
     * ticks. Observation only — never affects scheduling. Null
     * detaches.
     */
    void setEventRecorder(telemetry::EventRecorder *recorder)
    {
        eventRecorder_ = recorder;
    }

    /** True when every queue and pending-work list is empty. */
    bool idle() const;

  private:
    /** A scheduling decision for one channel at one instant. */
    struct Decision
    {
        enum class Kind
        {
            None,
            Pre,
            Act,
            Rd,
            Wr,
            Ref,
            RefSb,
            Rfm,
            MrrSkip,
            Arr,
        };

        Kind kind = Kind::None;
        Tick issue = kTickMax;
        BankId bank = 0;
        std::uint32_t rank = 0;
        std::size_t reqIndex = 0;   //!< For Rd/Wr/Act/Pre on a request.
        RowId arrAggressor = 0;
    };

    struct BankCtl
    {
        std::uint32_t raa = 0;
        bool rfmRequired = false;
        std::deque<RowId> pendingArr;
        std::uint32_t rowHitStreak = 0;
    };

    struct BlissState
    {
        std::uint32_t lastCore = ~0u;
        std::uint32_t streak = 0;
        std::unordered_map<std::uint32_t, Tick> blacklistUntil;
    };

    /** Pick the next command for a channel given bus-free tick t0. */
    Decision choose(std::uint32_t channel, Tick t0);

    /** Commit a decision; returns the tick the bus frees. */
    Tick execute(std::uint32_t channel, const Decision &d);

    bool blacklisted(std::uint32_t channel, std::uint32_t core,
                     Tick t) const;
    void noteServed(std::uint32_t channel, std::uint32_t core, Tick t);

    /** True when the bank must drain for an imminent auto-refresh. */
    bool refreshPressing(std::uint32_t rank, BankId bank,
                         Tick t) const;

    /** Apply the DDR5 RAA decrement to one refreshed bank. */
    void decrementRaa(BankId bank);

    void handleActSideEffects(BankId bank, Tick t,
                              std::vector<RowId> &arr_out);

    dram::Device &device_;
    const AddressMap &map_;
    ControllerParams params_;
    CompletionFn onComplete_;

    std::vector<std::vector<Request>> queues_;   //!< Per channel.
    std::vector<Tick> busFree_;                  //!< Per channel.
    std::vector<Tick> refreshDue_;               //!< Per flat rank.
    std::vector<std::uint32_t> refreshBankPtr_;  //!< Per flat rank
                                                 //!< (REFsb rotation).
    std::vector<BankCtl> banks_;                 //!< Per flat bank.
    std::vector<BlissState> bliss_;              //!< Per channel.

    std::uint64_t seq_ = 0;
    ControllerStats stats_;
    /** ARR/RFM aggressor scratch — the same reusable-buffer protocol
     *  the ActStream engine uses (trackers append, frontend drains). */
    trackers::ActScratch scratch_;
    /** Non-null while mitigation-event tracing is enabled. */
    telemetry::EventRecorder *eventRecorder_ = nullptr;
};

} // namespace mithril::mc

#endif // MITHRIL_MC_CONTROLLER_HH
