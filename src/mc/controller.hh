/**
 * @file
 * The per-channel memory-controller frontend.
 *
 * One Controller instance owns exactly one channel of the geometry:
 * its request queue, its command bus, its BLISS state, and — for the
 * channel's rank slice — the DDR5 RAA (rolling accumulated ACT)
 * counters, RFM issue at RFM_TH per Figure 1, pending ARR preventive
 * refreshes for the ARR-based baselines, and the auto-refresh cadence
 * (all-bank REF every tREFI, or the REFsb rotation). Requests are
 * arbitrated with BLISS (FR-FCFS + served-streak blacklisting) under
 * a minimalist-open page policy.
 *
 * A multi-channel System builds one Controller per channel and
 * interleaves their service() loops deterministically (min-tick, ties
 * by channel index); because a controller touches only its own
 * channel's ranks/banks of the Device, the per-channel instances may
 * also advance in parallel within a causality window. Cross-channel
 * statistics merge through ControllerStats::mergeFrom() in channel
 * order — the same partition-and-merge discipline the sharded
 * ActStream engine uses for banks.
 *
 * The controller is event-driven: service(now) issues every command
 * legal at `now` and returns the next tick it needs servicing.
 */

#ifndef MITHRIL_MC_CONTROLLER_HH
#define MITHRIL_MC_CONTROLLER_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"
#include "dram/device.hh"
#include "mc/address_map.hh"
#include "mc/request.hh"
#include "trackers/rh_protection.hh"

namespace mithril::telemetry
{
class EventRecorder;
}

namespace mithril::mc
{

/** Controller tuning knobs. */
struct ControllerParams
{
    std::uint32_t queueCapacity = 64;   //!< Requests per channel.
    bool useBliss = true;               //!< BLISS vs plain FR-FCFS.
    std::uint32_t blissStreak = 4;      //!< Served streak before
                                        //!< blacklisting.
    Tick blissDuration = usToTick(8.0); //!< Blacklist duration.
    std::uint32_t maxRowHits = 4;       //!< Minimalist-open hit cap.
    /** Use DDR5 same-bank refresh (REFsb): one bank refreshed every
     *  tREFI/banksPerRank instead of an all-bank REF every tREFI. */
    bool perBankRefresh = false;
    /** DDR5 RAA decrement applied by each REF the bank receives
     *  (0 = the paper's reset-only RAA semantics). */
    std::uint32_t raaRefDecrement = 0;
    Tick commandSlot = nsToTick(0.83);  //!< Command bus occupancy.
    Tick mrrLatency = nsToTick(2.0);    //!< Mithril+ MRR poll cost
                                        //!< (command-bus occupancy).
};

/** Aggregate controller statistics (one channel's slice). */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rfmIssued = 0;
    std::uint64_t rfmSkippedByMrr = 0;  //!< Mithril+ avoided commands.
    std::uint64_t arrExecuted = 0;
    std::uint64_t throttleStalls = 0;
    double totalReadLatencyNs = 0.0;
    /** Read latency distribution (ns), 20ns buckets up to 2us. */
    Histogram readLatencyNs{0.0, 2000.0, 100};

    double avgReadLatencyNs() const
    {
        return reads ? totalReadLatencyNs / static_cast<double>(reads)
                     : 0.0;
    }

    /** Fold another channel's statistics into this one (sums; the
     *  latency histogram merges bucket-wise). Folding in channel
     *  order makes the merged sheet deterministic at any pool size. */
    void mergeFrom(const ControllerStats &other);
};

/** Event-driven DDR5 memory controller for one channel. */
class Controller
{
  public:
    /** Callback fired when a request's data completes. */
    using CompletionFn =
        std::function<void(const Request &, Tick completion)>;

    /**
     * Build the frontend for `channel` of the device's geometry. The
     * controller drives only that channel's ranks and banks; the
     * Device (and AddressMap) may be shared with other channels'
     * controllers only if the caller serializes their service calls.
     */
    Controller(dram::Device &device, const AddressMap &map,
               const ControllerParams &params,
               std::uint32_t channel = 0);

    void setCompletionCallback(CompletionFn fn)
    {
        onComplete_ = std::move(fn);
    }

    /** Enqueue a decoded request targeting this controller's channel;
     *  false when the queue is full. */
    bool enqueue(const Request &req, Tick now);

    /** Outstanding requests in the channel queue. */
    std::size_t queueDepth() const { return queue_.size(); }

    /** The channel this controller owns. */
    std::uint32_t channel() const { return channel_; }

    /**
     * Issue every command legal at `now`; returns the next tick the
     * controller can make progress (kTickMax when fully idle).
     */
    Tick service(Tick now);

    const ControllerStats &stats() const { return stats_; }
    dram::Device &device() { return device_; }

    /**
     * Attach a mitigation-event recorder: RFM issue/skip, executed
     * ARRs, and throttle stalls emit trace events at their issue
     * ticks. Observation only — never affects scheduling. Null
     * detaches.
     */
    void setEventRecorder(telemetry::EventRecorder *recorder)
    {
        eventRecorder_ = recorder;
    }

    /** True when the queue and every pending-work list is empty. */
    bool idle() const;

  private:
    /** A scheduling decision for one instant on this channel. */
    struct Decision
    {
        enum class Kind
        {
            None,
            Pre,
            Act,
            Rd,
            Wr,
            Ref,
            RefSb,
            Rfm,
            MrrSkip,
            Arr,
        };

        Kind kind = Kind::None;
        Tick issue = kTickMax;
        BankId bank = 0;            //!< Global (system-flat) bank id.
        std::uint32_t rank = 0;     //!< Global flat rank id.
        std::size_t reqIndex = 0;   //!< For Rd/Wr/Act/Pre on a request.
        RowId arrAggressor = 0;
    };

    struct BankCtl
    {
        std::uint32_t raa = 0;
        bool rfmRequired = false;
        std::deque<RowId> pendingArr;
        std::uint32_t rowHitStreak = 0;
    };

    struct BlissState
    {
        std::uint32_t lastCore = ~0u;
        std::uint32_t streak = 0;
        std::unordered_map<std::uint32_t, Tick> blacklistUntil;
    };

    /** Pick the next command given bus-free tick t0. */
    Decision choose(Tick t0);

    /** Commit a decision; returns the tick the bus frees. */
    Tick execute(const Decision &d);

    bool blacklisted(std::uint32_t core, Tick t) const;
    void noteServed(std::uint32_t core, Tick t);

    /** True when the bank must drain for an imminent auto-refresh.
     *  `rank` is the global flat rank id. */
    bool refreshPressing(std::uint32_t rank, BankId bank,
                         Tick t) const;

    /** Apply the DDR5 RAA decrement to one refreshed bank. */
    void decrementRaa(BankId bank);

    void handleActSideEffects(BankId bank, Tick t,
                              std::vector<RowId> &arr_out);

    /** Per-bank control state of a global bank id in our channel. */
    BankCtl &bankCtl(BankId bank) { return banks_[bank - firstBank_]; }

    dram::Device &device_;
    const AddressMap &map_;
    ControllerParams params_;
    std::uint32_t channel_;
    std::uint32_t firstRank_;     //!< First global flat rank we own.
    BankId firstBank_;            //!< First global bank id we own.
    CompletionFn onComplete_;

    std::vector<Request> queue_;  //!< The channel's request queue.
    Tick busFree_ = 0;            //!< The channel's command bus.
    BlissState bliss_;
    std::vector<Tick> refreshDue_;               //!< Per owned rank.
    std::vector<std::uint32_t> refreshBankPtr_;  //!< Per owned rank
                                                 //!< (REFsb rotation).
    /** REFsb cadence remainder per owned rank: tREFI rarely divides
     *  by banksPerRank, so the integer step alone would drift the
     *  rotation early by up to banksPerRank-1 ticks per tREFI. The
     *  carry spreads the remainder Bresenham-style so banksPerRank
     *  REFsb commands span exactly tREFI. */
    std::vector<Tick> refsbCarry_;
    std::vector<BankCtl> banks_;                 //!< Per owned bank.

    std::uint64_t seq_ = 0;
    ControllerStats stats_;
    /** ARR/RFM aggressor scratch — the same reusable-buffer protocol
     *  the ActStream engine uses (trackers append, frontend drains). */
    trackers::ActScratch scratch_;
    /** Non-null while mitigation-event tracing is enabled. */
    telemetry::EventRecorder *eventRecorder_ = nullptr;
};

} // namespace mithril::mc

#endif // MITHRIL_MC_CONTROLLER_HH
