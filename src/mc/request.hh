/**
 * @file
 * A memory request as seen by the memory controller.
 */

#ifndef MITHRIL_MC_REQUEST_HH
#define MITHRIL_MC_REQUEST_HH

#include <cstdint>

#include "common/types.hh"

namespace mithril::mc
{

/** One cache-line-granularity DRAM request. */
struct Request
{
    Addr addr = 0;
    bool isWrite = false;
    /** True when the issuing core counts this request against its MLP
     *  window and expects a completion callback (demand fills and
     *  store-buffer writes; false for cache writebacks). */
    bool tracked = true;
    std::uint32_t coreId = 0;
    Tick arrival = 0;      //!< Tick the request entered the MC queue.
    std::uint64_t seq = 0; //!< Global arrival order (FCFS tiebreak).

    // Decoded address fields (filled by AddressMap::decode).
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    BankId bank = 0;       //!< Flat system-wide bank id.
    RowId row = 0;
    std::uint32_t column = 0;
};

} // namespace mithril::mc

#endif // MITHRIL_MC_REQUEST_HH
