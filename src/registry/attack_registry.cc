#include "registry/attack_registry.hh"

namespace mithril::registry
{

std::unique_ptr<workload::TraceGenerator>
makeAttack(const std::string &name, const ParamSet &params,
           const AttackContext &ctx)
{
    return attackRegistry().at(name).make(params, ctx);
}

} // namespace mithril::registry
