/**
 * @file
 * The attack registry. Attack-pattern translation units register named
 * attacker-thread generators here ("double-sided", "multi-sided",
 * "cbf-pollution", ...); the factory receives the experiment ParamSet
 * and an AttackContext carrying the address map to aim through, the
 * run's FlipTH, and a callback that reproduces the benign threads'
 * streams (for profiling adversaries). The "none" entry builds no
 * generator.
 */

#ifndef MITHRIL_REGISTRY_ATTACK_REGISTRY_HH
#define MITHRIL_REGISTRY_ATTACK_REGISTRY_HH

#include <functional>

#include "mc/address_map.hh"
#include "registry/registry.hh"
#include "workload/trace.hh"

namespace mithril::registry
{

/** Side inputs an attack factory may use. The map reference must
 *  outlive the generator (generators compose addresses through it on
 *  every record). */
struct AttackContext
{
    const mc::AddressMap &map;
    std::uint32_t flipTh = 6250;
    /** Number of benign (victim) cores sharing the machine. */
    std::uint32_t benignCores = 0;
    std::uint64_t seed = 42;
    /** Rebuild benign core i's trace generator, for profiling
     *  adversaries; may be empty when no workload context exists. */
    std::function<std::unique_ptr<workload::TraceGenerator>(
        std::uint32_t)>
        benignThread;
};

struct AttackTraits
{
    using Product = workload::TraceGenerator;
    using Context = AttackContext;
    static constexpr const char *kCategory = "attack";
    static constexpr const char *kPlural = "attacks";
};

using AttackRegistry = Registry<AttackTraits>;

/** The process-wide attack registry. */
inline AttackRegistry &
attackRegistry()
{
    return AttackRegistry::instance();
}

/**
 * Build the attacker generator by registry name (nullptr for "none").
 * Throws SpecError on unknown names, listing every registered attack.
 */
std::unique_ptr<workload::TraceGenerator>
makeAttack(const std::string &name, const ParamSet &params,
           const AttackContext &ctx);

} // namespace mithril::registry

#endif // MITHRIL_REGISTRY_ATTACK_REGISTRY_HH
