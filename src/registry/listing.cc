#include "registry/listing.hh"

#include <ostream>
#include <sstream>

#include "common/failpoint.hh"
#include "registry/attack_registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "registry/workload_registry.hh"
#include "trace/op_registry.hh"

namespace mithril::registry
{

void
listRegistries(std::ostream &os, const std::string &what)
{
    const bool all = what.empty() || what == "all";
    bool matched = false;
    if (all || what == "schemes") {
        listRegistry(schemeRegistry(), os);
        matched = true;
    }
    if (all || what == "workloads") {
        if (matched)
            os << "\n";
        listRegistry(workloadRegistry(), os);
        matched = true;
    }
    if (all || what == "attacks") {
        if (matched)
            os << "\n";
        listRegistry(attackRegistry(), os);
        matched = true;
    }
    if (all || what == "sources") {
        if (matched)
            os << "\n";
        listRegistry(sourceRegistry(), os);
        matched = true;
    }
    if (all || what == "trace-ops") {
        if (matched)
            os << "\n";
        listRegistry(trace::traceOpRegistry(), os);
        matched = true;
    }
    if (all || what == "failpoints") {
        if (matched)
            os << "\n";
        failpoint::listSites(os);
        matched = true;
    }
    if (!matched) {
        throw SpecError("unknown --list category '" + what +
                        "' (want schemes|workloads|attacks|sources|"
                        "trace-ops|failpoints|all)");
    }
}

std::string
renderRegistries(const std::string &what)
{
    std::ostringstream os;
    listRegistries(os, what);
    return os.str();
}

} // namespace mithril::registry
