/**
 * @file
 * Deterministic human-readable listings of the scheme/workload/
 * attack/engine-source registries, shared by `sweep_cli --list` and the golden-file test
 * that pins the output.
 */

#ifndef MITHRIL_REGISTRY_LISTING_HH
#define MITHRIL_REGISTRY_LISTING_HH

#include <iosfwd>
#include <string>

namespace mithril::registry
{

/**
 * Write the listing for one category ("schemes", "workloads",
 * "attacks", "sources") or for all of them ("all" or ""). Throws
 * SpecError on any other category name.
 */
void listRegistries(std::ostream &os, const std::string &what);

/** listRegistries() into a string. */
std::string renderRegistries(const std::string &what);

} // namespace mithril::registry

#endif // MITHRIL_REGISTRY_LISTING_HH
