#include "registry/registry.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mithril::registry
{

std::string
paramTypeName(ParamDesc::Type type)
{
    switch (type) {
      case ParamDesc::Type::Uint:   return "uint";
      case ParamDesc::Type::Double: return "double";
      case ParamDesc::Type::Bool:   return "bool";
      case ParamDesc::Type::String: return "string";
    }
    return "?";
}

namespace
{

std::string
formatBound(double value)
{
    char buf[32];
    if (value == static_cast<double>(static_cast<long long>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%g", value);
    }
    return buf;
}

} // namespace

std::string
paramRangeText(const ParamDesc &desc)
{
    if (desc.type != ParamDesc::Type::Uint &&
        desc.type != ParamDesc::Type::Double)
        return "";
    return "[" + formatBound(desc.min) + ", " +
           formatBound(desc.max) + "]";
}

std::string
joinSorted(std::vector<std::string> names)
{
    std::sort(names.begin(), names.end());
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

void
checkParam(const std::string &owner, const ParamDesc &desc,
           const ParamSet &params)
{
    if (!params.has(desc.key))
        return;
    const std::string raw = params.getString(desc.key);
    double value = 0.0;
    switch (desc.type) {
      case ParamDesc::Type::String:
        return;
      case ParamDesc::Type::Bool: {
        // Reuse ParamSet's boolean spellings without dying on junk.
        if (raw != "0" && raw != "1" && raw != "true" &&
            raw != "false" && raw != "yes" && raw != "no" &&
            raw != "on" && raw != "off") {
            throw SpecError(owner + " parameter " + desc.key + "=" +
                            raw + " is not a boolean");
        }
        return;
      }
      case ParamDesc::Type::Uint: {
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(raw.c_str(), &end, 0);
        if (end == raw.c_str() || *end != '\0' ||
            (!raw.empty() && raw[0] == '-')) {
            throw SpecError(owner + " parameter " + desc.key + "=" +
                            raw + " is not an unsigned integer");
        }
        value = static_cast<double>(v);
        break;
      }
      case ParamDesc::Type::Double: {
        char *end = nullptr;
        value = std::strtod(raw.c_str(), &end);
        if (end == raw.c_str() || *end != '\0') {
            throw SpecError(owner + " parameter " + desc.key + "=" +
                            raw + " is not a number");
        }
        break;
      }
    }
    if (value < desc.min || value > desc.max) {
        throw SpecError(owner + " parameter " + desc.key + "=" + raw +
                        " is out of range " + paramRangeText(desc));
    }
}

} // namespace mithril::registry
