/**
 * @file
 * Generic string-keyed plug-in registry with static self-registration.
 *
 * Every extensible axis of an experiment — protection schemes, workload
 * generators, attack patterns — is a `Registry<Traits>`: a map from a
 * canonical name to an Entry carrying a display name, a one-line
 * description, the entry-specific tunable parameters (with defaults and
 * legal ranges), and a `make(params, context)` factory. A translation
 * unit adds itself with a file-scope `Registrar<Traits>` object, so a
 * new scheme/workload/attack is one self-contained .cc file plus a
 * registration block — no switch statement, enum, or factory edit
 * anywhere else.
 *
 * Lookup failures throw SpecError (a recoverable std::runtime_error)
 * whose message lists every registered name, so a typo'd CLI axis or a
 * per-job infeasible configuration can be surfaced without killing the
 * whole process; duplicate registration is a hard (fatal) error at
 * startup.
 */

#ifndef MITHRIL_REGISTRY_REGISTRY_HH
#define MITHRIL_REGISTRY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"

namespace mithril::registry
{

/**
 * Recoverable configuration error: unknown name, out-of-range
 * parameter, or an infeasible entry configuration. The sweep runner
 * catches it per job; CLI front-ends convert it to fatal().
 */
class SpecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One tunable parameter an entry accepts beyond the shared knobs. */
struct ParamDesc
{
    enum class Type
    {
        Uint,
        Double,
        Bool,
        String,
    };

    std::string key;
    Type type = Type::Uint;
    std::string def;          //!< Printable default value.
    double min = 0.0;         //!< Inclusive lower bound (numeric types).
    double max = 0.0;         //!< Inclusive upper bound (numeric types).
    std::string description;  //!< One line for `--list` output.
};

/** Printable type name ("uint", "double", ...). */
std::string paramTypeName(ParamDesc::Type type);

/** "[min, max]" for numeric descs, "" otherwise. */
std::string paramRangeText(const ParamDesc &desc);

/** Comma-join a name list after sorting it (for error messages). */
std::string joinSorted(std::vector<std::string> names);

/**
 * Check one declared parameter of `params` against its desc: parseable
 * as the declared type and inside [min, max]. Throws SpecError naming
 * the owner entry and the legal range. Missing keys are fine (the
 * factory applies the default).
 */
void checkParam(const std::string &owner, const ParamDesc &desc,
                const ParamSet &params);

/**
 * A string-keyed registry of Traits::Product factories.
 *
 * Traits must declare:
 *   using Product = ...;           // what make() builds
 *   struct Context { ... };       // side inputs the factory needs
 *   static constexpr const char *kCategory;  // "scheme", singular
 *   static constexpr const char *kPlural;    // "schemes"
 */
template <typename Traits>
class Registry
{
  public:
    using Product = typename Traits::Product;
    using Context = typename Traits::Context;
    using Factory = std::function<std::unique_ptr<Product>(
        const ParamSet &, const Context &)>;

    static constexpr const char *kCategory = Traits::kCategory;

    struct Entry
    {
        /** Canonical lowercase name ("rfm-graphene"). */
        std::string name;
        /** Pretty name for tables and labels ("RFM-Graphene"). */
        std::string display;
        /** One-line description for `--list`. */
        std::string description;
        /** Alternative spellings ("rfm_graphene"). */
        std::vector<std::string> aliases;
        /** Shared knobs this entry honours, free text ("flip, rfm"). */
        std::string uses;
        /** Entry-specific tunables, validated against ranges. */
        std::vector<ParamDesc> params;
        /** Build a configured instance; throws SpecError when the
         *  requested configuration is infeasible. */
        Factory make;
    };

    /** The process-wide instance for this Traits. */
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    /** Register an entry; duplicate names/aliases are a hard error. */
    void
    add(Entry entry)
    {
        reject_duplicate(entry.name);
        for (const std::string &alias : entry.aliases)
            reject_duplicate(alias);
        for (const std::string &alias : entry.aliases)
            alias_to_name_[alias] = entry.name;
        entries_[entry.name] = std::move(entry);
    }

    /** Look up by canonical name or alias; nullptr when unknown. */
    const Entry *
    find(const std::string &name) const
    {
        auto it = entries_.find(name);
        if (it != entries_.end())
            return &it->second;
        auto alias = alias_to_name_.find(name);
        if (alias != alias_to_name_.end())
            return &entries_.at(alias->second);
        return nullptr;
    }

    /** Look up; throws SpecError listing every registered name. */
    const Entry &
    at(const std::string &name) const
    {
        const Entry *entry = find(name);
        if (!entry) {
            throw SpecError(std::string("unknown ") +
                            Traits::kCategory + " '" + name +
                            "'; registered " + Traits::kPlural +
                            ": " + joinSorted(names()));
        }
        return *entry;
    }

    bool
    has(const std::string &name) const
    {
        return find(name) != nullptr;
    }

    /** Sorted canonical names (aliases excluded). */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &[name, entry] : entries_)
            out.push_back(name);
        return out;  // std::map iterates sorted.
    }

    /** All entries in sorted-name order. */
    const std::map<std::string, Entry> &
    entries() const
    {
        return entries_;
    }

  private:
    void
    reject_duplicate(const std::string &name) const
    {
        if (entries_.count(name) || alias_to_name_.count(name))
            fatal("duplicate %s registration: %s", Traits::kCategory,
                  name.c_str());
    }

    std::map<std::string, Entry> entries_;
    std::map<std::string, std::string> alias_to_name_;
};

/** File-scope self-registration helper. */
template <typename Traits>
class Registrar
{
  public:
    explicit Registrar(typename Registry<Traits>::Entry entry)
    {
        Registry<Traits>::instance().add(std::move(entry));
    }
};

/**
 * Deterministic listing of one registry: every entry on one line
 * (name, display, description), aliases and declared parameters
 * indented below it. Pinned by a golden-file test.
 */
template <typename Traits>
void
listRegistry(const Registry<Traits> &registry, std::ostream &os)
{
    os << Traits::kPlural << " (" << registry.entries().size()
       << " registered):\n";
    for (const auto &[name, entry] : registry.entries()) {
        os << "  ";
        os.width(16);
        os.setf(std::ios::left, std::ios::adjustfield);
        os << name;
        os.width(0);
        os << entry.display << " — " << entry.description << "\n";
        if (!entry.aliases.empty())
            os << "      aliases: " << joinSorted(entry.aliases)
               << "\n";
        if (!entry.uses.empty())
            os << "      uses: " << entry.uses << "\n";
        for (const ParamDesc &p : entry.params) {
            os << "      " << p.key << "=" << p.def << " ("
               << paramTypeName(p.type);
            const std::string range = paramRangeText(p);
            if (!range.empty())
                os << " in " << range;
            os << ") " << p.description << "\n";
        }
    }
}

} // namespace mithril::registry

#endif // MITHRIL_REGISTRY_REGISTRY_HH
