#include "registry/scheme_registry.hh"

namespace mithril::registry
{

SchemeKnobs
SchemeKnobs::fromParams(const ParamSet &params)
{
    SchemeKnobs knobs;
    knobs.flipTh = params.getUint32("flip", knobs.flipTh);
    knobs.rfmTh = params.getUint32("rfm", knobs.rfmTh);
    knobs.adTh = params.getUint32("ad", knobs.adTh);
    knobs.blastRadius =
        params.getUint32("blast-radius", knobs.blastRadius);
    knobs.seed = params.getUint("scheme-seed", knobs.seed);
    return knobs;
}

ParamSet
SchemeKnobs::toParams() const
{
    ParamSet params;
    params.set("flip", std::to_string(flipTh));
    params.set("rfm", std::to_string(rfmTh));
    params.set("ad", std::to_string(adTh));
    params.set("blast-radius", std::to_string(blastRadius));
    params.set("scheme-seed", std::to_string(seed));
    return params;
}

std::unique_ptr<trackers::RhProtection>
makeScheme(const std::string &name, const ParamSet &params,
           const SchemeContext &ctx)
{
    return schemeRegistry().at(name).make(params, ctx);
}

std::string
schemeDisplay(const std::string &name)
{
    return schemeRegistry().at(name).display;
}

} // namespace mithril::registry
