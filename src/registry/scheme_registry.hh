/**
 * @file
 * The protection-scheme registry. Each tracker translation unit
 * registers its scheme(s) here with a `Registrar<SchemeTraits>`; the
 * factory receives the full experiment ParamSet (shared knobs `flip=`,
 * `rfm=`, `ad=`, `blast-radius=`, `scheme-seed=` plus any
 * entry-declared tunables) and the DRAM timing/geometry it must be
 * configured for. Factories throw registry::SpecError when the
 * requested configuration is infeasible, so a sweep can report the
 * failure per job instead of aborting.
 */

#ifndef MITHRIL_REGISTRY_SCHEME_REGISTRY_HH
#define MITHRIL_REGISTRY_SCHEME_REGISTRY_HH

#include "dram/timing.hh"
#include "registry/registry.hh"
#include "trackers/rh_protection.hh"

namespace mithril::registry
{

/** Side inputs every scheme factory needs. */
struct SchemeContext
{
    const dram::Timing &timing;
    const dram::Geometry &geometry;
};

struct SchemeTraits
{
    using Product = trackers::RhProtection;
    using Context = SchemeContext;
    static constexpr const char *kCategory = "scheme";
    static constexpr const char *kPlural = "schemes";
};

using SchemeRegistry = Registry<SchemeTraits>;

/** The process-wide scheme registry. */
inline SchemeRegistry &
schemeRegistry()
{
    return SchemeRegistry::instance();
}

/**
 * The shared scheme knobs with their defaults, decoded from the
 * experiment ParamSet (`flip=`, `rfm=`, `ad=`, `blast-radius=`,
 * `scheme-seed=`).
 */
struct SchemeKnobs
{
    std::uint32_t flipTh = 6250;
    std::uint32_t rfmTh = 0;   //!< 0 = the scheme's auto default.
    std::uint32_t adTh = 200;
    std::uint32_t blastRadius = 1;
    std::uint64_t seed = 7;

    static SchemeKnobs fromParams(const ParamSet &params);

    /** The knobs rendered back as the shared ParamSet keys (`flip=`,
     *  `rfm=`, `ad=`, `blast-radius=`, `scheme-seed=`) — what
     *  makeScheme() and the registry factories consume. */
    ParamSet toParams() const;
};

/**
 * Build a configured scheme by registry name (nullptr for "none").
 * Throws SpecError on unknown names (listing every registered scheme)
 * and on infeasible configurations.
 */
std::unique_ptr<trackers::RhProtection>
makeScheme(const std::string &name, const ParamSet &params,
           const SchemeContext &ctx);

/** Pretty display name for a registered scheme ("Mithril"). */
std::string schemeDisplay(const std::string &name);

} // namespace mithril::registry

#endif // MITHRIL_REGISTRY_SCHEME_REGISTRY_HH
