#include "registry/source_registry.hh"

namespace mithril::registry
{

std::unique_ptr<engine::ActSource>
makeActSource(const std::string &name, const ParamSet &params,
              const SourceContext &ctx)
{
    return sourceRegistry().at(name).make(params, ctx);
}

} // namespace mithril::registry
