/**
 * @file
 * The engine-source registry: named workloads that drive the
 * ActStream engine directly at the activation level (no cores, no MC
 * queues). Entries wrap trace files, the attack generators, or any
 * other record stream as an engine::ActSource; the factory receives
 * the experiment ParamSet and the DRAM timing/geometry the stream
 * must aim at. This is what makes every registered attack runnable at
 * multi-bank scale against every tracker without a System build.
 */

#ifndef MITHRIL_REGISTRY_SOURCE_REGISTRY_HH
#define MITHRIL_REGISTRY_SOURCE_REGISTRY_HH

#include "dram/timing.hh"
#include "engine/act_source.hh"
#include "registry/registry.hh"

namespace mithril::registry
{

/** Side inputs every engine-source factory needs. */
struct SourceContext
{
    const dram::Timing &timing;
    const dram::Geometry &geometry;
    std::uint32_t flipTh = 6250;
    std::uint64_t seed = 42;
};

struct SourceTraits
{
    using Product = engine::ActSource;
    using Context = SourceContext;
    static constexpr const char *kCategory = "source";
    static constexpr const char *kPlural = "sources";
};

using SourceRegistry = Registry<SourceTraits>;

/** The process-wide engine-source registry. */
inline SourceRegistry &
sourceRegistry()
{
    return SourceRegistry::instance();
}

/**
 * Build an engine source by registry name. Throws SpecError on
 * unknown names (listing every registered source) and on invalid
 * entry parameters.
 */
std::unique_ptr<engine::ActSource>
makeActSource(const std::string &name, const ParamSet &params,
              const SourceContext &ctx);

} // namespace mithril::registry

#endif // MITHRIL_REGISTRY_SOURCE_REGISTRY_HH
