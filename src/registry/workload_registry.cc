#include "registry/workload_registry.hh"

namespace mithril::registry
{

std::unique_ptr<workload::TraceGenerator>
makeWorkload(const std::string &name, const ParamSet &params,
             const WorkloadContext &ctx)
{
    return workloadRegistry().at(name).make(params, ctx);
}

} // namespace mithril::registry
