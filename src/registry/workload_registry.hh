/**
 * @file
 * The workload registry. Each workload translation unit registers its
 * named workloads (e.g. "mix-high", "mt-fft") here; the factory builds
 * the trace generator for ONE core of a run, given the experiment
 * ParamSet and the (core, cores, seed) placement. Multi-programmed
 * workloads carve disjoint per-core regions; multithreaded kernels
 * share one region — both derived from the context.
 */

#ifndef MITHRIL_REGISTRY_WORKLOAD_REGISTRY_HH
#define MITHRIL_REGISTRY_WORKLOAD_REGISTRY_HH

#include "registry/registry.hh"
#include "workload/trace.hh"

namespace mithril::registry
{

/** Placement of the one generator being built. */
struct WorkloadContext
{
    std::uint32_t coreId = 0;
    std::uint32_t cores = 1;
    std::uint64_t seed = 42;

    /** Disjoint 512MB private region for this core. */
    Addr
    privateBase() const
    {
        return static_cast<Addr>(coreId) << 29;
    }

    /** One shared region past every private region. */
    Addr
    sharedBase() const
    {
        return static_cast<Addr>(cores) << 29;
    }
};

struct WorkloadTraits
{
    using Product = workload::TraceGenerator;
    using Context = WorkloadContext;
    static constexpr const char *kCategory = "workload";
    static constexpr const char *kPlural = "workloads";
};

using WorkloadRegistry = Registry<WorkloadTraits>;

/** The process-wide workload registry. */
inline WorkloadRegistry &
workloadRegistry()
{
    return WorkloadRegistry::instance();
}

/**
 * Build one core's generator by registry name. Throws SpecError on
 * unknown names, listing every registered workload.
 */
std::unique_ptr<workload::TraceGenerator>
makeWorkload(const std::string &name, const ParamSet &params,
             const WorkloadContext &ctx);

} // namespace mithril::registry

#endif // MITHRIL_REGISTRY_WORKLOAD_REGISTRY_HH
