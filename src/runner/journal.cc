#include "runner/journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "registry/registry.hh"

namespace mithril::runner
{

namespace
{

/** Resilience injection site: journal record append I/O failure. */
const failpoint::SiteRegistrar kFpJournalAppend{
    "journal.append",
    "fail a checkpoint-journal record append "
    "(SweepJournal::append) — exercises journal I/O error "
    "surfacing without damaging the file"};

// ------------------------------------------------------------ FNV-1a

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t size)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    return fnv1a(h, s.data(), s.size());
}

// --------------------------------------------------------- escaping

/**
 * Journal fields live one record per line, tab-separated, so the
 * three structural bytes are escaped: backslash, tab, newline.
 * Telemetry metric names additionally escape space and '=' (they are
 * embedded in space-separated k=v tokens inside one field).
 */
std::string
escapeField(const std::string &s, bool token = false)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\n':
            out += "\\n";
            break;
        case ' ':
            if (token) {
                out += "\\s";
                break;
            }
            out += c;
            break;
        case '=':
            if (token) {
                out += "\\e";
                break;
            }
            out += c;
            break;
        default:
            out += c;
            break;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
        case 't':
            out += '\t';
            break;
        case 'n':
            out += '\n';
            break;
        case 's':
            out += ' ';
            break;
        case 'e':
            out += '=';
            break;
        default:
            out += s[i];
            break;
        }
    }
    return out;
}

// ------------------------------------------------- number rendering

/** %.17g: the shortest printf precision that round-trips every IEEE
 *  double exactly, so a restored metric re-formats (at the sinks'
 *  %.10g) byte-identically to the original run's. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0';
}

bool
parseU64Hex(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 16);
    return errno == 0 && end && *end == '\0';
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end && *end == '\0';
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        // A split that honors escaping: a separator preceded by an
        // odd run of backslashes is literal content.
        std::size_t pos = start;
        while (pos < s.size()) {
            if (s[pos] == '\\') {
                pos += 2;
                continue;
            }
            if (s[pos] == sep)
                break;
            ++pos;
        }
        if (pos >= s.size()) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

// ------------------------------------------------ metric field codec

/** Fixed-order scalar metrics; names are part of the journal format
 *  (a record with unknown or missing names fails its parse and ends
 *  the restorable prefix, exactly like a torn line). */
struct ScalarField
{
    const char *name;
    bool isDouble;
};

constexpr ScalarField kScalars[] = {
    {"ipc", true},       {"energy", true},   {"ticks", false},
    {"acts", false},     {"reads", false},   {"writes", false},
    {"rfm", false},      {"rfmskip", false}, {"arr", false},
    {"prev", false},     {"stalls", false},  {"maxdist", true},
    {"flips", false},    {"avglat", true},   {"p95lat", true},
    {"trkbytes", true},
};

double *
doubleSlot(sim::RunMetrics &m, std::size_t i)
{
    switch (i) {
    case 0:
        return &m.aggIpc;
    case 1:
        return &m.energyPj;
    case 11:
        return &m.maxDisturbance;
    case 13:
        return &m.avgReadLatencyNs;
    case 14:
        return &m.p95ReadLatencyNs;
    case 15:
        return &m.trackerBytesPerBank;
    default:
        return nullptr;
    }
}

/** simTicks is a (signed) Tick; it round-trips through uint64 via
 *  value casts here, so the slot helpers stay pointer-free for it. */
std::uint64_t *
u64Slot(sim::RunMetrics &m, std::size_t i)
{
    switch (i) {
    case 3:
        return &m.acts;
    case 4:
        return &m.reads;
    case 5:
        return &m.writes;
    case 6:
        return &m.rfmIssued;
    case 7:
        return &m.rfmSkippedMrr;
    case 8:
        return &m.arrExecuted;
    case 9:
        return &m.preventiveRefreshes;
    case 10:
        return &m.throttleStalls;
    case 12:
        return &m.bitFlips;
    default:
        return nullptr;
    }
}

std::string
encodeMetrics(const sim::RunMetrics &metrics)
{
    // const_cast only to reuse the slot tables; nothing is written.
    auto &m = const_cast<sim::RunMetrics &>(metrics);
    std::string out;
    for (std::size_t i = 0; i < std::size(kScalars); ++i) {
        if (i)
            out += ' ';
        out += kScalars[i].name;
        out += '=';
        if (kScalars[i].isDouble) {
            out += fmtDouble(*doubleSlot(m, i));
        } else {
            const std::uint64_t v =
                i == 2 ? static_cast<std::uint64_t>(m.simTicks)
                       : *u64Slot(m, i);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
            out += buf;
        }
    }
    for (const auto &[name, value] : metrics.telemetry) {
        out += " t:";
        out += escapeField(name, /*token=*/true);
        out += '=';
        out += fmtDouble(value);
    }
    return out;
}

bool
decodeMetrics(const std::string &field, sim::RunMetrics &m)
{
    const std::vector<std::string> tokens = split(field, ' ');
    if (tokens.size() < std::size(kScalars))
        return false;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        const std::size_t eq = [&] {
            // First unescaped '=' splits key from value.
            std::size_t pos = 0;
            while (pos < tok.size()) {
                if (tok[pos] == '\\') {
                    pos += 2;
                    continue;
                }
                if (tok[pos] == '=')
                    break;
                ++pos;
            }
            return pos;
        }();
        if (eq >= tok.size())
            return false;
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        if (i < std::size(kScalars)) {
            if (key != kScalars[i].name)
                return false;
            if (kScalars[i].isDouble) {
                if (!parseDouble(value, *doubleSlot(m, i)))
                    return false;
            } else {
                std::uint64_t u = 0;
                if (!parseU64(value, u))
                    return false;
                if (i == 2)
                    m.simTicks = static_cast<Tick>(u);
                else
                    *u64Slot(m, i) = u;
            }
        } else {
            if (key.rfind("t:", 0) != 0)
                return false;
            double d = 0.0;
            if (!parseDouble(value, d))
                return false;
            m.telemetry[unescapeField(key.substr(2))] = d;
        }
    }
    return true;
}

// --------------------------------------------------- record codec

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

std::string
encodeRecord(const JobResult &result)
{
    char num[32];
    std::string line = "job\t";
    std::snprintf(num, sizeof(num), "%zu", result.job.index);
    line += num;
    line += '\t';
    std::snprintf(num, sizeof(num), "%" PRIu64, result.job.spec.seed);
    line += num;
    line += '\t';
    line += jobStatusName(result.status);
    line += '\t';
    line += escapeField(result.job.label);
    line += '\t';
    line += escapeField(result.error);
    line += '\t';
    line += encodeMetrics(result.metrics);
    const std::uint64_t crc = fnv1a(kFnvOffset, line);
    line += "\tcrc=";
    line += hex16(crc);
    line += '\n';
    return line;
}

std::string
headerLine(std::uint64_t fingerprint, std::size_t job_count)
{
    std::string line = kJournalMagic;
    line += " fingerprint=";
    line += hex16(fingerprint);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " jobs=%zu", job_count);
    line += buf;
    line += '\n';
    return line;
}

} // namespace

// ------------------------------------------------- sweepFingerprint

std::uint64_t
sweepFingerprint(const std::vector<Job> &jobs)
{
    std::uint64_t h = kFnvOffset;
    const std::uint64_t n = jobs.size();
    h = fnv1a(h, &n, sizeof(n));
    for (const Job &job : jobs) {
        h = fnv1a(h, job.label);
        h = fnv1a(h, "\x1f", 1);
        h = fnv1a(h, job.spec.describe());
        h = fnv1a(h, "\x1e", 1);
    }
    return h;
}

// ------------------------------------------------------ SweepJournal

SweepJournal::SweepJournal(const std::string &path,
                           std::uint64_t fingerprint,
                           std::size_t job_count, bool resume)
    : path_(path)
{
    MITHRIL_ASSERT(!path.empty());
    bool append = false;
    if (resume) {
        // load() already vetted compatibility; append only when the
        // file genuinely exists, else fall through to fresh create.
        if (std::FILE *probe = std::fopen(path.c_str(), "rb")) {
            std::fclose(probe);
            append = true;
        }
    }
    if (append) {
        file_ = std::fopen(path.c_str(), "ab");
        if (!file_)
            throw registry::SpecError(
                "cannot append to sweep journal '" + path +
                "': " + std::strerror(errno));
        return;
    }
    // Fresh journal: publish the header atomically (tmp + rename) so
    // a kill during creation never leaves a half-written header, then
    // reopen for appends.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw registry::SpecError("cannot create sweep journal '" +
                                  tmp +
                                  "': " + std::strerror(errno));
    const std::string header = headerLine(fingerprint, job_count);
    const bool ok =
        std::fwrite(header.data(), 1, header.size(), f) ==
            header.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw registry::SpecError("cannot publish sweep journal '" +
                                  path +
                                  "': " + std::strerror(errno));
    }
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        throw registry::SpecError(
            "cannot reopen sweep journal '" + path +
            "': " + std::strerror(errno));
}

SweepJournal::~SweepJournal()
{
    if (file_)
        std::fclose(file_);
}

void
SweepJournal::append(const JobResult &result)
{
    MITHRIL_FAILPOINT("journal.append");
    const std::string line = encodeRecord(result);
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fflush(file_) != 0) {
        throw registry::SpecError(
            "sweep journal append failed on '" + path_ +
            "': " + std::strerror(errno));
    }
}

std::map<std::size_t, JobResult>
SweepJournal::load(const std::string &path, std::uint64_t fingerprint,
                   const std::vector<Job> &jobs)
{
    std::map<std::size_t, JobResult> restored;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (errno == ENOENT)
            return restored; // First run: nothing to resume.
        throw registry::SpecError("cannot read sweep journal '" +
                                  path +
                                  "': " + std::strerror(errno));
    }
    std::string content;
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, got);
    std::fclose(f);

    // Header: magic, fingerprint, job count — all must match this
    // exact expanded sweep or the journal belongs to a different run.
    const std::size_t eol = content.find('\n');
    if (eol == std::string::npos)
        throw registry::SpecError("sweep journal '" + path +
                                  "' has no header line");
    const std::string expect = headerLine(fingerprint, jobs.size());
    if (content.substr(0, eol + 1) != expect) {
        if (content.compare(0, std::strlen(kJournalMagic),
                            kJournalMagic) != 0)
            throw registry::SpecError(
                "'" + path + "' is not a sweep journal (bad magic)");
        throw registry::SpecError(
            "sweep journal '" + path +
            "' was written by a different sweep "
            "(fingerprint/job-count mismatch) — refusing to resume; "
            "delete it or point journal= elsewhere");
    }

    std::size_t pos = eol + 1;
    std::size_t lineNo = 1;
    while (pos < content.size()) {
        ++lineNo;
        std::size_t end = content.find('\n', pos);
        const bool torn = end == std::string::npos;
        if (torn)
            end = content.size();
        const std::string line = content.substr(pos, end - pos);
        pos = end + 1;

        // A record is valid only if its trailing crc= matches the
        // FNV of everything before it; a torn tail or flipped byte
        // fails here and ends the restorable prefix.
        const std::size_t crcAt = line.rfind("\tcrc=");
        bool ok = !torn && crcAt != std::string::npos &&
                  line.size() == crcAt + 5 + 16;
        if (ok) {
            std::uint64_t want = 0;
            ok = parseU64Hex(line.substr(crcAt + 5), want) &&
                 fnv1a(kFnvOffset, line.substr(0, crcAt)) == want;
        }
        JobResult result;
        if (ok) {
            const std::vector<std::string> fields =
                split(line.substr(0, crcAt), '\t');
            ok = fields.size() == 7 && fields[0] == "job";
            std::uint64_t index = 0, seed = 0;
            ok = ok && parseU64(fields[1], index) &&
                 parseU64(fields[2], seed) && index < jobs.size();
            if (ok) {
                try {
                    result.status = jobStatusFromName(fields[3]);
                } catch (const registry::SpecError &) {
                    ok = false;
                }
            }
            // The journaled label and seed must match the job at
            // that index — a second line of defense (beyond the
            // fingerprint) against resuming the wrong sweep.
            ok = ok &&
                 unescapeField(fields[4]) == jobs[index].label &&
                 seed == jobs[index].spec.seed &&
                 decodeMetrics(fields[6], result.metrics);
            if (ok) {
                result.job = jobs[index];
                result.error = unescapeField(fields[5]);
                result.restored = true;
                restored[static_cast<std::size_t>(index)] =
                    std::move(result);
                continue;
            }
        }
        warn("sweep journal '%s': %s at line %zu; "
                     "restoring the %zu intact record(s) before it",
                     path.c_str(),
                     torn ? "torn record (interrupted write)"
                          : "corrupt record",
                     lineNo, restored.size());
        break;
    }
    return restored;
}

} // namespace mithril::runner
