/**
 * @file
 * Crash-safe checkpoint journal for the sweep runner.
 *
 * A journal is an append-only text file next to the sweep's output
 * artifacts. The header line ties it to one exact expanded sweep via
 * a fingerprint of every job's label and canonical spec line; each
 * record line stores one completed JobResult — index, seed, status,
 * error, and the full metric set (doubles as %.17g so the restored
 * value is bit-identical) — terminated by a per-record FNV-1a
 * checksum:
 *
 *   mithril.sweep.journal.v1 fingerprint=<hex16> jobs=<N>
 *   job <TAB> index <TAB> seed <TAB> status <TAB> label <TAB>
 *       error <TAB> metrics <TAB> crc=<hex16>
 *
 * (one line per record; label/error/metric names are \\, \t, \n
 * escaped; records land in completion order, which is irrelevant —
 * they are keyed by job index.)
 *
 * Append discipline: a fresh journal publishes its header via the
 * same tmp+rename pattern the trace writer uses, then records are
 * appended and flushed one fwrite+fflush at a time, so a SIGKILL at
 * any instant leaves at worst one torn tail line. load() verifies
 * the fingerprint (a journal from a *different* sweep is a
 * SpecError, never silently mixed in), checks every record's
 * checksum, label, and seed against the expanded jobs, and stops at
 * the first damaged line — everything before it is restorable,
 * everything after is rerun.
 */

#ifndef MITHRIL_RUNNER_JOURNAL_HH
#define MITHRIL_RUNNER_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runner/runner.hh"

namespace mithril::runner
{

/** Version tag in the journal header line. */
inline constexpr const char *kJournalMagic =
    "mithril.sweep.journal.v1";

/**
 * Fingerprint tying a journal to one expanded sweep: FNV-1a over the
 * job count and every job's label + canonical spec describe() line
 * (which covers scheme/axes/tunables/seeds — anything that changes a
 * job's meaning changes the fingerprint).
 */
std::uint64_t sweepFingerprint(const std::vector<Job> &jobs);

/**
 * The append side. Constructing with resume=false publishes a fresh
 * header (tmp+rename) and truncates any previous journal; with
 * resume=true an existing compatible journal is appended to (load()
 * validated it first) and a missing one is created fresh. All I/O
 * errors throw registry::SpecError.
 */
class SweepJournal
{
  public:
    SweepJournal(const std::string &path, std::uint64_t fingerprint,
                 std::size_t job_count, bool resume);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Append one completed result (thread-safe; one flushed line
     *  per call). Skipped jobs are deliberately not journaled — they
     *  never ran, so a resume must run them. */
    void append(const JobResult &result);

    const std::string &path() const { return path_; }

    /**
     * Read back every intact record compatible with this exact
     * expanded sweep. Returns completed results keyed by job index;
     * an absent file yields an empty map. Throws registry::SpecError
     * on a fingerprint/job-count mismatch or an unreadable file; a
     * torn or corrupt record ends the scan (with a warn()) instead.
     */
    static std::map<std::size_t, JobResult>
    load(const std::string &path, std::uint64_t fingerprint,
         const std::vector<Job> &jobs);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
};

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_JOURNAL_HH
