#include "runner/progress.hh"

#include <cstdio>

namespace mithril::runner
{

ProgressReporter::ProgressReporter(std::size_t total, bool enabled)
    : total_(total), enabled_(enabled && total > 0),
      start_(Clock::now())
{
}

double
ProgressReporter::elapsedSeconds() const
{
    return std::chrono::duration<double>(Clock::now() - start_)
        .count();
}

void
ProgressReporter::jobDone(const std::string &label)
{
    std::size_t done;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        done = ++completed_;
    }
    if (!enabled_)
        return;

    const double elapsed = elapsedSeconds();
    const double per_job =
        elapsed / static_cast<double>(done);
    const double eta =
        per_job * static_cast<double>(total_ - done);
    std::fprintf(stderr,
                 "\r[%zu/%zu] %5.1f%% elapsed %6.1fs eta %6.1fs  %-40.40s",
                 done, total_, 100.0 * static_cast<double>(done) /
                                   static_cast<double>(total_),
                 elapsed, eta, label.c_str());
    if (done == total_)
        std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace mithril::runner
