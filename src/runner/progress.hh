/**
 * @file
 * Progress and ETA reporting for long sweeps. Writes to stderr so that
 * stdout stays byte-identical across thread counts and terminal
 * widths; the report line carries wall-clock estimates and is the only
 * nondeterministic output a sweep produces.
 */

#ifndef MITHRIL_RUNNER_PROGRESS_HH
#define MITHRIL_RUNNER_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace mithril::runner
{

/**
 * Thread-safe completion tracker. Each finished job updates the
 * "[done/total] pct elapsed eta last-label" line on stderr; quiet mode
 * (or a zero total) suppresses all output. A trailing newline is
 * emitted once the last job lands.
 */
class ProgressReporter
{
  public:
    explicit ProgressReporter(std::size_t total, bool enabled = true);

    /** Record one finished job and redraw the report line. */
    void jobDone(const std::string &label);

  private:
    using Clock = std::chrono::steady_clock;

    /** Seconds since construction. */
    double elapsedSeconds() const;

    std::size_t total_;
    bool enabled_;
    Clock::time_point start_;
    mutable std::mutex mutex_;
    std::size_t completed_ = 0;
};

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_PROGRESS_HH
