#include "runner/runner.hh"

#include <chrono>

#include "runner/progress.hh"
#include "runner/thread_pool.hh"

namespace mithril::runner
{

const JobResult *
SweepResult::find(trackers::SchemeKind scheme, std::uint32_t flip_th,
                  sim::WorkloadKind workload, sim::AttackKind attack,
                  std::uint32_t rfm_th) const
{
    for (const JobResult &r : results) {
        if (r.job.isBaseline)
            continue;
        if (r.job.scheme.kind != scheme ||
            r.job.scheme.flipTh != flip_th)
            continue;
        if (rfm_th != ~0u && r.job.scheme.rfmTh != rfm_th)
            continue;
        if (r.job.run.workload != workload ||
            r.job.run.attack != attack)
            continue;
        return &r;
    }
    return nullptr;
}

const JobResult *
SweepResult::baseline(sim::WorkloadKind workload,
                      sim::AttackKind attack) const
{
    for (const JobResult &r : results) {
        if (r.job.isBaseline && r.job.run.workload == workload &&
            r.job.run.attack == attack)
            return &r;
    }
    return nullptr;
}

SweepRunner::SweepRunner(RunnerOptions options) : options_(options) {}

SweepResult
SweepRunner::run(const SweepSpec &spec) const
{
    return run(spec, [](const Job &job) {
        return sim::runSystem(job.run, job.scheme);
    });
}

SweepResult
SweepRunner::run(const SweepSpec &spec, JobFn fn) const
{
    SweepResult out;
    out.spec = spec;

    std::vector<Job> jobs = spec.expand();
    out.results.resize(jobs.size());

    ProgressReporter progress(jobs.size(), options_.progress);
    ThreadPool pool(options_.jobs);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        JobResult &slot = out.results[i];
        slot.job = jobs[i];
        slot.metrics = fn(slot.job);
        slot.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        progress.jobDone(slot.job.label);
    });
    return out;
}

} // namespace mithril::runner
