#include "runner/runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "registry/registry.hh"
#include "runner/journal.hh"
#include "runner/progress.hh"
#include "runner/thread_pool.hh"
#include "trace/pipeline.hh"

namespace mithril::runner
{

// ----------------------------------------------------- JobStatus

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok:
        return "ok";
    case JobStatus::Failed:
        return "failed";
    case JobStatus::Timeout:
        return "timeout";
    case JobStatus::Skipped:
        return "skipped";
    }
    return "?";
}

JobStatus
jobStatusFromName(const std::string &name)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Timeout, JobStatus::Skipped}) {
        if (name == jobStatusName(s))
            return s;
    }
    throw registry::SpecError("unknown job status '" + name +
                              "' (want ok|failed|timeout|skipped)");
}

// ----------------------------------------------------- SweepResult

const JobResult *
SweepResult::find(const std::string &scheme, std::uint32_t flip_th,
                  const std::string &workload,
                  const std::string &attack,
                  std::uint32_t rfm_th) const
{
    for (const JobResult &r : results) {
        if (r.job.isBaseline)
            continue;
        if (r.job.spec.scheme != scheme ||
            r.job.spec.flipTh != flip_th)
            continue;
        if (rfm_th != ~0u && r.job.spec.rfmTh != rfm_th)
            continue;
        if (r.job.spec.workload != workload ||
            r.job.spec.attack != attack)
            continue;
        return &r;
    }
    return nullptr;
}

const JobResult *
SweepResult::baseline(const std::string &workload,
                      const std::string &attack) const
{
    for (const JobResult &r : results) {
        if (r.job.isBaseline && r.job.spec.workload == workload &&
            r.job.spec.attack == attack)
            return &r;
    }
    return nullptr;
}

std::size_t
SweepResult::failedCount() const
{
    std::size_t count = 0;
    for (const JobResult &r : results)
        count += r.failed() ? 1 : 0;
    return count;
}

std::size_t
SweepResult::countByStatus(JobStatus status) const
{
    std::size_t count = 0;
    for (const JobResult &r : results)
        count += r.status == status ? 1 : 0;
    return count;
}

std::size_t
SweepResult::restoredCount() const
{
    std::size_t count = 0;
    for (const JobResult &r : results)
        count += r.restored ? 1 : 0;
    return count;
}

std::string
SweepResult::statusSummary() const
{
    char buf[64];
    std::string out;
    std::snprintf(buf, sizeof(buf), "%zu ok",
                  countByStatus(JobStatus::Ok));
    out += buf;
    for (JobStatus s : {JobStatus::Failed, JobStatus::Timeout,
                        JobStatus::Skipped}) {
        const std::size_t n = countByStatus(s);
        if (n == 0)
            continue;
        std::snprintf(buf, sizeof(buf), ", %zu %s", n,
                      jobStatusName(s));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), " (%zu job%s", results.size(),
                  results.size() == 1 ? "" : "s");
    out += buf;
    const std::size_t resumed = restoredCount();
    if (resumed > 0) {
        std::snprintf(buf, sizeof(buf), ", %zu resumed", resumed);
        out += buf;
    }
    out += ')';
    return out;
}

// ----------------------------------------------------- SweepRunner

namespace
{

/** One attempt's outcome. */
struct AttemptResult
{
    JobStatus status = JobStatus::Ok;
    std::string error;
    sim::RunMetrics metrics;
};

/** Watchdog handshake around an AttemptResult produced on a helper
 *  thread. Everything the attempt needs is copied in, so an
 *  abandoned (timed-out) attempt can finish late against its own
 *  state and be discarded harmlessly. */
struct AttemptState
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    /** Set by the watchdog when it gives up; the worker then owns
     *  the state solely through its shared_ptr and its late result
     *  is dropped on the floor. */
    bool abandoned = false;
    AttemptResult result;
};

/** Run fn(job) into result, converting ANY exception into Failed —
 *  a rejected configuration (SpecError), a std::exception from deep
 *  inside a scheme, or a foreign throw all cost one grid cell, never
 *  the sweep. */
void
executeAttempt(AttemptResult &result, const Job &job,
               SweepRunner::JobFn fn)
{
    try {
        result.metrics = fn(job);
        result.status = JobStatus::Ok;
    } catch (const registry::SpecError &err) {
        result.status = JobStatus::Failed;
        result.error = err.what();
    } catch (const std::exception &err) {
        result.status = JobStatus::Failed;
        result.error = std::string("unhandled exception: ") +
                       err.what();
    } catch (...) {
        result.status = JobStatus::Failed;
        result.error = "unhandled non-standard exception";
    }
}

/**
 * One attempt under the watchdog: the body runs on a helper thread
 * while this (pool) thread waits with a deadline. On timeout the
 * helper is abandoned — detached, its eventual result discarded —
 * and the attempt reports Timeout. The pool thread itself never
 * blocks past the budget, so one hung job cannot wedge the sweep.
 */
void
attemptWithWatchdog(AttemptResult &result, const Job &job,
                    SweepRunner::JobFn fn, double timeout_sec)
{
    auto state = std::make_shared<AttemptState>();
    std::thread worker([state, job, fn]() {
        AttemptResult scratch;
        executeAttempt(scratch, job, fn);
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->abandoned)
            return; // Too late; the watchdog already reported.
        state->result = std::move(scratch);
        state->done = true;
        state->cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(state->mutex);
    const bool finished = state->cv.wait_for(
        lock, std::chrono::duration<double>(timeout_sec),
        [&] { return state->done; });
    if (finished) {
        lock.unlock();
        worker.join();
        result = std::move(state->result);
        return;
    }
    state->abandoned = true;
    lock.unlock();
    worker.detach();
    result.status = JobStatus::Timeout;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "job watchdog: exceeded %gs budget", timeout_sec);
    result.error = buf;
}

} // namespace

SweepRunner::SweepRunner(RunnerOptions options) : options_(options) {}

SweepResult
SweepRunner::run(const SweepSpec &spec) const
{
    return run(spec, [](const Job &job) {
        return sim::runExperiment(job.spec);
    });
}

SweepResult
SweepRunner::run(const SweepSpec &spec, JobFn fn) const
{
    SweepResult out;
    out.spec = spec;

    if (options_.resume && options_.journal.empty())
        throw registry::SpecError(
            "resume=1 requires journal=<path> — there is nothing to "
            "resume from without a checkpoint journal");

    // Arm requested failpoints before anything else can hit a site;
    // an unknown site name is a config error and fails the sweep up
    // front with the full site list.
    const bool armedHere = !spec.failpoints.empty();
    if (armedHere)
        failpoint::armFromSpec(spec.failpoints);

    // Compose the replay corpus exactly once, before any job opens
    // it — jobs never carry the pipeline, so N grid points replay
    // one materialization instead of racing N writers on one path.
    if (!spec.tracePipeline.empty()) {
        try {
            trace::materializePipeline(
                spec.tracePipeline,
                spec.tunables.getString("trace", ""), spec.seed);
        } catch (const registry::SpecError &err) {
            // A broken pipeline fails every act-trace job, so fail
            // the sweep up front with the real message.
            fatal("%s", err.what());
        }
    }

    std::vector<Job> jobs = spec.expand();
    out.results.resize(jobs.size());

    // Restore journaled results before the pool starts: those slots
    // are final, their jobs never rerun, and the sinks will re-emit
    // them byte-identically to the uninterrupted run.
    std::unique_ptr<SweepJournal> journal;
    if (!options_.journal.empty()) {
        const std::uint64_t fp = sweepFingerprint(jobs);
        if (options_.resume) {
            auto restored =
                SweepJournal::load(options_.journal, fp, jobs);
            for (auto &[index, result] : restored)
                out.results[index] = std::move(result);
        }
        journal = std::make_unique<SweepJournal>(
            options_.journal, fp, jobs.size(), options_.resume);
    }

    ProgressReporter progress(jobs.size(), options_.progress);
    std::atomic<bool> abort{false};
    std::atomic<bool> journalBroken{false};
    ThreadPool pool(options_.jobs);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        JobResult &slot = out.results[i];
        if (slot.restored) {
            // Already final from the journal; keep strict semantics
            // coherent — a restored failure still fail-fasts.
            if (options_.strict && slot.failed())
                abort.store(true, std::memory_order_relaxed);
            progress.jobDone(slot.job.label);
            return;
        }
        slot.job = jobs[i];
        if (options_.strict &&
            abort.load(std::memory_order_relaxed)) {
            slot.status = JobStatus::Skipped;
            slot.error = "skipped: an earlier job failed and "
                         "strict (fail-fast) mode is on";
            progress.jobDone(slot.job.label);
            return;
        }

        const auto t0 = std::chrono::steady_clock::now();
        AttemptResult attempt;
        unsigned attempts = 0;
        for (;;) {
            ++attempts;
            attempt = AttemptResult{};
            if (options_.jobTimeout > 0.0) {
                attemptWithWatchdog(attempt, slot.job, fn,
                                    options_.jobTimeout);
            } else {
                // No watchdog: exactly the historical inline path.
                executeAttempt(attempt, slot.job, fn);
            }
            if (attempt.status == JobStatus::Ok ||
                attempts > options_.retries) {
                break;
            }
            // Exponential backoff, then rerun with the identical
            // spec and seed — a success on any attempt is
            // byte-identical to an untroubled first run.
            const double ms = options_.retryBackoffMs *
                              static_cast<double>(1u
                                                  << (attempts - 1));
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
        }
        slot.status = attempt.status;
        slot.error = std::move(attempt.error);
        slot.metrics = std::move(attempt.metrics);
        slot.attempts = attempts;
        slot.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        if (options_.strict && slot.failed())
            abort.store(true, std::memory_order_relaxed);

        // Checkpoint the completed result. A journal I/O failure
        // must not cost finished work: warn, stop journaling, keep
        // sweeping (the run simply loses resumability).
        if (journal && !journalBroken.load()) {
            try {
                journal->append(slot);
            } catch (const std::exception &err) {
                if (!journalBroken.exchange(true))
                    warn("checkpoint journal disabled: %s",
                         err.what());
            }
        }
        progress.jobDone(slot.job.label);
    });

    if (armedHere)
        failpoint::disarmAll();
    return out;
}

} // namespace mithril::runner
