#include "runner/runner.hh"

#include <chrono>

#include "common/logging.hh"
#include "registry/registry.hh"
#include "runner/progress.hh"
#include "runner/thread_pool.hh"
#include "trace/pipeline.hh"

namespace mithril::runner
{

const JobResult *
SweepResult::find(const std::string &scheme, std::uint32_t flip_th,
                  const std::string &workload,
                  const std::string &attack,
                  std::uint32_t rfm_th) const
{
    for (const JobResult &r : results) {
        if (r.job.isBaseline)
            continue;
        if (r.job.spec.scheme != scheme ||
            r.job.spec.flipTh != flip_th)
            continue;
        if (rfm_th != ~0u && r.job.spec.rfmTh != rfm_th)
            continue;
        if (r.job.spec.workload != workload ||
            r.job.spec.attack != attack)
            continue;
        return &r;
    }
    return nullptr;
}

const JobResult *
SweepResult::baseline(const std::string &workload,
                      const std::string &attack) const
{
    for (const JobResult &r : results) {
        if (r.job.isBaseline && r.job.spec.workload == workload &&
            r.job.spec.attack == attack)
            return &r;
    }
    return nullptr;
}

std::size_t
SweepResult::failedCount() const
{
    std::size_t count = 0;
    for (const JobResult &r : results)
        count += r.failed() ? 1 : 0;
    return count;
}

SweepRunner::SweepRunner(RunnerOptions options) : options_(options) {}

SweepResult
SweepRunner::run(const SweepSpec &spec) const
{
    return run(spec, [](const Job &job) {
        return sim::runExperiment(job.spec);
    });
}

SweepResult
SweepRunner::run(const SweepSpec &spec, JobFn fn) const
{
    SweepResult out;
    out.spec = spec;

    // Compose the replay corpus exactly once, before any job opens
    // it — jobs never carry the pipeline, so N grid points replay
    // one materialization instead of racing N writers on one path.
    if (!spec.tracePipeline.empty()) {
        try {
            trace::materializePipeline(
                spec.tracePipeline,
                spec.tunables.getString("trace", ""), spec.seed);
        } catch (const registry::SpecError &err) {
            // A broken pipeline fails every act-trace job, so fail
            // the sweep up front with the real message.
            fatal("%s", err.what());
        }
    }

    std::vector<Job> jobs = spec.expand();
    out.results.resize(jobs.size());

    ProgressReporter progress(jobs.size(), options_.progress);
    ThreadPool pool(options_.jobs);
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        JobResult &slot = out.results[i];
        slot.job = jobs[i];
        try {
            slot.metrics = fn(slot.job);
        } catch (const registry::SpecError &err) {
            // A rejected configuration fails its own grid cell only;
            // the rest of the sweep keeps running.
            slot.error = err.what();
        }
        slot.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        progress.jobDone(slot.job.label);
    });
    return out;
}

} // namespace mithril::runner
