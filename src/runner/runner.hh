/**
 * @file
 * The sweep executor: expands a SweepSpec into jobs, runs them on the
 * work-stealing pool, and returns the results in expansion order. The
 * result container is deterministic by construction — each job writes
 * only its own slot, so `--jobs 1` and `--jobs N` produce identical
 * contents for a fixed seed.
 */

#ifndef MITHRIL_RUNNER_RUNNER_HH
#define MITHRIL_RUNNER_RUNNER_HH

#include <vector>

#include "runner/sweep_spec.hh"
#include "sim/experiment.hh"

namespace mithril::runner
{

/** How one job ended. */
enum class JobStatus
{
    /** Ran to completion; metrics are valid. */
    Ok,
    /** Threw — a rejected configuration (registry::SpecError) or any
     *  other exception; the sweep keeps running and the sinks
     *  surface the message per job. */
    Failed,
    /** Exceeded the job-timeout= watchdog budget; the runaway body
     *  was abandoned and its late result (if any) discarded. */
    Timeout,
    /** Never ran: an earlier job failed under strict (fail-fast)
     *  mode. */
    Skipped,
};

/** Lowercase status name ("ok", "failed", "timeout", "skipped"). */
const char *jobStatusName(JobStatus status);

/** Parse a status name back; throws registry::SpecError. */
JobStatus jobStatusFromName(const std::string &name);

/** One job's outcome. */
struct JobResult
{
    Job job;
    sim::RunMetrics metrics;
    JobStatus status = JobStatus::Ok;
    /** Non-empty exactly when status != Ok: the exception message,
     *  the watchdog verdict, or the strict-mode skip note. */
    std::string error;
    /** Wall-clock runtime; nondeterministic, never written by sinks. */
    double wallSeconds = 0.0;
    /** Attempts consumed (1 + retries actually taken);
     *  nondeterministic under timeouts, never written by sinks. */
    unsigned attempts = 0;
    /** True when the result was restored from a resume journal
     *  instead of running; never written by sinks. */
    bool restored = false;

    bool
    failed() const
    {
        return status != JobStatus::Ok;
    }
};

/** All results of one sweep, indexed in job-expansion order. */
struct SweepResult
{
    SweepSpec spec;
    std::vector<JobResult> results;

    /**
     * Look up the first non-baseline result matching the coordinates
     * (registry names; rfm_th == ~0u matches any RFM threshold).
     * Null when absent.
     */
    const JobResult *find(const std::string &scheme,
                          std::uint32_t flip_th,
                          const std::string &workload,
                          const std::string &attack = "none",
                          std::uint32_t rfm_th = ~0u) const;

    /** The unprotected baseline run for a case; null when the spec did
     *  not request baselines. */
    const JobResult *baseline(const std::string &workload,
                              const std::string &attack =
                                  "none") const;

    /** Number of jobs that did not end Ok (failed, timed out, or
     *  were skipped by strict mode). */
    std::size_t failedCount() const;

    /** Number of jobs with the given status. */
    std::size_t countByStatus(JobStatus status) const;

    /** Number of results restored from a resume journal. */
    std::size_t restoredCount() const;

    /** One-line per-status accounting, e.g.
     *  "12 ok, 1 failed, 1 timeout, 3 skipped (17 jobs, 4 resumed)".
     *  Statuses with zero jobs are elided (except ok). */
    std::string statusSummary() const;
};

/** Execution knobs, orthogonal to the sweep grid itself. */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Emit the stderr progress/ETA line. */
    bool progress = true;

    /** Per-job watchdog budget in seconds; 0 = no watchdog. A job
     *  that exceeds it is reported TIMEOUT (the runaway body is
     *  abandoned, the pool survives). With the watchdog armed each
     *  job body runs on its own helper thread, so only enable it
     *  when jobs can genuinely hang. */
    double jobTimeout = 0.0;
    /** Extra attempts after a failed or timed-out job, with
     *  exponential backoff between attempts. The retried job reruns
     *  with an identical spec and seed, so a success on any attempt
     *  yields the byte-identical result an untroubled run would
     *  have produced. */
    unsigned retries = 0;
    /** Base backoff before the first retry, doubling per attempt
     *  (10ms, 20ms, 40ms, ...). Exposed for tests. */
    double retryBackoffMs = 10.0;
    /** Fail fast: after the first non-Ok job, remaining jobs are
     *  SKIPPED instead of started. */
    bool strict = false;

    /** Append every completed JobResult to this crash-safe journal
     *  file ("" = no journal). */
    std::string journal;
    /** Skip jobs already present in the journal, restoring their
     *  results — the sinks re-emit byte-identical artifacts to an
     *  uninterrupted run. Requires journal=. */
    bool resume = false;
};

/**
 * Runs sweeps. The default job body is sim::runExperiment; tests inject a
 * stub through the second run() overload.
 */
class SweepRunner
{
  public:
    using JobFn = sim::RunMetrics (*)(const Job &);

    explicit SweepRunner(RunnerOptions options = {});

    /** Expand and execute the sweep with sim::runExperiment. */
    SweepResult run(const SweepSpec &spec) const;

    /** Expand and execute with a custom job body. */
    SweepResult run(const SweepSpec &spec, JobFn fn) const;

    const RunnerOptions &options() const { return options_; }

  private:
    RunnerOptions options_;
};

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_RUNNER_HH
