/**
 * @file
 * The sweep executor: expands a SweepSpec into jobs, runs them on the
 * work-stealing pool, and returns the results in expansion order. The
 * result container is deterministic by construction — each job writes
 * only its own slot, so `--jobs 1` and `--jobs N` produce identical
 * contents for a fixed seed.
 */

#ifndef MITHRIL_RUNNER_RUNNER_HH
#define MITHRIL_RUNNER_RUNNER_HH

#include <vector>

#include "runner/sweep_spec.hh"
#include "sim/experiment.hh"

namespace mithril::runner
{

/** One job's outcome. */
struct JobResult
{
    Job job;
    sim::RunMetrics metrics;
    /** Non-empty when the job's configuration was rejected
     *  (registry::SpecError): the sweep keeps running and the sinks
     *  surface the message per job. */
    std::string error;
    /** Wall-clock runtime; nondeterministic, never written by sinks. */
    double wallSeconds = 0.0;

    bool
    failed() const
    {
        return !error.empty();
    }
};

/** All results of one sweep, indexed in job-expansion order. */
struct SweepResult
{
    SweepSpec spec;
    std::vector<JobResult> results;

    /**
     * Look up the first non-baseline result matching the coordinates
     * (registry names; rfm_th == ~0u matches any RFM threshold).
     * Null when absent.
     */
    const JobResult *find(const std::string &scheme,
                          std::uint32_t flip_th,
                          const std::string &workload,
                          const std::string &attack = "none",
                          std::uint32_t rfm_th = ~0u) const;

    /** The unprotected baseline run for a case; null when the spec did
     *  not request baselines. */
    const JobResult *baseline(const std::string &workload,
                              const std::string &attack =
                                  "none") const;

    /** Number of jobs whose configuration was rejected. */
    std::size_t failedCount() const;
};

/** Execution knobs, orthogonal to the sweep grid itself. */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Emit the stderr progress/ETA line. */
    bool progress = true;
};

/**
 * Runs sweeps. The default job body is sim::runExperiment; tests inject a
 * stub through the second run() overload.
 */
class SweepRunner
{
  public:
    using JobFn = sim::RunMetrics (*)(const Job &);

    explicit SweepRunner(RunnerOptions options = {});

    /** Expand and execute the sweep with sim::runExperiment. */
    SweepResult run(const SweepSpec &spec) const;

    /** Expand and execute with a custom job body. */
    SweepResult run(const SweepSpec &spec, JobFn fn) const;

    const RunnerOptions &options() const { return options_; }

  private:
    RunnerOptions options_;
};

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_RUNNER_HH
