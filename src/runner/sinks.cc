#include "runner/sinks.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "common/table_printer.hh"
#include "registry/scheme_registry.hh"

namespace mithril::runner
{

namespace
{

/** Resilience injection site: sink output file write failure. */
const failpoint::SiteRegistrar kFpSinkFlush{
    "sink.flush",
    "fail a result-sink file write (ResultSink::writeFile) — "
    "exercises artifact-emission error paths after a sweep "
    "completed"};

/** "timeout" -> "TIMEOUT" for the table's per-job trailer lines. */
std::string
upperStatus(JobStatus status)
{
    std::string name = jobStatusName(status);
    for (char &c : name)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return name;
}

/** Shortest round-trippable-enough formatting, deterministic for a
 *  given double value. */
std::string
formatDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return buf;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n";  break;
          case '\t': out += "\\t";  break;
          default:   out += c;      break;
        }
    }
    return out;
}

std::string
seedPolicyName(SeedPolicy policy)
{
    return policy == SeedPolicy::Shared ? "shared" : "per-job";
}

/** The full metric set, in one place so every sink agrees. */
struct MetricColumn
{
    const char *name;
    double (*get)(const sim::RunMetrics &);
    bool integral;
};

const MetricColumn kMetricColumns[] = {
    {"aggIpc", [](const sim::RunMetrics &m) { return m.aggIpc; },
     false},
    {"energyPj", [](const sim::RunMetrics &m) { return m.energyPj; },
     false},
    {"simTicks",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.simTicks);
     },
     true},
    {"acts",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.acts);
     },
     true},
    {"reads",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.reads);
     },
     true},
    {"writes",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.writes);
     },
     true},
    {"rfmIssued",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.rfmIssued);
     },
     true},
    {"rfmSkippedMrr",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.rfmSkippedMrr);
     },
     true},
    {"arrExecuted",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.arrExecuted);
     },
     true},
    {"preventiveRefreshes",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.preventiveRefreshes);
     },
     true},
    {"throttleStalls",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.throttleStalls);
     },
     true},
    {"maxDisturbance",
     [](const sim::RunMetrics &m) { return m.maxDisturbance; },
     false},
    {"bitFlips",
     [](const sim::RunMetrics &m) {
         return static_cast<double>(m.bitFlips);
     },
     true},
    {"avgReadLatencyNs",
     [](const sim::RunMetrics &m) { return m.avgReadLatencyNs; },
     false},
    {"p95ReadLatencyNs",
     [](const sim::RunMetrics &m) { return m.p95ReadLatencyNs; },
     false},
    {"trackerBytesPerBank",
     [](const sim::RunMetrics &m) { return m.trackerBytesPerBank; },
     false},
};

std::string
formatMetric(const MetricColumn &col, const sim::RunMetrics &m)
{
    const double value = col.get(m);
    if (col.integral) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    return formatDouble(value);
}

} // namespace

std::string
ResultSink::render(const SweepResult &result) const
{
    std::ostringstream os;
    write(result, os);
    return os.str();
}

void
ResultSink::writeFile(const SweepResult &result,
                      const std::string &path) const
{
    MITHRIL_FAILPOINT("sink.flush");
    std::ofstream os(path);
    if (!os)
        fatal("cannot open sink output file: %s", path.c_str());
    write(result, os);
    if (!os)
        fatal("write failed on sink output file: %s", path.c_str());
}

void
TableSink::write(const SweepResult &result, std::ostream &os) const
{
    TablePrinter table({"job", "scheme", "flipTh", "rfmTh", "workload",
                        "attack", "seed", "IPC", "energy(uJ)", "ACTs",
                        "RFMs", "prevRef", "flips", "KB/bank"});
    for (const JobResult &r : result.results) {
        auto &row =
            table.beginRow()
                .intCell(static_cast<long long>(r.job.index))
                .cell(registry::schemeDisplay(r.job.spec.scheme))
                .intCell(r.job.isBaseline ? 0 : r.job.spec.flipTh)
                .intCell(r.job.isBaseline ? 0 : r.job.spec.rfmTh)
                .cell(r.job.spec.workload)
                .cell(r.job.spec.attack)
                .intCell(static_cast<long long>(r.job.spec.seed));
        if (r.failed()) {
            for (int i = 0; i < 7; ++i)
                row.cell("-");
            continue;
        }
        row.num(r.metrics.aggIpc, 4)
            .num(r.metrics.energyPj / 1e6, 3)
            .intCell(static_cast<long long>(r.metrics.acts))
            .intCell(static_cast<long long>(r.metrics.rfmIssued))
            .intCell(
                static_cast<long long>(r.metrics.preventiveRefreshes))
            .intCell(static_cast<long long>(r.metrics.bitFlips))
            .num(r.metrics.trackerBytesPerBank / 1024.0, 2);
    }
    table.print(os);
    for (const JobResult &r : result.results) {
        if (r.failed())
            os << "job " << r.job.index << " (" << r.job.label
               << ") " << upperStatus(r.status) << ": " << r.error
               << "\n";
    }
}

void
JsonSink::write(const SweepResult &result, std::ostream &os) const
{
    const SweepSpec &spec = result.spec;
    os << "{\n";
    os << "  \"schema\": \"" << kSweepSchemaVersion << "\",\n";
    os << "  \"spec\": {\n";
    os << "    \"cores\": " << spec.cores << ",\n";
    os << "    \"instrPerCore\": " << spec.instrPerCore << ",\n";
    os << "    \"seed\": " << spec.seed << ",\n";
    os << "    \"seedPolicy\": \"" << seedPolicyName(spec.seedPolicy)
       << "\",\n";
    os << "    \"trackerWarmupActs\": " << spec.trackerWarmupActs
       << ",\n";
    os << "    \"blastRadius\": " << spec.blastRadius << ",\n";
    // channels is result-affecting geometry, so it belongs in the
    // provenance block; mc-threads is deliberately absent — it is an
    // execution knob with byte-identical results, and keeping it out
    // lets CI diff sweeps across thread counts verbatim.
    os << "    \"channels\": " << spec.channels << ",\n";
    os << "    \"includeBaseline\": "
       << (spec.includeBaseline ? "true" : "false") << "\n";
    os << "  },\n";
    os << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const JobResult &r = result.results[i];
        os << "    {\n";
        os << "      \"index\": " << r.job.index << ",\n";
        os << "      \"label\": \"" << jsonEscape(r.job.label)
           << "\",\n";
        os << "      \"baseline\": "
           << (r.job.isBaseline ? "true" : "false") << ",\n";
        os << "      \"scheme\": \""
           << registry::schemeDisplay(r.job.spec.scheme) << "\",\n";
        os << "      \"flipTh\": " << r.job.spec.flipTh << ",\n";
        os << "      \"rfmTh\": " << r.job.spec.rfmTh << ",\n";
        os << "      \"adTh\": " << r.job.spec.adTh << ",\n";
        os << "      \"blastRadius\": " << r.job.spec.blastRadius
           << ",\n";
        os << "      \"workload\": \"" << r.job.spec.workload
           << "\",\n";
        os << "      \"attack\": \"" << r.job.spec.attack << "\",\n";
        os << "      \"source\": \"" << r.job.spec.source << "\",\n";
        os << "      \"shards\": " << r.job.spec.shards << ",\n";
        os << "      \"actBudget\": " << r.job.spec.engineActs
           << ",\n";
        os << "      \"cores\": " << r.job.spec.cores << ",\n";
        os << "      \"instrPerCore\": " << r.job.spec.instrPerCore
           << ",\n";
        os << "      \"seed\": " << r.job.spec.seed << ",\n";
        if (r.failed()) {
            // Non-Ok jobs carry their status + message; Ok jobs stay
            // exactly the historical shape so clean-sweep artifacts
            // (and the sweep_v3 golden) are byte-identical.
            os << "      \"status\": \""
               << jobStatusName(r.status) << "\",\n";
            os << "      \"error\": \"" << jsonEscape(r.error)
               << "\"\n";
        } else {
            os << "      \"metrics\": {";
            bool first = true;
            for (const MetricColumn &col : kMetricColumns) {
                os << (first ? "\n" : ",\n");
                os << "        \"" << col.name
                   << "\": " << formatMetric(col, r.metrics);
                first = false;
            }
            os << "\n      }";
            // Flattened telemetry sheet, only for jobs that collected
            // one (std::map order — deterministic).
            if (!r.metrics.telemetry.empty()) {
                os << ",\n      \"telemetry\": {";
                first = true;
                for (const auto &[name, value] :
                     r.metrics.telemetry) {
                    os << (first ? "\n" : ",\n");
                    os << "        \"" << jsonEscape(name)
                       << "\": " << formatDouble(value);
                    first = false;
                }
                os << "\n      }";
            }
            os << "\n";
        }
        os << "    }" << (i + 1 < result.results.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

void
CsvSink::write(const SweepResult &result, std::ostream &os) const
{
    os << "index,label,baseline,scheme,flipTh,rfmTh,workload,attack,"
          "source,shards,actBudget,cores,instrPerCore,seed";
    for (const MetricColumn &col : kMetricColumns)
        os << "," << col.name;
    os << ",telemetry,error\n";
    for (const JobResult &r : result.results) {
        os << r.job.index << "," << r.job.label << ","
           << (r.job.isBaseline ? 1 : 0) << ","
           << registry::schemeDisplay(r.job.spec.scheme) << ","
           << r.job.spec.flipTh << "," << r.job.spec.rfmTh << ","
           << r.job.spec.workload << "," << r.job.spec.attack << ","
           << r.job.spec.source << "," << r.job.spec.shards << ","
           << r.job.spec.engineActs << "," << r.job.spec.cores << ","
           << r.job.spec.instrPerCore << "," << r.job.spec.seed;
        // Failed jobs get blank metric cells, not fabricated zeros —
        // a consumer aggregating the columns must not average them.
        for (const MetricColumn &col : kMetricColumns) {
            os << ",";
            if (!r.failed())
                os << formatMetric(col, r.metrics);
        }
        // Telemetry packs into one quoted "name=value;..." cell so
        // the column set stays fixed across jobs and sweeps.
        os << ",\"";
        if (!r.failed()) {
            bool first_stat = true;
            for (const auto &[name, value] : r.metrics.telemetry) {
                if (!first_stat)
                    os << ";";
                os << name << "=" << formatDouble(value);
                first_stat = false;
            }
        }
        os << "\"";
        // Quote the error (SpecError messages contain commas),
        // doubling embedded quotes per RFC 4180.
        os << ",\"";
        for (char c : r.error) {
            if (c == '"')
                os << '"';
            os << c;
        }
        os << "\"\n";
    }
}

} // namespace mithril::runner
