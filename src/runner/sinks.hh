/**
 * @file
 * Result sinks: pluggable renderers that turn a SweepResult into an
 * artifact. TableSink prints the aligned ASCII table humans read;
 * JsonSink and CsvSink write machine-readable files for trajectory
 * tracking (bench/BENCH_*.json style) and spreadsheet import. All
 * sinks iterate results in job-expansion order and never write
 * wall-clock fields, so their output is byte-identical for a fixed
 * seed at any thread count.
 */

#ifndef MITHRIL_RUNNER_SINKS_HH
#define MITHRIL_RUNNER_SINKS_HH

#include <iosfwd>
#include <string>

#include "runner/runner.hh"

namespace mithril::runner
{

/** Version tag embedded in every JsonSink artifact. v2 added the
 *  per-job source/shards/acts fields (engine-only sweeps); v3 the
 *  per-job "telemetry" map (flattened MetricSheet, present only when
 *  the job collected telemetry). */
inline constexpr const char *kSweepSchemaVersion = "mithril.sweep.v3";

/** Renders one sweep's results into some output format. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Render the result set to a stream. */
    virtual void write(const SweepResult &result,
                       std::ostream &os) const = 0;

    /** Render to a string (convenience over write()). */
    std::string render(const SweepResult &result) const;

    /** Render to a file; fatal on I/O error. */
    void writeFile(const SweepResult &result,
                   const std::string &path) const;
};

/** Aligned ASCII table over common/table_printer. */
class TableSink : public ResultSink
{
  public:
    void write(const SweepResult &result,
               std::ostream &os) const override;
};

/** JSON artifact: {"schema", "spec", "jobs": [{...,"metrics"}]}. */
class JsonSink : public ResultSink
{
  public:
    void write(const SweepResult &result,
               std::ostream &os) const override;
};

/** Flat CSV, one row per job, header row first. */
class CsvSink : public ResultSink
{
  public:
    void write(const SweepResult &result,
               std::ostream &os) const override;
};

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_SINKS_HH
