#include "runner/sweep_spec.hh"

#include <algorithm>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "registry/attack_registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "registry/workload_registry.hh"

namespace mithril::runner
{

namespace
{

std::vector<std::uint32_t>
narrowUintList(const ParamSet &params, const std::string &key)
{
    std::vector<std::uint32_t> out;
    for (std::uint64_t v : params.getUintList(key)) {
        if (v > 0xffffffffull)
            fatal("parameter %s list entry %llu is out of range",
                  key.c_str(), static_cast<unsigned long long>(v));
        out.push_back(static_cast<std::uint32_t>(v));
    }
    return out;
}

template <typename T>
const std::vector<T> &
orDefault(const std::vector<T> &values, const std::vector<T> &fallback)
{
    return values.empty() ? fallback : values;
}

/** Resolve an axis name through a registry, fatal with the full
 *  candidate list on unknown names; returns the canonical name. */
template <typename Reg>
std::string
resolveName(const Reg &registry, const std::string &name)
{
    try {
        return registry.at(name).name;
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    }
    return {};
}

/** The (desc, owner) of this key among the selected registry
 *  entries, or nullptr when none declares it. */
template <typename Reg>
const registry::ParamDesc *
declaredBy(const Reg &registry, const std::vector<std::string> &names,
           const std::string &key, std::string *owner)
{
    for (const std::string &name : names) {
        const auto *entry = registry.find(name);
        if (!entry)
            continue;
        for (const auto &desc : entry->params) {
            if (desc.key == key) {
                if (owner)
                    *owner = std::string(Reg::kCategory) + " '" +
                             name + "'";
                return &desc;
            }
        }
    }
    return nullptr;
}

/** True when a selected registry entry declares this key. */
template <typename Reg>
bool
entryDeclares(const Reg &registry,
              const std::vector<std::string> &names,
              const std::string &key)
{
    return declaredBy(registry, names, key, nullptr) != nullptr;
}

} // namespace

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t index)
{
    return deriveSeed(seed, index);
}

std::vector<SweepCase>
SweepSpec::cartesianCases(const std::vector<std::string> &workloads,
                          const std::vector<std::string> &attacks)
{
    std::vector<SweepCase> cases;
    cases.reserve(workloads.size() *
                  std::max<std::size_t>(1, attacks.size()));
    for (const std::string &w : workloads) {
        if (attacks.empty()) {
            cases.push_back({w, "none"});
            continue;
        }
        for (const std::string &a : attacks)
            cases.push_back({w, a});
    }
    return cases;
}

SweepSpec
SweepSpec::fromParams(const ParamSet &params,
                      const std::vector<std::string> &extra_keys)
{
    SweepSpec spec;
    for (const std::string &name : params.getStringList("schemes"))
        spec.schemes.push_back(
            resolveName(registry::schemeRegistry(), name));
    spec.flipThs = narrowUintList(params, "flip");
    spec.rfmThs = narrowUintList(params, "rfm");
    for (const std::string &name : params.getStringList("sources")) {
        spec.sources.push_back(
            name == "none"
                ? name
                : resolveName(registry::sourceRegistry(), name));
    }
    spec.shardsList = narrowUintList(params, "shards");

    std::vector<std::string> workloads;
    for (const std::string &name : params.getStringList("workloads"))
        workloads.push_back(
            resolveName(registry::workloadRegistry(), name));
    std::vector<std::string> attacks;
    for (const std::string &name : params.getStringList("attacks"))
        attacks.push_back(
            resolveName(registry::attackRegistry(), name));
    if (!workloads.empty() || !attacks.empty()) {
        if (workloads.empty())
            workloads.push_back("mix-high");
        spec.cases = cartesianCases(workloads, attacks);
    }

    // Key validation happens after the axes resolve so entry-declared
    // tunables (e.g. victims= with a multi-sided attack) can ride
    // along; every other unknown key is fatal.
    static const std::vector<std::string> kSpecKeys = {
        "schemes",      "flip",    "rfm",      "workloads",
        "attacks",      "cores",   "instr",    "seed",
        "channels",     "mc-threads",
        "blast-radius", "ad",      "warmup",   "baseline",
        "seed-policy",  "sources", "shards",   "acts",
        "record",       "telemetry", "trace-events",
        "heatmap-regions", "trace-capacity", "trace-pipeline",
        "failpoints",
    };
    std::vector<std::string> case_workloads;
    std::vector<std::string> case_attacks;
    for (const SweepCase &c : spec.cases) {
        case_workloads.push_back(c.workload);
        case_attacks.push_back(c.attack);
    }
    if (case_workloads.empty())
        case_workloads.push_back("mix-high");
    const auto &grid_schemes = spec.schemes.empty()
                                   ? std::vector<std::string>{"mithril"}
                                   : spec.schemes;
    for (const std::string &key : params.keys()) {
        if (std::find(kSpecKeys.begin(), kSpecKeys.end(), key) !=
                kSpecKeys.end() ||
            std::find(extra_keys.begin(), extra_keys.end(), key) !=
                extra_keys.end())
            continue;
        std::string owner;
        const registry::ParamDesc *desc =
            declaredBy(registry::schemeRegistry(), grid_schemes, key,
                       &owner);
        if (!desc)
            desc = declaredBy(registry::workloadRegistry(),
                              case_workloads, key, &owner);
        if (!desc)
            desc = declaredBy(registry::attackRegistry(),
                              case_attacks, key, &owner);
        if (!desc)
            desc = declaredBy(registry::sourceRegistry(),
                              spec.sources, key, &owner);
        if (!desc)
            fatal("unknown sweep parameter: %s", key.c_str());
        // Check the value now: a typo'd tunable must die at the CLI,
        // not as per-job FAILED cells after the sweep has run.
        try {
            registry::checkParam(owner, *desc, params);
        } catch (const registry::SpecError &err) {
            fatal("%s", err.what());
        }
        spec.tunables.set(key, params.getString(key));
    }

    spec.blastRadius =
        params.getUint32("blast-radius", spec.blastRadius);
    spec.adTh = params.getUint32("ad", spec.adTh);
    spec.cores = params.getUint32("cores", spec.cores);
    spec.instrPerCore = params.getUint("instr", spec.instrPerCore);
    spec.channels = params.getUint32("channels", spec.channels);
    if (spec.channels != 0 &&
        (spec.channels & (spec.channels - 1)) != 0) {
        // Die at the CLI like any other malformed axis, not as
        // per-job FAILED cells.
        fatal("channels=%u is not a power of two", spec.channels);
    }
    spec.mcThreads = params.getUint32("mc-threads", spec.mcThreads);
    spec.engineActs = params.getUint("acts", spec.engineActs);
    spec.seed = params.getUint("seed", spec.seed);
    spec.trackerWarmupActs =
        params.getUint("warmup", spec.trackerWarmupActs);
    spec.includeBaseline =
        params.getBool("baseline", spec.includeBaseline);
    spec.record = params.getString("record", spec.record);
    if (!spec.record.empty() && spec.jobCount() > 1) {
        // N jobs racing one trace file would interleave garbage;
        // capture-once-replay-many is two sweeps (record, then a
        // sources=act-trace grid).
        fatal("record=%s captures one ACT stream, but this sweep "
              "expands to %zu jobs; narrow the grid to a single job",
              spec.record.c_str(), spec.jobCount());
    }
    spec.telemetry = params.getBool("telemetry", spec.telemetry);
    spec.traceEvents =
        params.getString("trace-events", spec.traceEvents);
    spec.heatmapRegions =
        params.getUint32("heatmap-regions", spec.heatmapRegions);
    spec.traceCapacity =
        params.getUint32("trace-capacity", spec.traceCapacity);
    if (!spec.traceEvents.empty() && spec.jobCount() > 1) {
        // Same single-file rule as record=.
        fatal("trace-events=%s writes one trace file, but this sweep "
              "expands to %zu jobs; narrow the grid to a single job",
              spec.traceEvents.c_str(), spec.jobCount());
    }
    spec.failpoints =
        params.getString("failpoints", spec.failpoints);
    spec.tracePipeline =
        params.getString("trace-pipeline", spec.tracePipeline);
    if (!spec.tracePipeline.empty() && !spec.tunables.has("trace")) {
        // The pipeline materializes to the path the act-trace jobs
        // replay; without trace= there is nowhere to put it.
        fatal("trace-pipeline= needs trace=<path> (and "
              "sources=act-trace) so the composed corpus has a "
              "replay path");
    }

    const std::string policy =
        params.getString("seed-policy", "shared");
    if (policy == "shared")
        spec.seedPolicy = SeedPolicy::Shared;
    else if (policy == "per-job")
        spec.seedPolicy = SeedPolicy::PerJob;
    else
        fatal("unknown seed-policy: %s (want shared|per-job)",
              policy.c_str());
    return spec;
}

std::size_t
SweepSpec::jobCount() const
{
    const std::size_t n_schemes = std::max<std::size_t>(1, schemes.size());
    const std::size_t n_flips = std::max<std::size_t>(1, flipThs.size());
    const std::size_t n_rfms = std::max<std::size_t>(1, rfmThs.size());
    const std::size_t n_shards =
        std::max<std::size_t>(1, shardsList.size());
    const std::size_t n_cases = std::max<std::size_t>(1, cases.size());
    // The shards axis only applies to engine-only (non-"none")
    // sources: a System job has no shards to vary, so it expands
    // exactly once regardless of the shards list.
    std::size_t n_source_cells = 0;
    for (const std::string &source :
         sources.empty() ? std::vector<std::string>{"none"}
                         : sources)
        n_source_cells += source == "none" ? 1 : n_shards;
    return n_schemes * n_flips * n_rfms * n_source_cells * n_cases +
           (includeBaseline ? n_cases : 0);
}

std::vector<Job>
SweepSpec::expand() const
{
    static const std::vector<std::string> kDefaultSchemes = {
        "mithril"};
    static const std::vector<std::uint32_t> kDefaultFlips = {6250};
    static const std::vector<std::uint32_t> kDefaultRfms = {0};
    static const std::vector<std::string> kDefaultSources = {"none"};
    static const std::vector<std::uint32_t> kDefaultShards = {0};
    static const std::vector<SweepCase> kDefaultCases = {
        {"mix-high", "none"}};

    const auto &grid_schemes = orDefault(schemes, kDefaultSchemes);
    const auto &grid_flips = orDefault(flipThs, kDefaultFlips);
    const auto &grid_rfms = orDefault(rfmThs, kDefaultRfms);
    const auto &grid_sources = orDefault(sources, kDefaultSources);
    const auto &grid_shards = orDefault(shardsList, kDefaultShards);
    const auto &grid_cases = orDefault(cases, kDefaultCases);

    std::vector<Job> jobs;
    jobs.reserve(jobCount());

    // Each job keeps only the tunables its own entries declare, so a
    // para-only knob does not fail validation on the mithril cells of
    // the same sweep.
    auto apply_tunables = [this](sim::ExperimentSpec &spec) {
        for (const std::string &key : tunables.keys()) {
            if (entryDeclares(registry::schemeRegistry(),
                              {spec.scheme}, key) ||
                entryDeclares(registry::workloadRegistry(),
                              {spec.workload}, key) ||
                entryDeclares(registry::attackRegistry(),
                              {spec.attack}, key) ||
                entryDeclares(registry::sourceRegistry(),
                              {spec.source}, key))
                spec.extras.set(key, tunables.getString(key));
        }
    };

    auto base_spec = [this](const SweepCase &c) {
        sim::ExperimentSpec spec;
        spec.workload = c.workload;
        spec.attack = c.attack;
        spec.cores = cores;
        spec.instrPerCore = instrPerCore;
        spec.engineActs = engineActs;
        spec.seed = seed;
        spec.trackerWarmupActs = trackerWarmupActs;
        spec.warmupFromWorkload = (c.attack == "none");
        spec.channels = channels;
        spec.mcThreads = mcThreads;
        spec.record = record;
        spec.telemetry = telemetry;
        spec.traceEvents = traceEvents;
        spec.heatmapRegions = heatmapRegions;
        spec.traceCapacity = traceCapacity;
        return spec;
    };
    auto case_label = [](const SweepCase &c) {
        std::string label = c.workload;
        if (c.attack != "none")
            label += "+" + c.attack;
        return label;
    };
    auto finish = [this, &jobs](Job job) {
        job.index = jobs.size();
        if (seedPolicy == SeedPolicy::PerJob) {
            job.spec.seed = mixSeed(seed, job.index);
            job.spec.schemeSeed = mixSeed(seed, job.index ^ 0x5eedull);
        }
        jobs.push_back(std::move(job));
    };

    if (includeBaseline) {
        for (const SweepCase &c : grid_cases) {
            Job job;
            job.spec = base_spec(c);
            job.spec.scheme = "none";
            apply_tunables(job.spec);
            job.isBaseline = true;
            job.label = "none/" + case_label(c);
            finish(std::move(job));
        }
    }

    for (const std::string &scheme : grid_schemes) {
        for (std::uint32_t flip : grid_flips) {
            for (std::uint32_t rfm : grid_rfms) {
                for (const std::string &source : grid_sources) {
                    // System jobs have no shards to vary: the shards
                    // axis collapses to one cell for source=none.
                    static const std::vector<std::uint32_t>
                        kSystemShards = {0};
                    const auto &source_shards =
                        source == "none" ? kSystemShards
                                         : grid_shards;
                    for (std::uint32_t shards : source_shards) {
                        for (const SweepCase &c : grid_cases) {
                            Job job;
                            job.spec = base_spec(c);
                            job.spec.scheme = scheme;
                            job.spec.flipTh = flip;
                            job.spec.rfmTh = rfm;
                            job.spec.adTh = adTh;
                            job.spec.blastRadius = blastRadius;
                            job.spec.source = source;
                            job.spec.shards = shards;
                            apply_tunables(job.spec);
                            job.label =
                                registry::schemeDisplay(scheme) +
                                "/" + std::to_string(flip) +
                                (rfm != 0
                                     ? "/r" + std::to_string(rfm)
                                     : "") +
                                (source != "none" ? "/" + source
                                                  : "") +
                                (shards != 0
                                     ? "/s" + std::to_string(shards)
                                     : "") +
                                "/" + case_label(c);
                            finish(std::move(job));
                        }
                    }
                }
            }
        }
    }
    MITHRIL_ASSERT(jobs.size() == jobCount());
    return jobs;
}

} // namespace mithril::runner
