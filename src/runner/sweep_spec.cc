#include "runner/sweep_spec.hh"

#include <algorithm>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace mithril::runner
{

namespace
{

std::vector<std::uint32_t>
narrowUintList(const ParamSet &params, const std::string &key)
{
    std::vector<std::uint32_t> out;
    for (std::uint64_t v : params.getUintList(key)) {
        if (v > 0xffffffffull)
            fatal("parameter %s list entry %llu is out of range",
                  key.c_str(), static_cast<unsigned long long>(v));
        out.push_back(static_cast<std::uint32_t>(v));
    }
    return out;
}

template <typename T>
const std::vector<T> &
orDefault(const std::vector<T> &values, const std::vector<T> &fallback)
{
    return values.empty() ? fallback : values;
}

} // namespace

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t index)
{
    // One splitmix64 step from the golden-gamma-spaced index stream.
    std::uint64_t state = seed + index * 0x9e3779b97f4a7c15ull;
    return splitmix64(state);
}

std::vector<SweepCase>
SweepSpec::cartesianCases(const std::vector<sim::WorkloadKind> &workloads,
                          const std::vector<sim::AttackKind> &attacks)
{
    std::vector<SweepCase> cases;
    cases.reserve(workloads.size() * std::max<std::size_t>(
                                         1, attacks.size()));
    for (sim::WorkloadKind w : workloads) {
        if (attacks.empty()) {
            cases.push_back({w, sim::AttackKind::None});
            continue;
        }
        for (sim::AttackKind a : attacks)
            cases.push_back({w, a});
    }
    return cases;
}

SweepSpec
SweepSpec::fromParams(const ParamSet &params,
                      const std::vector<std::string> &extra_keys)
{
    static const std::vector<std::string> kSpecKeys = {
        "schemes",      "flip",  "rfm",   "workloads",
        "attacks",      "cores", "instr", "seed",
        "blast-radius", "warmup", "baseline", "seed-policy",
    };
    for (const std::string &key : params.keys()) {
        if (std::find(kSpecKeys.begin(), kSpecKeys.end(), key) ==
                kSpecKeys.end() &&
            std::find(extra_keys.begin(), extra_keys.end(), key) ==
                extra_keys.end())
            fatal("unknown sweep parameter: %s", key.c_str());
    }

    SweepSpec spec;
    for (const std::string &name : params.getStringList("schemes"))
        spec.schemes.push_back(trackers::schemeFromName(name));
    spec.flipThs = narrowUintList(params, "flip");
    spec.rfmThs = narrowUintList(params, "rfm");

    std::vector<sim::WorkloadKind> workloads;
    for (const std::string &name : params.getStringList("workloads"))
        workloads.push_back(sim::workloadFromName(name));
    std::vector<sim::AttackKind> attacks;
    for (const std::string &name : params.getStringList("attacks"))
        attacks.push_back(sim::attackFromName(name));
    if (!workloads.empty() || !attacks.empty()) {
        if (workloads.empty())
            workloads.push_back(sim::WorkloadKind::MixHigh);
        spec.cases = cartesianCases(workloads, attacks);
    }

    spec.blastRadius =
        params.getUint32("blast-radius", spec.blastRadius);
    spec.cores = params.getUint32("cores", spec.cores);
    spec.instrPerCore = params.getUint("instr", spec.instrPerCore);
    spec.seed = params.getUint("seed", spec.seed);
    spec.trackerWarmupActs =
        params.getUint("warmup", spec.trackerWarmupActs);
    spec.includeBaseline =
        params.getBool("baseline", spec.includeBaseline);

    const std::string policy =
        params.getString("seed-policy", "shared");
    if (policy == "shared")
        spec.seedPolicy = SeedPolicy::Shared;
    else if (policy == "per-job")
        spec.seedPolicy = SeedPolicy::PerJob;
    else
        fatal("unknown seed-policy: %s (want shared|per-job)",
              policy.c_str());
    return spec;
}

std::size_t
SweepSpec::jobCount() const
{
    const std::size_t n_schemes = std::max<std::size_t>(1, schemes.size());
    const std::size_t n_flips = std::max<std::size_t>(1, flipThs.size());
    const std::size_t n_rfms = std::max<std::size_t>(1, rfmThs.size());
    const std::size_t n_cases = std::max<std::size_t>(1, cases.size());
    return n_schemes * n_flips * n_rfms * n_cases +
           (includeBaseline ? n_cases : 0);
}

std::vector<Job>
SweepSpec::expand() const
{
    static const std::vector<trackers::SchemeKind> kDefaultSchemes = {
        trackers::SchemeKind::Mithril};
    static const std::vector<std::uint32_t> kDefaultFlips = {6250};
    static const std::vector<std::uint32_t> kDefaultRfms = {0};
    static const std::vector<SweepCase> kDefaultCases = {
        {sim::WorkloadKind::MixHigh, sim::AttackKind::None}};

    const auto &grid_schemes = orDefault(schemes, kDefaultSchemes);
    const auto &grid_flips = orDefault(flipThs, kDefaultFlips);
    const auto &grid_rfms = orDefault(rfmThs, kDefaultRfms);
    const auto &grid_cases = orDefault(cases, kDefaultCases);

    std::vector<Job> jobs;
    jobs.reserve(jobCount());

    auto make_run = [this](const SweepCase &c) {
        sim::RunConfig run;
        run.workload = c.workload;
        run.cores = cores;
        run.instrPerCore = instrPerCore;
        run.attack = c.attack;
        run.seed = seed;
        run.trackerWarmupActs = trackerWarmupActs;
        run.warmupFromWorkload = (c.attack == sim::AttackKind::None);
        return run;
    };
    auto case_label = [](const SweepCase &c) {
        std::string label = sim::workloadName(c.workload);
        if (c.attack != sim::AttackKind::None)
            label += "+" + sim::attackName(c.attack);
        return label;
    };
    auto finish = [this, &jobs](Job job) {
        job.index = jobs.size();
        if (seedPolicy == SeedPolicy::PerJob) {
            job.run.seed = mixSeed(seed, job.index);
            job.scheme.seed = mixSeed(seed, job.index ^ 0x5eedull);
        }
        jobs.push_back(std::move(job));
    };

    if (includeBaseline) {
        for (const SweepCase &c : grid_cases) {
            Job job;
            job.scheme.kind = trackers::SchemeKind::None;
            job.run = make_run(c);
            job.isBaseline = true;
            job.label = "none/" + case_label(c);
            finish(std::move(job));
        }
    }

    for (trackers::SchemeKind scheme : grid_schemes) {
        for (std::uint32_t flip : grid_flips) {
            for (std::uint32_t rfm : grid_rfms) {
                for (const SweepCase &c : grid_cases) {
                    Job job;
                    job.scheme.kind = scheme;
                    job.scheme.flipTh = flip;
                    job.scheme.rfmTh = rfm;
                    job.scheme.blastRadius = blastRadius;
                    job.run = make_run(c);
                    job.label = trackers::schemeName(scheme) + "/" +
                                std::to_string(flip) +
                                (rfm != 0
                                     ? "/r" + std::to_string(rfm)
                                     : "") +
                                "/" + case_label(c);
                    finish(std::move(job));
                }
            }
        }
    }
    MITHRIL_ASSERT(jobs.size() == jobCount());
    return jobs;
}

} // namespace mithril::runner
