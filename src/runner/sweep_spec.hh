/**
 * @file
 * Declarative description of an experiment sweep: the cartesian grid
 * of scheme parameters and (workload, attack) cases the paper's
 * figures iterate, expanded into independent jobs with deterministic
 * per-job seeding. The scheme/workload/attack axes are registry-name
 * lists, so a sweep spans user-registered entries exactly like the
 * built-ins. The expansion order is fixed, so a sweep's job list —
 * and therefore every sink's output — is identical at any thread
 * count.
 */

#ifndef MITHRIL_RUNNER_SWEEP_SPEC_HH
#define MITHRIL_RUNNER_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment_spec.hh"

namespace mithril::runner
{

/** One (workload, attack) combination of a sweep. */
struct SweepCase
{
    std::string workload = "mix-high";
    std::string attack = "none";
};

/** How each expanded job derives its RNG seed from the sweep seed. */
enum class SeedPolicy
{
    /** Every job runs with the sweep seed verbatim — the historical
     *  bench behavior, comparable across grid cells. */
    Shared,
    /** Each job's seed is mixed with its grid index (splitmix64), for
     *  statistically independent repetitions. */
    PerJob,
};

/** One expanded grid point, self-contained and runnable. */
struct Job
{
    std::size_t index = 0; //!< Position in expansion order.
    sim::ExperimentSpec spec;
    bool isBaseline = false;
    std::string label; //!< "Mithril/6250/mix-high+multi-sided".
};

/**
 * The sweep grid: schemes x flipThs x rfmThs x cases, plus shared run
 * knobs. Empty vectors mean "the single default value" so a spec can
 * name only the axes it actually sweeps.
 */
struct SweepSpec
{
    std::vector<std::string> schemes;   //!< default {"mithril"}
    std::vector<std::uint32_t> flipThs; //!< default {6250}
    std::vector<std::uint32_t> rfmThs;  //!< default {0} (auto)
    std::vector<SweepCase> cases;       //!< default {mix-high, none}
    /** Engine-source axis; default {"none"} = full-System runs. Any
     *  other name makes the matching jobs engine-only runs of that
     *  ActSource (scheme x source grids at engine speed, no System
     *  build). The case's attack still selects which pattern an
     *  "attack" source replicates. */
    std::vector<std::string> sources;
    /** Engine shard-count axis; default {0} = one shard per channel.
     *  Ignored by System jobs. Sharding never changes results — this
     *  axis exists for scaling studies. */
    std::vector<std::uint32_t> shardsList;

    std::uint32_t blastRadius = 1;
    std::uint32_t adTh = 200;
    std::uint32_t cores = 8;
    std::uint64_t instrPerCore = 80000;
    /** DRAM channel-count override for System jobs (power of two);
     *  0 = the paper geometry. */
    std::uint32_t channels = 0;
    /** Worker threads for each System job's channel lanes; 0 = inherit
     *  the SystemConfig default (inline). Results are byte-identical
     *  at any value — this knob trades threads between the sweep pool
     *  and the per-job frontend. */
    std::uint32_t mcThreads = 0;
    /** ACT budget per engine-only job (sources axis). */
    std::uint64_t engineActs = 1000000;
    std::uint64_t seed = 42;
    SeedPolicy seedPolicy = SeedPolicy::Shared;

    /** Tracker warm-up budget per job; benign runs warm from the
     *  workload, attacked runs from the attacker (as in Fig. 10). */
    std::uint64_t trackerWarmupActs = 0;

    /** Capture the job's ACT stream to this path
     *  (mithril.acttrace.v1). One file — fromParams() rejects grids
     *  that expand to more than one job. The capture-once-replay-many
     *  pattern is two sweeps: one recording job, then a
     *  sources=act-trace trace=<path> grid over every scheme. */
    std::string record;

    /** Compose the sweep's replay corpus once, before any job runs: a
     *  trace-op pipeline (--list trace-ops) materialized to the
     *  tunables' trace= path, which every sources=act-trace job then
     *  replays. Jobs never carry this knob — one compose per sweep,
     *  not one per grid point. */
    std::string tracePipeline;

    /** Collect the telemetry metric sheet + ACT heatmap on every job
     *  (each job's flattened sheet lands in the sweep output's
     *  per-job "telemetry" map). Observation only. */
    bool telemetry = false;
    /** Write a mitigation-event Chrome trace to this path. One file —
     *  fromParams() rejects grids that expand to more than one job,
     *  like record=. */
    std::string traceEvents;
    /** ACT heatmap region budget per bank (telemetry=1 jobs). */
    std::uint32_t heatmapRegions = 64;
    /** Mitigation-event ring capacity per bank (trace-events= jobs). */
    std::uint32_t traceCapacity = 4096;

    /** Prepend one unprotected ("none") job per case, for
     *  normalizing relative performance and energy. */
    bool includeBaseline = false;

    /** Failpoint arming spec for fault-injection runs, same grammar
     *  as MITHRIL_FAILPOINTS ("site:action:k=v,..."; see
     *  common/failpoint.hh and `--list failpoints`). Armed
     *  process-wide at run start, disarmed when the sweep returns.
     *  Empty = no injection and zero overhead. */
    std::string failpoints;

    /** Registry-entry tunables forwarded to every job (each job keeps
     *  the keys its own scheme/workload/attack declares). */
    ParamSet tunables;

    /** Cartesian product helper for the case list. */
    static std::vector<SweepCase>
    cartesianCases(const std::vector<std::string> &workloads,
                   const std::vector<std::string> &attacks);

    /**
     * Build a spec from CLI-style parameters: comma-separated lists
     * `schemes=`, `flip=`, `rfm=`, `workloads=`, `attacks=`,
     * `sources=` (engine-only jobs), `shards=` (engine shard counts),
     * scalars `cores=`, `instr=`, `acts=` (engine ACT budget),
     * `channels=` and `mc-threads=` (System frontend geometry and
     * lane threading), `seed=`, `ad=`, `warmup=`, `baseline=`,
     * `seed-policy=shared|per-job`, and the telemetry knobs
     * `telemetry=`, `trace-events=` (single-job grids only),
     * `heatmap-regions=`, `trace-capacity=`, and the fault-injection
     * knob `failpoints=`. Axis names resolve through the
     * registries — an unknown name is fatal and lists every
     * registered candidate. Keys declared by a selected registry
     * entry (e.g. `victims=` with a multi-sided attack) are forwarded
     * to the matching jobs; any other unknown key is fatal — a typo'd
     * axis must not silently run the default grid. Callers owning
     * extra knobs (e.g. `jobs=`) list them in `extra_keys`.
     */
    static SweepSpec
    fromParams(const ParamSet &params,
               const std::vector<std::string> &extra_keys = {});

    /** Number of jobs expand() will produce. */
    std::size_t jobCount() const;

    /** Expand the grid into jobs, in deterministic order: baselines
     *  (one per case) first, then
     *  schemes x flipThs x rfmThs x sources x shards x cases. */
    std::vector<Job> expand() const;
};

/** splitmix64 mix of a base seed and a job index (SeedPolicy::PerJob). */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t index);

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_SWEEP_SPEC_HH
