#include "runner/thread_pool.hh"

#include <exception>

#include "common/logging.hh"

namespace mithril::runner
{

unsigned
defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    MITHRIL_ASSERT(task);
    unsigned target;
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        MITHRIL_ASSERT_MSG(!stop_, "submit() on a stopping pool");
        target = nextWorker_;
        nextWorker_ = (nextWorker_ + 1) % size();
        ++queued_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    wakeCv_.notify_one();
}

std::function<void()>
ThreadPool::takeTask(unsigned id)
{
    // Own queue first (front: submission order), then steal from the
    // back of each sibling, starting after ourselves to spread load.
    {
        Worker &own = *workers_[id];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.queue.empty()) {
            auto task = std::move(own.queue.front());
            own.queue.pop_front();
            return task;
        }
    }
    for (unsigned k = 1; k < size(); ++k) {
        Worker &victim = *workers_[(id + k) % size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.queue.empty()) {
            auto task = std::move(victim.queue.back());
            victim.queue.pop_back();
            return task;
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(unsigned id)
{
    for (;;) {
        std::function<void()> task = takeTask(id);
        if (task) {
            {
                std::lock_guard<std::mutex> lock(sleepMutex_);
                --queued_;
            }
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (queued_ > 0)
            continue; // Raced with a submit; retry the queues.
        if (stop_)
            return;
        wakeCv_.wait(lock,
                     [this] { return queued_ > 0 || stop_; });
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    struct State
    {
        std::mutex mutex;
        std::condition_variable doneCv;
        std::size_t done = 0;
        std::exception_ptr error;
    };
    auto state = std::make_shared<State>();

    for (std::size_t i = 0; i < count; ++i) {
        submit([state, &fn, i, count] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(state->mutex);
            if (++state->done == count)
                state->doneCv.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->doneCv.wait(lock,
                       [&] { return state->done == count; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace mithril::runner
