#include "runner/thread_pool.hh"

#include <atomic>
#include <exception>

#include "common/logging.hh"

namespace mithril::runner
{

namespace
{

/** The pool (and worker id) executing the current thread, if any. */
thread_local ThreadPool *t_currentPool = nullptr;
thread_local unsigned t_currentWorker = 0;

/** Marks the current thread as `pool`'s worker for the enclosing
 *  scope (restoring the previous marking on exit), so any thread
 *  executing pool work — a spawned worker, a helping parallelFor
 *  caller — reports the right ambient pool through current(). */
class CurrentPoolScope
{
  public:
    CurrentPoolScope(ThreadPool *pool, unsigned worker)
        : prevPool_(t_currentPool), prevWorker_(t_currentWorker)
    {
        t_currentPool = pool;
        t_currentWorker = worker;
    }

    ~CurrentPoolScope()
    {
        t_currentPool = prevPool_;
        t_currentWorker = prevWorker_;
    }

    CurrentPoolScope(const CurrentPoolScope &) = delete;
    CurrentPoolScope &operator=(const CurrentPoolScope &) = delete;

  private:
    ThreadPool *prevPool_;
    unsigned prevWorker_;
};

} // namespace

unsigned
defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool *
ThreadPool::current()
{
    return t_currentPool;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    MITHRIL_ASSERT(task);
    unsigned target;
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        MITHRIL_ASSERT_MSG(!stop_, "submit() on a stopping pool");
        target = nextWorker_;
        nextWorker_ = (nextWorker_ + 1) % size();
        ++queued_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    wakeCv_.notify_one();
}

std::function<void()>
ThreadPool::takeTask(unsigned id)
{
    // Own queue first (front: submission order), then steal from the
    // back of each sibling, starting after ourselves to spread load.
    {
        Worker &own = *workers_[id];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.queue.empty()) {
            auto task = std::move(own.queue.front());
            own.queue.pop_front();
            return task;
        }
    }
    for (unsigned k = 1; k < size(); ++k) {
        Worker &victim = *workers_[(id + k) % size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.queue.empty()) {
            auto task = std::move(victim.queue.back());
            victim.queue.pop_back();
            return task;
        }
    }
    return nullptr;
}

bool
ThreadPool::runOneTask(unsigned hint)
{
    std::function<void()> task = takeTask(hint);
    if (!task)
        return false;
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        --queued_;
    }
    CurrentPoolScope scope(this, hint);
    task();
    return true;
}

void
ThreadPool::workerLoop(unsigned id)
{
    t_currentPool = this;
    t_currentWorker = id;
    for (;;) {
        if (runOneTask(id))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (queued_ > 0)
            continue; // Raced with a submit; retry the queues.
        if (stop_)
            return;
        wakeCv_.wait(lock,
                     [this] { return queued_ > 0 || stop_; });
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    // Index-claiming participation: the indices live in a shared
    // atomic counter, the pool receives one *participation* task per
    // worker (not one task per index), and the caller participates
    // too. The caller therefore always drives its own loop to
    // completion — it never executes unrelated queued work while
    // waiting (which could deadlock on an event sequenced after this
    // call returns), nested calls from inside a pool task make
    // progress even when every worker is busy, and an external
    // caller's core joins the pool for the duration.
    struct State
    {
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable doneCv;
        std::size_t completed = 0;
        std::exception_ptr error;
    };
    auto state = std::make_shared<State>();

    // Captures fn by reference: safe, because fn is only invoked for
    // a freshly claimed index, and the caller cannot return before
    // every claimed index completed. A participation task that starts
    // late finds the counter exhausted and exits without touching fn.
    auto run_indices = [state, &fn, count] {
        for (;;) {
            const std::size_t i = state->next.fetch_add(1);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(state->mutex);
            if (++state->completed == count)
                state->doneCv.notify_all();
        }
    };

    // A nested caller (already on this pool) must participate —
    // every worker may be busy, and only its own loop guarantees
    // progress. An external caller must NOT: it would run as an
    // extra body beside the pool's workers and silently break the
    // `threads` concurrency cap callers sized the pool by (a
    // jobs=1 sweep must run one simulation at a time).
    const bool nested = t_currentPool == this;
    const std::size_t participants = std::min<std::size_t>(
        nested && count > 0 ? count - 1 : count, size());
    for (std::size_t p = 0; p < participants; ++p)
        submit(run_indices);
    if (nested)
        run_indices();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->doneCv.wait(lock,
                       [&] { return state->completed == count; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace mithril::runner
