/**
 * @file
 * Work-stealing thread pool for the experiment runner.
 *
 * Each worker owns a deque of tasks; submissions are distributed
 * round-robin, and an idle worker steals from the far end of its
 * siblings' queues. Tasks are coarse (whole simulations), so the
 * per-queue locks are never contended in practice — the stealing
 * matters because sweep jobs have wildly different runtimes (an
 * attacked run can take several times longer than a benign one).
 */

#ifndef MITHRIL_RUNNER_THREAD_POOL_HH
#define MITHRIL_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mithril::runner
{

/** Number of workers used when a caller passes `threads == 0`. */
unsigned defaultThreadCount();

/**
 * Fixed-size pool of worker threads with per-worker deques and work
 * stealing. The pool itself imposes no ordering: callers that need
 * deterministic output must index results by task id, never by
 * completion order (SweepRunner does exactly that).
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 = defaultThreadCount()). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue one task; it may start immediately. */
    void submit(std::function<void()> task);

    /**
     * Run `fn(0) .. fn(count - 1)` on the pool and block until every
     * call returned. Calls run concurrently and in no particular
     * order. The first exception thrown by any call is rethrown here
     * (remaining calls still run to completion).
     *
     * The indices are claimed from a shared counter by per-worker
     * participation tasks; a caller already running on this pool
     * claims indices itself too, so the call is safe from inside a
     * pool task — a sweep job that shards its own work re-enters the
     * pool it is running on without deadlock and without
     * oversubscribing a second pool. An external caller only waits:
     * at most size() calls run concurrently (the cap the pool was
     * sized by), and the waiting caller never executes unrelated
     * queued tasks.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * The pool whose worker is executing the current thread, or
     * nullptr outside any pool task. Lets nested work (e.g. a sharded
     * engine run inside a sweep job) reuse the ambient pool instead
     * of spawning a competing one.
     */
    static ThreadPool *current();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> queue;
    };

    void workerLoop(unsigned id);

    /** Pop from our own queue front, else steal from a sibling's back. */
    std::function<void()> takeTask(unsigned id);

    /** Take and run one queued task (fixing the queued_ bookkeeping);
     *  false when every queue is empty. Used by workers and by
     *  helping parallelFor() callers alike. */
    bool runOneTask(unsigned hint);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards queued_ / stop_ for the sleep-wakeup protocol. */
    std::mutex sleepMutex_;
    std::condition_variable wakeCv_;
    std::size_t queued_ = 0;
    bool stop_ = false;
    unsigned nextWorker_ = 0;
};

} // namespace mithril::runner

#endif // MITHRIL_RUNNER_THREAD_POOL_HH
