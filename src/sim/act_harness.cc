#include "act_harness.hh"

#include "common/logging.hh"

namespace mithril::sim
{

ActHarness::ActHarness(const ActHarnessConfig &config,
                       trackers::RhProtection *tracker)
    : config_(config), tracker_(tracker),
      oracle_(1, config.rowsPerBank, config.flipTh, config.blastRadius)
{
    nextRef_ = config_.timing.tREFI;
}

void
ActHarness::maybeRefresh()
{
    while (now_ >= nextRef_) {
        oracle_.onAutoRefresh(0, dram::refreshGroups(config_.timing));
        if (tracker_)
            tracker_->onRefresh(0, nextRef_);
        now_ += config_.timing.tRFC;  // Bank blocked for tRFC.
        nextRef_ += config_.timing.tREFI;
        ++refs_;
    }
}

void
ActHarness::activate(RowId row)
{
    maybeRefresh();

    oracle_.onActivate(0, row);
    ++acts_;
    scratch_.clear();
    if (tracker_)
        tracker_->onActivate(0, row, now_, scratch_);
    now_ += config_.timing.tRC;

    // Immediate ARR work requested by reactive schemes.
    for (RowId aggressor : scratch_) {
        oracle_.onNeighborRefresh(0, aggressor);
        now_ += static_cast<Tick>(2 * config_.blastRadius) *
                config_.timing.tRC;
        ++preventive_;
    }

    // RFM cadence.
    if (tracker_ && tracker_->usesRfm() &&
        ++raa_ >= tracker_->rfmTh()) {
        raa_ = 0;
        if (tracker_->rfmPending(0)) {
            scratch_.clear();
            tracker_->onRfm(0, now_, scratch_);
            for (RowId aggressor : scratch_) {
                oracle_.onNeighborRefresh(0, aggressor);
                ++preventive_;
            }
            now_ += config_.timing.tRFM;
            ++rfms_;
        }
        // Mithril+ MRR skip: no time cost beyond the poll.
    }
}

void
ActHarness::run(std::uint64_t count,
                const std::function<RowId(std::uint64_t)> &row_source)
{
    for (std::uint64_t i = 0; i < count; ++i)
        activate(row_source(i));
}

} // namespace mithril::sim
