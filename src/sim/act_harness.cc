#include "act_harness.hh"

namespace mithril::sim
{

ActHarness::ActHarness(const ActHarnessConfig &config,
                       trackers::RhProtection *tracker)
    : engine_(engine::EngineConfig::singleBank(
                  config.timing, config.rowsPerBank, config.flipTh,
                  config.blastRadius),
              tracker)
{
}

void
ActHarness::run(std::uint64_t count,
                const std::function<RowId(std::uint64_t)> &row_source)
{
    engine::CallbackSource source(count, row_source);
    engine_.run(source);
}

} // namespace mithril::sim
