/**
 * @file
 * Command-level single-bank harness for safety experiments — now a
 * thin frontend over engine::ActStreamEngine.
 *
 * Worst-case Row Hammer analysis does not need cores or queues — only
 * the exact interleaving of ACT, REF, RFM, and preventive refreshes at
 * the maximum legal activation rate. The harness keeps its historical
 * surface (one bank, one ACT per tRC, an index-addressed row-source
 * callback) and delegates all interleaving to the shared engine, so
 * every Figure 2 sweep and Theorem 1/2 validation test rides the same
 * batched hot loop as the multi-bank experiments.
 */

#ifndef MITHRIL_SIM_ACT_HARNESS_HH
#define MITHRIL_SIM_ACT_HARNESS_HH

#include <cstdint>
#include <functional>

#include "dram/rh_oracle.hh"
#include "dram/timing.hh"
#include "engine/act_stream_engine.hh"
#include "trackers/rh_protection.hh"

namespace mithril::sim
{

/** Harness configuration. */
struct ActHarnessConfig
{
    dram::Timing timing;
    std::uint32_t rowsPerBank = 65536;
    std::uint32_t flipTh = 6250;
    std::uint32_t blastRadius = 1;
};

/** Single-bank maximum-rate command stream driver. */
class ActHarness
{
  public:
    ActHarness(const ActHarnessConfig &config,
               trackers::RhProtection *tracker);

    /** Feed one activation (advances virtual time by tRC, interleaving
     *  REF/RFM/preventive work as due). */
    void activate(RowId row) { engine_.activate(0, row); }

    /**
     * Drive `count` activations produced by the row source callback
     * (called with the activation index), through the engine's
     * batched dispatch.
     */
    void run(std::uint64_t count,
             const std::function<RowId(std::uint64_t)> &row_source);

    const dram::RhOracle &oracle() const { return engine_.oracle(); }
    dram::RhOracle &oracle() { return engine_.oracle(); }

    Tick now() const { return engine_.now(0); }
    std::uint64_t acts() const { return engine_.acts(); }
    std::uint64_t refs() const { return engine_.refs(); }
    std::uint64_t rfms() const { return engine_.rfms(); }
    std::uint64_t preventiveRefreshes() const
    {
        return engine_.preventiveRefreshes();
    }

    /** The engine underneath, for frontends mixing both surfaces. */
    engine::ActStreamEngine &engine() { return engine_; }
    const engine::ActStreamEngine &engine() const { return engine_; }

  private:
    engine::ActStreamEngine engine_;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_ACT_HARNESS_HH
