/**
 * @file
 * Command-level single-bank harness for safety experiments.
 *
 * Worst-case Row Hammer analysis does not need cores or queues — only
 * the exact interleaving of ACT, REF, RFM, and preventive refreshes at
 * the maximum legal activation rate. The harness drives one bank at one
 * ACT per tRC, issues REF every tREFI (per its refresh-group rotation)
 * and RFM every RFM_TH ACTs, executes ARR work immediately, and keeps
 * the ground-truth oracle up to date. It processes millions of ACTs per
 * second, which is what the Figure 2 sweeps and the Theorem 1/2
 * validation tests require.
 */

#ifndef MITHRIL_SIM_ACT_HARNESS_HH
#define MITHRIL_SIM_ACT_HARNESS_HH

#include <cstdint>
#include <functional>

#include "dram/rh_oracle.hh"
#include "dram/timing.hh"
#include "trackers/rh_protection.hh"

namespace mithril::sim
{

/** Harness configuration. */
struct ActHarnessConfig
{
    dram::Timing timing;
    std::uint32_t rowsPerBank = 65536;
    std::uint32_t flipTh = 6250;
    std::uint32_t blastRadius = 1;
};

/** Single-bank maximum-rate command stream driver. */
class ActHarness
{
  public:
    ActHarness(const ActHarnessConfig &config,
               trackers::RhProtection *tracker);

    /** Feed one activation (advances virtual time by tRC, interleaving
     *  REF/RFM/preventive work as due). */
    void activate(RowId row);

    /**
     * Drive `count` activations produced by the row source callback
     * (called with the activation index).
     */
    void run(std::uint64_t count,
             const std::function<RowId(std::uint64_t)> &row_source);

    const dram::RhOracle &oracle() const { return oracle_; }
    dram::RhOracle &oracle() { return oracle_; }

    Tick now() const { return now_; }
    std::uint64_t acts() const { return acts_; }
    std::uint64_t refs() const { return refs_; }
    std::uint64_t rfms() const { return rfms_; }
    std::uint64_t preventiveRefreshes() const { return preventive_; }

  private:
    void maybeRefresh();

    ActHarnessConfig config_;
    trackers::RhProtection *tracker_;
    dram::RhOracle oracle_;

    Tick now_ = 0;
    Tick nextRef_;
    std::uint32_t raa_ = 0;
    std::uint64_t acts_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t rfms_ = 0;
    std::uint64_t preventive_ = 0;
    std::vector<RowId> scratch_;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_ACT_HARNESS_HH
