#include "event_queue.hh"

#include "common/logging.hh"

namespace mithril::sim
{

void
EventQueue::schedule(Tick t, Fn fn)
{
    MITHRIL_ASSERT(t >= now_);
    heap_.push(Event{t, seq_++, std::move(fn)});
}

Tick
EventQueue::nextTime() const
{
    return heap_.empty() ? kTickMax : heap_.top().t;
}

Tick
EventQueue::popAndRun()
{
    MITHRIL_ASSERT(!heap_.empty());
    // Copy out before pop so the callback may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.t;
    ev.fn(ev.t);
    return ev.t;
}

} // namespace mithril::sim
