/**
 * @file
 * Minimal discrete-event queue: (tick, insertion-order) ordered
 * callbacks. Insertion order breaks ties so same-tick events run
 * deterministically.
 */

#ifndef MITHRIL_SIM_EVENT_QUEUE_HH
#define MITHRIL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace mithril::sim
{

/** Priority queue of timed callbacks. */
class EventQueue
{
  public:
    using Fn = std::function<void(Tick)>;

    /** Schedule fn at tick t (t must not precede the last pop). */
    void schedule(Tick t, Fn fn);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event (kTickMax when empty). */
    Tick nextTime() const;

    /** Pop the earliest event and run it; returns its tick. */
    Tick popAndRun();

    /** Tick of the last executed event. */
    Tick now() const { return now_; }

  private:
    struct Event
    {
        Tick t;
        std::uint64_t seq;
        Fn fn;
    };

    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            return a.t > b.t || (a.t == b.t && a.seq > b.seq);
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t seq_ = 0;
    Tick now_ = 0;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_EVENT_QUEUE_HH
