#include "experiment.hh"

#include "common/logging.hh"
#include "registry/attack_registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/workload_registry.hh"

namespace mithril::sim
{

RunMetrics
runExperiment(const ExperimentSpec &spec)
{
    spec.validate();

    SystemConfig sys = spec.sys;
    sys.flipTh = spec.flipTh;
    sys.blastRadius = spec.blastRadius;

    const ParamSet params = spec.toParams();
    const registry::SchemeContext scheme_ctx{sys.timing,
                                             sys.geometry};

    const bool attacking = spec.attacking();
    const std::uint32_t benign =
        attacking ? spec.cores - 1 : spec.cores;

    // One address map shared by the attacker generators and the
    // warm-up profiling; it must outlive the System, which owns
    // generators that compose addresses through it on every record.
    mc::AddressMap map(sys.geometry);

    auto make_benign = [&](std::uint32_t core_id) {
        return registry::makeWorkload(
            spec.workload, params, {core_id, benign, spec.seed});
    };
    auto make_attacker = [&]() {
        const registry::AttackContext ctx{
            map, spec.flipTh, benign, spec.seed, make_benign};
        return registry::makeAttack(spec.attack, params, ctx);
    };

    auto tracker = registry::makeScheme(spec.scheme, params,
                                        scheme_ctx);
    trackers::RhProtection *tracker_ptr = tracker.get();

    if (tracker_ptr && spec.trackerWarmupActs > 0) {
        std::vector<RowId> discard;
        auto feed = [&](workload::TraceGenerator &gen,
                        std::uint64_t count) {
            for (std::uint64_t i = 0; i < count; ++i) {
                auto rec = gen.next();
                if (!rec)
                    break;
                mc::Request req;
                req.addr = rec->addr;
                map.decode(req);
                discard.clear();
                tracker_ptr->onActivate(req.bank, req.row, 0, discard);
            }
        };
        if (spec.warmupFromWorkload) {
            const std::uint64_t per_core =
                spec.trackerWarmupActs / benign;
            for (std::uint32_t i = 0; i < benign; ++i) {
                auto gen = make_benign(i);
                feed(*gen, per_core);
            }
        }
        if (attacking) {
            auto gen = make_attacker();
            feed(*gen, spec.trackerWarmupActs);
        }
    }

    System system(sys, std::move(tracker));
    system.snapshotTrackerOps();

    for (std::uint32_t i = 0; i < benign; ++i) {
        cpu::CoreParams core_params;
        core_params.instrBudget = spec.instrPerCore;
        system.addCore(core_params, make_benign(i));
    }
    if (attacking) {
        cpu::CoreParams core_params;
        core_params.instrBudget = ~0ull;  // Runs until the benign
                                          // cores end.
        core_params.excluded = true;
        system.addCore(core_params, make_attacker());
    }

    system.run();

    RunMetrics m;
    m.aggIpc = system.aggregateIpc();
    m.energyPj = system.totalEnergyPj();
    m.simTicks = system.now();

    const auto &stats = system.controller().stats();
    m.acts = stats.activates;
    m.reads = stats.reads;
    m.writes = stats.writes;
    m.rfmIssued = stats.rfmIssued;
    m.rfmSkippedMrr = stats.rfmSkippedByMrr;
    m.arrExecuted = stats.arrExecuted;
    m.throttleStalls = stats.throttleStalls;
    m.avgReadLatencyNs = stats.avgReadLatencyNs();
    m.p95ReadLatencyNs = stats.readLatencyNs.percentile(0.95);
    m.preventiveRefreshes =
        system.device().preventiveCount() + stats.arrExecuted;

    const auto &oracle = system.device().oracle();
    m.maxDisturbance = oracle.maxDisturbanceEver();
    m.bitFlips = oracle.bitFlips();
    if (tracker_ptr)
        m.trackerBytesPerBank = tracker_ptr->tableBytesPerBank();
    return m;
}

double
relativePerf(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.aggIpc > 0.0);
    return 100.0 * value.aggIpc / baseline.aggIpc;
}

double
energyOverheadPct(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.energyPj > 0.0);
    return 100.0 * (value.energyPj - baseline.energyPj) /
           baseline.energyPj;
}

} // namespace mithril::sim
