#include "experiment.hh"

#include <algorithm>
#include <map>

#include "analysis/area_model.hh"
#include "common/logging.hh"
#include "workload/attacks.hh"

namespace mithril::sim
{

std::string
attackName(AttackKind kind)
{
    switch (kind) {
      case AttackKind::None:         return "none";
      case AttackKind::DoubleSided:  return "double-sided";
      case AttackKind::MultiSided:   return "multi-sided";
      case AttackKind::CbfPollution: return "cbf-pollution";
    }
    return "?";
}

AttackKind
attackFromName(const std::string &name)
{
    for (AttackKind kind :
         {AttackKind::None, AttackKind::DoubleSided,
          AttackKind::MultiSided, AttackKind::CbfPollution}) {
        if (attackName(kind) == name)
            return kind;
    }
    fatal("unknown attack: %s", name.c_str());
    return AttackKind::None;
}

namespace
{

/**
 * Sample the benign threads' address streams and return row-granular
 * representative addresses of their hottest (bank, row) pairs — the
 * "profiled rows sharing CBF entries with the benign threads" that the
 * BlockHammer performance adversary activates.
 */
std::vector<Addr>
profileBenignHotRows(const RunConfig &config, const mc::AddressMap &map,
                     std::uint32_t flip_th)
{
    const auto [cbf_size, nbl] =
        analysis::AreaModel::blockHammerConfig(flip_th);
    (void)cbf_size;
    // One tREFW of attack budget pushes ~600K/NBL rows to the
    // blacklist threshold.
    const std::size_t wanted = std::max<std::size_t>(
        16, static_cast<std::size_t>(600000 / nbl));

    struct Key
    {
        BankId bank;
        RowId row;
        bool operator<(const Key &o) const
        {
            return bank != o.bank ? bank < o.bank : row < o.row;
        }
    };
    std::map<Key, std::pair<std::uint64_t, Addr>> freq;
    const std::uint32_t benign = config.cores - 1;
    for (std::uint32_t i = 0; i < benign; ++i) {
        auto gen = makeWorkloadThread(config.workload, i, benign,
                                      config.seed);
        for (int k = 0; k < 30000; ++k) {
            auto rec = gen->next();
            if (!rec)
                break;
            mc::Request req;
            req.addr = rec->addr;
            map.decode(req);
            auto &entry = freq[Key{req.bank, req.row}];
            if (entry.first++ == 0)
                entry.second = rec->addr;
        }
    }

    std::vector<std::pair<std::uint64_t, Addr>> ranked;
    ranked.reserve(freq.size());
    for (const auto &[key, value] : freq)
        ranked.emplace_back(value.first, value.second);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    std::vector<Addr> targets;
    for (std::size_t i = 0; i < ranked.size() && i < wanted; ++i)
        targets.push_back(ranked[i].second);
    return targets;
}

std::unique_ptr<workload::TraceGenerator>
makeAttacker(const RunConfig &config, const mc::AddressMap &map,
             std::uint32_t flip_th)
{
    workload::AttackTarget target;
    target.map = &map;
    target.channel = 0;
    target.rank = 0;
    target.bank = 5;
    target.baseRow = 0x3000;

    switch (config.attack) {
      case AttackKind::DoubleSided:
        return std::make_unique<workload::DoubleSidedAttack>(target);
      case AttackKind::MultiSided:
        return std::make_unique<workload::MultiSidedAttack>(target, 32);
      case AttackKind::CbfPollution: {
        auto targets = profileBenignHotRows(config, map, flip_th);
        if (targets.size() >= 2) {
            return std::make_unique<workload::ProfiledAliasAttack>(
                std::move(targets));
        }
        // Degenerate profile: fall back to blind pollution.
        const auto [cbf_size, nbl] =
            analysis::AreaModel::blockHammerConfig(flip_th);
        (void)nbl;
        const std::uint32_t rows =
            std::max<std::uint32_t>(64, cbf_size / 8);
        return std::make_unique<workload::CbfPollutionAttack>(target,
                                                              rows);
      }
      case AttackKind::None:
        break;
    }
    panic("no attacker for AttackKind::None");
    return nullptr;
}

} // namespace

RunMetrics
runSystem(const RunConfig &config, const trackers::SchemeSpec &scheme)
{
    SystemConfig sys = config.sys;
    sys.flipTh = scheme.flipTh;
    sys.blastRadius = scheme.blastRadius;

    auto tracker =
        trackers::makeScheme(scheme, sys.timing, sys.geometry);
    trackers::RhProtection *tracker_ptr = tracker.get();

    if (tracker_ptr && config.trackerWarmupActs > 0) {
        mc::AddressMap map(sys.geometry);
        std::vector<RowId> discard;
        auto feed = [&](workload::TraceGenerator &gen,
                        std::uint64_t count) {
            for (std::uint64_t i = 0; i < count; ++i) {
                auto rec = gen.next();
                if (!rec)
                    break;
                mc::Request req;
                req.addr = rec->addr;
                map.decode(req);
                discard.clear();
                tracker_ptr->onActivate(req.bank, req.row, 0, discard);
            }
        };
        if (config.warmupFromWorkload) {
            const std::uint32_t benign =
                config.attack != AttackKind::None ? config.cores - 1
                                                  : config.cores;
            const std::uint64_t per_core =
                config.trackerWarmupActs / benign;
            for (std::uint32_t i = 0; i < benign; ++i) {
                auto gen = makeWorkloadThread(config.workload, i,
                                              benign, config.seed);
                feed(*gen, per_core);
            }
        }
        if (config.attack != AttackKind::None) {
            auto gen = makeAttacker(config, map, scheme.flipTh);
            feed(*gen, config.trackerWarmupActs);
        }
    }

    System system(sys, std::move(tracker));
    system.snapshotTrackerOps();

    const bool attacking = config.attack != AttackKind::None;
    const std::uint32_t benign =
        attacking ? config.cores - 1 : config.cores;

    for (std::uint32_t i = 0; i < benign; ++i) {
        cpu::CoreParams params;
        params.instrBudget = config.instrPerCore;
        system.addCore(params,
                       makeWorkloadThread(config.workload, i, benign,
                                          config.seed));
    }
    if (attacking) {
        cpu::CoreParams params;
        params.instrBudget = ~0ull;  // Runs until the benign cores end.
        params.excluded = true;
        mc::AddressMap map(sys.geometry);
        system.addCore(params,
                       makeAttacker(config, map, scheme.flipTh));
    }

    system.run();

    RunMetrics m;
    m.aggIpc = system.aggregateIpc();
    m.energyPj = system.totalEnergyPj();
    m.simTicks = system.now();

    const auto &stats = system.controller().stats();
    m.acts = stats.activates;
    m.reads = stats.reads;
    m.writes = stats.writes;
    m.rfmIssued = stats.rfmIssued;
    m.rfmSkippedMrr = stats.rfmSkippedByMrr;
    m.arrExecuted = stats.arrExecuted;
    m.throttleStalls = stats.throttleStalls;
    m.avgReadLatencyNs = stats.avgReadLatencyNs();
    m.p95ReadLatencyNs = stats.readLatencyNs.percentile(0.95);
    m.preventiveRefreshes =
        system.device().preventiveCount() + stats.arrExecuted;

    const auto &oracle = system.device().oracle();
    m.maxDisturbance = oracle.maxDisturbanceEver();
    m.bitFlips = oracle.bitFlips();
    if (tracker_ptr)
        m.trackerBytesPerBank = tracker_ptr->tableBytesPerBank();
    return m;
}

double
relativePerf(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.aggIpc > 0.0);
    return 100.0 * value.aggIpc / baseline.aggIpc;
}

double
energyOverheadPct(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.energyPj > 0.0);
    return 100.0 * (value.energyPj - baseline.energyPj) /
           baseline.energyPj;
}

} // namespace mithril::sim
