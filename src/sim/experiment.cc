#include "experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "engine/sharded_engine.hh"
#include "registry/attack_registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "registry/workload_registry.hh"
#include "runner/thread_pool.hh"

namespace mithril::sim
{

namespace
{

/**
 * The engine-only experiment body: scheme x source at maximum ACT
 * rate on the sharded ActStream engine — no cores, no MC queues.
 * Inside a sweep worker the shards reuse the sweep's own pool
 * (ThreadPool::current()); standalone runs honour spec.threads.
 */
RunMetrics
runEngineExperiment(const ExperimentSpec &spec)
{
    const SystemConfig &sys = spec.sys;
    const ParamSet params = spec.toParams();
    const registry::SchemeContext scheme_ctx{sys.timing,
                                             sys.geometry};

    engine::ShardedEngineConfig cfg;
    cfg.engine.timing = sys.timing;
    cfg.engine.geometry = sys.geometry;
    cfg.engine.flipTh = spec.flipTh;
    cfg.engine.blastRadius = spec.blastRadius;
    cfg.shards = spec.shards;

    // Pool policy, in priority order: the ambient pool when this job
    // already runs on one (no second pool, no oversubscription), a
    // private pool when threads= asks for one, else inline shards.
    std::unique_ptr<runner::ThreadPool> local_pool;
    if (!runner::ThreadPool::current() && spec.threads > 1) {
        local_pool =
            std::make_unique<runner::ThreadPool>(spec.threads);
        cfg.pool = local_pool.get();
    }

    engine::ShardedActStreamEngine eng(cfg, [&] {
        return registry::makeScheme(spec.scheme, params, scheme_ctx);
    });
    const registry::SourceContext source_ctx{
        sys.timing, sys.geometry, spec.flipTh, spec.seed};
    auto make_stream = [&] {
        return registry::makeActSource(spec.source, params,
                                       source_ctx);
    };

    // Tracker warm-up, mirroring the System path: the tracker
    // observes `warmup=` ACTs at tick 0 before the measured run, the
    // oracle none. Each shard's tracker warms from its own banks'
    // slice of the stream prefix, so warm-up — like the run itself —
    // is byte-identical at any shard count.
    if (spec.trackerWarmupActs > 0) {
        std::vector<RowId> discard;
        engine::ActBatch batch;
        for (std::uint32_t s = 0; s < eng.shardCount(); ++s) {
            trackers::RhProtection *tracker = eng.tracker(s);
            if (!tracker)
                break;
            const auto [lo, hi] = eng.shardRange(s);
            engine::BankFilterSource warm(make_stream(), lo, hi,
                                          spec.trackerWarmupActs);
            for (;;) {
                batch.clear();
                const std::size_t n =
                    warm.fill(batch, engine::ActBatch::kCapacity);
                if (n == 0)
                    break;
                for (std::size_t i = 0; i < n; ++i) {
                    const engine::ActRecord rec = batch.record(i);
                    discard.clear();
                    tracker->onActivate(rec.bank, rec.row, 0,
                                        discard);
                }
            }
        }
    }

    eng.run(make_stream, spec.engineActs);

    RunMetrics m;
    m.acts = eng.acts();
    m.rfmIssued = eng.rfms();
    m.preventiveRefreshes = eng.preventiveRefreshes();
    m.arrExecuted = eng.preventiveRefreshes();
    m.throttleStalls = eng.throttleStalls();
    m.maxDisturbance = eng.maxDisturbanceEver();
    m.bitFlips = eng.bitFlips();
    Tick latest = 0;
    for (BankId b = 0; b < eng.numBanks(); ++b)
        latest = std::max(latest, eng.now(b));
    m.simTicks = latest;
    if (trackers::RhProtection *t = eng.tracker(0))
        m.trackerBytesPerBank = t->tableBytesPerBank();
    return m;
}

} // namespace

RunMetrics
runExperiment(const ExperimentSpec &spec)
{
    spec.validate();

    if (spec.engineRun())
        return runEngineExperiment(spec);

    SystemConfig sys = spec.sys;
    sys.flipTh = spec.flipTh;
    sys.blastRadius = spec.blastRadius;

    const ParamSet params = spec.toParams();
    const registry::SchemeContext scheme_ctx{sys.timing,
                                             sys.geometry};

    const bool attacking = spec.attacking();
    const std::uint32_t benign =
        attacking ? spec.cores - 1 : spec.cores;

    // One address map shared by the attacker generators and the
    // warm-up profiling; it must outlive the System, which owns
    // generators that compose addresses through it on every record.
    mc::AddressMap map(sys.geometry);

    auto make_benign = [&](std::uint32_t core_id) {
        return registry::makeWorkload(
            spec.workload, params, {core_id, benign, spec.seed});
    };
    auto make_attacker = [&]() {
        const registry::AttackContext ctx{
            map, spec.flipTh, benign, spec.seed, make_benign};
        return registry::makeAttack(spec.attack, params, ctx);
    };

    auto tracker = registry::makeScheme(spec.scheme, params,
                                        scheme_ctx);
    trackers::RhProtection *tracker_ptr = tracker.get();

    if (tracker_ptr && spec.trackerWarmupActs > 0) {
        std::vector<RowId> discard;
        auto feed = [&](workload::TraceGenerator &gen,
                        std::uint64_t count) {
            for (std::uint64_t i = 0; i < count; ++i) {
                auto rec = gen.next();
                if (!rec)
                    break;
                mc::Request req;
                req.addr = rec->addr;
                map.decode(req);
                discard.clear();
                tracker_ptr->onActivate(req.bank, req.row, 0, discard);
            }
        };
        if (spec.warmupFromWorkload) {
            const std::uint64_t per_core =
                spec.trackerWarmupActs / benign;
            for (std::uint32_t i = 0; i < benign; ++i) {
                auto gen = make_benign(i);
                feed(*gen, per_core);
            }
        }
        if (attacking) {
            auto gen = make_attacker();
            feed(*gen, spec.trackerWarmupActs);
        }
    }

    System system(sys, std::move(tracker));
    system.snapshotTrackerOps();

    for (std::uint32_t i = 0; i < benign; ++i) {
        cpu::CoreParams core_params;
        core_params.instrBudget = spec.instrPerCore;
        system.addCore(core_params, make_benign(i));
    }
    if (attacking) {
        cpu::CoreParams core_params;
        core_params.instrBudget = ~0ull;  // Runs until the benign
                                          // cores end.
        core_params.excluded = true;
        system.addCore(core_params, make_attacker());
    }

    system.run();

    RunMetrics m;
    m.aggIpc = system.aggregateIpc();
    m.energyPj = system.totalEnergyPj();
    m.simTicks = system.now();

    const auto &stats = system.controller().stats();
    m.acts = stats.activates;
    m.reads = stats.reads;
    m.writes = stats.writes;
    m.rfmIssued = stats.rfmIssued;
    m.rfmSkippedMrr = stats.rfmSkippedByMrr;
    m.arrExecuted = stats.arrExecuted;
    m.throttleStalls = stats.throttleStalls;
    m.avgReadLatencyNs = stats.avgReadLatencyNs();
    m.p95ReadLatencyNs = stats.readLatencyNs.percentile(0.95);
    m.preventiveRefreshes =
        system.device().preventiveCount() + stats.arrExecuted;

    const auto &oracle = system.device().oracle();
    m.maxDisturbance = oracle.maxDisturbanceEver();
    m.bitFlips = oracle.bitFlips();
    if (tracker_ptr)
        m.trackerBytesPerBank = tracker_ptr->tableBytesPerBank();
    return m;
}

double
relativePerf(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.aggIpc > 0.0);
    return 100.0 * value.aggIpc / baseline.aggIpc;
}

double
energyOverheadPct(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.energyPj > 0.0);
    return 100.0 * (value.energyPj - baseline.energyPj) /
           baseline.energyPj;
}

} // namespace mithril::sim
