#include "experiment.hh"

#include <sys/stat.h>

#include <algorithm>

#include "common/logging.hh"
#include "engine/act_trace.hh"
#include "engine/sharded_engine.hh"
#include "registry/attack_registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "registry/workload_registry.hh"
#include "runner/thread_pool.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/telemetry.hh"
#include "trace/pipeline.hh"

namespace mithril::sim
{

namespace
{

/** True when two paths name the same existing file, through any
 *  aliasing (relative vs absolute spellings, symlinks, hardlinks). */
bool
sameFile(const std::string &a, const std::string &b)
{
    if (a == b)
        return true;
    struct stat sa, sb;
    if (::stat(a.c_str(), &sa) != 0 || ::stat(b.c_str(), &sb) != 0)
        return false;
    return sa.st_dev == sb.st_dev && sa.st_ino == sb.st_ino;
}

/**
 * The engine-only experiment body: scheme x source at maximum ACT
 * rate on the sharded ActStream engine — no cores, no MC queues.
 * Inside a sweep worker the shards reuse the sweep's own pool
 * (ThreadPool::current()); standalone runs honour spec.threads.
 */
RunMetrics
runEngineExperiment(const ExperimentSpec &spec)
{
    SystemConfig sys = spec.sys;
    if (spec.channels != 0)
        sys.geometry.channels = spec.channels;
    const ParamSet params = spec.toParams();
    const registry::SchemeContext scheme_ctx{sys.timing,
                                             sys.geometry};

    engine::ShardedEngineConfig cfg;
    cfg.engine.timing = sys.timing;
    cfg.engine.geometry = sys.geometry;
    cfg.engine.flipTh = spec.flipTh;
    cfg.engine.blastRadius = spec.blastRadius;
    cfg.shards = spec.shards;
    // Telemetry: metrics + heatmap under telemetry=, event tracing
    // under trace-events=. Observation only — the engine is
    // byte-identical with any of these enabled.
    cfg.telemetry.metrics = spec.telemetry || !spec.traceEvents.empty();
    cfg.telemetry.events = !spec.traceEvents.empty();
    cfg.telemetry.eventCapacityPerBank = spec.traceCapacity;
    cfg.telemetry.heatmap = spec.telemetry;
    cfg.telemetry.heatmapRegionBudget = spec.heatmapRegions;

    // Pool policy, in priority order: the ambient pool when this job
    // already runs on one (no second pool, no oversubscription), a
    // private pool when threads= asks for one, else inline shards.
    std::unique_ptr<runner::ThreadPool> local_pool;
    if (!runner::ThreadPool::current() && spec.threads > 1) {
        local_pool =
            std::make_unique<runner::ThreadPool>(spec.threads);
        cfg.pool = local_pool.get();
    }

    engine::ShardedActStreamEngine eng(cfg, [&] {
        return registry::makeScheme(spec.scheme, params, scheme_ctx);
    });
    const registry::SourceContext source_ctx{
        sys.timing, sys.geometry, spec.flipTh, spec.seed};
    auto make_stream = [&] {
        return registry::makeActSource(spec.source, params,
                                       source_ctx);
    };

    // record=: capture the exact stream prefix this run will consume
    // — a separate drain of a fresh stream copy, so sharded runs
    // (which pull one filtered copy per shard) record the one
    // canonical global stream. Registry sources are deterministic in
    // their seed, so the capture equals what the run replays.
    // Opening the writer would truncate an input file before the
    // reader ever sees it. Any entry-declared extra naming the
    // record target is treated as that input — "trace=" (act-trace),
    // "trace-file=" (instruction traces), or a user-registered
    // source's own path param; sameFile() sees through aliases.
    auto check_output_path = [&](const char *knob,
                                 const std::string &path) {
        if (path.empty())
            return;
        for (const std::string &key : spec.extras.keys()) {
            const std::string value = spec.extras.getString(key, "");
            if (!value.empty() && sameFile(path, value)) {
                throw registry::SpecError(
                    std::string(knob) + "= and " + key +
                    "= name the same file '" + path +
                    "'; re-capturing a replay needs a different "
                    "output path");
            }
        }
    };
    check_output_path("record", spec.record);
    check_output_path("trace-events", spec.traceEvents);
    // trace-pipeline=: compose the corpus this run replays, before
    // the source is first opened. validate() already pinned
    // source=act-trace + trace=; the pipeline itself guards against
    // writing onto one of its own inputs.
    if (!spec.tracePipeline.empty()) {
        trace::materializePipeline(spec.tracePipeline,
                                   spec.extras.getString("trace", ""),
                                   spec.seed);
    }
    if (!spec.record.empty()) {
        engine::ActTraceWriter writer(spec.record, sys.geometry,
                                      spec.seed, spec.describe());
        auto stream = make_stream();
        engine::ActBatch batch;
        std::uint64_t remaining = spec.engineActs;
        while (remaining > 0) {
            batch.clear();
            const std::size_t n = stream->fill(
                batch,
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    engine::ActBatch::kCapacity, remaining)));
            if (n == 0)
                break;
            for (std::size_t i = 0; i < n; ++i) {
                const engine::ActRecord rec = batch.record(i);
                writer.append(rec.bank, rec.row, rec.tick);
            }
            remaining -= n;
        }
        writer.finalize();
    }

    // Tracker warm-up, mirroring the System path: the tracker
    // observes `warmup=` ACTs at tick 0 before the measured run, the
    // oracle none. Each shard's tracker warms from its own banks'
    // slice of the stream prefix, so warm-up — like the run itself —
    // is byte-identical at any shard count.
    if (spec.trackerWarmupActs > 0) {
        std::vector<RowId> discard;
        engine::ActBatch batch;
        // One stream instance feeds every shard's warm-up slice when
        // the source slices natively (the same probe-and-fall-back
        // the sharded run itself uses), so an act-trace warm-up
        // parses the index once and seeks instead of filter-scanning
        // per shard.
        std::unique_ptr<engine::ActSource> probe = make_stream();
        for (std::uint32_t s = 0; s < eng.shardCount(); ++s) {
            trackers::RhProtection *tracker = eng.tracker(s);
            if (!tracker)
                break;
            const auto [lo, hi] = eng.shardRange(s);
            std::unique_ptr<engine::ActSource> warm;
            if (probe)
                warm = probe->shardSlice(lo, hi,
                                         spec.trackerWarmupActs);
            if (!warm) {
                if (!probe)
                    probe = make_stream();
                warm = std::make_unique<engine::BankFilterSource>(
                    std::move(probe), lo, hi,
                    spec.trackerWarmupActs);
            }
            for (;;) {
                batch.clear();
                const std::size_t n =
                    warm->fill(batch, engine::ActBatch::kCapacity);
                if (n == 0)
                    break;
                for (std::size_t i = 0; i < n; ++i) {
                    const engine::ActRecord rec = batch.record(i);
                    discard.clear();
                    tracker->onActivate(rec.bank, rec.row, 0,
                                        discard);
                }
            }
        }
    }

    eng.run(make_stream, spec.engineActs);

    RunMetrics m;
    m.acts = eng.acts();
    m.rfmIssued = eng.rfms();
    m.preventiveRefreshes = eng.preventiveRefreshes();
    m.arrExecuted = eng.preventiveRefreshes();
    m.throttleStalls = eng.throttleStalls();
    m.maxDisturbance = eng.maxDisturbanceEver();
    m.bitFlips = eng.bitFlips();
    Tick latest = 0;
    for (BankId b = 0; b < eng.numBanks(); ++b)
        latest = std::max(latest, eng.now(b));
    m.simTicks = latest;
    if (trackers::RhProtection *t = eng.tracker(0))
        m.trackerBytesPerBank = t->tableBytesPerBank();
    if (cfg.telemetry.metrics)
        m.telemetry = eng.telemetrySheet().exportFlat();
    if (!spec.traceEvents.empty()) {
        telemetry::writeChromeTraceFile(spec.traceEvents,
                                        eng.mergedEvents(),
                                        spec.scheme, eng.numBanks());
    }
    return m;
}

} // namespace

RunMetrics
runExperiment(const ExperimentSpec &spec)
{
    spec.validate();

    if (spec.engineRun())
        return runEngineExperiment(spec);

    SystemConfig sys = spec.sys;
    sys.flipTh = spec.flipTh;
    sys.blastRadius = spec.blastRadius;
    if (spec.channels != 0)
        sys.geometry.channels = spec.channels;
    if (spec.mcThreads != 0)
        sys.mcThreads = spec.mcThreads;

    const ParamSet params = spec.toParams();
    const registry::SchemeContext scheme_ctx{sys.timing,
                                             sys.geometry};

    const bool attacking = spec.attacking();
    const std::uint32_t benign =
        attacking ? spec.cores - 1 : spec.cores;

    // One address map shared by the attacker generators and the
    // warm-up profiling; it must outlive the System, which owns
    // generators that compose addresses through it on every record.
    mc::AddressMap map(sys.geometry);

    auto make_benign = [&](std::uint32_t core_id) {
        return registry::makeWorkload(
            spec.workload, params, {core_id, benign, spec.seed});
    };
    auto make_attacker = [&]() {
        const registry::AttackContext ctx{
            map, spec.flipTh, benign, spec.seed, make_benign};
        return registry::makeAttack(spec.attack, params, ctx);
    };

    // One tracker instance per channel lane — the same per-partition
    // factory discipline the sharded engine applies to bank shards.
    System system(sys, [&] {
        return registry::makeScheme(spec.scheme, params, scheme_ctx);
    });

    // Warm-up feeds each channel's tracker the ACTs that decode to
    // its banks, mirroring the engine's per-shard warm-up slicing.
    if (system.tracker(0) && spec.trackerWarmupActs > 0) {
        std::vector<RowId> discard;
        auto feed = [&](workload::TraceGenerator &gen,
                        std::uint64_t count) {
            for (std::uint64_t i = 0; i < count; ++i) {
                auto rec = gen.next();
                if (!rec)
                    break;
                mc::Request req;
                req.addr = rec->addr;
                map.decode(req);
                discard.clear();
                system.tracker(req.channel)
                    ->onActivate(req.bank, req.row, 0, discard);
            }
        };
        if (spec.warmupFromWorkload) {
            const std::uint64_t per_core =
                spec.trackerWarmupActs / benign;
            for (std::uint32_t i = 0; i < benign; ++i) {
                auto gen = make_benign(i);
                feed(*gen, per_core);
            }
        }
        if (attacking) {
            auto gen = make_attacker();
            feed(*gen, spec.trackerWarmupActs);
        }
    }

    system.snapshotTrackerOps();

    // record=: tap every ACT the controller commits (bank, row,
    // issue tick) — exactly the stream the tracker observes; warm-up
    // above fed generators directly, so it is not captured. The
    // telemetry heatmap rides the same observer.
    std::unique_ptr<engine::ActTraceWriter> recorder;
    if (!spec.record.empty()) {
        recorder = std::make_unique<engine::ActTraceWriter>(
            spec.record, sys.geometry, spec.seed, spec.describe());
    }
    std::unique_ptr<telemetry::ActHeatmap> heatmap;
    if (spec.telemetry) {
        heatmap = std::make_unique<telemetry::ActHeatmap>(
            sys.geometry.totalBanks(), spec.heatmapRegions);
    }
    if (recorder || heatmap) {
        // System delivers ACTs channel-major per service window with
        // per-bank ticks monotone — the exact order contract of the
        // acttrace writer, at any mcThreads value.
        system.setActObserver(
            [&recorder, &heatmap](BankId bank, RowId row, Tick t) {
                if (recorder)
                    recorder->append(bank, row, t);
                if (heatmap)
                    heatmap->touch(bank, row);
            });
    }

    // trace-events=: mitigation events from the controllers (RFM
    // issue/skip, executed ARRs, throttle stalls), the oracles (flips
    // and near misses), and the trackers (CBS inserts/evictions).
    // One recorder per channel lane — a shared recorder would race
    // when lanes run in parallel — merged in channel order on output.
    // Observation only — scheduling and outcomes are unchanged.
    std::vector<std::unique_ptr<telemetry::EventRecorder>> events;
    if (!spec.traceEvents.empty()) {
        for (std::uint32_t ch = 0; ch < system.channels(); ++ch) {
            auto rec = std::make_unique<telemetry::EventRecorder>(
                sys.geometry.totalBanks(), spec.traceCapacity);
            system.controller(ch).setEventRecorder(rec.get());
            system.device(ch).oracle().setEventRecorder(rec.get());
            if (system.tracker(ch))
                system.tracker(ch)->setEventRecorder(rec.get());
            events.push_back(std::move(rec));
        }
    }

    for (std::uint32_t i = 0; i < benign; ++i) {
        cpu::CoreParams core_params;
        core_params.instrBudget = spec.instrPerCore;
        system.addCore(core_params, make_benign(i));
    }
    if (attacking) {
        cpu::CoreParams core_params;
        core_params.instrBudget = ~0ull;  // Runs until the benign
                                          // cores end.
        core_params.excluded = true;
        system.addCore(core_params, make_attacker());
    }

    system.run();

    if (recorder || heatmap)
        system.setActObserver(nullptr);
    if (recorder)
        recorder->finalize();

    RunMetrics m;
    m.aggIpc = system.aggregateIpc();
    m.energyPj = system.totalEnergyPj();
    m.simTicks = system.now();

    const mc::ControllerStats stats = system.stats();
    m.acts = stats.activates;
    m.reads = stats.reads;
    m.writes = stats.writes;
    m.rfmIssued = stats.rfmIssued;
    m.rfmSkippedMrr = stats.rfmSkippedByMrr;
    m.arrExecuted = stats.arrExecuted;
    m.throttleStalls = stats.throttleStalls;
    m.avgReadLatencyNs = stats.avgReadLatencyNs();
    m.p95ReadLatencyNs = stats.readLatencyNs.percentile(0.95);
    m.preventiveRefreshes =
        system.preventiveCount() + stats.arrExecuted;

    m.maxDisturbance = system.maxDisturbanceEver();
    m.bitFlips = system.bitFlips();
    if (system.tracker(0))
        m.trackerBytesPerBank = system.tracker(0)->tableBytesPerBank();

    if (spec.telemetry || !events.empty()) {
        telemetry::MetricSheet sheet;
        sheet.setCounter("mc.acts", stats.activates);
        sheet.setCounter("mc.reads", stats.reads);
        sheet.setCounter("mc.writes", stats.writes);
        sheet.setCounter("mc.row_hits", stats.rowHits);
        sheet.setCounter("mc.row_misses", stats.rowMisses);
        sheet.setCounter("mc.refreshes", stats.refreshes);
        sheet.setCounter("mc.rfm_issued", stats.rfmIssued);
        sheet.setCounter("mc.rfm_skipped_mrr", stats.rfmSkippedByMrr);
        sheet.setCounter("mc.arr_executed", stats.arrExecuted);
        sheet.setCounter("mc.throttle_stalls", stats.throttleStalls);
        sheet.setCounter("oracle.bit_flips", system.bitFlips());
        sheet.setCounter("oracle.flipped_rows", system.flippedRows());
        sheet.setGauge("oracle.max_disturbance",
                       system.maxDisturbanceEver());
        if (!events.empty()) {
            std::uint64_t emitted = 0, dropped = 0;
            for (const auto &rec : events) {
                for (BankId b = 0; b < rec->numBanks(); ++b)
                    emitted += rec->emitted(b);
                dropped += rec->dropped();
            }
            sheet.setCounter("trace.emitted", emitted);
            sheet.setCounter("trace.dropped", dropped);
        }
        if (heatmap) {
            sheet.setCounter("heatmap.acts", heatmap->totalActs());
            std::uint64_t folds = 0, regions = 0;
            std::uint32_t max_gran = 0;
            for (BankId b = 0; b < heatmap->numBanks(); ++b) {
                folds += heatmap->folds(b);
                max_gran = std::max(max_gran,
                                    heatmap->granularityLog2(b));
            }
            for (const auto &snap : heatmap->snapshot())
                regions += snap.regions.size();
            sheet.setCounter("heatmap.folds", folds);
            sheet.setCounter("heatmap.regions", regions);
            sheet.setGauge("heatmap.max_granularity_log2",
                           static_cast<double>(max_gran));
        }
        if (system.tracker(0)) {
            // exportMetrics() *sets* values, so each channel's tracker
            // exports into its own sheet; mergeFrom then adds counters
            // across channels (in channel order).
            for (std::uint32_t ch = 0; ch < system.channels(); ++ch) {
                telemetry::MetricSheet tracker_sheet;
                system.tracker(ch)->exportMetrics(tracker_sheet);
                sheet.mergeFrom(tracker_sheet);
            }
        }
        m.telemetry = sheet.exportFlat();
    }
    if (!events.empty()) {
        std::vector<const telemetry::EventRecorder *> merged;
        for (std::uint32_t ch = 0; ch < system.channels(); ++ch) {
            system.controller(ch).setEventRecorder(nullptr);
            system.device(ch).oracle().setEventRecorder(nullptr);
            if (system.tracker(ch))
                system.tracker(ch)->setEventRecorder(nullptr);
            merged.push_back(events[ch].get());
        }
        telemetry::writeChromeTraceFile(
            spec.traceEvents, telemetry::mergeEvents(merged),
            spec.scheme, sys.geometry.totalBanks());
    }
    return m;
}

double
relativePerf(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.aggIpc > 0.0);
    return 100.0 * value.aggIpc / baseline.aggIpc;
}

double
energyOverheadPct(const RunMetrics &value, const RunMetrics &baseline)
{
    MITHRIL_ASSERT(baseline.energyPj > 0.0);
    return 100.0 * (value.energyPj - baseline.energyPj) /
           baseline.energyPj;
}

} // namespace mithril::sim
