/**
 * @file
 * One-call experiment runner shared by the benchmark binaries and the
 * integration tests: build a system from an ExperimentSpec (scheme,
 * workload, and attack resolved through the registries), run it, and
 * collect the metrics the paper's figures report.
 */

#ifndef MITHRIL_SIM_EXPERIMENT_HH
#define MITHRIL_SIM_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/experiment_spec.hh"
#include "sim/system.hh"
#include "sim/workload_suite.hh"

namespace mithril::sim
{

/** Everything a figure needs from one run. */
struct RunMetrics
{
    double aggIpc = 0.0;
    double energyPj = 0.0;
    Tick simTicks = 0;

    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rfmIssued = 0;
    std::uint64_t rfmSkippedMrr = 0;
    std::uint64_t arrExecuted = 0;
    std::uint64_t preventiveRefreshes = 0;
    std::uint64_t throttleStalls = 0;

    double maxDisturbance = 0.0;
    std::uint64_t bitFlips = 0;
    double avgReadLatencyNs = 0.0;
    double p95ReadLatencyNs = 0.0;
    double trackerBytesPerBank = 0.0;

    /** Flattened telemetry metric sheet (empty unless telemetry= or
     *  trace-events= requested it). Deterministic: byte-identical at
     *  any shard/pool count. */
    std::map<std::string, double> telemetry;
};

/**
 * Build, run, and measure one experiment. Scheme, workload, and
 * attack construction go through the registries; throws
 * registry::SpecError on unknown names or infeasible configurations
 * (the sweep runner surfaces it per job). A spec with `source=` set
 * runs the sharded ActStream engine over that source instead of a
 * full System (IPC/energy/latency metrics stay zero; ACT, RFM,
 * preventive, and oracle metrics are filled from the engine).
 */
RunMetrics runExperiment(const ExperimentSpec &spec);

/**
 * Relative performance (%) of `value` against `baseline` aggregate
 * IPC, the metric of Figures 9-11.
 */
double relativePerf(const RunMetrics &value, const RunMetrics &baseline);

/** Relative dynamic energy overhead (%) against a baseline run. */
double energyOverheadPct(const RunMetrics &value,
                         const RunMetrics &baseline);

} // namespace mithril::sim

#endif // MITHRIL_SIM_EXPERIMENT_HH
