/**
 * @file
 * One-call experiment runner shared by the benchmark binaries and the
 * integration tests: build a system from an ExperimentSpec (scheme,
 * workload, and attack resolved through the registries), run it, and
 * collect the metrics the paper's figures report.
 *
 * The enum-based RunConfig/AttackKind surface below is a deprecated
 * shim over the registries, kept for callers that predate
 * ExperimentSpec.
 */

#ifndef MITHRIL_SIM_EXPERIMENT_HH
#define MITHRIL_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "sim/experiment_spec.hh"
#include "sim/system.hh"
#include "sim/workload_suite.hh"
#include "trackers/factory.hh"

namespace mithril::sim
{

/** Attacker thread variants (Section VI-A). Deprecated: the attack
 *  registry is open; this enum only spans the original entries. */
enum class AttackKind
{
    None,
    DoubleSided,
    MultiSided,    //!< 32-victim TRRespass-style pattern.
    CbfPollution,  //!< BlockHammer performance adversary.
};

/** Printable attack name ("none", "double-sided", ...). */
std::string attackName(AttackKind kind);

/** Parse an attack name; fatal on unknown names, listing every
 *  registered attack. */
AttackKind attackFromName(const std::string &name);

/** Deprecated enum-based experiment description; superseded by
 *  ExperimentSpec. */
struct RunConfig
{
    SystemConfig sys;
    WorkloadKind workload = WorkloadKind::MixHigh;
    std::uint32_t cores = 16;
    std::uint64_t instrPerCore = 200000;
    AttackKind attack = AttackKind::None;
    std::uint64_t seed = 42;

    /**
     * Tracker warm-up: before the measured run, replay this many
     * activations of the attack pattern (or, with warmupFromWorkload,
     * of the benign address streams) directly into the tracker. This
     * stands in for the CBF/counter pressure that accumulates over a
     * full tREFW in the paper's 400M-instruction runs, which a short
     * simulation cannot build up organically. The ground-truth oracle
     * is *not* warmed, so safety metrics stay exact.
     */
    std::uint64_t trackerWarmupActs = 0;
    bool warmupFromWorkload = false;

    /** The equivalent ExperimentSpec (adopting the scheme knobs). */
    ExperimentSpec toSpec(const trackers::SchemeSpec &scheme) const;
};

/** Everything a figure needs from one run. */
struct RunMetrics
{
    double aggIpc = 0.0;
    double energyPj = 0.0;
    Tick simTicks = 0;

    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rfmIssued = 0;
    std::uint64_t rfmSkippedMrr = 0;
    std::uint64_t arrExecuted = 0;
    std::uint64_t preventiveRefreshes = 0;
    std::uint64_t throttleStalls = 0;

    double maxDisturbance = 0.0;
    std::uint64_t bitFlips = 0;
    double avgReadLatencyNs = 0.0;
    double p95ReadLatencyNs = 0.0;
    double trackerBytesPerBank = 0.0;
};

/**
 * Build, run, and measure one experiment. Scheme, workload, and
 * attack construction go through the registries; throws
 * registry::SpecError on unknown names or infeasible configurations
 * (the sweep runner surfaces it per job).
 */
RunMetrics runExperiment(const ExperimentSpec &spec);

/** Deprecated shim: convert to an ExperimentSpec and run it; fatal
 *  on configuration errors (the historical behavior). */
RunMetrics runSystem(const RunConfig &config,
                     const trackers::SchemeSpec &scheme);

/**
 * Relative performance (%) of `value` against `baseline` aggregate
 * IPC, the metric of Figures 9-11.
 */
double relativePerf(const RunMetrics &value, const RunMetrics &baseline);

/** Relative dynamic energy overhead (%) against a baseline run. */
double energyOverheadPct(const RunMetrics &value,
                         const RunMetrics &baseline);

} // namespace mithril::sim

#endif // MITHRIL_SIM_EXPERIMENT_HH
