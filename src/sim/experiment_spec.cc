#include "sim/experiment_spec.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "registry/attack_registry.hh"
#include "registry/scheme_registry.hh"
#include "registry/source_registry.hh"
#include "registry/workload_registry.hh"

namespace mithril::sim
{

namespace
{

using registry::ParamDesc;
using registry::SpecError;

/** The spec-owned keys with their legal ranges. */
const std::vector<ParamDesc> &
coreParams()
{
    static const std::vector<ParamDesc> descs = {
        {"scheme", ParamDesc::Type::String, "mithril", 0, 0,
         "protection scheme registry name"},
        {"workload", ParamDesc::Type::String, "mix-high", 0, 0,
         "workload registry name"},
        {"attack", ParamDesc::Type::String, "none", 0, 0,
         "attack registry name"},
        {"flip", ParamDesc::Type::Uint, "6250", 1, 1e7,
         "RH threshold (FlipTH)"},
        {"rfm", ParamDesc::Type::Uint, "0", 0, 1e5,
         "RFM threshold (0 = scheme default)"},
        {"ad", ParamDesc::Type::Uint, "200", 0, 1e6,
         "Mithril adaptive refresh threshold"},
        {"blast-radius", ParamDesc::Type::Uint, "1", 1, 4,
         "non-adjacent RH radius"},
        {"scheme-seed", ParamDesc::Type::Uint, "7", 0, 1.8e19,
         "scheme-internal RNG seed"},
        {"cores", ParamDesc::Type::Uint, "16", 1, 1024,
         "total cores (one becomes the attacker when attacking)"},
        {"instr", ParamDesc::Type::Uint, "200000", 1, 1e12,
         "instruction budget per benign core"},
        {"seed", ParamDesc::Type::Uint, "42", 0, 1.8e19,
         "workload RNG seed"},
        {"warmup", ParamDesc::Type::Uint, "0", 0, 1e12,
         "tracker warm-up activations before the measured run"},
        {"warmup-from-workload", ParamDesc::Type::Bool, "0", 0, 0,
         "warm the tracker from the benign streams"},
        {"source", ParamDesc::Type::String, "none", 0, 0,
         "engine ActSource registry name (none = full-System run)"},
        {"record", ParamDesc::Type::String, "", 0, 0,
         "capture the run's ACT stream to this path "
         "(mithril.acttrace.v1; replay with source=act-trace)"},
        {"trace-pipeline", ParamDesc::Type::String, "", 0, 0,
         "compose the replay corpus first: trace-op pipeline "
         "(--list trace-ops) materialized to the trace= path, then "
         "replayed via source=act-trace"},
        {"telemetry", ParamDesc::Type::Bool, "0", 0, 0,
         "collect the telemetry metric sheet + ACT heatmap "
         "(observation only; never affects outcomes)"},
        {"trace-events", ParamDesc::Type::String, "", 0, 0,
         "write the mitigation-event trace to this path as Chrome "
         "trace-event JSON (Perfetto-loadable)"},
        {"heatmap-regions", ParamDesc::Type::Uint, "64", 1, 65536,
         "ACT heatmap region budget per bank (power-of-two "
         "coarsening at budget)"},
        {"trace-capacity", ParamDesc::Type::Uint, "4096", 1, 1e8,
         "mitigation-event ring capacity per bank (newest retained)"},
        {"acts", ParamDesc::Type::Uint, "1000000", 1, 1e12,
         "ACT budget of an engine (source=) run"},
        {"shards", ParamDesc::Type::Uint, "0", 0, 65536,
         "engine bank shards (0 = one per channel); never affects "
         "results, only parallelism"},
        {"threads", ParamDesc::Type::Uint, "0", 0, 1024,
         "worker threads for a standalone engine run (0 = ambient "
         "pool / inline)"},
        {"channels", ParamDesc::Type::Uint, "0", 0, 64,
         "DRAM channels (0 = geometry preset; must be a power of "
         "two); System runs build one frontend lane per channel"},
        {"mc-threads", ParamDesc::Type::Uint, "0", 0, 1024,
         "worker threads for the System's channel lanes (0/1 = "
         "inline); never affects results, only wall-clock"},
    };
    return descs;
}

const ParamDesc *
findDesc(const std::vector<ParamDesc> &descs, const std::string &key)
{
    for (const ParamDesc &desc : descs) {
        if (desc.key == key)
            return &desc;
    }
    return nullptr;
}

/** The desc of an entry-declared key across the spec's selected
 *  entries (source_entry null when source=none), with a printable
 *  owner; nullptr when none declares it. */
const ParamDesc *
findEntryParam(const registry::SchemeRegistry::Entry &scheme_entry,
               const registry::WorkloadRegistry::Entry &workload_entry,
               const registry::AttackRegistry::Entry &attack_entry,
               const registry::SourceRegistry::Entry *source_entry,
               const std::string &key, std::string *owner)
{
    if (const ParamDesc *d = findDesc(scheme_entry.params, key)) {
        *owner = "scheme '" + scheme_entry.name + "'";
        return d;
    }
    if (const ParamDesc *d = findDesc(workload_entry.params, key)) {
        *owner = "workload '" + workload_entry.name + "'";
        return d;
    }
    if (const ParamDesc *d = findDesc(attack_entry.params, key)) {
        *owner = "attack '" + attack_entry.name + "'";
        return d;
    }
    if (source_entry) {
        if (const ParamDesc *d =
                findDesc(source_entry->params, key)) {
            *owner = "source '" + source_entry->name + "'";
            return d;
        }
    }
    return nullptr;
}

/** Range-check one core knob against its coreParams() desc — the
 *  single place the legal ranges live. */
void
checkCoreRange(const char *key, std::uint64_t value)
{
    const ParamDesc *desc = findDesc(coreParams(), key);
    MITHRIL_ASSERT(desc != nullptr);
    const auto min = static_cast<std::uint64_t>(desc->min);
    const auto max = static_cast<std::uint64_t>(desc->max);
    if (value < min || value > max) {
        throw SpecError(std::string(key) + "=" +
                        std::to_string(value) +
                        " is out of range [" + std::to_string(min) +
                        ", " + std::to_string(max) + "]");
    }
}

} // namespace

ExperimentSpec
ExperimentSpec::parse(const ParamSet &params,
                      const std::vector<std::string> &ignore_keys)
{
    ExperimentSpec spec;
    spec.scheme = params.getString("scheme", spec.scheme);
    spec.workload = params.getString("workload", spec.workload);
    spec.attack = params.getString("attack", spec.attack);
    spec.source = params.getString("source", spec.source);

    // Resolve the selected entries first so every later error can cite
    // them — and so aliases canonicalize before anything is stored.
    const auto &scheme_entry =
        registry::schemeRegistry().at(spec.scheme);
    const auto &workload_entry =
        registry::workloadRegistry().at(spec.workload);
    const auto &attack_entry =
        registry::attackRegistry().at(spec.attack);
    const registry::SourceRegistry::Entry *source_entry = nullptr;
    if (spec.source != "none") {
        source_entry = &registry::sourceRegistry().at(spec.source);
        spec.source = source_entry->name;
    }
    spec.scheme = scheme_entry.name;
    spec.workload = workload_entry.name;
    spec.attack = attack_entry.name;

    // Reject unknown keys before reading anything: a typo'd knob must
    // not silently run the default configuration. Value range checks
    // happen in the validate() call below.
    for (const std::string &key : params.keys()) {
        if (findDesc(coreParams(), key))
            continue;
        if (std::find(ignore_keys.begin(), ignore_keys.end(), key) !=
            ignore_keys.end())
            continue;
        std::string owner;
        if (!findEntryParam(scheme_entry, workload_entry,
                            attack_entry, source_entry, key,
                            &owner)) {
            std::vector<std::string> known;
            for (const ParamDesc &d : coreParams())
                known.push_back(d.key);
            for (const auto *entry_params :
                 {&scheme_entry.params, &workload_entry.params,
                  &attack_entry.params}) {
                for (const ParamDesc &d : *entry_params)
                    known.push_back(d.key);
            }
            if (source_entry) {
                for (const ParamDesc &d : source_entry->params)
                    known.push_back(d.key);
            }
            throw SpecError("unknown experiment parameter '" + key +
                            "'; accepted parameters: " +
                            registry::joinSorted(known));
        }
        spec.extras.set(key, params.getString(key));
    }

    // strtoull-level format errors in the numeric knobs below stay
    // fatal() (ParamSet semantics); range errors throw SpecError via
    // validate().
    spec.flipTh = params.getUint32("flip", spec.flipTh);
    spec.rfmTh = params.getUint32("rfm", spec.rfmTh);
    spec.adTh = params.getUint32("ad", spec.adTh);
    spec.blastRadius =
        params.getUint32("blast-radius", spec.blastRadius);
    spec.schemeSeed = params.getUint("scheme-seed", spec.schemeSeed);
    spec.cores = params.getUint32("cores", spec.cores);
    spec.instrPerCore = params.getUint("instr", spec.instrPerCore);
    spec.seed = params.getUint("seed", spec.seed);
    spec.trackerWarmupActs =
        params.getUint("warmup", spec.trackerWarmupActs);
    spec.warmupFromWorkload = params.getBool(
        "warmup-from-workload", spec.warmupFromWorkload);
    spec.record = params.getString("record", spec.record);
    spec.tracePipeline =
        params.getString("trace-pipeline", spec.tracePipeline);
    spec.telemetry = params.getBool("telemetry", spec.telemetry);
    spec.traceEvents =
        params.getString("trace-events", spec.traceEvents);
    spec.heatmapRegions =
        params.getUint32("heatmap-regions", spec.heatmapRegions);
    spec.traceCapacity =
        params.getUint32("trace-capacity", spec.traceCapacity);
    spec.engineActs = params.getUint("acts", spec.engineActs);
    spec.shards = params.getUint32("shards", spec.shards);
    spec.threads = params.getUint32("threads", spec.threads);
    spec.channels = params.getUint32("channels", spec.channels);
    spec.mcThreads = params.getUint32("mc-threads", spec.mcThreads);
    spec.validate();
    return spec;
}

ExperimentSpec
ExperimentSpec::fromParams(const ParamSet &params,
                           const std::vector<std::string> &ignore_keys)
{
    try {
        return parse(params, ignore_keys);
    } catch (const SpecError &err) {
        fatal("%s", err.what());
    }
    return {};
}

void
ExperimentSpec::validate() const
{
    const auto &scheme_entry = registry::schemeRegistry().at(scheme);
    const auto &workload_entry =
        registry::workloadRegistry().at(workload);
    const auto &attack_entry = registry::attackRegistry().at(attack);
    const registry::SourceRegistry::Entry *source_entry =
        source != "none" ? &registry::sourceRegistry().at(source)
                         : nullptr;

    checkCoreRange("flip", flipTh);
    checkCoreRange("rfm", rfmTh);
    checkCoreRange("ad", adTh);
    checkCoreRange("blast-radius", blastRadius);
    checkCoreRange("cores", cores);
    checkCoreRange("instr", instrPerCore);
    checkCoreRange("warmup", trackerWarmupActs);
    checkCoreRange("acts", engineActs);
    checkCoreRange("shards", shards);
    checkCoreRange("threads", threads);
    checkCoreRange("heatmap-regions", heatmapRegions);
    checkCoreRange("trace-capacity", traceCapacity);
    checkCoreRange("channels", channels);
    checkCoreRange("mc-threads", mcThreads);
    if (channels != 0 && (channels & (channels - 1)) != 0) {
        throw SpecError("channels=" + std::to_string(channels) +
                        " must be a power of two (the address map "
                        "interleaves by channel bits)");
    }
    if (attacking() && !engineRun() && cores < 2) {
        throw SpecError("attack '" + attack +
                        "' needs cores >= 2 (one core becomes the "
                        "attacker)");
    }
    if (!tracePipeline.empty()) {
        // The pipeline writes the corpus the replay source reads, so
        // both ends must be declared. (source_entry->name resolves
        // aliases.)
        if (!source_entry || source_entry->name != "act-trace" ||
            !extras.has("trace")) {
            throw SpecError(
                "trace-pipeline= needs source=act-trace and "
                "trace=<path> (the pipeline materializes to the "
                "trace= path, which the run then replays)");
        }
    }

    for (const std::string &key : extras.keys()) {
        std::string owner;
        const ParamDesc *desc =
            findEntryParam(scheme_entry, workload_entry,
                           attack_entry, source_entry, key, &owner);
        if (!desc) {
            throw SpecError(
                "parameter '" + key + "' is not declared by scheme '" +
                scheme + "', workload '" + workload + "', attack '" +
                attack + "', or source '" + source + "'");
        }
        registry::checkParam(owner, *desc, extras);
    }
}

ParamSet
ExperimentSpec::toParams() const
{
    ParamSet params;
    params.set("scheme", scheme);
    params.set("workload", workload);
    params.set("attack", attack);
    params.set("flip", std::to_string(flipTh));
    params.set("rfm", std::to_string(rfmTh));
    params.set("ad", std::to_string(adTh));
    params.set("blast-radius", std::to_string(blastRadius));
    params.set("scheme-seed", std::to_string(schemeSeed));
    params.set("cores", std::to_string(cores));
    params.set("instr", std::to_string(instrPerCore));
    params.set("seed", std::to_string(seed));
    params.set("warmup", std::to_string(trackerWarmupActs));
    params.set("warmup-from-workload",
               warmupFromWorkload ? "1" : "0");
    // The capture path is off by default; like the extras it only
    // appears when set, so existing describe() goldens are stable.
    if (!record.empty())
        params.set("record", record);
    if (!tracePipeline.empty())
        params.set("trace-pipeline", tracePipeline);
    // Telemetry knobs follow the same non-default-only discipline.
    if (telemetry)
        params.set("telemetry", "1");
    if (!traceEvents.empty())
        params.set("trace-events", traceEvents);
    if (heatmapRegions != 64)
        params.set("heatmap-regions", std::to_string(heatmapRegions));
    if (traceCapacity != 4096)
        params.set("trace-capacity", std::to_string(traceCapacity));
    if (channels != 0)
        params.set("channels", std::to_string(channels));
    if (mcThreads != 0)
        params.set("mc-threads", std::to_string(mcThreads));
    params.set("source", source);
    params.set("acts", std::to_string(engineActs));
    params.set("shards", std::to_string(shards));
    params.set("threads", std::to_string(threads));
    for (const std::string &key : extras.keys())
        params.set(key, extras.getString(key));
    return params;
}

std::string
ExperimentSpec::describe() const
{
    const ParamSet params = toParams();
    std::string out;
    for (const std::string &key : params.keys()) {
        if (!out.empty())
            out += " ";
        out += key + "=" + params.getString(key);
    }
    return out;
}

} // namespace mithril::sim
