/**
 * @file
 * The unified experiment description: ONE spec object naming the
 * protection scheme, workload, and attack by registry name, plus every
 * shared knob the evaluation varies. It subsumed (and replaced) the historical
 * RunConfig + SchemeSpec pair and is constructed from a ParamSet, so
 * the CLI, sweep grids, and tests share one parser:
 *
 *   auto spec = sim::ExperimentSpec::fromParams(
 *       ParamSet::fromString("scheme=mithril flip=6250 "
 *                            "workload=mix-high attack=none"));
 *   sim::RunMetrics m = sim::runExperiment(spec);
 *
 * Validation is eager: unknown scheme/workload/attack names throw
 * registry::SpecError listing every registered name, out-of-range
 * knobs report the legal range, and a key neither owned by the spec
 * nor declared by a selected registry entry is rejected outright.
 * describe() renders the spec as a canonical sorted "k=v" line that
 * round-trips through ParamSet::fromString — the basis of golden-file
 * tests and sweep labels.
 */

#ifndef MITHRIL_SIM_EXPERIMENT_SPEC_HH
#define MITHRIL_SIM_EXPERIMENT_SPEC_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/system.hh"

namespace mithril::sim
{

/** Full experiment description over registry names. */
struct ExperimentSpec
{
    // ------------------------------------------------ registry axes
    std::string scheme = "mithril";
    std::string workload = "mix-high";
    std::string attack = "none";
    /** Engine ActSource registry name; "none" = full-System run. Any
     *  other value runs the max-rate sharded ActStream engine over
     *  this source instead of building cores/MC — the engine-only
     *  sweep path (scheme x source grids at engine speed). */
    std::string source = "none";

    // ------------------------------------------- engine-run knobs
    /** ACT budget of an engine (source=) run. */
    std::uint64_t engineActs = 1000000;
    /** Bank shards of an engine run (0 = one per channel). Never
     *  affects results — sharded output is byte-identical at any
     *  shard count — only the available parallelism. */
    std::uint32_t shards = 0;
    /** Worker threads for a *standalone* engine run (0 = the ambient
     *  pool when running inside a sweep worker, else inline). */
    std::uint32_t threads = 0;

    // ------------------------------------------------- scheme knobs
    std::uint32_t flipTh = 6250;
    std::uint32_t rfmTh = 0;       //!< 0 = the scheme's auto default.
    std::uint32_t adTh = 200;
    std::uint32_t blastRadius = 1;
    std::uint64_t schemeSeed = 7;

    // ---------------------------------------------------- run knobs
    std::uint32_t cores = 16;
    std::uint64_t instrPerCore = 200000;
    std::uint64_t seed = 42;
    std::uint64_t trackerWarmupActs = 0;
    bool warmupFromWorkload = false;

    /** Capture the run's ACT stream to this path as a
     *  mithril.acttrace.v1 file (empty = off). A System run records
     *  every ACT the controller commits; an engine run records the
     *  exact source prefix the ACT budget admits. Replay it with
     *  source=act-trace trace=<path>. */
    std::string record;

    /** Compose the replay corpus before the run: a trace-op pipeline
     *  (see `--list trace-ops` and trace/pipeline.hh) materialized to
     *  the extras' trace= path, which source=act-trace then replays.
     *  Empty = replay the trace file as-is. */
    std::string tracePipeline;

    // ---------------------------------------------- telemetry knobs
    /** Collect the telemetry metric sheet + ACT heatmap for this run
     *  (reported in sweep outputs as the per-job `telemetry` map).
     *  Never affects simulated outcomes — only what is observed. */
    bool telemetry = false;
    /** Write the run's mitigation-event trace to this path as Chrome
     *  trace-event JSON (Perfetto-loadable; empty = off). Implies
     *  event collection; bounded by traceCapacity events per bank. */
    std::string traceEvents;
    /** ACT heatmap region budget per bank (power-of-two coarsening
     *  keeps distinct regions at or below this). */
    std::uint32_t heatmapRegions = 64;
    /** Mitigation-event ring capacity per bank (newest retained). */
    std::uint32_t traceCapacity = 4096;

    // ------------------------------------------- geometry/parallelism
    /** DRAM channels (0 = the geometry preset's count, a power of
     *  two). A System run builds one frontend lane per channel; an
     *  engine run shards over the same widened geometry. */
    std::uint32_t channels = 0;
    /** Worker threads for the System's channel lanes (0 or 1 =
     *  inline). Never affects results — lane interleave is
     *  deterministic at any value — only wall-clock. */
    std::uint32_t mcThreads = 0;

    /** Entry-declared extra tunables (e.g. victims=, mean-gap=),
     *  validated against the selected entries' declarations. */
    ParamSet extras;

    /** Simulator internals (timing/geometry/MC/LLC presets). Not part
     *  of the ParamSet surface; tests and ablations mutate it
     *  directly. */
    SystemConfig sys;

    /** True when an attacker core runs ("attack" != "none"). */
    bool
    attacking() const
    {
        return attack != "none";
    }

    /** True when this spec runs the ActStream engine, not a System. */
    bool
    engineRun() const
    {
        return source != "none";
    }

    /**
     * Parse and validate a spec from parameters. Keys listed in
     * `ignore_keys` are skipped (caller-owned knobs like jobs=).
     * Throws registry::SpecError with the full candidate list / legal
     * range on any invalid input; names are canonicalized (aliases
     * resolved) on success.
     */
    static ExperimentSpec
    parse(const ParamSet &params,
          const std::vector<std::string> &ignore_keys = {});

    /** As parse(), but fatal() on invalid input (CLI front ends). */
    static ExperimentSpec
    fromParams(const ParamSet &params,
               const std::vector<std::string> &ignore_keys = {});

    /**
     * Re-validate a (possibly hand-built) spec: registry names exist,
     * numeric knobs are in range, extras are declared by the selected
     * entries. Throws registry::SpecError.
     */
    void validate() const;

    /**
     * Canonical "k=v k=v ..." rendering, keys sorted, every shared
     * knob explicit. Deterministic, and
     * `parse(ParamSet::fromString(describe()))` reproduces the spec.
     */
    std::string describe() const;

    /** The spec as a ParamSet (the same pairs describe() prints) —
     *  what registry factories receive. */
    ParamSet toParams() const;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_EXPERIMENT_SPEC_HH
