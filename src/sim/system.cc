#include "system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::sim
{

System::System(const SystemConfig &config,
               std::unique_ptr<trackers::RhProtection> tracker)
    : config_(config), tracker_(std::move(tracker))
{
    device_ = std::make_unique<dram::Device>(
        config_.timing, config_.geometry, config_.flipTh,
        config_.blastRadius);
    device_->setTracker(tracker_.get());
    map_ = std::make_unique<mc::AddressMap>(config_.geometry);
    controller_ = std::make_unique<mc::Controller>(
        *device_, *map_, config_.mcParams);
    cache_ = std::make_unique<cpu::Cache>(config_.cacheParams);

    controller_->setCompletionCallback(
        [this](const mc::Request &req, Tick completion) {
            if (!req.tracked || req.coreId >= cores_.size())
                return;
            const std::uint32_t core_id = req.coreId;
            evq_.schedule(completion, [this, core_id](Tick t) {
                cores_[core_id]->onCompletion(t);
                wakeCore(core_id, t);
            });
        });
}

cpu::Core &
System::addCore(const cpu::CoreParams &params,
                std::unique_ptr<workload::TraceGenerator> trace)
{
    MITHRIL_ASSERT(!started_);
    const auto id = static_cast<std::uint32_t>(cores_.size());
    traces_.push_back(std::move(trace));
    cores_.push_back(
        std::make_unique<cpu::Core>(id, params, traces_.back().get()));
    cores_.back()->setAccessFn(
        [this](std::uint32_t core_id, const workload::TraceRecord &rec,
               Tick now) { return access(core_id, rec, now); });
    return *cores_.back();
}

cpu::Core::AccessOutcome
System::access(std::uint32_t core_id, const workload::TraceRecord &rec,
               Tick now)
{
    cpu::Core::AccessOutcome outcome;

    auto enqueue = [&](Addr addr, bool write, bool tracked) -> bool {
        mc::Request req;
        req.addr = addr;
        req.isWrite = write;
        req.tracked = tracked;
        req.coreId = core_id;
        map_->decode(req);
        return controller_->enqueue(req, now);
    };

    if (rec.uncached) {
        outcome.accepted = enqueue(rec.addr, rec.write, true);
        outcome.missOutstanding = outcome.accepted;
        return outcome;
    }

    // Check capacity of the target channel before touching the cache:
    // a miss may need two queue slots (fill + writeback), and probing
    // the LRU state before knowing the requests fit would corrupt it
    // on retry.
    {
        mc::Request probe;
        probe.addr = rec.addr;
        map_->decode(probe);
        if (controller_->queueDepth(probe.channel) + 2 >
            config_.mcParams.queueCapacity) {
            outcome.accepted = false;
            return outcome;
        }
    }

    const auto result = cache_->access(rec.addr, rec.write);
    if (result.hit)
        return outcome;  // Hit: no DRAM traffic.

    const bool accepted = enqueue(rec.addr, rec.write, true);
    MITHRIL_ASSERT(accepted);
    if (result.writeback)
        enqueue(result.writebackAddr, true, false);
    outcome.missOutstanding = true;
    return outcome;
}

void
System::wakeCore(std::uint32_t core_id, Tick now)
{
    cpu::Core &core = *cores_[core_id];
    const Tick next = core.tryProgress(now);
    if (next != kTickMax) {
        MITHRIL_ASSERT(next > now);
        evq_.schedule(next, [this, core_id](Tick t) {
            wakeCore(core_id, t);
        });
    }
}

bool
System::benignDone() const
{
    bool any_benign = false;
    for (const auto &core : cores_) {
        if (core->excluded())
            continue;
        any_benign = true;
        if (!core->done())
            return false;
    }
    return any_benign;
}

void
System::run()
{
    MITHRIL_ASSERT(!started_);
    started_ = true;

    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        evq_.schedule(0, [this, i](Tick t) { wakeCore(i, t); });
    }

    Tick ctrl_next = 0;
    while (!benignDone()) {
        const Tick t_ev = evq_.nextTime();
        if (ctrl_next <= t_ev) {
            if (ctrl_next > config_.horizon)
                break;
            now_ = ctrl_next;
            ctrl_next = controller_->service(now_);
            continue;
        }
        if (t_ev == kTickMax || t_ev > config_.horizon)
            break;
        now_ = evq_.popAndRun();
        ctrl_next = std::min(ctrl_next, now_);
    }
}

double
System::aggregateIpc() const
{
    double sum = 0.0;
    for (const auto &core : cores_) {
        if (!core->excluded())
            sum += core->ipc();
    }
    return sum;
}

double
System::totalEnergyPj() const
{
    dram::EnergyMeter meter = device_->energy();
    if (tracker_)
        meter.addTrackerOps(tracker_->logicOps() - trackerOpBaseline_);
    return meter.totalPj();
}

void
System::snapshotTrackerOps()
{
    trackerOpBaseline_ = tracker_ ? tracker_->logicOps() : 0;
}

void
System::exportStats(StatRegistry &registry) const
{
    const auto &mc = controller_->stats();
    registry.counter("mc.reads").set(mc.reads);
    registry.counter("mc.writes").set(mc.writes);
    registry.counter("mc.rowHits").set(mc.rowHits);
    registry.counter("mc.rowMisses").set(mc.rowMisses);
    registry.counter("mc.activates").set(mc.activates);
    registry.counter("mc.precharges").set(mc.precharges);
    registry.counter("mc.refreshes").set(mc.refreshes);
    registry.counter("mc.rfmIssued").set(mc.rfmIssued);
    registry.counter("mc.rfmSkippedByMrr").set(mc.rfmSkippedByMrr);
    registry.counter("mc.arrExecuted").set(mc.arrExecuted);
    registry.counter("mc.throttleStalls").set(mc.throttleStalls);
    registry.average("mc.readLatencyNs").sample(mc.avgReadLatencyNs());

    const auto &energy = device_->energy();
    registry.counter("dram.acts").set(energy.acts());
    registry.counter("dram.pres").set(energy.pres());
    registry.counter("dram.refreshRows").set(energy.refreshRows());
    registry.counter("dram.preventiveRows").set(
        energy.preventiveRows());
    registry.counter("dram.rfmCount").set(device_->rfmCount());
    registry.counter("dram.rfmSkipped").set(device_->rfmSkipped());

    registry.counter("cache.hits").set(cache_->hits());
    registry.counter("cache.misses").set(cache_->misses());
    registry.counter("cache.writebacks").set(cache_->writebacks());

    const auto &oracle = device_->oracle();
    registry.counter("rh.bitFlips").set(oracle.bitFlips());
    registry.counter("rh.flippedRows").set(oracle.flippedRows());
    registry.counter("rh.maxDisturbance")
        .set(static_cast<std::uint64_t>(oracle.maxDisturbanceEver()));

    for (const auto &core : cores_) {
        const std::string prefix =
            "core" + std::to_string(core->id());
        registry.counter(prefix + ".instructions")
            .set(core->instructionsRetired());
        registry.average(prefix + ".ipc").sample(core->ipc());
    }
}

} // namespace mithril::sim
