#include "system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::sim
{

System::System(const SystemConfig &config, TrackerFactory make_tracker)
    : config_(config)
{
    map_ = std::make_unique<mc::AddressMap>(config_.geometry);
    lookahead_ =
        std::min(config_.timing.tCL, config_.timing.tCWL) +
        config_.timing.tBL;

    lanes_.reserve(config_.geometry.channels);
    for (std::uint32_t ch = 0; ch < config_.geometry.channels; ++ch) {
        auto lane = std::make_unique<Lane>();
        lane->device = std::make_unique<dram::Device>(
            config_.timing, config_.geometry, config_.flipTh,
            config_.blastRadius);
        if (make_tracker)
            lane->tracker = make_tracker();
        lane->device->setTracker(lane->tracker.get());
        lane->controller = std::make_unique<mc::Controller>(
            *lane->device, *map_, config_.mcParams, ch);

        // Completions are buffered lane-locally and turned into event
        // queue entries only at the window drain (in channel order):
        // the callback may fire on a worker thread, and the drain
        // order is what keeps the event queue's tie-breaking sequence
        // numbers deterministic at any pool size.
        Lane *lp = lane.get();
        lane->controller->setCompletionCallback(
            [this, lp](const mc::Request &req, Tick completion) {
                if (!req.tracked || req.coreId >= cores_.size())
                    return;
                lp->completions.push_back({completion, req.coreId});
            });
        lanes_.push_back(std::move(lane));
    }
    cache_ = std::make_unique<cpu::Cache>(config_.cacheParams);
}

void
System::setActObserver(dram::Device::ActObserver observer)
{
    actObserver_ = std::move(observer);
    for (auto &lane : lanes_) {
        if (actObserver_) {
            Lane *lp = lane.get();
            lane->device->setActObserver(
                [lp](BankId b, RowId r, Tick t) {
                    lp->acts.push_back({b, r, t});
                });
        } else {
            lane->device->setActObserver(nullptr);
        }
    }
}

cpu::Core &
System::addCore(const cpu::CoreParams &params,
                std::unique_ptr<workload::TraceGenerator> trace)
{
    MITHRIL_ASSERT(!started_);
    const auto id = static_cast<std::uint32_t>(cores_.size());
    traces_.push_back(std::move(trace));
    cores_.push_back(
        std::make_unique<cpu::Core>(id, params, traces_.back().get()));
    coreWake_.push_back(kTickMax);
    cores_.back()->setAccessFn(
        [this](std::uint32_t core_id, const workload::TraceRecord &rec,
               Tick now) { return access(core_id, rec, now); });
    return *cores_.back();
}

cpu::Core::AccessOutcome
System::access(std::uint32_t core_id, const workload::TraceRecord &rec,
               Tick now)
{
    cpu::Core::AccessOutcome outcome;

    auto channelOf = [&](Addr addr) {
        mc::Request probe;
        probe.addr = addr;
        map_->decode(probe);
        return probe.channel;
    };
    auto enqueue = [&](Addr addr, bool write, bool tracked) -> bool {
        mc::Request req;
        req.addr = addr;
        req.isWrite = write;
        req.tracked = tracked;
        req.coreId = core_id;
        map_->decode(req);
        return lanes_[req.channel]->controller->enqueue(req, now);
    };

    if (rec.uncached) {
        outcome.accepted = enqueue(rec.addr, rec.write, true);
        outcome.missOutstanding = outcome.accepted;
        return outcome;
    }

    // Reserve queue slots in every channel the access may touch
    // *before* mutating the cache, so a rejected access can retry
    // with unchanged LRU state. A miss needs one slot for the fill —
    // and, when the victim line is dirty, one slot in the channel its
    // writeback decodes to, which (for cache lines wider than the
    // channel-interleave granularity) need not be the fill's channel.
    const auto victim = cache_->peekVictim(rec.addr);
    if (!victim.hit) {
        const std::uint32_t fill_ch = channelOf(rec.addr);
        std::size_t fill_need = 1;
        if (victim.writeback) {
            const std::uint32_t wb_ch = channelOf(victim.writebackAddr);
            if (wb_ch == fill_ch) {
                ++fill_need;
            } else if (lanes_[wb_ch]->controller->queueDepth() + 1 >
                       config_.mcParams.queueCapacity) {
                outcome.accepted = false;
                return outcome;
            }
        }
        if (lanes_[fill_ch]->controller->queueDepth() + fill_need >
            config_.mcParams.queueCapacity) {
            outcome.accepted = false;
            return outcome;
        }
    }

    const auto result = cache_->access(rec.addr, rec.write);
    MITHRIL_ASSERT(result.hit == victim.hit);
    MITHRIL_ASSERT(result.writeback == victim.writeback);
    if (result.hit)
        return outcome;  // Hit: no DRAM traffic.

    const bool accepted = enqueue(rec.addr, rec.write, true);
    MITHRIL_ASSERT(accepted);
    if (result.writeback) {
        // The slot was reserved above; a failed enqueue here would be
        // silent write loss (the bug this path regressed with before).
        const bool wb_accepted =
            enqueue(result.writebackAddr, true, false);
        MITHRIL_ASSERT_MSG(wb_accepted,
                           "cross-channel writeback dropped: no queue "
                           "slot despite reservation");
    }
    outcome.missOutstanding = true;
    return outcome;
}

void
System::wakeCore(std::uint32_t core_id, Tick now)
{
    cpu::Core &core = *cores_[core_id];
    const Tick next = core.tryProgress(now);
    if (next != kTickMax) {
        MITHRIL_ASSERT(next > now);
        scheduleWake(core_id, next);
    }
}

void
System::scheduleWake(std::uint32_t core_id, Tick when)
{
    // One live wake chain per core. A pending wake at or before `when`
    // re-derives the core's next tick when it fires, so a second event
    // would be pure overhead — and a core polling a full queue would
    // otherwise gain one chain per completion, growing the event rate
    // without bound over the run.
    if (coreWake_[core_id] <= when)
        return;
    coreWake_[core_id] = when;
    evq_.schedule(when, [this, core_id](Tick t) {
        if (coreWake_[core_id] == t)
            coreWake_[core_id] = kTickMax;
        wakeCore(core_id, t);
    });
}

bool
System::benignDone() const
{
    bool any_benign = false;
    for (const auto &core : cores_) {
        if (core->excluded())
            continue;
        any_benign = true;
        if (!core->done())
            return false;
    }
    return any_benign;
}

void
System::advanceLane(Lane &lane, Tick window_end)
{
    while (lane.next <= window_end) {
        const Tick t = lane.next;
        lane.lastServiced = t;
        lane.next = lane.controller->service(t);
        MITHRIL_ASSERT(lane.next > t);
    }
}

void
System::run()
{
    MITHRIL_ASSERT(!started_);
    started_ = true;

    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        scheduleWake(i, 0);

    // Lane pool policy: opt-in only. Window granularity is a few ns of
    // simulated time, so the parallelFor hand-off must be paid for by
    // real per-lane work — sweeps running many Systems concurrently
    // keep mcThreads=1 and parallelize across jobs instead.
    runner::ThreadPool *pool = nullptr;
    if (config_.mcThreads > 1 && lanes_.size() > 1) {
        pool = runner::ThreadPool::current();
        if (!pool) {
            const unsigned workers =
                std::min<unsigned>(config_.mcThreads,
                                   static_cast<unsigned>(lanes_.size()));
            ownPool_ = std::make_unique<runner::ThreadPool>(workers);
            pool = ownPool_.get();
        }
    }

    while (!benignDone()) {
        Tick t_mc = kTickMax;
        for (const auto &lane : lanes_)
            t_mc = std::min(t_mc, lane->next);
        const Tick t_ev = evq_.nextTime();

        if (t_mc <= t_ev) {
            // Lanes are due strictly before the next event: advance
            // every due lane through the causality window. No command
            // issued inside [t_mc, window_end] can produce a
            // completion (hence a core wakeup, hence a new request)
            // before t_mc + lookahead_, so the lanes are mutually
            // independent over the whole window and may run in
            // parallel — or serially in channel order — with
            // byte-identical results.
            if (t_mc > config_.horizon)
                break;
            Tick window_end = std::min(t_ev, config_.horizon);
            window_end = std::min(window_end, t_mc + lookahead_);

            due_.clear();
            for (auto &lane : lanes_)
                if (lane->next <= window_end)
                    due_.push_back(lane.get());
            if (pool && due_.size() > 1) {
                pool->parallelFor(due_.size(), [&](std::size_t i) {
                    advanceLane(*due_[i], window_end);
                });
            } else {
                for (Lane *lane : due_)
                    advanceLane(*lane, window_end);
            }
            for (const Lane *lane : due_)
                now_ = std::max(now_, lane->lastServiced);

            // Drain the lane buffers in channel order: completions
            // become event-queue entries (tie-broken by insertion
            // sequence — hence by channel), ACT records reach the
            // observer channel-major with per-bank ticks monotone.
            for (auto &lane : lanes_) {
                if (actObserver_) {
                    for (const Lane::Act &act : lane->acts)
                        actObserver_(act.bank, act.row, act.tick);
                }
                lane->acts.clear();
                for (const Lane::Completion &c : lane->completions) {
                    const std::uint32_t core_id = c.coreId;
                    evq_.schedule(c.tick, [this, core_id](Tick t) {
                        cores_[core_id]->onCompletion(t);
                        wakeCore(core_id, t);
                    });
                }
                lane->completions.clear();
            }
            continue;
        }

        if (t_ev == kTickMax || t_ev > config_.horizon)
            break;
        now_ = evq_.popAndRun();
        // The event may have enqueued requests; give every lane a
        // chance to act at the current tick.
        for (auto &lane : lanes_)
            lane->next = std::min(lane->next, now_);
    }
}

double
System::aggregateIpc() const
{
    double sum = 0.0;
    for (const auto &core : cores_) {
        if (!core->excluded())
            sum += core->ipc();
    }
    return sum;
}

mc::ControllerStats
System::stats() const
{
    mc::ControllerStats merged;
    for (const auto &lane : lanes_)
        merged.mergeFrom(lane->controller->stats());
    return merged;
}

dram::EnergyMeter
System::energy() const
{
    dram::EnergyMeter merged;
    for (const auto &lane : lanes_)
        merged.mergeFrom(lane->device->energy());
    return merged;
}

std::uint64_t
System::bitFlips() const
{
    std::uint64_t sum = 0;
    for (const auto &lane : lanes_)
        sum += lane->device->oracle().bitFlips();
    return sum;
}

std::uint64_t
System::flippedRows() const
{
    std::uint64_t sum = 0;
    for (const auto &lane : lanes_)
        sum += lane->device->oracle().flippedRows();
    return sum;
}

double
System::maxDisturbanceEver() const
{
    double max_d = 0.0;
    for (const auto &lane : lanes_)
        max_d = std::max(max_d,
                         lane->device->oracle().maxDisturbanceEver());
    return max_d;
}

std::uint64_t
System::preventiveCount() const
{
    std::uint64_t sum = 0;
    for (const auto &lane : lanes_)
        sum += lane->device->preventiveCount();
    return sum;
}

std::uint64_t
System::rfmCount() const
{
    std::uint64_t sum = 0;
    for (const auto &lane : lanes_)
        sum += lane->device->rfmCount();
    return sum;
}

std::uint64_t
System::rfmSkipped() const
{
    std::uint64_t sum = 0;
    for (const auto &lane : lanes_)
        sum += lane->device->rfmSkipped();
    return sum;
}

std::uint64_t
System::trackerLogicOps() const
{
    std::uint64_t sum = 0;
    for (const auto &lane : lanes_) {
        if (lane->tracker)
            sum += lane->tracker->logicOps();
    }
    return sum;
}

double
System::totalEnergyPj() const
{
    dram::EnergyMeter meter = energy();
    meter.addTrackerOps(trackerLogicOps() - trackerOpBaseline_);
    return meter.totalPj();
}

void
System::snapshotTrackerOps()
{
    trackerOpBaseline_ = trackerLogicOps();
}

void
System::exportStats(StatRegistry &registry) const
{
    const mc::ControllerStats mc = stats();
    registry.counter("mc.reads").set(mc.reads);
    registry.counter("mc.writes").set(mc.writes);
    registry.counter("mc.rowHits").set(mc.rowHits);
    registry.counter("mc.rowMisses").set(mc.rowMisses);
    registry.counter("mc.activates").set(mc.activates);
    registry.counter("mc.precharges").set(mc.precharges);
    registry.counter("mc.refreshes").set(mc.refreshes);
    registry.counter("mc.rfmIssued").set(mc.rfmIssued);
    registry.counter("mc.rfmSkippedByMrr").set(mc.rfmSkippedByMrr);
    registry.counter("mc.arrExecuted").set(mc.arrExecuted);
    registry.counter("mc.throttleStalls").set(mc.throttleStalls);
    registry.average("mc.readLatencyNs").sample(mc.avgReadLatencyNs());

    const dram::EnergyMeter em = energy();
    registry.counter("dram.acts").set(em.acts());
    registry.counter("dram.pres").set(em.pres());
    registry.counter("dram.refreshRows").set(em.refreshRows());
    registry.counter("dram.preventiveRows").set(em.preventiveRows());
    registry.counter("dram.rfmCount").set(rfmCount());
    registry.counter("dram.rfmSkipped").set(rfmSkipped());

    registry.counter("cache.hits").set(cache_->hits());
    registry.counter("cache.misses").set(cache_->misses());
    registry.counter("cache.writebacks").set(cache_->writebacks());

    registry.counter("rh.bitFlips").set(bitFlips());
    registry.counter("rh.flippedRows").set(flippedRows());
    registry.counter("rh.maxDisturbance")
        .set(static_cast<std::uint64_t>(maxDisturbanceEver()));

    for (const auto &core : cores_) {
        const std::string prefix =
            "core" + std::to_string(core->id());
        registry.counter(prefix + ".instructions")
            .set(core->instructionsRetired());
        registry.average(prefix + ".ipc").sample(core->ipc());
    }
}

} // namespace mithril::sim
