/**
 * @file
 * Full-system simulation: cores + shared LLC + per-channel memory
 * controllers + DRAM + protection scheme, co-simulated event-driven.
 *
 * The memory side is partitioned by channel: each channel owns a
 * frontend lane (Device slice, Controller, tracker instance,
 * completion/ACT buffers) and the event loop interleaves lane service
 * ticks deterministically — minimum next-tick first, ties broken by
 * channel index. Lanes may also advance *in parallel* inside a
 * causality window bounded by the DRAM data latency: a command issued
 * at tick t cannot produce a cross-lane effect (a core wakeup, hence a
 * new request) before t + min(tCL, tCWL) + tBL, so every lane can run
 * up to that horizon without observing the others. Buffered
 * completions and ACT-trace records are drained in channel order after
 * each window, which makes runs byte-identical at any `mcThreads`
 * value, including 1 — the same partition-and-merge discipline the
 * sharded ActStream engine applies to banks.
 */

#ifndef MITHRIL_SIM_SYSTEM_HH
#define MITHRIL_SIM_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "cpu/cache.hh"
#include "cpu/core.hh"
#include "dram/device.hh"
#include "mc/controller.hh"
#include "runner/thread_pool.hh"
#include "sim/event_queue.hh"
#include "trackers/rh_protection.hh"
#include "workload/trace.hh"

namespace mithril::sim
{

/** Whole-system configuration (Table III defaults). */
struct SystemConfig
{
    dram::Timing timing = dram::ddr5_4800();
    dram::Geometry geometry = dram::paperGeometry();
    std::uint32_t flipTh = 6250;      //!< Oracle ground truth.
    std::uint32_t blastRadius = 1;
    mc::ControllerParams mcParams;
    cpu::CacheParams cacheParams;
    Tick horizon = msToTick(200.0);   //!< Hard stop for attack-only runs.
    /** Worker threads for the channel lanes. 0 or 1 services lanes
     *  inline; >1 runs due lanes on a thread pool (the ambient
     *  runner::ThreadPool when inside one, else a private pool).
     *  Results are byte-identical at every value. */
    std::uint32_t mcThreads = 1;
};

/** The simulated machine. */
class System
{
  public:
    /** Builds one tracker instance per channel lane (a null factory —
     *  or one returning null — leaves the lanes unprotected). Matches
     *  the sharded engine's per-shard factory discipline so per-bank
     *  RNG streams stay structural via RhProtection::bankSeed. */
    using TrackerFactory =
        std::function<std::unique_ptr<trackers::RhProtection>()>;

    System(const SystemConfig &config, TrackerFactory make_tracker);

    /** Add a core running the given trace. The System owns both. */
    cpu::Core &addCore(const cpu::CoreParams &params,
                       std::unique_ptr<workload::TraceGenerator> trace);

    /** Run until every non-excluded core finishes (or the horizon). */
    void run();

    /** Sum of non-excluded cores' IPC (the paper's aggregate metric). */
    double aggregateIpc() const;

    /** Number of channel lanes (== geometry.channels). */
    std::uint32_t channels() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    dram::Device &device(std::uint32_t channel = 0)
    {
        return *lanes_.at(channel)->device;
    }
    const dram::Device &device(std::uint32_t channel = 0) const
    {
        return *lanes_.at(channel)->device;
    }
    mc::Controller &controller(std::uint32_t channel = 0)
    {
        return *lanes_.at(channel)->controller;
    }
    const mc::Controller &controller(std::uint32_t channel = 0) const
    {
        return *lanes_.at(channel)->controller;
    }
    trackers::RhProtection *tracker(std::uint32_t channel = 0)
    {
        return lanes_.at(channel)->tracker.get();
    }
    cpu::Cache &cache() { return *cache_; }
    const std::vector<std::unique_ptr<cpu::Core>> &cores() const
    {
        return cores_;
    }
    Tick now() const { return now_; }

    /**
     * Observe every committed ACT across all channels. Records are
     * delivered in channel-major batches after each service window
     * (per-bank tick order is preserved — exactly what the act-trace
     * capture format requires). Set before run(); null detaches.
     */
    void setActObserver(dram::Device::ActObserver observer);

    /** Controller statistics merged across channels (channel order). */
    mc::ControllerStats stats() const;

    /** Energy counters merged across channels. */
    dram::EnergyMeter energy() const;

    /** Oracle ground truth merged across channels. */
    std::uint64_t bitFlips() const;
    std::uint64_t flippedRows() const;
    double maxDisturbanceEver() const;

    /** Device mitigation counters summed across channels. */
    std::uint64_t preventiveCount() const;
    std::uint64_t rfmCount() const;
    std::uint64_t rfmSkipped() const;

    /** Tracker logic operations summed across channels. */
    std::uint64_t trackerLogicOps() const;

    /** Total dynamic energy incl. tracker logic ops, in picojoules. */
    double totalEnergyPj() const;

    /** Exclude tracker ops performed before this point (warm-up). */
    void snapshotTrackerOps();

    /**
     * Export every component's counters into a registry under dotted
     * names (mc.*, dram.*, cache.*, core<N>.*, rh.*) for uniform
     * reporting and regression diffing. Memory-side counters are the
     * cross-channel merged values.
     */
    void exportStats(StatRegistry &registry) const;

  private:
    /** One channel's frontend: its controller, its Device partition
     *  (full-geometry instance of which only this channel's banks are
     *  driven — bank state is per-bank and the oracle is sparse, so
     *  the unused slice costs nothing), its tracker, and the buffers
     *  that defer cross-lane effects to the window drain. */
    struct Lane
    {
        struct Completion
        {
            Tick tick;
            std::uint32_t coreId;
        };
        struct Act
        {
            BankId bank;
            RowId row;
            Tick tick;
        };

        std::unique_ptr<dram::Device> device;
        std::unique_ptr<trackers::RhProtection> tracker;
        std::unique_ptr<mc::Controller> controller;
        std::vector<Completion> completions;
        std::vector<Act> acts;
        /** Next tick the lane's controller needs service. On its own
         *  cache line: the hot word written concurrently per lane. */
        alignas(64) Tick next = 0;
        Tick lastServiced = 0;
    };

    /** Core memory-access callback: LLC then MC. */
    cpu::Core::AccessOutcome access(std::uint32_t core_id,
                                    const workload::TraceRecord &rec,
                                    Tick now);

    /** Service `lane` through every tick it owes in [*, window_end]. */
    void advanceLane(Lane &lane, Tick window_end);

    void wakeCore(std::uint32_t core_id, Tick now);

    /** Schedule a wake for `core_id` at `when` unless one is already
     *  pending at or before it: completions and retry backoffs would
     *  otherwise each spawn their own polling chain, and a core that
     *  never blocks (e.g. one being throttled at a full queue)
     *  accumulates chains until the event queue drowns. */
    void scheduleWake(std::uint32_t core_id, Tick when);

    bool benignDone() const;

    SystemConfig config_;
    std::unique_ptr<mc::AddressMap> map_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::unique_ptr<cpu::Cache> cache_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<workload::TraceGenerator>> traces_;
    EventQueue evq_;
    std::vector<Tick> coreWake_;      //!< Pending wake per core.
    dram::Device::ActObserver actObserver_;
    std::unique_ptr<runner::ThreadPool> ownPool_;
    std::vector<Lane *> due_;         //!< Window scratch.
    Tick lookahead_;                  //!< min(tCL,tCWL)+tBL causality.
    Tick now_ = 0;
    bool started_ = false;
    std::uint64_t trackerOpBaseline_ = 0;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_SYSTEM_HH
