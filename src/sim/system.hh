/**
 * @file
 * Full-system simulation: cores + shared LLC + memory controller +
 * DRAM device + protection scheme, co-simulated event-driven.
 */

#ifndef MITHRIL_SIM_SYSTEM_HH
#define MITHRIL_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "cpu/cache.hh"
#include "cpu/core.hh"
#include "dram/device.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"
#include "trackers/rh_protection.hh"
#include "workload/trace.hh"

namespace mithril::sim
{

/** Whole-system configuration (Table III defaults). */
struct SystemConfig
{
    dram::Timing timing = dram::ddr5_4800();
    dram::Geometry geometry = dram::paperGeometry();
    std::uint32_t flipTh = 6250;      //!< Oracle ground truth.
    std::uint32_t blastRadius = 1;
    mc::ControllerParams mcParams;
    cpu::CacheParams cacheParams;
    Tick horizon = msToTick(200.0);   //!< Hard stop for attack-only runs.
};

/** The simulated machine. */
class System
{
  public:
    System(const SystemConfig &config,
           std::unique_ptr<trackers::RhProtection> tracker);

    /** Add a core running the given trace. The System owns both. */
    cpu::Core &addCore(const cpu::CoreParams &params,
                       std::unique_ptr<workload::TraceGenerator> trace);

    /** Run until every non-excluded core finishes (or the horizon). */
    void run();

    /** Sum of non-excluded cores' IPC (the paper's aggregate metric). */
    double aggregateIpc() const;

    dram::Device &device() { return *device_; }
    const dram::Device &device() const { return *device_; }
    mc::Controller &controller() { return *controller_; }
    const mc::Controller &controller() const { return *controller_; }
    cpu::Cache &cache() { return *cache_; }
    trackers::RhProtection *tracker() { return tracker_.get(); }
    const std::vector<std::unique_ptr<cpu::Core>> &cores() const
    {
        return cores_;
    }
    Tick now() const { return now_; }

    /** Total dynamic energy incl. tracker logic ops, in picojoules. */
    double totalEnergyPj() const;

    /** Exclude tracker ops performed before this point (warm-up). */
    void snapshotTrackerOps();

    /**
     * Export every component's counters into a registry under dotted
     * names (mc.*, dram.*, cache.*, core<N>.*, rh.*) for uniform
     * reporting and regression diffing.
     */
    void exportStats(StatRegistry &registry) const;

  private:
    /** Core memory-access callback: LLC then MC. */
    cpu::Core::AccessOutcome access(std::uint32_t core_id,
                                    const workload::TraceRecord &rec,
                                    Tick now);

    void wakeCore(std::uint32_t core_id, Tick now);
    bool benignDone() const;

    SystemConfig config_;
    std::unique_ptr<trackers::RhProtection> tracker_;
    std::unique_ptr<dram::Device> device_;
    std::unique_ptr<mc::AddressMap> map_;
    std::unique_ptr<mc::Controller> controller_;
    std::unique_ptr<cpu::Cache> cache_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<workload::TraceGenerator>> traces_;
    EventQueue evq_;
    Tick now_ = 0;
    bool started_ = false;
    std::uint64_t trackerOpBaseline_ = 0;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_SYSTEM_HH
