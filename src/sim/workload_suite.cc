#include "workload_suite.hh"

#include "common/logging.hh"
#include "workload/multithreaded.hh"
#include "workload/spec_like.hh"

namespace mithril::sim
{

const std::vector<WorkloadKind> &
allWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::MixHigh,   WorkloadKind::MixBlend,
        WorkloadKind::MtFft,     WorkloadKind::MtRadix,
        WorkloadKind::MtPageRank, WorkloadKind::Gups,
        WorkloadKind::Stencil,
    };
    return kinds;
}

const std::vector<WorkloadKind> &
multiProgrammedWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::MixHigh,
        WorkloadKind::MixBlend,
    };
    return kinds;
}

const std::vector<WorkloadKind> &
multiThreadedWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::MtFft,
        WorkloadKind::MtRadix,
        WorkloadKind::MtPageRank,
    };
    return kinds;
}

std::string
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::MixHigh:    return "mix-high";
      case WorkloadKind::MixBlend:   return "mix-blend";
      case WorkloadKind::MtFft:      return "mt-fft";
      case WorkloadKind::MtRadix:    return "mt-radix";
      case WorkloadKind::MtPageRank: return "mt-pagerank";
      case WorkloadKind::Gups:       return "gups";
      case WorkloadKind::Stencil:    return "stencil";
    }
    return "?";
}

WorkloadKind
workloadFromName(const std::string &name)
{
    for (WorkloadKind kind : allWorkloads()) {
        if (workloadName(kind) == name)
            return kind;
    }
    fatal("unknown workload: %s", name.c_str());
    return WorkloadKind::MixHigh;
}

std::unique_ptr<workload::TraceGenerator>
makeWorkloadThread(WorkloadKind kind, std::uint32_t core_id,
                   std::uint32_t cores, std::uint64_t seed)
{
    MITHRIL_ASSERT(cores > 0 && core_id < cores);

    // Disjoint 512MB regions for multi-programmed threads.
    const Addr private_base =
        static_cast<Addr>(core_id) << 29;
    // One shared 2GB region for the multithreaded kernels (placed past
    // every private region).
    const Addr shared_base = static_cast<Addr>(cores) << 29;

    switch (kind) {
      case WorkloadKind::MixHigh: {
        workload::SyntheticParams p;
        p.base = private_base;
        p.seed = seed * 1009 + core_id;
        // ~36 LLC accesses per 1000 instructions, matching the L3 MPKI
        // of memory-intensive SPEC CPU2017 workloads.
        p.meanGap = 28.0;
        // Rotate the three memory-intensive archetypes.
        switch (core_id % 3) {
          case 0:
            p.footprint = 96ull << 20;
            return std::make_unique<workload::StreamSweepGen>(p);
          case 1:
            p.footprint = 64ull << 20;
            return std::make_unique<workload::PointerChaseGen>(p);
          default:
            p.footprint = 48ull << 20;
            return std::make_unique<workload::ZipfGen>(p);
        }
      }

      case WorkloadKind::MixBlend: {
        workload::SyntheticParams p;
        p.base = private_base;
        p.seed = seed * 2003 + core_id;
        if (core_id % 2 == 0) {
            p.footprint = 8ull << 20;  // Mostly cache resident.
            p.meanGap = 40.0;
            return std::make_unique<workload::ComputeGen>(p);
        }
        p.footprint = 64ull << 20;
        p.meanGap = 28.0;
        if (core_id % 4 == 1)
            return std::make_unique<workload::StreamSweepGen>(p);
        return std::make_unique<workload::PointerChaseGen>(p);
      }

      case WorkloadKind::MtFft: {
        workload::MtParams p;
        p.base = shared_base;
        p.footprint = 1ull << 31;
        p.threads = cores;
        p.seed = seed * 3001;
        p.phaseLines = 2048;
        p.meanGap = 22.0;
        p.writeFraction = 0.4;
        return std::make_unique<workload::PartitionedSweepGen>(
            p, core_id);
      }

      case WorkloadKind::MtRadix: {
        workload::MtParams p;
        p.base = shared_base;
        p.footprint = 1ull << 31;
        p.threads = cores;
        p.seed = seed * 4001;
        p.phaseLines = 8192;
        p.meanGap = 20.0;
        p.writeFraction = 0.55;
        return std::make_unique<workload::PartitionedSweepGen>(
            p, core_id);
      }

      case WorkloadKind::MtPageRank: {
        workload::MtParams p;
        p.base = shared_base;
        p.footprint = 1ull << 31;
        p.threads = cores;
        p.seed = seed * 5003;
        p.meanGap = 22.0;
        return std::make_unique<workload::PageRankGen>(p, core_id);
      }

      case WorkloadKind::Gups: {
        workload::SyntheticParams p;
        p.base = private_base;
        p.footprint = 128ull << 20;
        p.seed = seed * 6007 + core_id;
        p.meanGap = 30.0;
        return std::make_unique<workload::GupsGen>(p);
      }

      case WorkloadKind::Stencil: {
        workload::SyntheticParams p;
        p.base = private_base;
        p.footprint = 120ull << 20;
        p.seed = seed * 7001 + core_id;
        p.meanGap = 24.0;
        return std::make_unique<workload::StencilGen>(p);
      }
    }
    panic("unhandled workload kind");
    return nullptr;
}

} // namespace mithril::sim
