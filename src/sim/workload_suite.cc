#include "workload_suite.hh"

#include "common/logging.hh"
#include "registry/workload_registry.hh"

namespace mithril::sim
{

namespace
{

/** Kind <-> registry key, in enum order. */
const struct
{
    WorkloadKind kind;
    const char *key;
} kWorkloadKeys[] = {
    {WorkloadKind::MixHigh, "mix-high"},
    {WorkloadKind::MixBlend, "mix-blend"},
    {WorkloadKind::MtFft, "mt-fft"},
    {WorkloadKind::MtRadix, "mt-radix"},
    {WorkloadKind::MtPageRank, "mt-pagerank"},
    {WorkloadKind::Gups, "gups"},
    {WorkloadKind::Stencil, "stencil"},
};

} // namespace

const std::vector<WorkloadKind> &
allWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::MixHigh,   WorkloadKind::MixBlend,
        WorkloadKind::MtFft,     WorkloadKind::MtRadix,
        WorkloadKind::MtPageRank, WorkloadKind::Gups,
        WorkloadKind::Stencil,
    };
    return kinds;
}

const std::vector<WorkloadKind> &
multiProgrammedWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::MixHigh,
        WorkloadKind::MixBlend,
    };
    return kinds;
}

const std::vector<WorkloadKind> &
multiThreadedWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::MtFft,
        WorkloadKind::MtRadix,
        WorkloadKind::MtPageRank,
    };
    return kinds;
}

std::string
workloadName(WorkloadKind kind)
{
    for (const auto &m : kWorkloadKeys) {
        if (m.kind == kind)
            return m.key;
    }
    panic("unhandled workload kind");
    return "?";
}

WorkloadKind
workloadFromName(const std::string &name)
{
    const auto *entry = registry::workloadRegistry().find(name);
    if (entry) {
        for (const auto &m : kWorkloadKeys) {
            if (entry->name == m.key)
                return m.kind;
        }
        fatal("workload '%s' is registered but not addressable "
              "through the deprecated WorkloadKind enum; use the "
              "name-based ExperimentSpec API",
              name.c_str());
    }
    fatal("unknown workload: %s (registered workloads: %s)",
          name.c_str(),
          registry::joinSorted(registry::workloadRegistry().names())
              .c_str());
    return WorkloadKind::MixHigh;
}

std::unique_ptr<workload::TraceGenerator>
makeWorkloadThread(WorkloadKind kind, std::uint32_t core_id,
                   std::uint32_t cores, std::uint64_t seed)
{
    MITHRIL_ASSERT(cores > 0 && core_id < cores);
    return registry::makeWorkload(workloadName(kind), ParamSet(),
                                  {core_id, cores, seed});
}

} // namespace mithril::sim
