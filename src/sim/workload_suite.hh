/**
 * @file
 * The canonical workloads of the paper's evaluation (Section VI-A):
 * mix-high and mix-blend multi-programmed mixes, and the FFT-, RADIX-,
 * and PageRank-like multithreaded kernels. A factory hands out one
 * generator per core; attack threads are built separately from
 * workload/attacks.hh.
 */

#ifndef MITHRIL_SIM_WORKLOAD_SUITE_HH
#define MITHRIL_SIM_WORKLOAD_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace mithril::sim
{

/** Workloads of the evaluation. */
enum class WorkloadKind
{
    MixHigh,     //!< 16 memory-intensive SPEC-like traces.
    MixBlend,    //!< Memory-intensive + compute-bound blend.
    MtFft,       //!< FFT-like partitioned sweep.
    MtRadix,     //!< RADIX-like partitioned sweep, write heavy.
    MtPageRank,  //!< PageRank-like scan + gather.
    Gups,        //!< Random read-modify-write updates (worst-case
                 //!< benign ACT rate).
    Stencil,     //!< Multi-stream plane sweep (many open rows).
};

/** All workloads in report order. */
const std::vector<WorkloadKind> &allWorkloads();

/** The multi-programmed subset. */
const std::vector<WorkloadKind> &multiProgrammedWorkloads();

/** The multi-threaded subset. */
const std::vector<WorkloadKind> &multiThreadedWorkloads();

/** Display name. */
std::string workloadName(WorkloadKind kind);

/** Parse a workload name ("mix-high", "mt-fft", ...). */
WorkloadKind workloadFromName(const std::string &name);

/**
 * Build the trace generator for core `core_id` of `cores` running the
 * given workload. Multi-programmed cores get disjoint 512MB footprints;
 * multithreaded kernels share one region.
 */
std::unique_ptr<workload::TraceGenerator>
makeWorkloadThread(WorkloadKind kind, std::uint32_t core_id,
                   std::uint32_t cores, std::uint64_t seed);

} // namespace mithril::sim

#endif // MITHRIL_SIM_WORKLOAD_SUITE_HH
