#include "telemetry/chrome_trace.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace mithril::telemetry
{

namespace
{

/** Ticks (ps) to the microsecond timestamps Chrome traces use, with
 *  fixed formatting so output bytes are platform-invariant. */
std::string
tsUs(Tick tick)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f",
                  static_cast<double>(tick) / 1e6);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 const std::string &process_name,
                 std::uint32_t num_banks)
{
    os << "{\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\""
       << process_name << "\"}}";
    for (std::uint32_t b = 0; b < num_banks; ++b) {
        os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << b
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"bank "
           << b << "\"}}";
    }
    for (const TraceEvent &ev : events) {
        os << ",\n{\"name\":\"" << eventKindName(ev.kind)
           << "\",\"cat\":\"mitigation\",\"pid\":0,\"tid\":"
           << ev.bank << ",\"ts\":" << tsUs(ev.tick);
        if (ev.dur > 0) {
            os << ",\"ph\":\"X\",\"dur\":" << tsUs(ev.dur);
        } else {
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        }
        os << ",\"args\":{\"row\":" << ev.row << ",\"arg\":" << ev.arg
           << "}}";
    }
    os << "\n]}\n";
}

void
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceEvent> &events,
                     const std::string &process_name,
                     std::uint32_t num_banks)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open trace-events path '%s'", path.c_str());
    writeChromeTrace(os, events, process_name, num_banks);
    if (!os)
        fatal("failed writing trace-events path '%s'", path.c_str());
}

} // namespace mithril::telemetry
