/**
 * @file
 * Chrome trace-event JSON export of a merged mitigation-event stream,
 * loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Layout: one process (pid 0) named after the run, one track (tid)
 * per bank. Point events (RFM, ARR, flips, ...) export as instants
 * (ph "i", thread scope); throttle windows export as duration slices
 * (ph "X"). Timestamps are microseconds with fixed 6-digit precision
 * (1 ps resolution — ticks are picoseconds), so the serialized bytes
 * are deterministic across platforms and shard counts.
 */

#ifndef MITHRIL_TELEMETRY_CHROME_TRACE_HH
#define MITHRIL_TELEMETRY_CHROME_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/event_trace.hh"

namespace mithril::telemetry
{

/** Serialize a tick-ordered event stream as Chrome trace-event JSON.
 *  `process_name` labels the single pid-0 process (scheme / run id);
 *  `num_banks` emits a thread_name metadata record per bank track. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const std::string &process_name,
                      std::uint32_t num_banks);

/** writeChromeTrace() to a file; fatal() when the file can't open. */
void writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceEvent> &events,
                          const std::string &process_name,
                          std::uint32_t num_banks);

} // namespace mithril::telemetry

#endif // MITHRIL_TELEMETRY_CHROME_TRACE_HH
