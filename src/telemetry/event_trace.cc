#include "telemetry/event_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::telemetry
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::RfmIssued:
        return "rfm_issued";
      case EventKind::RfmSkipped:
        return "rfm_skipped";
      case EventKind::ArrFired:
        return "arr_fired";
      case EventKind::ThrottleStall:
        return "throttle_stall";
      case EventKind::CbsInsert:
        return "cbs_insert";
      case EventKind::CbsEvict:
        return "cbs_evict";
      case EventKind::OracleFlip:
        return "oracle_flip";
      case EventKind::NearMiss:
        return "near_miss";
    }
    return "unknown";
}

EventRecorder::EventRecorder(std::uint32_t num_banks,
                             std::uint32_t capacity_per_bank)
    : capacity_(capacity_per_bank), rings_(num_banks),
      emitted_(num_banks, 0)
{
    MITHRIL_ASSERT(capacity_ >= 1);
}

void
EventRecorder::record(EventKind kind, Tick tick, BankId bank,
                      RowId row, std::uint32_t arg, Tick dur)
{
    auto &ring = rings_.at(bank);
    TraceEvent ev;
    ev.tick = tick;
    ev.dur = dur;
    ev.row = row;
    ev.arg = arg;
    ev.bank = bank;
    ev.kind = kind;
    if (ring.size() < capacity_) {
        ring.push_back(ev);
    } else {
        ring[emitted_[bank] % capacity_] = ev;
    }
    ++emitted_[bank];
    ++kindTotals_[static_cast<std::size_t>(kind)];
}

std::uint64_t
EventRecorder::dropped() const
{
    std::uint64_t lost = 0;
    for (std::size_t b = 0; b < rings_.size(); ++b)
        lost += emitted_[b] - rings_[b].size();
    return lost;
}

std::vector<TraceEvent>
EventRecorder::bankEvents(BankId bank) const
{
    const auto &ring = rings_.at(bank);
    std::vector<TraceEvent> out;
    out.reserve(ring.size());
    if (ring.size() < capacity_) {
        out = ring;
    } else {
        // Ring is full: the oldest retained event sits at the next
        // write position.
        const std::size_t head =
            static_cast<std::size_t>(emitted_[bank] % capacity_);
        out.insert(out.end(), ring.begin() + head, ring.end());
        out.insert(out.end(), ring.begin(), ring.begin() + head);
    }
    return out;
}

std::vector<TraceEvent>
mergeEvents(const std::vector<const EventRecorder *> &recorders)
{
    std::vector<TraceEvent> all;
    std::size_t total = 0;
    for (const EventRecorder *rec : recorders) {
        for (BankId b = 0; b < rec->numBanks(); ++b)
            total += rec->bankEvents(b).size();
    }
    all.reserve(total);
    for (const EventRecorder *rec : recorders) {
        for (BankId b = 0; b < rec->numBanks(); ++b) {
            const auto events = rec->bankEvents(b);
            all.insert(all.end(), events.begin(), events.end());
        }
    }
    // Stable sort on the tick alone: equal-tick events keep their
    // concatenation order (ascending bank, then emission order), which
    // is what makes the merged stream shard-partition invariant.
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tick < b.tick;
                     });
    return all;
}

} // namespace mithril::telemetry
