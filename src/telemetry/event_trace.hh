/**
 * @file
 * Mitigation-event tracer: fixed-capacity per-bank ring buffers of
 * typed events, stamped with tick + bank + row, merged tick-ordered
 * across shards at join.
 *
 * Retention is budgeted per BANK, not per shard: banks are disjoint
 * across shards, so the set of retained events is invariant under the
 * shard count — a 1-shard and a 16-shard run of the same experiment
 * keep byte-identical traces. Each bank's ring keeps the most recent
 * `capacity` events (overwriting the oldest), and the per-bank
 * emitted/dropped totals are always exact even when the ring wraps.
 */

#ifndef MITHRIL_TELEMETRY_EVENT_TRACE_HH
#define MITHRIL_TELEMETRY_EVENT_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mithril::telemetry
{

/** Typed mitigation events emitted by engines, trackers, and the
 *  oracle. Keep in sync with eventKindName(). */
enum class EventKind : std::uint8_t
{
    RfmIssued,     //!< MC issued an RFM command (arg = RAA at issue).
    RfmSkipped,    //!< Mithril+ MRR poll skipped a needless RFM.
    ArrFired,      //!< ARR preventive refresh (arg = aggressor count).
    ThrottleStall, //!< BlockHammer delayed an ACT (dur = stall ticks).
    CbsInsert,     //!< CbS table inserted a new row entry.
    CbsEvict,      //!< CbS table evicted a minimum entry (overflow).
    OracleFlip,    //!< Oracle row crossed FlipTH (arg = row count).
    NearMiss,      //!< Oracle row within 1/8 of FlipTH (arg = margin
                   //!< in quarter-ACT units).
};

inline constexpr std::size_t kEventKindCount = 8;

/** Stable lower-case name for trace output. */
const char *eventKindName(EventKind kind);

/** One traced event. `dur` is nonzero only for duration-style events
 *  (throttle windows); `arg` is a kind-specific payload. */
struct TraceEvent
{
    Tick tick = 0;
    Tick dur = 0;
    RowId row = 0;
    std::uint32_t arg = 0;
    BankId bank = 0;
    EventKind kind = EventKind::RfmIssued;

    bool operator==(const TraceEvent &o) const
    {
        return tick == o.tick && dur == o.dur && row == o.row &&
               arg == o.arg && bank == o.bank && kind == o.kind;
    }
};

/**
 * Per-bank ring-buffer recorder. One instance per engine shard; the
 * shard only ever touches its own banks, so rings are allocated
 * lazily on a bank's first event.
 */
class EventRecorder
{
  public:
    /**
     * @param num_banks  Global bank count (bank ids index rings).
     * @param capacity_per_bank  Ring capacity per bank (>= 1).
     */
    EventRecorder(std::uint32_t num_banks,
                  std::uint32_t capacity_per_bank);

    /** Record one event (hot path only when tracing is enabled). */
    void record(EventKind kind, Tick tick, BankId bank, RowId row,
                std::uint32_t arg = 0, Tick dur = 0);

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(rings_.size());
    }
    std::uint32_t capacityPerBank() const { return capacity_; }

    /** Events ever emitted on the bank (including overwritten). */
    std::uint64_t emitted(BankId bank) const
    {
        return emitted_.at(bank);
    }

    /** Events ever emitted of the given kind, across banks. */
    std::uint64_t emittedOfKind(EventKind kind) const
    {
        return kindTotals_.at(static_cast<std::size_t>(kind));
    }

    /** Total events overwritten (lost to ring wrap), all banks. */
    std::uint64_t dropped() const;

    /** The bank's retained events, oldest first. */
    std::vector<TraceEvent> bankEvents(BankId bank) const;

  private:
    std::uint32_t capacity_;
    std::vector<std::vector<TraceEvent>> rings_; //!< Lazily sized.
    std::vector<std::uint64_t> emitted_;
    std::array<std::uint64_t, kEventKindCount> kindTotals_{};
};

/**
 * Merge the retained events of several recorders covering disjoint
 * bank sets into one tick-ordered stream. Recorders are visited in
 * the order given (shard order == ascending bank order), each bank
 * oldest-first, then stable-sorted by tick — so ties break by bank,
 * then by within-bank emission order, and the result is invariant
 * under the shard partition.
 */
std::vector<TraceEvent>
mergeEvents(const std::vector<const EventRecorder *> &recorders);

} // namespace mithril::telemetry

#endif // MITHRIL_TELEMETRY_EVENT_TRACE_HH
