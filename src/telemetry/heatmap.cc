#include "telemetry/heatmap.hh"

#include <sstream>

#include "common/logging.hh"

namespace mithril::telemetry
{

ActHeatmap::ActHeatmap(std::uint32_t num_banks,
                       std::uint32_t region_budget)
    : budget_(region_budget), banks_(num_banks)
{
    MITHRIL_ASSERT(budget_ >= 1);
}

void
ActHeatmap::touch(BankId bank, RowId row, std::uint64_t weight)
{
    BankMap &bm = banks_.at(bank);
    bm.regions[row >> bm.granularityLog2] += weight;
    if (bm.regions.size() > budget_)
        fit(bm);
}

void
ActHeatmap::coarsen(BankMap &bm)
{
    std::map<RowId, std::uint64_t> folded;
    for (const auto &[region, count] : bm.regions)
        folded[region >> 1] += count;
    bm.regions = std::move(folded);
    ++bm.granularityLog2;
    ++bm.folds;
}

void
ActHeatmap::fit(BankMap &bm)
{
    while (bm.regions.size() > budget_)
        coarsen(bm);
}

std::uint64_t
ActHeatmap::totalActs() const
{
    std::uint64_t total = 0;
    for (const BankMap &bm : banks_) {
        for (const auto &[region, count] : bm.regions)
            total += count;
    }
    return total;
}

HeatmapBankSnapshot
ActHeatmap::bankSnapshot(BankId bank) const
{
    const BankMap &bm = banks_.at(bank);
    HeatmapBankSnapshot snap;
    snap.bank = bank;
    snap.granularityLog2 = bm.granularityLog2;
    snap.folds = bm.folds;
    snap.regions = bm.regions;
    return snap;
}

std::vector<HeatmapBankSnapshot>
ActHeatmap::snapshot() const
{
    std::vector<HeatmapBankSnapshot> out;
    for (BankId b = 0; b < banks_.size(); ++b) {
        if (!banks_[b].regions.empty())
            out.push_back(bankSnapshot(b));
    }
    return out;
}

void
ActHeatmap::mergeFrom(const ActHeatmap &other)
{
    MITHRIL_ASSERT(banks_.size() == other.banks_.size());
    MITHRIL_ASSERT(budget_ == other.budget_);
    for (BankId b = 0; b < banks_.size(); ++b) {
        const BankMap &src = other.banks_[b];
        if (src.regions.empty())
            continue;
        BankMap &dst = banks_[b];
        if (dst.regions.empty()) {
            dst = src;
            continue;
        }
        // Align both sides to the coarser granularity, then fold the
        // finer side's regions in.
        BankMap tmp = src;
        while (dst.granularityLog2 < tmp.granularityLog2)
            coarsen(dst);
        while (tmp.granularityLog2 < dst.granularityLog2)
            coarsen(tmp);
        for (const auto &[region, count] : tmp.regions)
            dst.regions[region] += count;
        dst.folds += src.folds;
        fit(dst);
    }
}

std::string
ActHeatmap::dump() const
{
    std::ostringstream os;
    for (const HeatmapBankSnapshot &snap : snapshot()) {
        const auto width = std::uint64_t{1} << snap.granularityLog2;
        os << "bank " << snap.bank << " rows/region " << width
           << " folds " << snap.folds << "\n";
        for (const auto &[region, count] : snap.regions) {
            const std::uint64_t lo = region * width;
            os << "  [" << lo << ", " << lo + width << ") " << count
               << "\n";
        }
    }
    return os.str();
}

} // namespace mithril::telemetry
