/**
 * @file
 * Bounded-memory ACT heatmap: per-bank row-region activation
 * histograms with power-of-two region coarsening.
 *
 * Each bank aggregates activations into regions of 2^g consecutive
 * rows, starting at single-row granularity (g = 0). Whenever a bank's
 * distinct-region count exceeds its budget, the granularity doubles
 * and adjacent regions fold together — the DAMON split/merge idea in
 * miniature: memory stays bounded by the budget while hot rows keep
 * the finest resolution the traffic allows. Coarsening depends only
 * on the bank's own ACT sequence, so snapshots are invariant under
 * the engine's shard partition.
 */

#ifndef MITHRIL_TELEMETRY_HEATMAP_HH
#define MITHRIL_TELEMETRY_HEATMAP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mithril::telemetry
{

/** One bank's snapshot: regions of 2^granularityLog2 rows. */
struct HeatmapBankSnapshot
{
    BankId bank = 0;
    std::uint32_t granularityLog2 = 0;
    std::uint64_t folds = 0; //!< Times the bank's regions coarsened.
    /** region index (row >> granularityLog2) -> ACT count. */
    std::map<RowId, std::uint64_t> regions;
};

/** Bounded-memory per-bank activation histogram. */
class ActHeatmap
{
  public:
    /**
     * @param num_banks      Global bank count.
     * @param region_budget  Max distinct regions per bank (>= 1).
     */
    ActHeatmap(std::uint32_t num_banks, std::uint32_t region_budget);

    /** Count one activation (hot path only when enabled). */
    void touch(BankId bank, RowId row, std::uint64_t weight = 1);

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }
    std::uint32_t regionBudget() const { return budget_; }

    std::uint32_t granularityLog2(BankId bank) const
    {
        return banks_.at(bank).granularityLog2;
    }
    std::uint64_t folds(BankId bank) const
    {
        return banks_.at(bank).folds;
    }

    /** Total ACTs recorded across all banks. */
    std::uint64_t totalActs() const;

    /** Snapshot of one bank. */
    HeatmapBankSnapshot bankSnapshot(BankId bank) const;

    /** Snapshots of every non-empty bank, ascending bank order. */
    std::vector<HeatmapBankSnapshot> snapshot() const;

    /**
     * Fold another heatmap (same bank count and budget) into this
     * one. Banks align to the coarser granularity of the two sides
     * and re-coarsen if the union exceeds the budget; for the sharded
     * engine's disjoint bank sets this is a plain copy per bank.
     */
    void mergeFrom(const ActHeatmap &other);

    /** Render per-bank region tables (telemetry_cli output). */
    std::string dump() const;

  private:
    struct BankMap
    {
        std::uint32_t granularityLog2 = 0;
        std::uint64_t folds = 0;
        std::map<RowId, std::uint64_t> regions;
    };

    /** Double the bank's granularity, folding adjacent regions. */
    static void coarsen(BankMap &bm);

    /** Coarsen until the bank fits its budget. */
    void fit(BankMap &bm);

    std::uint32_t budget_;
    std::vector<BankMap> banks_;
};

} // namespace mithril::telemetry

#endif // MITHRIL_TELEMETRY_HEATMAP_HH
