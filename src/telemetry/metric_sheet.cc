#include "telemetry/metric_sheet.hh"

#include <algorithm>
#include <sstream>

namespace mithril::telemetry
{

Histogram &
MetricSheet::histogram(const std::string &name, double lo, double hi,
                       std::size_t buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(lo, hi, buckets))
                 .first;
    }
    return it->second;
}

std::uint64_t
MetricSheet::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
MetricSheet::gaugeValue(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

void
MetricSheet::mergeFrom(const MetricSheet &other)
{
    for (const auto &[name, c] : other.counters_)
        counters_[name].inc(c.value());
    for (const auto &[name, g] : other.gauges_) {
        auto it = gauges_.find(name);
        if (it == gauges_.end())
            gauges_[name] = g;
        else
            it->second = std::max(it->second, g);
    }
    for (const auto &[name, a] : other.averages_)
        averages_[name].mergeFrom(a);
    for (const auto &[name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end())
            histograms_.emplace(name, h);
        else
            it->second.mergeFrom(h);
    }
}

std::map<std::string, double>
MetricSheet::exportFlat() const
{
    std::map<std::string, double> out;
    for (const auto &[name, c] : counters_)
        out[name] = static_cast<double>(c.value());
    for (const auto &[name, g] : gauges_)
        out[name] = g;
    for (const auto &[name, a] : averages_) {
        out[name] = a.mean();
        out[name + ".count"] = static_cast<double>(a.count());
    }
    for (const auto &[name, h] : histograms_) {
        out[name + ".count"] =
            static_cast<double>(h.totalSamples());
        out[name + ".mean"] = h.mean();
        out[name + ".p50"] = h.percentile(0.50);
        out[name + ".p99"] = h.percentile(0.99);
    }
    return out;
}

std::string
MetricSheet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : exportFlat())
        os << name << " " << value << "\n";
    return os.str();
}

} // namespace mithril::telemetry
