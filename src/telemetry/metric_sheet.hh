/**
 * @file
 * Per-shard metric sheet: counters, gauges, averages, and histograms
 * registered under dotted names, with a deterministic merge.
 *
 * A MetricSheet is the telemetry analogue of a tracker's statistics:
 * each ActStreamEngine shard owns one, components obtain stable
 * references to their stats once (map nodes never move), and the hot
 * path is a plain integer increment — no lookups, no allocation. At
 * join time the shard sheets fold in shard order with the same
 * discipline as RhProtection::mergeStatsFrom: counters add, gauges
 * take the max, averages and histograms merge exactly. The result is
 * byte-identical at any shard/pool count.
 */

#ifndef MITHRIL_TELEMETRY_METRIC_SHEET_HH
#define MITHRIL_TELEMETRY_METRIC_SHEET_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"

namespace mithril::telemetry
{

/**
 * Named stat container for one engine shard (or one whole run).
 *
 * Four stat families, all addressed by dotted name:
 *  - counter: u64, merge = sum (event counts);
 *  - gauge:   double, merge = max (high-water marks, table sizes);
 *  - average: Average, merge = Average::mergeFrom (exact);
 *  - histogram: Histogram, merge = bucket-wise sum (same shape).
 */
class MetricSheet
{
  public:
    /** Get or create a counter; the reference stays valid for the
     *  sheet's lifetime (hot-path friendly). */
    Counter &counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Get or create an average. */
    Average &average(const std::string &name)
    {
        return averages_[name];
    }

    /** Get or create a gauge, merged by max across shards. */
    double &gauge(const std::string &name) { return gauges_[name]; }

    /** Get or create a histogram with the given shape; the shape is
     *  fixed on first call (later calls return the existing one). */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t buckets);

    /** Overwrite a counter (idempotent export from components that
     *  keep their own native counters). */
    void setCounter(const std::string &name, std::uint64_t v)
    {
        counters_[name].set(v);
    }

    /** Overwrite a gauge. */
    void setGauge(const std::string &name, double v)
    {
        gauges_[name] = v;
    }

    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               averages_.empty() && histograms_.empty();
    }

    /**
     * Fold another sheet into this one by name union. Deterministic
     * and associative; sharded joins call this in shard order.
     */
    void mergeFrom(const MetricSheet &other);

    /**
     * Flatten every stat into name -> double, the shape the sweep
     * sinks serialize. Counters and gauges export under their own
     * name; an average exports `name` (mean) plus `name.count`;
     * a histogram exports `name.count`, `name.mean`, `name.p50`,
     * and `name.p99`.
     */
    std::map<std::string, double> exportFlat() const;

    /** Render as "name value" lines (telemetry_cli / debugging). */
    std::string dump() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace mithril::telemetry

#endif // MITHRIL_TELEMETRY_METRIC_SHEET_HH
