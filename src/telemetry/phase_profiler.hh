/**
 * @file
 * Engine phase profile: wall-time split of one shard's run loop into
 * source-pull and batch-dispatch, plus the sharded engine's join.
 *
 * Wall-clock data is nondeterministic by nature, so it never enters
 * RunOutcome, MetricSheet exports, or trace files — it is reported
 * only through the benchmark JSON (BENCH_engine.json) and stderr,
 * where run-to-run variance is expected.
 */

#ifndef MITHRIL_TELEMETRY_PHASE_PROFILER_HH
#define MITHRIL_TELEMETRY_PHASE_PROFILER_HH

#include <chrono>
#include <cstdint>

namespace mithril::telemetry
{

/** Accumulated wall time per engine phase, one per shard. */
struct PhaseProfile
{
    double sourceSec = 0.0;   //!< ActSource::fill / shardSlice pulls.
    double dispatchSec = 0.0; //!< dispatchBatch (tracker + oracle).
    std::uint64_t pulls = 0;
    std::uint64_t batches = 0;

    void addSource(double sec)
    {
        sourceSec += sec;
        ++pulls;
    }
    void addDispatch(double sec)
    {
        dispatchSec += sec;
        ++batches;
    }
};

/** Monotonic stopwatch for phase timing. */
class PhaseTimer
{
  public:
    PhaseTimer() : start_(Clock::now()) {}

    /** Seconds since construction or the last lap(). */
    double lap()
    {
        const auto now = Clock::now();
        const std::chrono::duration<double> d = now - start_;
        start_ = now;
        return d.count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace mithril::telemetry

#endif // MITHRIL_TELEMETRY_PHASE_PROFILER_HH
