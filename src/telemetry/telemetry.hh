/**
 * @file
 * Telemetry configuration and the per-shard bundle the engine carries.
 *
 * Everything here is off by default, and the hot-path contract is
 * strict: with telemetry disabled the engine pays one pointer check
 * per batch, and with it enabled the simulated outcome (RunOutcome,
 * tracker stats, oracle state) must stay byte-identical — telemetry
 * observes the simulation, it never participates in it.
 */

#ifndef MITHRIL_TELEMETRY_TELEMETRY_HH
#define MITHRIL_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <memory>

#include "telemetry/event_trace.hh"
#include "telemetry/heatmap.hh"
#include "telemetry/metric_sheet.hh"
#include "telemetry/phase_profiler.hh"

namespace mithril::telemetry
{

/** What to collect; shared by every shard of a run. */
struct TelemetryConfig
{
    bool metrics = false; //!< Per-shard MetricSheet export.
    bool events = false;  //!< Mitigation-event ring tracing.
    std::uint32_t eventCapacityPerBank = 4096;
    bool heatmap = false; //!< Per-bank ACT region histograms.
    std::uint32_t heatmapRegionBudget = 64;
    bool phases = false;  //!< Wall-time phase profiling (bench only).

    bool any() const { return metrics || events || heatmap || phases; }
};

/** One engine shard's telemetry state. */
class EngineTelemetry
{
  public:
    EngineTelemetry(const TelemetryConfig &config,
                    std::uint32_t num_banks)
        : config_(config)
    {
        if (config_.events) {
            events_ = std::make_unique<EventRecorder>(
                num_banks, config_.eventCapacityPerBank);
        }
        if (config_.heatmap) {
            heatmap_ = std::make_unique<ActHeatmap>(
                num_banks, config_.heatmapRegionBudget);
        }
    }

    const TelemetryConfig &config() const { return config_; }

    MetricSheet &sheet() { return sheet_; }
    const MetricSheet &sheet() const { return sheet_; }

    /** Null when event tracing is off — the hot-path check. */
    EventRecorder *events() { return events_.get(); }
    const EventRecorder *events() const { return events_.get(); }

    /** Null when the heatmap is off. */
    ActHeatmap *heatmap() { return heatmap_.get(); }
    const ActHeatmap *heatmap() const { return heatmap_.get(); }

    PhaseProfile &phases() { return phases_; }
    const PhaseProfile &phases() const { return phases_; }

  private:
    TelemetryConfig config_;
    MetricSheet sheet_;
    std::unique_ptr<EventRecorder> events_;
    std::unique_ptr<ActHeatmap> heatmap_;
    PhaseProfile phases_;
};

} // namespace mithril::telemetry

#endif // MITHRIL_TELEMETRY_TELEMETRY_HH
