/**
 * @file
 * Trace op `dilate`: rational time scaling — tick' = tick * num /
 * den. Scaling a non-decreasing sequence by a non-negative rational
 * keeps it non-decreasing (integer division is monotone), so per-bank
 * order survives. dilate:num=1,den=2 doubles traffic density;
 * dilate:num=2 halves it; num=den=1 is the identity.
 */

#include "trace/op_registry.hh"

namespace mithril::trace
{

namespace
{

class DilateStream : public RecordStream
{
  public:
    DilateStream(std::unique_ptr<RecordStream> upstream,
                 std::uint64_t num, std::uint64_t den)
        : upstream_(std::move(upstream)), num_(num), den_(den)
    {
    }

    const dram::Geometry &geometry() const override
    {
        return upstream_->geometry();
    }

    bool next(TraceRecord &out) override
    {
        if (!upstream_->next(out))
            return false;
        const std::uint64_t tick =
            static_cast<std::uint64_t>(out.tick);
        // Pre-check instead of __int128: ticks are < 2^63 and num is
        // range-checked, so `tick * num` is the only overflow site.
        if (num_ > 1 &&
            tick > static_cast<std::uint64_t>(kTickMax) / num_) {
            throw registry::SpecError(
                "trace-op 'dilate': tick " + std::to_string(tick) +
                " * " + std::to_string(num_) + " overflows");
        }
        out.tick = static_cast<Tick>(tick * num_ / den_);
        return true;
    }

  private:
    std::unique_ptr<RecordStream> upstream_;
    std::uint64_t num_;
    std::uint64_t den_;
};

const registry::Registrar<TraceOpTraits> kRegisterDilate{{
    /*name=*/"dilate",
    /*display=*/"dilate",
    /*description=*/
    "scale every tick by the rational num/den (integer math, "
    "monotone); num=den=1 is the identity",
    /*aliases=*/{"timescale"},
    /*uses=*/"filter stage: upstream or one input trace",
    /*params=*/
    {{"num", registry::ParamDesc::Type::Uint, "1", 1, 1u << 20,
      "numerator of the scale factor"},
     {"den", registry::ParamDesc::Type::Uint, "1", 1, 1u << 20,
      "denominator of the scale factor"}},
    /*make=*/
    [](const ParamSet &params, const TraceOpContext &ctx)
        -> std::unique_ptr<RecordStream> {
        return std::make_unique<DilateStream>(
            takeFilterUpstream("dilate", ctx),
            params.getUint("num", 1), params.getUint("den", 1));
    },
}};

} // namespace

} // namespace mithril::trace
