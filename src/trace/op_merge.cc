/**
 * @file
 * Trace op `merge`: deterministic k-way tick-ordered merge of N
 * captured traces into one dense multi-tenant stream.
 *
 * The heap runs over per-(input, bank) cursors, not whole-file
 * streams: a file's canonical order interleaves banks, so merging
 * whole files by head tick would let a bank's records leapfrog each
 * other across chunk boundaries. Per-bank cursors are tick-monotone
 * by the format's invariant, so the merged output is globally
 * tick-ordered AND per-bank monotone — exactly what the writer
 * validates. Ties break (tick, input index, bank), making the merge
 * byte-deterministic for any input set.
 */

#include <queue>

#include "trace/op_registry.hh"

namespace mithril::trace
{

namespace
{

class MergeStream : public RecordStream
{
  public:
    explicit MergeStream(const std::vector<std::string> &inputs)
    {
        if (inputs.empty()) {
            throw registry::SpecError(
                "trace-op 'merge' needs at least one input trace");
        }
        sources_.reserve(inputs.size());
        for (const std::string &path : inputs) {
            // mmap: one shared mapping per input serves every
            // per-bank cursor without a file-handle explosion
            // (64 banks x 64 tenants would otherwise be 4096 fds).
            sources_.push_back(
                std::make_unique<engine::ActTraceSource>(
                    path, engine::ActTraceReadOptions{true}));
        }
        geometry_ = traceGeometry(sources_.front()->info());
        for (std::size_t i = 1; i < sources_.size(); ++i) {
            requireSameGeometry(
                "trace-op 'merge' input '" + inputs[i] + "'",
                geometry_, traceGeometry(sources_[i]->info()));
        }
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            const engine::ActTraceInfo &info = sources_[i]->info();
            for (BankId b = 0; b < info.totalBanks(); ++b) {
                if (info.perBank[b] == 0)
                    continue;
                cursors_.emplace_back(*sources_[i], b);
                TraceRecord head;
                if (cursors_.back().peek(head)) {
                    heap_.push(Key{head.tick,
                                   static_cast<std::uint32_t>(i), b,
                                   cursors_.size() - 1});
                }
            }
        }
    }

    const dram::Geometry &geometry() const override
    {
        return geometry_;
    }

    bool next(TraceRecord &out) override
    {
        if (heap_.empty())
            return false;
        const Key top = heap_.top();
        heap_.pop();
        BankCursor &cursor = cursors_[top.cursor];
        cursor.peek(out);
        cursor.pop();
        TraceRecord head;
        if (cursor.peek(head))
            heap_.push(Key{head.tick, top.input, top.bank,
                           top.cursor});
        return true;
    }

  private:
    struct Key
    {
        Tick tick;
        std::uint32_t input;
        BankId bank;
        std::size_t cursor;

        bool operator>(const Key &o) const
        {
            if (tick != o.tick)
                return tick > o.tick;
            if (input != o.input)
                return input > o.input;
            return bank > o.bank;
        }
    };

    std::vector<std::unique_ptr<engine::ActTraceSource>> sources_;
    std::vector<BankCursor> cursors_;
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>>
        heap_;
    dram::Geometry geometry_;
};

const registry::Registrar<TraceOpTraits> kRegisterMerge{{
    /*name=*/"merge",
    /*display=*/"merge",
    /*description=*/
    "k-way tick-ordered merge of N traces into one dense "
    "multi-tenant stream (heap over per-bank block cursors; ties "
    "break by input order)",
    /*aliases=*/{"interleave"},
    /*uses=*/"head stage only; inputs = the traces to merge "
             "(geometries must match)",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &, const TraceOpContext &ctx)
        -> std::unique_ptr<RecordStream> {
        requireHeadStage("merge", ctx);
        return std::make_unique<MergeStream>(ctx.inputs);
    },
}};

} // namespace

} // namespace mithril::trace
