#include "trace/op_registry.hh"

namespace mithril::trace
{

std::unique_ptr<RecordStream>
makeTraceOp(const std::string &name, const ParamSet &params,
            const TraceOpContext &ctx)
{
    const TraceOpRegistry::Entry &entry = traceOpRegistry().at(name);
    for (const registry::ParamDesc &desc : entry.params)
        registry::checkParam("trace-op '" + entry.name + "'", desc,
                             params);
    return entry.make(params, ctx);
}

void
requireHeadStage(const std::string &op, const TraceOpContext &ctx)
{
    if (ctx.upstream) {
        throw registry::SpecError(
            "trace-op '" + op +
            "' must be the first stage of a pipeline (it reads "
            "whole trace files, not an upstream stage)");
    }
}

std::unique_ptr<RecordStream>
takeFilterUpstream(const std::string &op, const TraceOpContext &ctx)
{
    if (ctx.upstream) {
        if (!ctx.inputs.empty()) {
            throw registry::SpecError(
                "trace-op '" + op +
                "' takes either an upstream stage or one input "
                "trace, not both");
        }
        return std::move(ctx.upstream);
    }
    if (ctx.inputs.size() != 1) {
        throw registry::SpecError(
            "trace-op '" + op +
            "' needs an upstream stage or exactly one input trace "
            "(got " +
            std::to_string(ctx.inputs.size()) + " inputs)");
    }
    return std::make_unique<TraceFileStream>(ctx.inputs.front());
}

} // namespace mithril::trace
