/**
 * @file
 * The trace-op registry: named, composable transforms over captured
 * `.acttrace` streams — the same `Registry<Traits>` pattern as
 * schemes/workloads/attacks/sources, so `--list trace-ops` documents
 * every op and its tunables, and a new transform is one .cc file.
 *
 * An op factory builds a RecordStream from (a) the upstream stage of
 * a pipeline, moved out of the context by filter ops, and/or (b) the
 * positional input paths of its stage (trace files). Head ops (merge)
 * reject an upstream; filter ops (remap/dilate/splice/slice) take the
 * upstream when present, else exactly one input path. Pipelines wire
 * stages together (see trace/pipeline.hh).
 */

#ifndef MITHRIL_TRACE_OP_REGISTRY_HH
#define MITHRIL_TRACE_OP_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "registry/registry.hh"
#include "trace/record_stream.hh"

namespace mithril::trace
{

/** Side inputs every trace-op factory receives. */
struct TraceOpContext
{
    /** Positional input trace paths of this stage. */
    std::vector<std::string> inputs;
    /** The previous pipeline stage's stream; filter ops move it out
     *  (mutable: Registry factories take a const Context&). */
    mutable std::unique_ptr<RecordStream> upstream;
    /** Seed for ops that generate records (splice attack bursts). */
    std::uint64_t seed = 42;
    /** Timing for generated bursts; nullptr = DDR5-4800 preset. */
    const dram::Timing *timing = nullptr;
};

struct TraceOpTraits
{
    using Product = RecordStream;
    using Context = TraceOpContext;
    static constexpr const char *kCategory = "trace-op";
    static constexpr const char *kPlural = "trace-ops";
};

using TraceOpRegistry = registry::Registry<TraceOpTraits>;

/** The process-wide trace-op registry. */
inline TraceOpRegistry &
traceOpRegistry()
{
    return TraceOpRegistry::instance();
}

/**
 * Build a trace op by registry name. Throws registry::SpecError on
 * unknown names (listing every registered op) and on invalid or
 * out-of-range parameters.
 */
std::unique_ptr<RecordStream>
makeTraceOp(const std::string &name, const ParamSet &params,
            const TraceOpContext &ctx);

/**
 * Shared factory-side checks: a head op must be first in its
 * pipeline; a filter op needs an upstream or exactly one input.
 * Both throw SpecError naming the op.
 */
void requireHeadStage(const std::string &op, const TraceOpContext &ctx);
std::unique_ptr<RecordStream>
takeFilterUpstream(const std::string &op, const TraceOpContext &ctx);

} // namespace mithril::trace

#endif // MITHRIL_TRACE_OP_REGISTRY_HH
