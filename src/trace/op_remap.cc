/**
 * @file
 * Trace op `remap`: rotate banks and/or rows by a fixed offset — the
 * tenant-placement primitive. Rotations are bijections on the bank
 * and row spaces, so each output bank's subsequence is exactly one
 * input bank's subsequence (tick monotonicity preserved for free).
 * Disjoint tenants: rotate each by its own offset before merging;
 * colliding tenants: rotate by the same offset (or 0) so their rows
 * land on the same banks.
 */

#include "trace/op_registry.hh"

namespace mithril::trace
{

namespace
{

class RemapStream : public RecordStream
{
  public:
    RemapStream(std::unique_ptr<RecordStream> upstream,
                std::uint32_t bank_rotate, std::uint32_t row_rotate)
        : upstream_(std::move(upstream)),
          bankRotate_(bank_rotate %
                      upstream_->geometry().totalBanks()),
          rowRotate_(row_rotate % upstream_->geometry().rowsPerBank)
    {
    }

    const dram::Geometry &geometry() const override
    {
        return upstream_->geometry();
    }

    bool next(TraceRecord &out) override
    {
        if (!upstream_->next(out))
            return false;
        const dram::Geometry &g = upstream_->geometry();
        out.bank = static_cast<BankId>(
            (out.bank + bankRotate_) % g.totalBanks());
        out.row = static_cast<RowId>(
            (static_cast<std::uint64_t>(out.row) + rowRotate_) %
            g.rowsPerBank);
        return true;
    }

  private:
    std::unique_ptr<RecordStream> upstream_;
    std::uint32_t bankRotate_;
    std::uint32_t rowRotate_;
};

const registry::Registrar<TraceOpTraits> kRegisterRemap{{
    /*name=*/"remap",
    /*display=*/"remap",
    /*description=*/
    "rotate banks/rows by fixed offsets (mod the geometry) so "
    "tenants land on disjoint or deliberately colliding banks; "
    "rotations are bijections, so per-bank tick order is preserved",
    /*aliases=*/{},
    /*uses=*/"filter stage: upstream or one input trace",
    /*params=*/
    {{"bank-rotate", registry::ParamDesc::Type::Uint, "0", 0,
      1u << 20,
      "add this to every bank id, mod total banks"},
     {"row-rotate", registry::ParamDesc::Type::Uint, "0", 0,
      1u << 30,
      "add this to every row id, mod rows per bank"}},
    /*make=*/
    [](const ParamSet &params, const TraceOpContext &ctx)
        -> std::unique_ptr<RecordStream> {
        return std::make_unique<RemapStream>(
            takeFilterUpstream("remap", ctx),
            params.getUint32("bank-rotate", 0),
            params.getUint32("row-rotate", 0));
    },
}};

} // namespace

} // namespace mithril::trace
