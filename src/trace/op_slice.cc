/**
 * @file
 * Trace op `slice`: tick-window / bank-range extraction — the
 * inverse of merge (slicing a merged corpus by bank range recovers
 * each tenant's contribution) and the cheap way to cut a warmup
 * prefix or an attack window out of a long capture. Dropping records
 * and (optionally) subtracting a constant from every tick both
 * preserve per-bank order.
 */

#include "trace/op_registry.hh"

namespace mithril::trace
{

namespace
{

class SliceStream : public RecordStream
{
  public:
    SliceStream(std::unique_ptr<RecordStream> upstream, Tick from,
                Tick to, BankId bank_lo, BankId bank_hi, bool rebase)
        : upstream_(std::move(upstream)), from_(from), to_(to),
          bankLo_(bank_lo), bankHi_(bank_hi), rebase_(rebase)
    {
        const std::uint32_t banks =
            upstream_->geometry().totalBanks();
        if (bankHi_ == 0)
            bankHi_ = banks;
        if (bankHi_ <= bankLo_ || bankLo_ >= banks) {
            throw registry::SpecError(
                "trace-op 'slice': empty bank range [" +
                std::to_string(bankLo_) + ", " +
                std::to_string(bankHi_) + ") of " +
                std::to_string(banks) + " banks");
        }
        if (to_ != 0 && to_ <= from_) {
            throw registry::SpecError(
                "trace-op 'slice': empty tick window [" +
                std::to_string(from_) + ", " + std::to_string(to_) +
                ")");
        }
    }

    const dram::Geometry &geometry() const override
    {
        return upstream_->geometry();
    }

    bool next(TraceRecord &out) override
    {
        while (upstream_->next(out)) {
            if (out.bank < bankLo_ || out.bank >= bankHi_)
                continue;
            if (out.tick < from_ || (to_ != 0 && out.tick >= to_))
                continue;
            if (rebase_)
                out.tick -= from_;
            return true;
        }
        return false;
    }

  private:
    std::unique_ptr<RecordStream> upstream_;
    Tick from_;
    Tick to_;
    BankId bankLo_;
    BankId bankHi_;
    bool rebase_;
};

const registry::Registrar<TraceOpTraits> kRegisterSlice{{
    /*name=*/"slice",
    /*display=*/"slice",
    /*description=*/
    "keep only records inside a tick window [from, to) and a bank "
    "range [bank-lo, bank-hi); rebase=1 shifts kept ticks down by "
    "`from`",
    /*aliases=*/{"extract"},
    /*uses=*/"filter stage: upstream or one input trace",
    /*params=*/
    {{"from", registry::ParamDesc::Type::Uint, "0", 0, 9.3e18,
      "first tick kept"},
     {"to", registry::ParamDesc::Type::Uint, "0", 0, 9.3e18,
      "first tick dropped (0 = unbounded)"},
     {"bank-lo", registry::ParamDesc::Type::Uint, "0", 0, 1u << 20,
      "first bank kept"},
     {"bank-hi", registry::ParamDesc::Type::Uint, "0", 0, 1u << 20,
      "first bank dropped (0 = all banks)"},
     {"rebase", registry::ParamDesc::Type::Bool, "0", 0, 1,
      "subtract `from` from every kept tick"}},
    /*make=*/
    [](const ParamSet &params, const TraceOpContext &ctx)
        -> std::unique_ptr<RecordStream> {
        return std::make_unique<SliceStream>(
            takeFilterUpstream("slice", ctx),
            static_cast<Tick>(params.getUint("from", 0)),
            static_cast<Tick>(params.getUint("to", 0)),
            params.getUint32("bank-lo", 0),
            params.getUint32("bank-hi", 0),
            params.getBool("rebase", false));
    },
}};

} // namespace

} // namespace mithril::trace
