/**
 * @file
 * Trace op `splice`: inject a registered attack burst — or a whole
 * second trace — into a benign background at a given tick window.
 *
 * The injection is held as per-bank tick-monotone cursors. Before a
 * background record (bank b, tick t) is emitted, bank b's injection
 * cursor drains every record with tick < t (ties go to the
 * background); once the background is exhausted the leftover
 * injection drains through a (tick, bank) min-heap. Each output
 * bank's sequence is therefore a monotone interleave of two monotone
 * sequences — the writer's per-bank validation passes by
 * construction, and the result is byte-deterministic.
 */

#include <queue>

#include "registry/source_registry.hh"
#include "trace/op_registry.hh"

namespace mithril::trace
{

namespace
{

/** One bank's injection stream: an in-memory burst slice or a
 *  tick-shifted cursor into a second trace file. */
struct InjCursor
{
    std::vector<TraceRecord> records; //!< Burst mode.
    std::size_t pos = 0;
    std::unique_ptr<BankCursor> file; //!< Second-trace mode.
    Tick offset = 0;

    bool
    peek(TraceRecord &out)
    {
        if (file) {
            if (!file->peek(out))
                return false;
            if (out.tick > kTickMax - offset) {
                throw registry::SpecError(
                    "trace-op 'splice': at= shifts tick " +
                    std::to_string(out.tick) + " past the tick "
                    "range");
            }
            out.tick += offset;
            return true;
        }
        if (pos == records.size())
            return false;
        out = records[pos];
        return true;
    }

    void
    pop()
    {
        if (file)
            file->pop();
        else
            ++pos;
    }
};

class SpliceStream : public RecordStream
{
  public:
    SpliceStream(std::unique_ptr<RecordStream> upstream,
                 const ParamSet &params, const TraceOpContext &ctx)
        : upstream_(std::move(upstream)),
          inj_(upstream_->geometry().totalBanks())
    {
        const std::string with = params.getString("with", "");
        const std::string attack = params.getString("attack", "");
        if (with.empty() == attack.empty()) {
            throw registry::SpecError(
                "trace-op 'splice' needs exactly one of "
                "with=<trace> or attack=<name>");
        }
        const Tick at =
            static_cast<Tick>(params.getUint("at", 0));
        if (!with.empty())
            openWith(with, at);
        else
            generateBurst(attack, at, params, ctx);
    }

    const dram::Geometry &geometry() const override
    {
        return upstream_->geometry();
    }

    bool next(TraceRecord &out) override
    {
        while (!bgDone_) {
            if (!bgValid_) {
                bgValid_ = upstream_->next(bg_);
                if (!bgValid_) {
                    bgDone_ = true;
                    break;
                }
            }
            // Bank-local drain: everything this bank must see before
            // the pending background record.
            TraceRecord head;
            InjCursor &cursor = inj_[bg_.bank];
            if (cursor.peek(head) && head.tick < bg_.tick) {
                cursor.pop();
                out = head;
                return true;
            }
            out = bg_;
            bgValid_ = false;
            return true;
        }
        if (!heapBuilt_) {
            heapBuilt_ = true;
            for (BankId b = 0; b < inj_.size(); ++b) {
                TraceRecord head;
                if (inj_[b].peek(head))
                    heap_.push({head.tick, b});
            }
        }
        if (heap_.empty())
            return false;
        const BankId bank = heap_.top().second;
        heap_.pop();
        InjCursor &cursor = inj_[bank];
        cursor.peek(out);
        cursor.pop();
        TraceRecord head;
        if (cursor.peek(head))
            heap_.push({head.tick, bank});
        return true;
    }

  private:
    void
    openWith(const std::string &path, Tick at)
    {
        withSource_ = std::make_unique<engine::ActTraceSource>(
            path, engine::ActTraceReadOptions{true});
        requireSameGeometry("trace-op 'splice' with '" + path + "'",
                            upstream_->geometry(),
                            traceGeometry(withSource_->info()));
        const engine::ActTraceInfo &info = withSource_->info();
        for (BankId b = 0; b < info.totalBanks(); ++b) {
            if (info.perBank[b] == 0)
                continue;
            inj_[b].file =
                std::make_unique<BankCursor>(*withSource_, b);
            inj_[b].offset = at;
        }
    }

    void
    generateBurst(const std::string &attack, Tick at,
                  const ParamSet &params, const TraceOpContext &ctx)
    {
        const std::uint64_t acts =
            params.getUint("burst-acts", 100000);
        const dram::Timing timing =
            ctx.timing ? *ctx.timing : dram::ddr5_4800();
        std::uint64_t gap = params.getUint("burst-gap", 0);
        if (gap == 0)
            gap = static_cast<std::uint64_t>(timing.tRC);
        ParamSet attack_params;
        attack_params.set("attack", attack);
        const registry::SourceContext source_ctx{
            timing, upstream_->geometry(), /*flipTh=*/6250,
            ctx.seed};
        auto source = registry::makeActSource("attack",
                                              attack_params,
                                              source_ctx);
        engine::ActBatch batch;
        std::uint64_t produced = 0;
        while (produced < acts) {
            batch.clear();
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(acts - produced,
                                        engine::ActBatch::kCapacity));
            if (source->fill(batch, want) == 0)
                break;
            for (std::size_t i = 0; i < batch.size(); ++i) {
                // Burst ticks are synthesized: one ACT per gap in
                // the generator's arrival order, starting at `at`.
                const std::uint64_t tick =
                    static_cast<std::uint64_t>(at) + produced * gap;
                if (tick > static_cast<std::uint64_t>(kTickMax)) {
                    throw registry::SpecError(
                        "trace-op 'splice': burst tick overflows "
                        "(at + " +
                        std::to_string(produced) + " * " +
                        std::to_string(gap) + ")");
                }
                const engine::ActRecord record = batch.record(i);
                inj_[record.bank].records.push_back(TraceRecord{
                    record.bank, record.row,
                    static_cast<Tick>(tick)});
                ++produced;
            }
        }
    }

    std::unique_ptr<RecordStream> upstream_;
    std::unique_ptr<engine::ActTraceSource> withSource_;
    std::vector<InjCursor> inj_; //!< Indexed by bank.
    TraceRecord bg_;
    bool bgValid_ = false;
    bool bgDone_ = false;
    bool heapBuilt_ = false;
    std::priority_queue<std::pair<Tick, BankId>,
                        std::vector<std::pair<Tick, BankId>>,
                        std::greater<std::pair<Tick, BankId>>>
        heap_;
};

const registry::Registrar<TraceOpTraits> kRegisterSplice{{
    /*name=*/"splice",
    /*display=*/"splice",
    /*description=*/
    "inject a registered attack burst (attack=) or a second trace "
    "(with=) into the background stream at tick `at`, preserving "
    "per-bank tick order",
    /*aliases=*/{"inject"},
    /*uses=*/"filter stage: upstream or one input trace; seed (burst "
             "generation)",
    /*params=*/
    {{"with", registry::ParamDesc::Type::String, "", 0, 0,
      "second trace to inject (geometry must match)"},
     {"attack", registry::ParamDesc::Type::String, "", 0, 0,
      "registered attack whose ACT pattern forms the burst"},
     {"at", registry::ParamDesc::Type::Uint, "0", 0, 9.3e18,
      "tick where the injection starts"},
     {"burst-acts", registry::ParamDesc::Type::Uint, "100000", 1,
      100000000, "burst length in ACTs (attack= mode)"},
     {"burst-gap", registry::ParamDesc::Type::Uint, "0", 0,
      1000000000, "ticks between burst ACTs (0 = one tRC)"}},
    /*make=*/
    [](const ParamSet &params, const TraceOpContext &ctx)
        -> std::unique_ptr<RecordStream> {
        return std::make_unique<SpliceStream>(
            takeFilterUpstream("splice", ctx), params, ctx);
    },
}};

} // namespace

} // namespace mithril::trace
