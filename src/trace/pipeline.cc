#include "trace/pipeline.hh"

#include <sys/stat.h>

namespace mithril::trace
{

const char kPipelineMetaPrefix[] = "trace-pipeline: ";

namespace
{

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

/** Same dev/inode — catches `merge:a.trc|...` writing onto a.trc. */
bool
sameFile(const std::string &a, const std::string &b)
{
    struct stat sa, sb;
    if (::stat(a.c_str(), &sa) != 0 || ::stat(b.c_str(), &sb) != 0)
        return a == b; // Missing file: fall back to path equality.
    return sa.st_dev == sb.st_dev && sa.st_ino == sb.st_ino;
}

PipelineStage
parseStage(const std::string &text)
{
    if (text.empty())
        throw registry::SpecError(
            "trace pipeline has an empty stage (doubled '|'?)");
    PipelineStage stage;
    const std::size_t colon = text.find(':');
    stage.op = text.substr(0, colon);
    // at() resolves aliases and throws listing every registered op.
    const TraceOpRegistry::Entry &entry =
        traceOpRegistry().at(stage.op);
    stage.op = entry.name;
    if (colon != std::string::npos) {
        for (const std::string &arg :
             split(text.substr(colon + 1), ',')) {
            if (arg.empty())
                throw registry::SpecError(
                    "trace-op '" + stage.op +
                    "': empty argument (doubled ','?)");
            const std::size_t eq = arg.find('=');
            if (eq == std::string::npos) {
                stage.inputs.push_back(arg);
                continue;
            }
            const std::string key = arg.substr(0, eq);
            bool declared = false;
            for (const registry::ParamDesc &desc : entry.params)
                declared = declared || desc.key == key;
            if (!declared) {
                std::vector<std::string> keys;
                for (const registry::ParamDesc &desc : entry.params)
                    keys.push_back(desc.key);
                throw registry::SpecError(
                    "trace-op '" + stage.op +
                    "' does not take parameter '" + key +
                    "'; declared: " +
                    (keys.empty() ? std::string("(none)")
                                  : registry::joinSorted(keys)));
            }
            if (stage.params.has(key))
                throw registry::SpecError("trace-op '" + stage.op +
                                          "': duplicate parameter '" +
                                          key + "'");
            stage.params.set(key, arg.substr(eq + 1));
        }
    }
    for (const registry::ParamDesc &desc : entry.params)
        registry::checkParam("trace-op '" + stage.op + "'", desc,
                             stage.params);
    return stage;
}

} // namespace

std::vector<PipelineStage>
parsePipeline(const std::string &spec)
{
    if (spec.empty())
        throw registry::SpecError("empty trace pipeline");
    std::vector<PipelineStage> stages;
    for (const std::string &stage : split(spec, '|'))
        stages.push_back(parseStage(stage));
    return stages;
}

std::unique_ptr<RecordStream>
buildPipeline(const std::string &spec, std::uint64_t seed)
{
    std::unique_ptr<RecordStream> stream;
    for (const PipelineStage &stage : parsePipeline(spec)) {
        TraceOpContext ctx;
        ctx.inputs = stage.inputs;
        ctx.upstream = std::move(stream);
        ctx.seed = seed;
        stream = makeTraceOp(stage.op, stage.params, ctx);
    }
    return stream;
}

engine::ActTraceInfo
materializePipeline(const std::string &spec,
                    const std::string &out_path, std::uint64_t seed)
{
    if (out_path.empty())
        throw registry::SpecError(
            "trace pipeline needs an output path");
    for (const PipelineStage &stage : parsePipeline(spec)) {
        std::vector<std::string> reads = stage.inputs;
        // splice's second trace arrives as a param, not a positional.
        const std::string with = stage.params.getString("with", "");
        if (!with.empty())
            reads.push_back(with);
        for (const std::string &input : reads) {
            if (sameFile(input, out_path))
                throw registry::SpecError(
                    "trace pipeline output '" + out_path +
                    "' is also an input of stage '" + stage.op +
                    "'");
        }
    }
    std::unique_ptr<RecordStream> stream = buildPipeline(spec, seed);
    engine::ActTraceWriter writer(out_path, stream->geometry(), seed,
                                  kPipelineMetaPrefix + spec);
    TraceRecord record;
    while (stream->next(record))
        writer.append(record.bank, record.row, record.tick);
    writer.finalize();
    return engine::actTraceInfo(out_path);
}

} // namespace mithril::trace
