/**
 * @file
 * Trace-op pipelines: the one-line composition syntax that turns
 * captured traces into multi-tenant corpora.
 *
 *   merge:t0.acttrace,t1.acttrace|remap:bank-rotate=4|slice:to=1000
 *
 * Stages are separated by '|'; a stage is `op[:arg,arg,...]` where an
 * arg containing '=' is a registered parameter of the op (validated
 * against its declared type/range) and any other arg is a positional
 * input trace path. The whole spec is a single shell word with no
 * whitespace, so it survives ParamSet round-trips (describe() /
 * fromString()) and can ride in an ExperimentSpec or SweepSpec as
 * `trace-pipeline=...`.
 *
 * Composition is stream-level: stages pass RecordStreams, not
 * intermediate files; only materializePipeline() touches the disk,
 * through the crash-safe ActTraceWriter.
 */

#ifndef MITHRIL_TRACE_PIPELINE_HH
#define MITHRIL_TRACE_PIPELINE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/op_registry.hh"

namespace mithril::trace
{

/** One parsed pipeline stage. */
struct PipelineStage
{
    std::string op;                  //!< Registered trace-op name.
    ParamSet params;                 //!< key=value args.
    std::vector<std::string> inputs; //!< Positional trace paths.
};

/**
 * Parse a pipeline spec into stages. Throws registry::SpecError on
 * syntax errors, unknown ops, undeclared or out-of-range parameters.
 */
std::vector<PipelineStage> parsePipeline(const std::string &spec);

/** Parse + wire the stages into one composed stream. */
std::unique_ptr<RecordStream>
buildPipeline(const std::string &spec, std::uint64_t seed);

/**
 * Build the pipeline and write its output to `out_path` as a
 * `mithril.acttrace.v1` file (meta = "trace-pipeline: <spec>",
 * written crash-safe). Refuses an output that aliases any stage
 * input. Returns the finished trace's parsed info.
 */
engine::ActTraceInfo
materializePipeline(const std::string &spec,
                    const std::string &out_path, std::uint64_t seed);

/** The meta prefix materialized pipelines carry. */
extern const char kPipelineMetaPrefix[];

} // namespace mithril::trace

#endif // MITHRIL_TRACE_PIPELINE_HH
