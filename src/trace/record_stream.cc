#include "trace/record_stream.hh"

#include <string>

#include "registry/registry.hh"

namespace mithril::trace
{

dram::Geometry
traceGeometry(const engine::ActTraceInfo &info)
{
    // The trace header records the bank-space shape; rowBytes /
    // lineBytes never enter ACT-level replay, so the paper preset's
    // values complete the struct.
    dram::Geometry geometry = dram::paperGeometry();
    geometry.channels = info.channels;
    geometry.ranksPerChannel = info.ranksPerChannel;
    geometry.banksPerRank = info.banksPerRank;
    geometry.rowsPerBank = info.rowsPerBank;
    return geometry;
}

namespace
{

std::string
geometryLine(const dram::Geometry &g)
{
    return std::to_string(g.channels) + "x" +
           std::to_string(g.ranksPerChannel) + "x" +
           std::to_string(g.banksPerRank) + " banks, " +
           std::to_string(g.rowsPerBank) + " rows";
}

} // namespace

void
requireSameGeometry(const std::string &what, const dram::Geometry &a,
                    const dram::Geometry &b)
{
    if (a.channels == b.channels &&
        a.ranksPerChannel == b.ranksPerChannel &&
        a.banksPerRank == b.banksPerRank &&
        a.rowsPerBank == b.rowsPerBank)
        return;
    throw registry::SpecError(what + ": geometry mismatch — " +
                              geometryLine(a) + " vs " +
                              geometryLine(b));
}

// --------------------------------------------------- TraceFileStream

TraceFileStream::TraceFileStream(const std::string &path)
    : source_(std::make_unique<engine::ActTraceSource>(
          path, engine::ActTraceReadOptions{/*mmap=*/true})),
      geometry_(traceGeometry(source_->info()))
{
}

bool
TraceFileStream::next(TraceRecord &out)
{
    if (pos_ == batch_.size()) {
        if (drained_)
            return false;
        batch_.clear();
        pos_ = 0;
        if (source_->fill(batch_, engine::ActBatch::kCapacity) == 0) {
            drained_ = true;
            return false;
        }
    }
    const engine::ActRecord record = batch_.record(pos_++);
    out = TraceRecord{record.bank, record.row, record.tick};
    return true;
}

// -------------------------------------------------------- BankCursor

BankCursor::BankCursor(engine::ActSource &full, BankId bank)
    : slice_(full.shardSlice(bank, bank + 1, ~std::uint64_t{0}))
{
    // Every source the trace ops slice provides a native seeking
    // slice; the nullptr fallback path is for engine shards only.
    if (!slice_)
        drained_ = true;
}

bool
BankCursor::peek(TraceRecord &out)
{
    if (pos_ == batch_.size())
        refill();
    if (pos_ == batch_.size())
        return false;
    const engine::ActRecord record = batch_.record(pos_);
    out = TraceRecord{record.bank, record.row, record.tick};
    return true;
}

void
BankCursor::pop()
{
    ++pos_;
}

void
BankCursor::refill()
{
    if (drained_)
        return;
    batch_.clear();
    pos_ = 0;
    if (slice_->fill(batch_, engine::ActBatch::kCapacity) == 0)
        drained_ = true;
}

} // namespace mithril::trace
