/**
 * @file
 * The record-level vocabulary of the trace-algebra subsystem: a pull
 * stream of (bank, row, tick) records the transform ops compose over.
 *
 * A RecordStream differs from engine::ActSource in one way that
 * matters for composition: it is record-at-a-time and carries the
 * geometry the records aim at, so every op can validate its inputs
 * eagerly (geometry equality, range checks) and a pipeline's output
 * can be written back to a `mithril.acttrace.v1` file — whose writer
 * enforces per-bank tick monotonicity on every append — without the
 * ops re-implementing that validation.
 *
 * Ordering contract: a RecordStream yields every *per-bank*
 * subsequence in non-decreasing tick order (what the trace format
 * requires); the cross-bank interleaving is op-defined (merge emits a
 * globally tick-ordered dense stream, filters preserve whatever order
 * their upstream has). Engine outcomes are invariant to cross-bank
 * order, so any RecordStream materializes to a valid replayable
 * trace.
 */

#ifndef MITHRIL_TRACE_RECORD_STREAM_HH
#define MITHRIL_TRACE_RECORD_STREAM_HH

#include <memory>
#include <string>

#include "dram/timing.hh"
#include "engine/act_source.hh"
#include "engine/act_trace.hh"

namespace mithril::trace
{

/** One activation record as the trace ops see it. */
struct TraceRecord
{
    BankId bank = 0;
    RowId row = 0;
    Tick tick = 0;
};

/** Pull stream of trace records; the product of every trace op. */
class RecordStream
{
  public:
    virtual ~RecordStream() = default;

    /** The geometry every record of this stream aims at. */
    virtual const dram::Geometry &geometry() const = 0;

    /** Yield the next record; false when exhausted. */
    virtual bool next(TraceRecord &out) = 0;
};

/**
 * Leaf stream over one `.acttrace` file in canonical order,
 * mmap-backed so per-file cost is one mapping, not a buffered handle.
 */
class TraceFileStream : public RecordStream
{
  public:
    explicit TraceFileStream(const std::string &path);

    const dram::Geometry &geometry() const override
    {
        return geometry_;
    }

    bool next(TraceRecord &out) override;

    const engine::ActTraceInfo &info() const { return source_->info(); }

    /** The underlying (pristine) source — for per-bank slicing. */
    engine::ActTraceSource &source() { return *source_; }

  private:
    std::unique_ptr<engine::ActTraceSource> source_;
    dram::Geometry geometry_;
    engine::ActBatch batch_;
    std::size_t pos_ = 0;
    bool drained_ = false;
};

/**
 * Per-bank lookahead cursor over one bank's subsequence of a trace —
 * the heap element of the k-way merge and the injection cursor of
 * splice. Built from a *pristine* full source via shardSlice(), so N
 * inputs × B banks cost one parse + one mapping per input.
 */
class BankCursor
{
  public:
    BankCursor(engine::ActSource &full, BankId bank);

    /** The current head record; false when the bank is exhausted. */
    bool peek(TraceRecord &out);

    /** Consume the current head. */
    void pop();

  private:
    void refill();

    std::unique_ptr<engine::ActSource> slice_;
    engine::ActBatch batch_;
    std::size_t pos_ = 0;
    bool drained_ = false;
};

/** Geometry an ActTraceInfo header implies (row/line bytes are not
 *  part of the trace format; the paper preset supplies them). */
dram::Geometry traceGeometry(const engine::ActTraceInfo &info);

/** Throw registry::SpecError unless the two geometries agree on
 *  every field the trace format records. */
void requireSameGeometry(const std::string &what,
                         const dram::Geometry &a,
                         const dram::Geometry &b);

} // namespace mithril::trace

#endif // MITHRIL_TRACE_RECORD_STREAM_HH
