#include "blockhammer.hh"

#include <algorithm>

#include "analysis/area_model.hh"
#include "common/logging.hh"
#include "core/config_solver.hh"
#include "registry/scheme_registry.hh"

namespace mithril::trackers
{

namespace
{

/** Rows hashed per simd::bloomHashRows call in the batched path. */
constexpr std::size_t kHashBlock = 256;

} // namespace

BlockHammer::BlockHammer(std::uint32_t num_banks,
                         const BlockHammerParams &params)
    : params_(params), banks_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.cbfSize > 0);
    MITHRIL_ASSERT(params_.hashes >= 1);
    MITHRIL_ASSERT(params_.flipTh > params_.nbl);
    MITHRIL_ASSERT(params_.tCbf > 0);

    tDelay_ = (params_.tCbf -
               static_cast<Tick>(params_.nbl) * params_.tRc) /
              static_cast<Tick>(params_.flipTh - params_.nbl);
    MITHRIL_ASSERT(tDelay_ > 0);
    cbfMod_ = simd::U64Divisor(params_.cbfSize);
    slotScratch_.resize(kHashBlock * params_.hashes);

    for (auto &bank : banks_) {
        bank.filters[0].counts.assign(params_.cbfSize, 0);
        bank.filters[0].epochStart = 0;
        bank.filters[1].counts.assign(params_.cbfSize, 0);
        // Offset by half a lifetime so one filter always carries at
        // least tCbf/2 of history.
        bank.filters[1].epochStart = -(params_.tCbf / 2);
    }
}

std::size_t
BlockHammer::hashSlot(RowId row, std::uint32_t i) const
{
    const std::uint64_t h =
        simd::mix64(static_cast<std::uint64_t>(row) + params_.seed +
                    0x9e3779b97f4a7c15ull * (i + 1));
    return static_cast<std::size_t>(cbfMod_.mod(h));
}

void
BlockHammer::rotateEpochs(BankState &state, Tick now) const
{
    for (auto &filter : state.filters) {
        bool rotated = false;
        while (now >= filter.epochStart + params_.tCbf) {
            std::fill(filter.counts.begin(), filter.counts.end(), 0);
            filter.epochStart += params_.tCbf;
            rotated = true;
        }
        if (rotated)
            state.lastBlacklistedAct.clear();
    }
}

std::uint32_t
BlockHammer::minCount(const Cbf &filter, RowId row) const
{
    std::uint32_t lo = ~0u;
    for (std::uint32_t i = 0; i < params_.hashes; ++i)
        lo = std::min(lo, filter.counts[hashSlot(row, i)]);
    return lo;
}

void
BlockHammer::onActivate(BankId bank, RowId row, Tick now,
                        std::vector<RowId> &arr_aggressors)
{
    (void)arr_aggressors;  // Throttling scheme: no preventive refresh.
    BankState &state = banks_.at(bank);
    rotateEpochs(state, now);
    countOp(2 * params_.hashes);

    const std::uint32_t cap = (1u << params_.counterBits) - 1;
    for (auto &filter : state.filters) {
        for (std::uint32_t i = 0; i < params_.hashes; ++i) {
            auto &slot = filter.counts[hashSlot(row, i)];
            if (slot < cap)
                ++slot;
        }
    }
    if (isBlacklisted(bank, row, now))
        state.lastBlacklistedAct[row] = now;
}

std::size_t
BlockHammer::onActivateBatch(const ActSpan &span,
                             std::vector<RowId> &arr_aggressors)
{
    if (span.size == 0)
        return 0;
    BankState &state = banks_.at(span.bank);

    // Catch the filters up to the span start (what the first scalar
    // onActivate would do), then check whether a CBF lifetime ends
    // inside the span — twice per tCbf ~ tREFW, so rare — and take
    // the faithful scalar loop there.
    rotateEpochs(state, span.tick0);
    const Tick last = span.tickAt(span.size - 1);
    if (last >= state.filters[0].epochStart + params_.tCbf ||
        last >= state.filters[1].epochStart + params_.tCbf)
        return RhProtection::onActivateBatch(span, arr_aggressors);

    const std::uint32_t cap = (1u << params_.counterBits) - 1;
    const std::uint32_t hashes = params_.hashes;
    Cbf &f0 = state.filters[0];
    Cbf &f1 = state.filters[1];
    for (std::size_t block = 0; block < span.size; block += kHashBlock) {
        const std::size_t m = std::min(kHashBlock, span.size - block);
        // All hash work for the block in one lane-parallel sweep; the
        // insert/estimate walk below only chases the slot indices.
        simd::bloomHashRows(span.rows + block, m, params_.seed, hashes,
                            cbfMod_, slotScratch_.data());
        countOp(2ull * hashes * m);
        const std::uint32_t *slots = slotScratch_.data();
        for (std::size_t i = 0; i < m; ++i, slots += hashes) {
            for (std::uint32_t h = 0; h < hashes; ++h) {
                auto &slot = f0.counts[slots[h]];
                if (slot < cap)
                    ++slot;
            }
            for (std::uint32_t h = 0; h < hashes; ++h) {
                auto &slot = f1.counts[slots[h]];
                if (slot < cap)
                    ++slot;
            }
            // estimate() over the post-insert counts, reusing the
            // slots.
            std::uint32_t min0 = ~0u;
            std::uint32_t min1 = ~0u;
            for (std::uint32_t h = 0; h < hashes; ++h) {
                min0 = std::min(min0, f0.counts[slots[h]]);
                min1 = std::min(min1, f1.counts[slots[h]]);
            }
            if (std::max(min0, min1) >= params_.nbl)
                state.lastBlacklistedAct[span.rows[block + i]] =
                    span.tickAt(block + i);
        }
    }
    return span.size;
}

std::uint32_t
BlockHammer::estimate(BankId bank, RowId row, Tick now) const
{
    (void)now;
    const BankState &state = banks_.at(bank);
    return std::max(minCount(state.filters[0], row),
                    minCount(state.filters[1], row));
}

bool
BlockHammer::isBlacklisted(BankId bank, RowId row, Tick now) const
{
    return estimate(bank, row, now) >= params_.nbl;
}

Tick
BlockHammer::throttleAct(BankId bank, RowId row, Tick now)
{
    BankState &state = banks_.at(bank);
    rotateEpochs(state, now);
    if (!isBlacklisted(bank, row, now))
        return now;
    auto it = state.lastBlacklistedAct.find(row);
    if (it == state.lastBlacklistedAct.end())
        return now;
    const Tick earliest = it->second + tDelay_;
    if (earliest > now) {
        ++throttles_;
        return earliest;
    }
    return now;
}

void
BlockHammer::mergeStatsFrom(const RhProtection &other)
{
    RhProtection::mergeStatsFrom(other);
    throttles_ += dynamic_cast<const BlockHammer &>(other).throttles_;
}

double
BlockHammer::tableBytesPerBank() const
{
    // Two CBFs plus the row-activation history buffer (~128 entries of
    // row address + timestamp).
    const double cbf_bits = 2.0 * params_.cbfSize * params_.counterBits;
    const double history_bits = 128.0 * 48.0;
    return (cbf_bits + history_bits) / 8.0;
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterBlockHammer{{
    /*name=*/"blockhammer",
    /*display=*/"BlockHammer",
    /*description=*/
    "dual counting-Bloom-filter ACT throttling at the MC",
    /*aliases=*/{},
    /*uses=*/"flip, scheme-seed",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        const auto [cbf_size, nbl] =
            analysis::AreaModel::blockHammerConfig(knobs.flipTh);
        BlockHammerParams bparams;
        bparams.cbfSize = cbf_size;
        bparams.nbl = nbl;
        bparams.flipTh = knobs.flipTh;
        bparams.tCbf = ctx.timing.tREFW;
        bparams.tRc = ctx.timing.tRC;
        bparams.counterBits = core::ceilLog2(nbl) + 1;
        bparams.seed = knobs.seed;
        return std::make_unique<BlockHammer>(
            ctx.geometry.totalBanks(), bparams);
    },
}};

} // namespace

} // namespace mithril::trackers
