/**
 * @file
 * BlockHammer (Yaglikci et al., HPCA 2021): MC-side throttling scheme
 * built on a pair of interleaved counting Bloom filters (CBFs).
 *
 * Every ACT inserts the row into both CBFs; the filters' lifetimes are
 * offset by half an epoch and each resets at the end of its own
 * lifetime, so at least one filter always carries at least half a
 * window of history. A row whose minimum CBF count reaches the
 * blacklist threshold NBL gets throttled: its ACTs are spaced at least
 * tDelay = (tCBF - NBL*tRC) / (FlipTH - NBL) apart, capping its ACT
 * rate below the hammering rate.
 *
 * The CBF is a lossy hash: benign rows that alias with an aggressor
 * (or with each other, in memory-intensive mixes) get blacklisted and
 * throttled too — the performance pathology Figures 10(a)/(c)
 * demonstrate.
 */

#ifndef MITHRIL_TRACKERS_BLOCKHAMMER_HH
#define MITHRIL_TRACKERS_BLOCKHAMMER_HH

#include <unordered_map>
#include <vector>

#include "common/simd.hh"
#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** Construction parameters for BlockHammer. */
struct BlockHammerParams
{
    std::uint32_t cbfSize;       //!< Counters per CBF.
    std::uint32_t hashes = 4;    //!< Hash functions per CBF.
    std::uint32_t nbl;           //!< Blacklist threshold.
    std::uint32_t flipTh;        //!< Target FlipTH (sets tDelay).
    Tick tCbf;                   //!< CBF lifetime (typically tREFW).
    Tick tRc;                    //!< Row cycle time.
    std::uint32_t counterBits = 15;
    std::uint64_t seed = 0xb10cull;
};

/** BlockHammer throttling tracker. */
class BlockHammer : public RhProtection
{
  public:
    BlockHammer(std::uint32_t num_banks,
                const BlockHammerParams &params);

    std::string name() const override { return "BlockHammer"; }
    Location location() const override { return Location::Mc; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: the span's rows are hashed block-at-a-time
     *  through simd::bloomHashRows (lane-parallel mix64 + exact
     *  Barrett modulo — no hardware divide), and each row's slots are
     *  reused for both filters' inserts *and* the blacklist estimate
     *  (the scalar path hashes 4x per ACT: two filter inserts plus
     *  estimate()), with the epoch-rotation check hoisted to the span
     *  boundary. Falls back to the scalar loop for the rare span that
     *  crosses a CBF lifetime boundary. Byte-identical to scalar. */
    std::size_t onActivateBatch(const ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    Tick throttleAct(BankId bank, RowId row, Tick now) override;

    double tableBytesPerBank() const override;

    void mergeStatsFrom(const RhProtection &other) override;

    /** Minimum count of the row across hashes, max over both CBFs. */
    std::uint32_t estimate(BankId bank, RowId row, Tick now) const;

    /** True when the row is currently blacklisted. */
    bool isBlacklisted(BankId bank, RowId row, Tick now) const;

    /** Enforced ACT spacing for blacklisted rows. */
    Tick delayQuantum() const { return tDelay_; }

    /** Throttle events applied so far. */
    std::uint64_t throttles() const { return throttles_; }

  private:
    struct Cbf
    {
        std::vector<std::uint32_t> counts;
        Tick epochStart = 0;
    };

    struct BankState
    {
        Cbf filters[2];
        /** Last ACT time of rows observed while blacklisted. */
        std::unordered_map<RowId, Tick> lastBlacklistedAct;
    };

    std::size_t hashSlot(RowId row, std::uint32_t i) const;
    void rotateEpochs(BankState &state, Tick now) const;
    std::uint32_t minCount(const Cbf &filter, RowId row) const;

    BlockHammerParams params_;
    Tick tDelay_;
    /** Prepared exact divisor for `% cbfSize` (Barrett reduction). */
    simd::U64Divisor cbfMod_;
    std::vector<BankState> banks_;
    std::uint64_t throttles_ = 0;
    /** Reusable slot-index block for the batched path (one hash
     *  evaluation per row instead of four, a block of rows at a
     *  time). */
    std::vector<std::uint32_t> slotScratch_;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_BLOCKHAMMER_HH
