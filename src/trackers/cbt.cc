#include "cbt.hh"

#include <algorithm>

#include "common/logging.hh"
#include "registry/scheme_registry.hh"

namespace mithril::trackers
{

Cbt::Cbt(std::uint32_t num_banks, const CbtParams &params)
    : params_(params), trees_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nCounters >= 1);
    MITHRIL_ASSERT(params_.splitThreshold > 0);
    MITHRIL_ASSERT(params_.refreshThreshold >= params_.splitThreshold);
    MITHRIL_ASSERT(params_.rowsPerBank > 1);
    for (auto &tree : trees_)
        resetTree(tree, 0);
}

void
Cbt::resetTree(Tree &tree, Tick now) const
{
    tree.nodes.clear();
    tree.nodes.push_back(Node{0, params_.rowsPerBank, 0, -1, -1});
    tree.lastReset = now;
}

std::size_t
Cbt::findLeaf(Tree &tree, RowId row) const
{
    std::size_t idx = 0;
    while (!tree.nodes[idx].isLeaf()) {
        const Node &node = tree.nodes[idx];
        const RowId mid = node.lo + (node.hi - node.lo) / 2;
        idx = static_cast<std::size_t>(row < mid ? node.left
                                                 : node.right);
    }
    return idx;
}

void
Cbt::onActivate(BankId bank, RowId row, Tick now,
                std::vector<RowId> &arr_aggressors)
{
    Tree &tree = trees_.at(bank);
    if (now - tree.lastReset >= params_.resetInterval)
        resetTree(tree, now);

    countOp();
    std::size_t idx = findLeaf(tree, row);
    ++tree.nodes[idx].count;

    // Split while the leaf is hot, space remains, and it still covers
    // more than one row. Children inherit the parent's count: any row
    // in the range may own every activation seen so far.
    while (tree.nodes[idx].count >= params_.splitThreshold &&
           tree.nodes[idx].count < params_.refreshThreshold &&
           tree.nodes[idx].hi - tree.nodes[idx].lo > 1 &&
           tree.nodes.size() + 2 <= params_.nCounters) {
        const RowId lo = tree.nodes[idx].lo;
        const RowId hi = tree.nodes[idx].hi;
        const RowId mid = lo + (hi - lo) / 2;
        const std::uint32_t inherited = tree.nodes[idx].count;
        const auto left = static_cast<std::int32_t>(tree.nodes.size());
        tree.nodes.push_back(Node{lo, mid, inherited, -1, -1});
        tree.nodes.push_back(Node{mid, hi, inherited, -1, -1});
        tree.nodes[idx].left = left;
        tree.nodes[idx].right = left + 1;
        idx = static_cast<std::size_t>(row < mid ? left : left + 1);
        countOp();
        // Inherited counts can already sit at the refresh threshold;
        // the loop exit below handles that leaf.
        break;
    }

    if (tree.nodes[idx].count >= params_.refreshThreshold) {
        // Refresh the victims of every row in the group.
        const Node &leaf = tree.nodes[idx];
        const std::uint32_t span = leaf.hi - leaf.lo;
        maxGroupRefreshed_ = std::max(maxGroupRefreshed_, span);
        for (RowId r = leaf.lo; r < leaf.hi; ++r)
            arr_aggressors.push_back(r);
        tree.nodes[idx].count = 0;
    }
}

std::size_t
Cbt::onActivateBatch(const ActSpan &span,
                     std::vector<RowId> &arr_aggressors)
{
    if (span.size == 0)
        return 0;
    Tree &tree = trees_.at(span.bank);

    // A tree reset can only fall inside this span when its last tick
    // crosses the reset interval (once per tREFW): take the faithful
    // scalar loop for that rare span. Otherwise no per-ACT reset
    // check is needed and the walk runs in one tight loop.
    if (span.tickAt(span.size - 1) - tree.lastReset >=
        params_.resetInterval)
        return RhProtection::onActivateBatch(span, arr_aggressors);

    RowId cached_row[2] = {kInvalidRow, kInvalidRow};
    std::size_t cached_leaf[2] = {0, 0};

    std::size_t consumed = 0;
    while (consumed < span.size) {
        const RowId row = span.rows[consumed];
        ++consumed;
        countOp();

        std::size_t idx;
        if (row == cached_row[0]) {
            idx = cached_leaf[0];
        } else if (row == cached_row[1]) {
            idx = cached_leaf[1];
            std::swap(cached_row[0], cached_row[1]);
            std::swap(cached_leaf[0], cached_leaf[1]);
        } else {
            idx = findLeaf(tree, row);
            cached_row[1] = cached_row[0];
            cached_leaf[1] = cached_leaf[0];
            cached_row[0] = row;
            cached_leaf[0] = idx;
        }
        ++tree.nodes[idx].count;

        // At most one split per ACT, exactly as the scalar loop.
        if (tree.nodes[idx].count >= params_.splitThreshold &&
            tree.nodes[idx].count < params_.refreshThreshold &&
            tree.nodes[idx].hi - tree.nodes[idx].lo > 1 &&
            tree.nodes.size() + 2 <= params_.nCounters) {
            const RowId lo = tree.nodes[idx].lo;
            const RowId hi = tree.nodes[idx].hi;
            const RowId mid = lo + (hi - lo) / 2;
            const std::uint32_t inherited = tree.nodes[idx].count;
            const auto left =
                static_cast<std::int32_t>(tree.nodes.size());
            tree.nodes.push_back(Node{lo, mid, inherited, -1, -1});
            tree.nodes.push_back(Node{mid, hi, inherited, -1, -1});
            tree.nodes[idx].left = left;
            tree.nodes[idx].right = left + 1;
            idx = static_cast<std::size_t>(row < mid ? left
                                                     : left + 1);
            countOp();
            // The split node is interior now; both cache ways may
            // point at it, so re-prime with the fresh child only.
            cached_row[0] = row;
            cached_leaf[0] = idx;
            cached_row[1] = kInvalidRow;
        }

        if (tree.nodes[idx].count >= params_.refreshThreshold) {
            const Node &leaf = tree.nodes[idx];
            const std::uint32_t group_span = leaf.hi - leaf.lo;
            maxGroupRefreshed_ =
                std::max(maxGroupRefreshed_, group_span);
            for (RowId r = leaf.lo; r < leaf.hi; ++r)
                arr_aggressors.push_back(r);
            tree.nodes[idx].count = 0;
            break;
        }
    }
    return consumed;
}

double
Cbt::tableBytesPerBank() const
{
    // Each counter carries its count plus range bookkeeping bits.
    const double bits_per_counter =
        static_cast<double>(params_.counterBits) + 2.0;
    return static_cast<double>(params_.nCounters) * bits_per_counter /
           8.0;
}

void
Cbt::mergeStatsFrom(const RhProtection &other)
{
    RhProtection::mergeStatsFrom(other);
    maxGroupRefreshed_ =
        std::max(maxGroupRefreshed_,
                 dynamic_cast<const Cbt &>(other).maxGroupRefreshed_);
}

std::size_t
Cbt::leafCount(BankId bank) const
{
    const Tree &tree = trees_.at(bank);
    std::size_t leaves = 0;
    for (const auto &node : tree.nodes)
        if (node.isLeaf())
            ++leaves;
    return leaves;
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterCbt{{
    /*name=*/"cbt",
    /*display=*/"CBT",
    /*description=*/
    "counter tree that splits hot subtrees down to row granularity",
    /*aliases=*/{},
    /*uses=*/"flip",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        CbtParams cparams;
        cparams.nCounters = static_cast<std::uint32_t>(
            12.0e6 / static_cast<double>(knobs.flipTh));
        cparams.refreshThreshold = std::max(2u, knobs.flipTh / 4);
        cparams.splitThreshold =
            std::max(1u, cparams.refreshThreshold / 2);
        cparams.rowsPerBank = ctx.geometry.rowsPerBank;
        cparams.resetInterval = ctx.timing.tREFW;
        return std::make_unique<Cbt>(ctx.geometry.totalBanks(),
                                     cparams);
    },
}};

} // namespace

} // namespace mithril::trackers
