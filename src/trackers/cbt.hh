/**
 * @file
 * CBT — Counter-Based Tree (Seyedzadeh et al., ISCA 2018): the grouped
 * counter approach of Section III-D.
 *
 * Each bank owns an adaptive binary tree over its row-address space. A
 * node counts the ACTs landing anywhere in its range; when the count
 * reaches the split threshold and spare counters remain, the node
 * splits and both children conservatively inherit the count (any row of
 * the range could own it). When a leaf's count reaches the refresh
 * threshold, every row in its range is treated as an aggressor and the
 * whole group's victims are refreshed — which is exactly why CBT fits
 * the ARR remedy but wastes the fixed-size RFM window: an unsplit leaf
 * covers far more rows than one tRFM can refresh.
 */

#ifndef MITHRIL_TRACKERS_CBT_HH
#define MITHRIL_TRACKERS_CBT_HH

#include <cstdint>
#include <vector>

#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** Construction parameters for CBT. */
struct CbtParams
{
    std::uint32_t nCounters;     //!< Counter budget per bank.
    std::uint32_t splitThreshold;   //!< Count at which a node splits.
    std::uint32_t refreshThreshold; //!< Count at which a leaf refreshes
                                    //!< its whole group (FlipTH/4).
    std::uint32_t rowsPerBank;
    Tick resetInterval;          //!< Tree reset period (tREFW).
    std::uint32_t counterBits = 14;
};

/** CBT grouped-counter tracker. */
class Cbt : public RhProtection
{
  public:
    Cbt(std::uint32_t num_banks, const CbtParams &params);

    std::string name() const override { return "CBT"; }
    Location location() const override { return Location::Mc; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: the counter-tree walk with the bank/reset
     *  bookkeeping hoisted out of the per-ACT loop and a 2-way
     *  (row -> leaf) cache, so repeated hammer rows skip the root
     *  walk; falls back to the scalar loop for the rare span that
     *  crosses a tree-reset boundary. Byte-identical to the scalar
     *  loop (the existing engine equivalence suite pins it). */
    std::size_t onActivateBatch(const ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    double tableBytesPerBank() const override;

    void mergeStatsFrom(const RhProtection &other) override;

    const CbtParams &params() const { return params_; }

    /** Leaves currently allocated in a bank's tree. */
    std::size_t leafCount(BankId bank) const;

    /** Largest group ever refreshed at once (RFM-misfit signature). */
    std::uint32_t maxGroupRefreshed() const { return maxGroupRefreshed_; }

  private:
    struct Node
    {
        RowId lo;
        RowId hi;  //!< Exclusive.
        std::uint32_t count = 0;
        std::int32_t left = -1;
        std::int32_t right = -1;
        bool isLeaf() const { return left < 0; }
    };

    struct Tree
    {
        std::vector<Node> nodes;
        Tick lastReset = 0;
    };

    /** Walk to the leaf covering the row. */
    std::size_t findLeaf(Tree &tree, RowId row) const;

    void resetTree(Tree &tree, Tick now) const;

    CbtParams params_;
    std::vector<Tree> trees_;
    std::uint32_t maxGroupRefreshed_ = 0;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_CBT_HH
