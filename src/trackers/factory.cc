#include "factory.hh"

#include <cmath>

#include "analysis/area_model.hh"
#include "analysis/parfm_failure.hh"
#include "common/logging.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "core/mithril.hh"
#include "trackers/blockhammer.hh"
#include "trackers/cbt.hh"
#include "trackers/graphene.hh"
#include "trackers/para.hh"
#include "trackers/parfm.hh"
#include "trackers/rfm_graphene.hh"
#include "trackers/twice.hh"

namespace mithril::trackers
{

SchemeKind
schemeFromName(const std::string &name)
{
    if (name == "none")
        return SchemeKind::None;
    if (name == "mithril")
        return SchemeKind::Mithril;
    if (name == "mithril+" || name == "mithril_plus")
        return SchemeKind::MithrilPlus;
    if (name == "parfm")
        return SchemeKind::Parfm;
    if (name == "blockhammer")
        return SchemeKind::BlockHammer;
    if (name == "para")
        return SchemeKind::Para;
    if (name == "graphene")
        return SchemeKind::Graphene;
    if (name == "rfm-graphene" || name == "rfm_graphene")
        return SchemeKind::RfmGraphene;
    if (name == "twice")
        return SchemeKind::Twice;
    if (name == "cbt")
        return SchemeKind::Cbt;
    fatal("unknown scheme name: %s", name.c_str());
    return SchemeKind::None;
}

std::string
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::None:        return "None";
      case SchemeKind::Mithril:     return "Mithril";
      case SchemeKind::MithrilPlus: return "Mithril+";
      case SchemeKind::Parfm:       return "PARFM";
      case SchemeKind::BlockHammer: return "BlockHammer";
      case SchemeKind::Para:        return "PARA";
      case SchemeKind::Graphene:    return "Graphene";
      case SchemeKind::RfmGraphene: return "RFM-Graphene";
      case SchemeKind::Twice:       return "TWiCe";
      case SchemeKind::Cbt:         return "CBT";
    }
    return "?";
}

std::uint32_t
defaultMithrilRfmTh(std::uint32_t flip_th)
{
    if (flip_th >= 12500)
        return 256;
    if (flip_th >= 6250)
        return 128;
    if (flip_th >= 3125)
        return 64;
    return 32;
}

std::unique_ptr<RhProtection>
makeScheme(const SchemeSpec &spec, const dram::Timing &timing,
           const dram::Geometry &geometry)
{
    const std::uint32_t banks = geometry.totalBanks();
    const std::uint32_t row_bits =
        core::ceilLog2(geometry.rowsPerBank);
    const std::uint64_t max_acts = dram::maxActsPerWindow(timing);

    switch (spec.kind) {
      case SchemeKind::None:
        return nullptr;

      case SchemeKind::Mithril:
      case SchemeKind::MithrilPlus: {
        const std::uint32_t rfm_th =
            spec.rfmTh ? spec.rfmTh : defaultMithrilRfmTh(spec.flipTh);
        core::ConfigSolver solver(timing, geometry);
        const double effect = core::aggregatedEffect(spec.blastRadius);
        auto cfg = solver.solve(spec.flipTh, rfm_th, spec.adTh, effect);
        if (!cfg) {
            fatal("Mithril infeasible at FlipTH=%u RFM_TH=%u AdTH=%u "
                  "radius=%u",
                  spec.flipTh, rfm_th, spec.adTh, spec.blastRadius);
        }
        core::MithrilParams params;
        params.nEntry = cfg->nEntry;
        params.rfmTh = rfm_th;
        params.adTh = spec.adTh;
        params.rowBits = row_bits;
        params.counterBits = cfg->counterBits;
        params.plusMode = (spec.kind == SchemeKind::MithrilPlus);
        return std::make_unique<core::Mithril>(banks, params);
      }

      case SchemeKind::Parfm: {
        std::uint32_t rfm_th = spec.rfmTh;
        if (rfm_th == 0) {
            rfm_th = analysis::parfmMaxRfmTh(timing, spec.flipTh);
            if (rfm_th == 0) {
                fatal("PARFM cannot reach 1e-15 at FlipTH=%u",
                      spec.flipTh);
            }
        }
        return std::make_unique<Parfm>(banks, rfm_th, spec.seed);
      }

      case SchemeKind::BlockHammer: {
        const auto [cbf_size, nbl] =
            analysis::AreaModel::blockHammerConfig(spec.flipTh);
        BlockHammerParams params;
        params.cbfSize = cbf_size;
        params.nbl = nbl;
        params.flipTh = spec.flipTh;
        params.tCbf = timing.tREFW;
        params.tRc = timing.tRC;
        params.counterBits = core::ceilLog2(nbl) + 1;
        params.seed = spec.seed;
        return std::make_unique<BlockHammer>(banks, params);
      }

      case SchemeKind::Para: {
        const double p =
            Para::requiredProbability(spec.flipTh, 1e-15);
        return std::make_unique<Para>(p, spec.seed);
      }

      case SchemeKind::Graphene: {
        GrapheneParams params;
        params.threshold = std::max(1u, spec.flipTh / 4);
        params.nEntry =
            Graphene::requiredEntries(max_acts, params.threshold);
        params.resetInterval = timing.tREFW;
        params.rowBits = row_bits;
        params.counterBits = core::ceilLog2(params.threshold) + 2;
        return std::make_unique<Graphene>(banks, params);
      }

      case SchemeKind::RfmGraphene: {
        RfmGrapheneParams params;
        params.threshold = std::max(1u, spec.flipTh / 4);
        params.rfmTh = spec.rfmTh ? spec.rfmTh : 64;
        params.nEntry =
            Graphene::requiredEntries(max_acts, params.threshold);
        params.resetInterval = timing.tREFW;
        params.rowBits = row_bits;
        params.counterBits = core::ceilLog2(params.threshold) + 2;
        return std::make_unique<RfmGraphene>(banks, params);
      }

      case SchemeKind::Twice: {
        TwiceParams params;
        params.rhThreshold = std::max(1u, spec.flipTh / 4);
        // Rate-exact pruning: an entry survives only while its ACT
        // rate could still reach th_RO within one tREFW.
        params.pruneRateNum = params.rhThreshold;
        params.pruneRateDen = static_cast<std::uint32_t>(
            timing.tREFW / timing.tREFI);
        const std::uint64_t base =
            Graphene::requiredEntries(max_acts, params.rhThreshold);
        const double factor = std::max(
            1.0, std::log(static_cast<double>(max_acts) /
                          static_cast<double>(base)));
        params.capacity = static_cast<std::uint32_t>(
            std::ceil(static_cast<double>(base) * factor));
        params.rowBits = row_bits;
        return std::make_unique<Twice>(banks, params);
      }

      case SchemeKind::Cbt: {
        CbtParams params;
        params.nCounters = static_cast<std::uint32_t>(
            12.0e6 / static_cast<double>(spec.flipTh));
        params.refreshThreshold = std::max(2u, spec.flipTh / 4);
        params.splitThreshold =
            std::max(1u, params.refreshThreshold / 2);
        params.rowsPerBank = geometry.rowsPerBank;
        params.resetInterval = timing.tREFW;
        return std::make_unique<Cbt>(banks, params);
      }
    }
    panic("unhandled scheme kind");
    return nullptr;
}

} // namespace mithril::trackers
