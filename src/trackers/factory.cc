#include "factory.hh"

#include "common/logging.hh"
#include "core/bounds.hh"
#include "core/config_solver.hh"
#include "core/mithril.hh"
#include "registry/scheme_registry.hh"

namespace mithril::trackers
{

namespace
{

/** Kind <-> registry key, in enum order. */
const struct
{
    SchemeKind kind;
    const char *key;
} kKindKeys[] = {
    {SchemeKind::None, "none"},
    {SchemeKind::Mithril, "mithril"},
    {SchemeKind::MithrilPlus, "mithril+"},
    {SchemeKind::Parfm, "parfm"},
    {SchemeKind::BlockHammer, "blockhammer"},
    {SchemeKind::Para, "para"},
    {SchemeKind::Graphene, "graphene"},
    {SchemeKind::RfmGraphene, "rfm-graphene"},
    {SchemeKind::Twice, "twice"},
    {SchemeKind::Cbt, "cbt"},
};

} // namespace

SchemeKind
schemeFromName(const std::string &name)
{
    const auto *entry = registry::schemeRegistry().find(name);
    if (entry) {
        for (const auto &m : kKindKeys) {
            if (entry->name == m.key)
                return m.kind;
        }
        fatal("scheme '%s' is registered but not addressable through "
              "the deprecated SchemeKind enum; use the name-based "
              "ExperimentSpec API",
              name.c_str());
    }
    fatal("unknown scheme name: %s (registered schemes: %s)",
          name.c_str(),
          registry::joinSorted(registry::schemeRegistry().names())
              .c_str());
    return SchemeKind::None;
}

std::string
schemeKey(SchemeKind kind)
{
    for (const auto &m : kKindKeys) {
        if (m.kind == kind)
            return m.key;
    }
    panic("unhandled scheme kind");
    return "?";
}

std::string
schemeName(SchemeKind kind)
{
    return registry::schemeDisplay(schemeKey(kind));
}

std::uint32_t
defaultMithrilRfmTh(std::uint32_t flip_th)
{
    if (flip_th >= 12500)
        return 256;
    if (flip_th >= 6250)
        return 128;
    if (flip_th >= 3125)
        return 64;
    return 32;
}

ParamSet
schemeSpecParams(const SchemeSpec &spec)
{
    ParamSet params;
    params.set("flip", std::to_string(spec.flipTh));
    params.set("rfm", std::to_string(spec.rfmTh));
    params.set("ad", std::to_string(spec.adTh));
    params.set("blast-radius", std::to_string(spec.blastRadius));
    params.set("scheme-seed", std::to_string(spec.seed));
    return params;
}

std::unique_ptr<RhProtection>
makeScheme(const SchemeSpec &spec, const dram::Timing &timing,
           const dram::Geometry &geometry)
{
    try {
        return registry::makeScheme(schemeKey(spec.kind),
                                    schemeSpecParams(spec),
                                    {timing, geometry});
    } catch (const registry::SpecError &err) {
        fatal("%s", err.what());
    }
    return nullptr;
}

// ------------------------------------------------------ registration
//
// "none" and the two Mithril variants register here; every other
// scheme registers in its own translation unit.

namespace
{

std::unique_ptr<RhProtection>
makeMithrilEntry(const ParamSet &params,
                 const registry::SchemeContext &ctx, bool plus_mode)
{
    const auto knobs = registry::SchemeKnobs::fromParams(params);
    const std::uint32_t rfm_th =
        knobs.rfmTh ? knobs.rfmTh : defaultMithrilRfmTh(knobs.flipTh);
    core::ConfigSolver solver(ctx.timing, ctx.geometry);
    const double effect = core::aggregatedEffect(knobs.blastRadius);
    auto cfg = solver.solve(knobs.flipTh, rfm_th, knobs.adTh, effect);
    if (!cfg) {
        throw registry::SpecError(
            "Mithril infeasible at flip=" +
            std::to_string(knobs.flipTh) + " rfm=" +
            std::to_string(rfm_th) + " ad=" +
            std::to_string(knobs.adTh) + " blast-radius=" +
            std::to_string(knobs.blastRadius));
    }
    core::MithrilParams mparams;
    mparams.nEntry = cfg->nEntry;
    mparams.rfmTh = rfm_th;
    mparams.adTh = knobs.adTh;
    mparams.rowBits = core::ceilLog2(ctx.geometry.rowsPerBank);
    mparams.counterBits = cfg->counterBits;
    mparams.plusMode = plus_mode;
    return std::make_unique<core::Mithril>(ctx.geometry.totalBanks(),
                                           mparams);
}

const registry::Registrar<registry::SchemeTraits> kRegisterNone{{
    /*name=*/"none",
    /*display=*/"None",
    /*description=*/"unprotected baseline (no tracker)",
    /*aliases=*/{},
    /*uses=*/"",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &, const registry::SchemeContext &)
        -> std::unique_ptr<RhProtection> { return nullptr; },
}};

const registry::Registrar<registry::SchemeTraits> kRegisterMithril{{
    /*name=*/"mithril",
    /*display=*/"Mithril",
    /*description=*/
    "CbS-tracked RFM scheme sized by the Theorem 1/2 solver",
    /*aliases=*/{},
    /*uses=*/"flip, rfm (0 = paper default), ad, blast-radius",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx) {
        return makeMithrilEntry(params, ctx, false);
    },
}};

const registry::Registrar<registry::SchemeTraits> kRegisterMithrilPlus{{
    /*name=*/"mithril+",
    /*display=*/"Mithril+",
    /*description=*/
    "Mithril with the MRR poll that skips needless RFM commands",
    /*aliases=*/{"mithril_plus"},
    /*uses=*/"flip, rfm (0 = paper default), ad, blast-radius",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx) {
        return makeMithrilEntry(params, ctx, true);
    },
}};

} // namespace

} // namespace mithril::trackers
