/**
 * @file
 * Deprecated enum-based shims over the scheme registry
 * (registry/scheme_registry.hh). New code should address schemes by
 * registry name through registry::makeScheme / sim::ExperimentSpec;
 * the SchemeKind/SchemeSpec surface below remains for callers that
 * predate the registry and maps 1:1 onto the built-in entries.
 * Construction logic lives in each tracker's translation unit (its
 * registration block), not here.
 */

#ifndef MITHRIL_TRACKERS_FACTORY_HH
#define MITHRIL_TRACKERS_FACTORY_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "dram/timing.hh"
#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** Every scheme the evaluation compares. */
enum class SchemeKind
{
    None,         //!< Unprotected baseline.
    Mithril,
    MithrilPlus,
    Parfm,
    BlockHammer,
    Para,
    Graphene,
    RfmGraphene,
    Twice,
    Cbt,
};

/** Scheme selection plus the knobs the paper varies. */
struct SchemeSpec
{
    SchemeKind kind = SchemeKind::Mithril;
    std::uint32_t flipTh = 6250;
    /** RFM threshold; 0 = the paper's default for this FlipTH
     *  (Mithril) or the auto-derived safe value (PARFM). */
    std::uint32_t rfmTh = 0;
    /** Mithril adaptive refresh threshold; the paper's default is 200.
     *  Ignored by other schemes. */
    std::uint32_t adTh = 200;
    /** Non-adjacent RH radius (Section V-C): 1 = classic double-sided;
     *  2-3 tighten the Mithril bound to FlipTH/aggregatedEffect and
     *  widen preventive refreshes to 2*radius victims. */
    std::uint32_t blastRadius = 1;
    std::uint64_t seed = 7;
};

/** Parse a scheme name ("mithril", "mithril+", "parfm", ...);
 *  fatal on unknown names, listing every registered scheme. */
SchemeKind schemeFromName(const std::string &name);

/** Printable name of a scheme kind ("Mithril", "RFM-Graphene"). */
std::string schemeName(SchemeKind kind);

/** Canonical registry key of a scheme kind ("mithril",
 *  "rfm-graphene"). */
std::string schemeKey(SchemeKind kind);

/** The spec rendered as the registry's shared knob parameters
 *  (flip=, rfm=, ad=, blast-radius=, scheme-seed=). */
ParamSet schemeSpecParams(const SchemeSpec &spec);

/** The paper's default RFM_TH for Mithril at a given FlipTH
 *  (Section VI-A: 256 at >=12.5K, down to 32 at 1.5K). */
std::uint32_t defaultMithrilRfmTh(std::uint32_t flip_th);

/**
 * Build a configured scheme instance (nullptr for SchemeKind::None).
 * Fatal error when the requested configuration is infeasible.
 */
std::unique_ptr<RhProtection> makeScheme(const SchemeSpec &spec,
                                         const dram::Timing &timing,
                                         const dram::Geometry &geometry);

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_FACTORY_HH
