#include "graphene.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/config_solver.hh"
#include "registry/scheme_registry.hh"
#include "telemetry/event_trace.hh"
#include "telemetry/metric_sheet.hh"

namespace mithril::trackers
{

Graphene::Graphene(std::uint32_t num_banks, const GrapheneParams &params)
    : params_(params), lastReset_(num_banks, 0)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nEntry > 0);
    MITHRIL_ASSERT(params_.threshold > 0);
    MITHRIL_ASSERT(params_.resetInterval > 0);
    tables_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        tables_.emplace_back(params_.nEntry, params_.counterBits);
}

void
Graphene::onActivate(BankId bank, RowId row, Tick now,
                     std::vector<RowId> &arr_aggressors)
{
    core::CbsTable &table = tables_.at(bank);
    if (now - lastReset_.at(bank) >= params_.resetInterval) {
        table.clear();
        lastReset_.at(bank) = now;
    }

    std::uint64_t est;
    if (eventRecorder_) {
        const std::uint64_t inserts = table.inserts();
        const std::uint64_t evictions = table.evictions();
        est = table.touch(row);
        if (table.evictions() != evictions) {
            eventRecorder_->record(telemetry::EventKind::CbsEvict,
                                   now, bank, row);
        } else if (table.inserts() != inserts) {
            eventRecorder_->record(telemetry::EventKind::CbsInsert,
                                   now, bank, row);
        }
    } else {
        est = table.touch(row);
    }
    countOp();
    // Reactive trigger: every time the estimated count crosses a
    // multiple of the predefined threshold, refresh the victims (the
    // spillover-counter behaviour of the original design).
    if (est % params_.threshold == 0) {
        arr_aggressors.push_back(row);
        ++arrCount_;
    }
}

std::size_t
Graphene::onActivateBatch(const ActSpan &span,
                          std::vector<RowId> &arr_aggressors)
{
    // While tracing, take the base scalar loop so per-record table
    // events carry exact ticks; byte-identical in effect by the
    // onActivateBatch() contract (pinned by the equivalence tests).
    if (eventRecorder_)
        return RhProtection::onActivateBatch(span, arr_aggressors);
    core::CbsTable &table = tables_.at(span.bank);
    Tick &last_reset = lastReset_.at(span.bank);
    if (span.size == 0)
        return 0;

    // A table reset can only fall inside this span when its last tick
    // crosses the reset interval (once per tREFW); take the scalar
    // loop for that rare span, the tight run otherwise.
    if (span.tickAt(span.size - 1) - last_reset >=
        params_.resetInterval) {
        std::size_t consumed = 0;
        while (consumed < span.size) {
            const Tick now = span.tickAt(consumed);
            if (now - last_reset >= params_.resetInterval) {
                table.clear();
                last_reset = now;
            }
            const std::uint64_t est =
                table.touchFast(span.rows[consumed]);
            ++consumed;
            if (est % params_.threshold == 0) {
                arr_aggressors.push_back(span.rows[consumed - 1]);
                ++arrCount_;
                break;
            }
        }
        countOp(consumed);
        return consumed;
    }

    bool hit = false;
    const std::size_t consumed =
        table.touchRun(span.rows, span.size, params_.threshold, &hit);
    if (hit) {
        arr_aggressors.push_back(span.rows[consumed - 1]);
        ++arrCount_;
    }
    countOp(consumed);
    return consumed;
}

void
Graphene::mergeStatsFrom(const RhProtection &other)
{
    RhProtection::mergeStatsFrom(other);
    arrCount_ += dynamic_cast<const Graphene &>(other).arrCount_;
}

void
Graphene::exportMetrics(telemetry::MetricSheet &sheet) const
{
    RhProtection::exportMetrics(sheet);
    std::uint64_t touches = 0, inserts = 0, evictions = 0;
    for (const core::CbsTable &table : tables_) {
        touches += table.touches();
        inserts += table.inserts();
        evictions += table.evictions();
    }
    sheet.setCounter("tracker.cbs.touches", touches);
    sheet.setCounter("tracker.cbs.inserts", inserts);
    sheet.setCounter("tracker.cbs.evictions", evictions);
    sheet.setCounter("tracker.arr_count", arrCount_);
}

double
Graphene::tableBytesPerBank() const
{
    return static_cast<double>(params_.nEntry) *
           (params_.rowBits + params_.counterBits) / 8.0;
}

std::uint32_t
Graphene::requiredEntries(std::uint64_t max_acts, std::uint32_t threshold)
{
    MITHRIL_ASSERT(threshold > 0);
    return static_cast<std::uint32_t>(
        (max_acts + threshold - 1) / threshold);
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterGraphene{{
    /*name=*/"graphene",
    /*display=*/"Graphene",
    /*description=*/
    "Misra-Gries counter summary with immediate ARR refreshes",
    /*aliases=*/{},
    /*uses=*/"flip",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        GrapheneParams gparams;
        gparams.threshold = std::max(1u, knobs.flipTh / 4);
        gparams.nEntry = Graphene::requiredEntries(
            dram::maxActsPerWindow(ctx.timing), gparams.threshold);
        gparams.resetInterval = ctx.timing.tREFW;
        gparams.rowBits = core::ceilLog2(ctx.geometry.rowsPerBank);
        gparams.counterBits =
            core::ceilLog2(gparams.threshold) + 2;
        return std::make_unique<Graphene>(ctx.geometry.totalBanks(),
                                          gparams);
    },
}};

} // namespace

} // namespace mithril::trackers
