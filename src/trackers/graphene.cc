#include "graphene.hh"

#include "common/logging.hh"

namespace mithril::trackers
{

Graphene::Graphene(std::uint32_t num_banks, const GrapheneParams &params)
    : params_(params), lastReset_(num_banks, 0)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nEntry > 0);
    MITHRIL_ASSERT(params_.threshold > 0);
    MITHRIL_ASSERT(params_.resetInterval > 0);
    tables_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        tables_.emplace_back(params_.nEntry, params_.counterBits);
}

void
Graphene::onActivate(BankId bank, RowId row, Tick now,
                     std::vector<RowId> &arr_aggressors)
{
    core::CbsTable &table = tables_.at(bank);
    if (now - lastReset_.at(bank) >= params_.resetInterval) {
        table.clear();
        lastReset_.at(bank) = now;
    }

    const std::uint64_t est = table.touch(row);
    countOp();
    // Reactive trigger: every time the estimated count crosses a
    // multiple of the predefined threshold, refresh the victims (the
    // spillover-counter behaviour of the original design).
    if (est % params_.threshold == 0) {
        arr_aggressors.push_back(row);
        ++arrCount_;
    }
}

double
Graphene::tableBytesPerBank() const
{
    return static_cast<double>(params_.nEntry) *
           (params_.rowBits + params_.counterBits) / 8.0;
}

std::uint32_t
Graphene::requiredEntries(std::uint64_t max_acts, std::uint32_t threshold)
{
    MITHRIL_ASSERT(threshold > 0);
    return static_cast<std::uint32_t>(
        (max_acts + threshold - 1) / threshold);
}

} // namespace mithril::trackers
