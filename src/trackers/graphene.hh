/**
 * @file
 * Graphene (Park et al., MICRO 2020): deterministic MC-side tracker
 * built on the same Counter-based Summary algorithm as Mithril, but
 * with the classic reactive ARR remedy: the moment a row's estimated
 * count crosses a multiple of the predefined threshold, its victims are
 * refreshed immediately.
 *
 * Graphene resets its tables every reset interval (tREFW by default),
 * which is why its safe threshold is FlipTH/4 instead of FlipTH/2 —
 * an aggressor can straddle the reset point with T-1 ACTs on each side.
 */

#ifndef MITHRIL_TRACKERS_GRAPHENE_HH
#define MITHRIL_TRACKERS_GRAPHENE_HH

#include <vector>

#include "core/cbs_table.hh"
#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** Construction parameters for Graphene. */
struct GrapheneParams
{
    std::uint32_t nEntry;        //!< CbS entries per bank.
    std::uint32_t threshold;     //!< Predefined ARR trigger (FlipTH/4).
    Tick resetInterval;          //!< Table reset period (tREFW).
    std::uint32_t rowBits = 16;
    std::uint32_t counterBits = 20;
};

/** Graphene deterministic ARR-based tracker. */
class Graphene : public RhProtection
{
  public:
    Graphene(std::uint32_t num_banks, const GrapheneParams &params);

    std::string name() const override { return "Graphene"; }
    Location location() const override { return Location::Mc; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: cached-touch loop with the table lookup and
     *  reset bookkeeping hoisted; stops at the first ARR trigger per
     *  the batch contract. */
    std::size_t onActivateBatch(const ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    double tableBytesPerBank() const override;

    void mergeStatsFrom(const RhProtection &other) override;

    void exportMetrics(telemetry::MetricSheet &sheet) const override;

    const GrapheneParams &params() const { return params_; }
    const core::CbsTable &table(BankId bank) const
    {
        return tables_.at(bank);
    }

    /** ARR preventive refreshes triggered so far. */
    std::uint64_t arrCount() const { return arrCount_; }

    /**
     * Entry count needed so that every row reaching the threshold is
     * guaranteed on-table: ceil(max ACTs per reset window / threshold).
     */
    static std::uint32_t requiredEntries(std::uint64_t max_acts,
                                         std::uint32_t threshold);

  private:
    GrapheneParams params_;
    std::vector<core::CbsTable> tables_;
    std::vector<Tick> lastReset_;
    std::uint64_t arrCount_ = 0;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_GRAPHENE_HH
