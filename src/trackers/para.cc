#include "para.hh"

#include <cmath>

#include "common/logging.hh"

namespace mithril::trackers
{

Para::Para(double probability, std::uint64_t seed)
    : probability_(probability), rng_(seed)
{
    MITHRIL_ASSERT(probability_ > 0.0 && probability_ <= 1.0);
}

void
Para::onActivate(BankId bank, RowId row, Tick now,
                 std::vector<RowId> &arr_aggressors)
{
    (void)bank;
    (void)now;
    countOp();
    if (rng_.nextBool(probability_))
        arr_aggressors.push_back(row);
}

double
Para::requiredProbability(std::uint32_t flip_th, double fail_target)
{
    MITHRIL_ASSERT(flip_th >= 2);
    MITHRIL_ASSERT(fail_target > 0.0 && fail_target < 1.0);
    // (1-p)^(flip_th/2) = fail_target  =>  p = 1 - fail^(2/flip_th)
    const double exponent = 2.0 / static_cast<double>(flip_th);
    return 1.0 - std::pow(fail_target, exponent);
}

} // namespace mithril::trackers
