#include "para.hh"

#include <cmath>

#include "common/logging.hh"
#include "registry/scheme_registry.hh"

namespace mithril::trackers
{

Para::Para(double probability, std::uint64_t seed,
           std::uint32_t num_banks)
    : probability_(probability)
{
    MITHRIL_ASSERT(probability_ > 0.0 && probability_ <= 1.0);
    MITHRIL_ASSERT(num_banks > 0);
    rngs_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        rngs_.emplace_back(bankSeed(seed, b));
}

void
Para::onActivate(BankId bank, RowId row, Tick now,
                 std::vector<RowId> &arr_aggressors)
{
    (void)now;
    countOp();
    if (rngs_.at(bank).nextBool(probability_))
        arr_aggressors.push_back(row);
}

std::size_t
Para::onActivateBatch(const ActSpan &span,
                      std::vector<RowId> &arr_aggressors)
{
    Rng &rng = rngs_.at(span.bank);
    std::size_t consumed = 0;
    while (consumed < span.size) {
        const RowId row = span.rows[consumed];
        ++consumed;
        if (rng.nextBool(probability_)) {
            arr_aggressors.push_back(row);
            break;
        }
    }
    countOp(consumed);
    return consumed;
}

double
Para::requiredProbability(std::uint32_t flip_th, double fail_target)
{
    MITHRIL_ASSERT(flip_th >= 2);
    MITHRIL_ASSERT(fail_target > 0.0 && fail_target < 1.0);
    // (1-p)^(flip_th/2) = fail_target  =>  p = 1 - fail^(2/flip_th)
    const double exponent = 2.0 / static_cast<double>(flip_th);
    return 1.0 - std::pow(fail_target, exponent);
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterPara{{
    /*name=*/"para",
    /*display=*/"PARA",
    /*description=*/
    "stateless probabilistic adjacent-row refresh on every ACT",
    /*aliases=*/{},
    /*uses=*/"flip, scheme-seed",
    /*params=*/
    {{
        "para-p",
        registry::ParamDesc::Type::Double,
        "0",
        0.0,
        1.0,
        "refresh probability override (0 = derive from flip for a "
        "1e-15 failure target)",
    }},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        double p = params.getDoubleIn("para-p", 0.0, 0.0, 1.0);
        if (p == 0.0)
            p = Para::requiredProbability(knobs.flipTh, 1e-15);
        return std::make_unique<Para>(p, knobs.seed,
                                      ctx.geometry.totalBanks());
    },
}};

} // namespace

} // namespace mithril::trackers
