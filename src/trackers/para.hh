/**
 * @file
 * PARA (Kim et al., ISCA 2014): probabilistic adjacent row activation.
 *
 * On every ACT the MC flips a biased coin; with probability p it issues
 * an ARR that refreshes the activated row's neighbours. No counters at
 * all, so the area cost is zero, but protection is only probabilistic:
 * p must rise as FlipTH falls, increasing overhead.
 */

#ifndef MITHRIL_TRACKERS_PARA_HH
#define MITHRIL_TRACKERS_PARA_HH

#include "common/random.hh"
#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** PARA probabilistic ARR scheme. */
class Para : public RhProtection
{
  public:
    /**
     * @param probability Per-ACT ARR probability.
     * @param seed        Base RNG seed (deterministic runs). Bank b
     *                    draws from its own stream seeded with
     *                    bankSeed(seed, b), so the draw sequence of a
     *                    bank is independent of how banks interleave
     *                    or shard.
     * @param num_banks   Number of banks observed.
     */
    explicit Para(double probability, std::uint64_t seed = 1,
                  std::uint32_t num_banks = 1);

    std::string name() const override { return "PARA"; }
    Location location() const override { return Location::Mc; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: one RNG draw per record, no virtual hops;
     *  stops at the first triggered ARR per the batch contract. */
    std::size_t onActivateBatch(const ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    double tableBytesPerBank() const override { return 0.0; }

    double probability() const { return probability_; }

    /**
     * Probability needed so that the chance any single aggressor
     * reaches flip_th/2 unrefreshed ACTs stays below fail_target:
     * solve (1-p)^(flip_th/2) <= fail_target.
     */
    static double requiredProbability(std::uint32_t flip_th,
                                      double fail_target);

  private:
    double probability_;
    std::vector<Rng> rngs_;  //!< One independent stream per bank.
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_PARA_HH
