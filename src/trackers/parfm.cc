#include "parfm.hh"

#include "analysis/parfm_failure.hh"
#include "common/logging.hh"
#include "registry/scheme_registry.hh"

namespace mithril::trackers
{

Parfm::Parfm(std::uint32_t num_banks, std::uint32_t rfm_th,
             std::uint64_t seed)
    : rfmTh_(rfm_th), reservoirs_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(rfm_th > 0);
    rngs_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        rngs_.emplace_back(bankSeed(seed, b));
}

void
Parfm::onActivate(BankId bank, RowId row, Tick now,
                  std::vector<RowId> &arr_aggressors)
{
    (void)now;
    (void)arr_aggressors;
    countOp();
    Reservoir &res = reservoirs_.at(bank);
    ++res.seen;
    // Classic reservoir of size one: the i-th item replaces the sample
    // with probability 1/i, giving a uniform pick over the interval.
    if (rngs_.at(bank).nextBounded(res.seen) == 0)
        res.sampled = row;
}

void
Parfm::onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
{
    (void)now;
    countOp();
    Reservoir &res = reservoirs_.at(bank);
    if (res.sampled != kInvalidRow)
        aggressors.push_back(res.sampled);
    res.sampled = kInvalidRow;
    res.seen = 0;
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterParfm{{
    /*name=*/"parfm",
    /*display=*/"PARFM",
    /*description=*/
    "probabilistic reservoir sampling over the RFM interface",
    /*aliases=*/{},
    /*uses=*/"flip, rfm (0 = max safe for 1e-15), scheme-seed",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        std::uint32_t rfm_th = knobs.rfmTh;
        if (rfm_th == 0) {
            rfm_th = analysis::parfmMaxRfmTh(ctx.timing, knobs.flipTh);
            if (rfm_th == 0) {
                throw registry::SpecError(
                    "PARFM cannot reach 1e-15 at flip=" +
                    std::to_string(knobs.flipTh));
            }
        }
        return std::make_unique<Parfm>(ctx.geometry.totalBanks(),
                                       rfm_th, knobs.seed);
    },
}};

} // namespace

} // namespace mithril::trackers
