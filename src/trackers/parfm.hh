/**
 * @file
 * PARFM (Section III-E): the PARA-inspired probabilistic RFM scheme.
 *
 * On every RFM command the DRAM refreshes the victims of one row
 * sampled uniformly from the ACTs of the elapsed RFM interval
 * (single-register reservoir sampling, exactly implementable in
 * hardware). Protection is probabilistic; RFM_TH must be set low enough
 * for the target failure probability (Appendix C), which is what makes
 * PARFM energy-hungry at low FlipTH.
 */

#ifndef MITHRIL_TRACKERS_PARFM_HH
#define MITHRIL_TRACKERS_PARFM_HH

#include <vector>

#include "common/random.hh"
#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** PARFM probabilistic RFM-based scheme. */
class Parfm : public RhProtection
{
  public:
    /**
     * @param num_banks Number of banks tracked.
     * @param rfm_th    RFM threshold (sampling period).
     * @param seed      Base RNG seed; bank b samples from its own
     *                  stream seeded with bankSeed(seed, b), so the
     *                  reservoir picks of a bank are independent of
     *                  bank interleaving and engine sharding.
     */
    Parfm(std::uint32_t num_banks, std::uint32_t rfm_th,
          std::uint64_t seed = 2);

    std::string name() const override { return "PARFM"; }
    Location location() const override { return Location::Dram; }

    bool usesRfm() const override { return true; }
    std::uint32_t rfmTh() const override { return rfmTh_; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    void onRfm(BankId bank, Tick now,
               std::vector<RowId> &aggressors) override;

    /** One sampled-address register + one interval counter per bank. */
    double tableBytesPerBank() const override { return 8.0; }

  private:
    std::uint32_t rfmTh_;
    std::vector<Rng> rngs_;  //!< One independent stream per bank.

    struct Reservoir
    {
        RowId sampled = kInvalidRow;
        std::uint32_t seen = 0;
    };

    std::vector<Reservoir> reservoirs_;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_PARFM_HH
