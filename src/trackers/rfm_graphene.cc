#include "rfm_graphene.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/config_solver.hh"
#include "registry/scheme_registry.hh"
#include "trackers/graphene.hh"

namespace mithril::trackers
{

RfmGraphene::RfmGraphene(std::uint32_t num_banks,
                         const RfmGrapheneParams &params)
    : params_(params), lastReset_(num_banks, 0), pending_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nEntry > 0);
    MITHRIL_ASSERT(params_.threshold > 0);
    MITHRIL_ASSERT(params_.rfmTh > 0);
    tables_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        tables_.emplace_back(params_.nEntry, params_.counterBits);
}

void
RfmGraphene::onActivate(BankId bank, RowId row, Tick now,
                        std::vector<RowId> &arr_aggressors)
{
    (void)arr_aggressors;  // Never requests an immediate ARR.
    core::CbsTable &table = tables_.at(bank);
    if (now - lastReset_.at(bank) >= params_.resetInterval) {
        table.clear();
        pending_.at(bank).clear();
        lastReset_.at(bank) = now;
    }

    const std::uint64_t est = table.touch(row);
    countOp();
    if (est % params_.threshold == 0) {
        // Buffer for the next RFM opportunity instead of acting now —
        // this is precisely what makes the scheme unsafe.
        pending_.at(bank).push_back(row);
        maxQueueDepth_ =
            std::max(maxQueueDepth_, pending_.at(bank).size());
    }
}

std::size_t
RfmGraphene::onActivateBatch(const ActSpan &span,
                             std::vector<RowId> &arr_aggressors)
{
    (void)arr_aggressors;  // Buffered, never immediate.
    core::CbsTable &table = tables_.at(span.bank);
    Tick &last_reset = lastReset_.at(span.bank);
    auto &queue = pending_.at(span.bank);
    if (span.size == 0)
        return 0;

    // Rare reset-crossing span: scalar loop (see Graphene).
    if (span.tickAt(span.size - 1) - last_reset >=
        params_.resetInterval) {
        for (std::size_t i = 0; i < span.size; ++i) {
            const Tick now = span.tickAt(i);
            if (now - last_reset >= params_.resetInterval) {
                table.clear();
                queue.clear();
                last_reset = now;
            }
            const std::uint64_t est = table.touchFast(span.rows[i]);
            if (est % params_.threshold == 0) {
                queue.push_back(span.rows[i]);
                maxQueueDepth_ =
                    std::max(maxQueueDepth_, queue.size());
            }
        }
        countOp(span.size);
        return span.size;
    }

    // Buffering never stops the span: resume the run after each
    // threshold crossing.
    std::size_t done = 0;
    while (done < span.size) {
        bool hit = false;
        done += table.touchRun(span.rows + done, span.size - done,
                               params_.threshold, &hit);
        if (hit) {
            queue.push_back(span.rows[done - 1]);
            maxQueueDepth_ = std::max(maxQueueDepth_, queue.size());
        }
    }
    countOp(span.size);
    return span.size;
}

void
RfmGraphene::onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
{
    (void)now;
    countOp();
    auto &queue = pending_.at(bank);
    if (queue.empty())
        return;
    aggressors.push_back(queue.front());
    queue.pop_front();
}

void
RfmGraphene::mergeStatsFrom(const RhProtection &other)
{
    RhProtection::mergeStatsFrom(other);
    maxQueueDepth_ =
        std::max(maxQueueDepth_,
                 dynamic_cast<const RfmGraphene &>(other).maxQueueDepth_);
}

double
RfmGraphene::tableBytesPerBank() const
{
    return static_cast<double>(params_.nEntry) *
           (params_.rowBits + params_.counterBits) / 8.0;
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterRfmGraphene{{
    /*name=*/"rfm-graphene",
    /*display=*/"RFM-Graphene",
    /*description=*/
    "Graphene's summary driven through buffered RFM refreshes",
    /*aliases=*/{"rfm_graphene"},
    /*uses=*/"flip, rfm (0 = 64)",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        RfmGrapheneParams gparams;
        gparams.threshold = std::max(1u, knobs.flipTh / 4);
        gparams.rfmTh = knobs.rfmTh ? knobs.rfmTh : 64;
        gparams.nEntry = Graphene::requiredEntries(
            dram::maxActsPerWindow(ctx.timing), gparams.threshold);
        gparams.resetInterval = ctx.timing.tREFW;
        gparams.rowBits = core::ceilLog2(ctx.geometry.rowsPerBank);
        gparams.counterBits =
            core::ceilLog2(gparams.threshold) + 2;
        return std::make_unique<RfmGraphene>(
            ctx.geometry.totalBanks(), gparams);
    },
}};

} // namespace

} // namespace mithril::trackers
