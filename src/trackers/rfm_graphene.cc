#include "rfm_graphene.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::trackers
{

RfmGraphene::RfmGraphene(std::uint32_t num_banks,
                         const RfmGrapheneParams &params)
    : params_(params), lastReset_(num_banks, 0), pending_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.nEntry > 0);
    MITHRIL_ASSERT(params_.threshold > 0);
    MITHRIL_ASSERT(params_.rfmTh > 0);
    tables_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        tables_.emplace_back(params_.nEntry, params_.counterBits);
}

void
RfmGraphene::onActivate(BankId bank, RowId row, Tick now,
                        std::vector<RowId> &arr_aggressors)
{
    (void)arr_aggressors;  // Never requests an immediate ARR.
    core::CbsTable &table = tables_.at(bank);
    if (now - lastReset_.at(bank) >= params_.resetInterval) {
        table.clear();
        pending_.at(bank).clear();
        lastReset_.at(bank) = now;
    }

    const std::uint64_t est = table.touch(row);
    countOp();
    if (est % params_.threshold == 0) {
        // Buffer for the next RFM opportunity instead of acting now —
        // this is precisely what makes the scheme unsafe.
        pending_.at(bank).push_back(row);
        maxQueueDepth_ =
            std::max(maxQueueDepth_, pending_.at(bank).size());
    }
}

void
RfmGraphene::onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
{
    (void)now;
    countOp();
    auto &queue = pending_.at(bank);
    if (queue.empty())
        return;
    aggressors.push_back(queue.front());
    queue.pop_front();
}

double
RfmGraphene::tableBytesPerBank() const
{
    return static_cast<double>(params_.nEntry) *
           (params_.rowBits + params_.counterBits) / 8.0;
}

} // namespace mithril::trackers
