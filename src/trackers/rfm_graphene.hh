/**
 * @file
 * RFM-Graphene: the strawman of Section III-A / Figure 2.
 *
 * It ports Graphene's reactive policy onto the RFM interface naively:
 * when a row's estimated count crosses the predefined threshold the row
 * is merely *buffered*, and each subsequent RFM command treats one
 * buffered row. Because RFM commands are periodic (one per RFM_TH ACTs)
 * rather than on-demand, an attacker can drive many rows across the
 * threshold in quick succession; the last buffered row then waits
 * through queue_depth * RFM_TH further ACTs, so the safe FlipTH
 * saturates no matter how low the threshold is set. This class exists
 * to reproduce exactly that pathology.
 */

#ifndef MITHRIL_TRACKERS_RFM_GRAPHENE_HH
#define MITHRIL_TRACKERS_RFM_GRAPHENE_HH

#include <deque>
#include <vector>

#include "core/cbs_table.hh"
#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** Construction parameters for the RFM-Graphene strawman. */
struct RfmGrapheneParams
{
    std::uint32_t nEntry;     //!< CbS entries per bank.
    std::uint32_t threshold;  //!< Buffering trigger.
    std::uint32_t rfmTh;      //!< RFM threshold.
    Tick resetInterval;       //!< Table reset period (tREFW).
    std::uint32_t rowBits = 16;
    std::uint32_t counterBits = 20;
};

/** Naive threshold-buffered RFM scheme (intentionally flawed). */
class RfmGraphene : public RhProtection
{
  public:
    RfmGraphene(std::uint32_t num_banks,
                const RfmGrapheneParams &params);

    std::string name() const override { return "RFM-Graphene"; }
    Location location() const override { return Location::Dram; }

    bool usesRfm() const override { return true; }
    std::uint32_t rfmTh() const override { return params_.rfmTh; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: buffering never requests ARR, so the whole
     *  span is consumed in one cached-touch loop. */
    std::size_t onActivateBatch(const ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    void onRfm(BankId bank, Tick now,
               std::vector<RowId> &aggressors) override;

    double tableBytesPerBank() const override;

    void mergeStatsFrom(const RhProtection &other) override;

    /** Deepest pending-queue backlog observed (the failure signature). */
    std::size_t maxQueueDepth() const { return maxQueueDepth_; }

  private:
    RfmGrapheneParams params_;
    std::vector<core::CbsTable> tables_;
    std::vector<Tick> lastReset_;
    std::vector<std::deque<RowId>> pending_;
    std::size_t maxQueueDepth_ = 0;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_RFM_GRAPHENE_HH
