#include "rh_protection.hh"

#include "common/random.hh"
#include "telemetry/metric_sheet.hh"

namespace mithril::trackers
{

void
RhProtection::exportMetrics(telemetry::MetricSheet &sheet) const
{
    sheet.setCounter("tracker.logic_ops", logicOps_);
}

std::uint64_t
RhProtection::bankSeed(std::uint64_t seed, BankId bank)
{
    return deriveSeed(seed, bank);
}

std::size_t
RhProtection::onActivateBatch(const ActSpan &span,
                              std::vector<RowId> &arr_aggressors)
{
    for (std::size_t i = 0; i < span.size; ++i) {
        onActivate(span.bank, span.rows[i], span.tickAt(i),
                   arr_aggressors);
        if (!arr_aggressors.empty())
            return i + 1;
    }
    return span.size;
}

} // namespace mithril::trackers
