/**
 * @file
 * Abstract interface every Row Hammer protection scheme implements.
 *
 * A tracker observes the activation stream of every bank and chooses
 * when/which rows receive preventive refreshes. The interface covers all
 * four remedy styles used by the paper's schemes:
 *
 *  - RFM-based (Mithril, PARFM): the MC issues RFM every rfmTh() ACTs;
 *    onRfm() picks aggressors to treat within the tRFM window.
 *  - ARR-based (PARA, Graphene, TWiCe, CBT): onActivate() returns
 *    aggressor rows whose victims the MC must refresh immediately.
 *  - Throttling (BlockHammer): throttleAct() delays hazardous ACTs.
 *  - Mithril+: rfmPending() lets the MC skip needless RFM commands via
 *    an MRR mode-register poll.
 */

#ifndef MITHRIL_TRACKERS_RH_PROTECTION_HH
#define MITHRIL_TRACKERS_RH_PROTECTION_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mithril::telemetry
{
class EventRecorder;
class MetricSheet;
}

namespace mithril::trackers
{

/** Where a scheme's counter structures physically live (Table I). */
enum class Location
{
    Mc,         //!< Processor-side memory controller.
    Dram,       //!< On-DRAM, per bank per chip.
    BufferChip, //!< DIMM buffer chip (TWiCe).
};

/**
 * One bank's slice of an activation batch, as the ActStream engine
 * hands it to a tracker: a contiguous SoA view of rows, all on the
 * same bank, with engine-resolved ticks. Record i activates
 * rows[i] at tick0 + i * tickStride (the engine guarantees no REF or
 * RFM boundary falls inside the span, so the stride is exact).
 */
struct ActSpan
{
    BankId bank = 0;
    const RowId *rows = nullptr;
    std::size_t size = 0;
    Tick tick0 = 0;
    Tick tickStride = 0;

    /** Tick of record i under the span's uniform stride. */
    Tick tickAt(std::size_t i) const
    {
        return tick0 + static_cast<Tick>(i) * tickStride;
    }
};

/**
 * Reusable aggressor scratch shared by every frontend — engine runs,
 * the single-bank harness wrapper, and the MC's ARR/RFM protocol.
 * One heap buffer, cleared (capacity kept) between uses, so steady
 * state performs zero allocations.
 */
struct ActScratch
{
    std::vector<RowId> arr;

    void reset() { arr.clear(); }
};

/**
 * Base class for all protection schemes.
 *
 * The base is cache-line-aligned: the sharded engine allocates one
 * tracker per shard back-to-back on the main thread, and every shard
 * worker bumps its own tracker's logic-op counter from the hot loop —
 * the alignment keeps two shards' tracker headers off one line.
 */
class alignas(64) RhProtection
{
  public:
    virtual ~RhProtection() = default;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /** Where the scheme is implemented. */
    virtual Location location() const = 0;

    /** True when the scheme consumes RFM commands. Must be constant
     *  over the tracker's lifetime — the ActStream engine caches it
     *  at construction for the batched hot loop. */
    virtual bool usesRfm() const { return false; }

    /** RFM threshold the MC must honour (0 when usesRfm() is false).
     *  Must be constant over the tracker's lifetime (cached like
     *  usesRfm()). */
    virtual std::uint32_t rfmTh() const { return 0; }

    /**
     * Observe an ACT. ARR-based schemes append aggressor rows that
     * require an immediate preventive refresh to arr_aggressors.
     */
    virtual void onActivate(BankId bank, RowId row, Tick now,
                            std::vector<RowId> &arr_aggressors) = 0;

    /**
     * Observe a span of same-bank ACTs in one call (the engine's hot
     * path). Contract, mirrored from the scalar loop it replaces:
     *
     *  - `arr_aggressors` arrives empty;
     *  - the tracker processes records in order and MUST stop after
     *    the first record that requests ARR work (its aggressors are
     *    appended to `arr_aggressors`), because preventive refreshes
     *    advance the bank clock and invalidate the remaining ticks;
     *  - returns the number of records consumed (>= 1 when
     *    span.size > 0), byte-identical in effect to calling
     *    onActivate() that many times.
     *
     * The default does exactly that scalar loop; hot trackers
     * override it with an allocation-free tight loop.
     */
    virtual std::size_t onActivateBatch(const ActSpan &span,
                                        std::vector<RowId> &arr_aggressors);

    /**
     * Consume an RFM command for the bank. Appends the aggressor rows
     * whose victims are preventively refreshed inside this tRFM window
     * (possibly none, e.g. under Mithril's adaptive refresh policy).
     */
    virtual void
    onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
    {
        (void)bank;
        (void)now;
        (void)aggressors;
    }

    /**
     * Mithril+ hook: true when the bank's RFM is actually needed. The
     * MC polls this through an MRR read at every RAA epoch and skips
     * the RFM command when it returns false.
     */
    virtual bool rfmPending(BankId bank) const
    {
        (void)bank;
        return true;
    }

    /**
     * Throttling hook: earliest tick this ACT may legally issue. The
     * default performs no throttling.
     */
    virtual Tick throttleAct(BankId bank, RowId row, Tick now)
    {
        (void)bank;
        (void)row;
        return now;
    }

    /** Auto-refresh (REF) notification for schemes with time epochs. */
    virtual void onRefresh(BankId bank, Tick now)
    {
        (void)bank;
        (void)now;
    }

    /** Counter-table bytes per bank (for Table IV / Fig. 10e). */
    virtual double tableBytesPerBank() const = 0;

    /**
     * Fold the statistics of `other` — a tracker of the same concrete
     * type that observed a *disjoint* set of banks — into this one.
     * This is the sharded engine's join protocol: each shard runs its
     * own tracker instance over its bank partition, and the merge
     * reduces the cross-bank counters (sums for event counts, max for
     * high-water marks). Overrides must call the base, which folds
     * the logic-op counter.
     */
    virtual void mergeStatsFrom(const RhProtection &other)
    {
        logicOps_ += other.logicOps_;
    }

    /**
     * Seed-derivation hook for per-bank RNG streams (one splitmix64
     * step over the bank index). Every stochastic tracker (PARA,
     * PARFM) seeds bank b's generator with bankSeed(seed, b), so a
     * bank's draw sequence depends only on (seed, bank) — never on
     * how the banks are interleaved or partitioned across engine
     * shards. This is what makes sharded runs byte-identical to
     * single-threaded ones for the probabilistic schemes.
     */
    static std::uint64_t bankSeed(std::uint64_t seed, BankId bank);

    /** Total tracker logic operations performed (energy accounting). */
    std::uint64_t logicOps() const { return logicOps_; }

    /**
     * Attach a mitigation-event recorder (null detaches). Trackers
     * emit scheme-internal events (CbS insert/evict, ...) from their
     * scalar observation path when one is attached; trackers whose
     * batched fast path skips that bookkeeping fall back to the base
     * scalar loop while tracing — byte-identical in effect by the
     * onActivateBatch() contract, so attaching a recorder can never
     * change the simulated outcome.
     */
    void setEventRecorder(telemetry::EventRecorder *recorder)
    {
        eventRecorder_ = recorder;
    }

    /**
     * Export scheme-internal metrics into a telemetry sheet under
     * `tracker.`-prefixed dotted names. Idempotent (set, not add);
     * the base exports the logic-op counter. Called at the end of a
     * run on each shard's tracker, before the shard sheets merge.
     */
    virtual void exportMetrics(telemetry::MetricSheet &sheet) const;

  protected:
    /** Count one CAM/table operation. */
    void countOp(std::uint64_t n = 1) { logicOps_ += n; }

    /** Non-null while mitigation-event tracing is enabled. */
    telemetry::EventRecorder *eventRecorder_ = nullptr;

  private:
    std::uint64_t logicOps_ = 0;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_RH_PROTECTION_HH
