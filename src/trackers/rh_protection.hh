/**
 * @file
 * Abstract interface every Row Hammer protection scheme implements.
 *
 * A tracker observes the activation stream of every bank and chooses
 * when/which rows receive preventive refreshes. The interface covers all
 * four remedy styles used by the paper's schemes:
 *
 *  - RFM-based (Mithril, PARFM): the MC issues RFM every rfmTh() ACTs;
 *    onRfm() picks aggressors to treat within the tRFM window.
 *  - ARR-based (PARA, Graphene, TWiCe, CBT): onActivate() returns
 *    aggressor rows whose victims the MC must refresh immediately.
 *  - Throttling (BlockHammer): throttleAct() delays hazardous ACTs.
 *  - Mithril+: rfmPending() lets the MC skip needless RFM commands via
 *    an MRR mode-register poll.
 */

#ifndef MITHRIL_TRACKERS_RH_PROTECTION_HH
#define MITHRIL_TRACKERS_RH_PROTECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mithril::trackers
{

/** Where a scheme's counter structures physically live (Table I). */
enum class Location
{
    Mc,         //!< Processor-side memory controller.
    Dram,       //!< On-DRAM, per bank per chip.
    BufferChip, //!< DIMM buffer chip (TWiCe).
};

/** Base class for all protection schemes. */
class RhProtection
{
  public:
    virtual ~RhProtection() = default;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /** Where the scheme is implemented. */
    virtual Location location() const = 0;

    /** True when the scheme consumes RFM commands. */
    virtual bool usesRfm() const { return false; }

    /** RFM threshold the MC must honour (0 when usesRfm() is false). */
    virtual std::uint32_t rfmTh() const { return 0; }

    /**
     * Observe an ACT. ARR-based schemes append aggressor rows that
     * require an immediate preventive refresh to arr_aggressors.
     */
    virtual void onActivate(BankId bank, RowId row, Tick now,
                            std::vector<RowId> &arr_aggressors) = 0;

    /**
     * Consume an RFM command for the bank. Appends the aggressor rows
     * whose victims are preventively refreshed inside this tRFM window
     * (possibly none, e.g. under Mithril's adaptive refresh policy).
     */
    virtual void
    onRfm(BankId bank, Tick now, std::vector<RowId> &aggressors)
    {
        (void)bank;
        (void)now;
        (void)aggressors;
    }

    /**
     * Mithril+ hook: true when the bank's RFM is actually needed. The
     * MC polls this through an MRR read at every RAA epoch and skips
     * the RFM command when it returns false.
     */
    virtual bool rfmPending(BankId bank) const
    {
        (void)bank;
        return true;
    }

    /**
     * Throttling hook: earliest tick this ACT may legally issue. The
     * default performs no throttling.
     */
    virtual Tick throttleAct(BankId bank, RowId row, Tick now)
    {
        (void)bank;
        (void)row;
        return now;
    }

    /** Auto-refresh (REF) notification for schemes with time epochs. */
    virtual void onRefresh(BankId bank, Tick now)
    {
        (void)bank;
        (void)now;
    }

    /** Counter-table bytes per bank (for Table IV / Fig. 10e). */
    virtual double tableBytesPerBank() const = 0;

    /** Total tracker logic operations performed (energy accounting). */
    std::uint64_t logicOps() const { return logicOps_; }

  protected:
    /** Count one CAM/table operation. */
    void countOp(std::uint64_t n = 1) { logicOps_ += n; }

  private:
    std::uint64_t logicOps_ = 0;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_RH_PROTECTION_HH
