#include "twice.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mithril::trackers
{

Twice::Twice(std::uint32_t num_banks, const TwiceParams &params)
    : params_(params), tables_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.capacity > 0);
    MITHRIL_ASSERT(params_.rhThreshold > 0);
    MITHRIL_ASSERT(params_.pruneRateNum > 0);
    MITHRIL_ASSERT(params_.pruneRateDen > 0);
}

void
Twice::onActivate(BankId bank, RowId row, Tick now,
                  std::vector<RowId> &arr_aggressors)
{
    (void)now;
    auto &table = tables_.at(bank);
    countOp();

    auto it = table.find(row);
    if (it == table.end()) {
        if (table.size() >= params_.capacity) {
            // Correctly sized TWiCe never overflows; count it so the
            // sizing tests can assert the invariant, and drop the entry
            // with the lowest count to keep going.
            ++overflows_;
            auto victim = table.begin();
            for (auto cur = table.begin(); cur != table.end(); ++cur) {
                if (cur->second.count < victim->second.count)
                    victim = cur;
            }
            table.erase(victim);
        }
        it = table.emplace(row, EntryState{}).first;
        peakOccupancy_ = std::max(peakOccupancy_, table.size());
    }

    EntryState &entry = it->second;
    ++entry.count;
    if (entry.count >= params_.rhThreshold) {
        arr_aggressors.push_back(row);
        ++arrCount_;
        table.erase(it);  // Victims refreshed; restart tracking.
    }
}

void
Twice::onRefresh(BankId bank, Tick now)
{
    (void)now;
    auto &table = tables_.at(bank);
    countOp(table.size());
    for (auto it = table.begin(); it != table.end();) {
        EntryState &entry = it->second;
        ++entry.life;
        if (static_cast<std::uint64_t>(entry.count) *
                params_.pruneRateDen <
            static_cast<std::uint64_t>(entry.life) *
                params_.pruneRateNum) {
            it = table.erase(it);
        } else {
            ++it;
        }
    }
}

double
Twice::tableBytesPerBank() const
{
    return static_cast<double>(params_.capacity) * params_.entryBits /
           8.0;
}

} // namespace mithril::trackers
