#include "twice.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/config_solver.hh"
#include "registry/scheme_registry.hh"
#include "trackers/graphene.hh"

namespace mithril::trackers
{

Twice::Twice(std::uint32_t num_banks, const TwiceParams &params)
    : params_(params), tables_(num_banks)
{
    MITHRIL_ASSERT(num_banks > 0);
    MITHRIL_ASSERT(params_.capacity > 0);
    MITHRIL_ASSERT(params_.rhThreshold > 0);
    MITHRIL_ASSERT(params_.pruneRateNum > 0);
    MITHRIL_ASSERT(params_.pruneRateDen > 0);
}

void
Twice::onActivate(BankId bank, RowId row, Tick now,
                  std::vector<RowId> &arr_aggressors)
{
    (void)now;
    auto &table = tables_.at(bank);
    countOp();

    auto it = table.find(row);
    if (it == table.end()) {
        if (table.size() >= params_.capacity) {
            // Correctly sized TWiCe never overflows; count it so the
            // sizing tests can assert the invariant, and drop the entry
            // with the lowest count to keep going.
            ++overflows_;
            auto victim = table.begin();
            for (auto cur = table.begin(); cur != table.end(); ++cur) {
                if (cur->second.count < victim->second.count)
                    victim = cur;
            }
            table.erase(victim);
        }
        it = table.emplace(row, EntryState{}).first;
        peakOccupancy_ = std::max(peakOccupancy_, table.size());
    }

    EntryState &entry = it->second;
    ++entry.count;
    if (entry.count >= params_.rhThreshold) {
        arr_aggressors.push_back(row);
        ++arrCount_;
        table.erase(it);  // Victims refreshed; restart tracking.
    }
}

std::size_t
Twice::onActivateBatch(const ActSpan &span,
                       std::vector<RowId> &arr_aggressors)
{
    // onActivate() never reads the tick, so the whole span runs in
    // one tight loop (REF-boundary pruning happens in onRefresh(),
    // which the engine interleaves between spans). The 2-way cache
    // keeps the entries of the last two distinct rows — the hammer
    // pair in the patterns that matter — and is invalidated on every
    // insert (possible rehash) and erase.
    auto &table = tables_.at(span.bank);
    using Iter = std::unordered_map<RowId, EntryState>::iterator;
    RowId cached_row[2] = {kInvalidRow, kInvalidRow};
    Iter cached_it[2] = {table.end(), table.end()};

    std::size_t consumed = 0;
    while (consumed < span.size) {
        const RowId row = span.rows[consumed];
        ++consumed;
        countOp();

        Iter it;
        if (row == cached_row[0]) {
            it = cached_it[0];
        } else if (row == cached_row[1]) {
            it = cached_it[1];
            std::swap(cached_row[0], cached_row[1]);
            std::swap(cached_it[0], cached_it[1]);
        } else {
            it = table.find(row);
            if (it == table.end()) {
                if (table.size() >= params_.capacity) {
                    ++overflows_;
                    auto victim = table.begin();
                    for (auto cur = table.begin(); cur != table.end();
                         ++cur) {
                        if (cur->second.count < victim->second.count)
                            victim = cur;
                    }
                    table.erase(victim);
                }
                it = table.emplace(row, EntryState{}).first;
                peakOccupancy_ =
                    std::max(peakOccupancy_, table.size());
                cached_row[1] = kInvalidRow;
            } else {
                cached_row[1] = cached_row[0];
                cached_it[1] = cached_it[0];
            }
            cached_row[0] = row;
            cached_it[0] = it;
        }

        EntryState &entry = it->second;
        ++entry.count;
        if (entry.count >= params_.rhThreshold) {
            arr_aggressors.push_back(row);
            ++arrCount_;
            table.erase(it);
            break;
        }
    }
    return consumed;
}

void
Twice::onRefresh(BankId bank, Tick now)
{
    (void)now;
    auto &table = tables_.at(bank);
    countOp(table.size());
    for (auto it = table.begin(); it != table.end();) {
        EntryState &entry = it->second;
        ++entry.life;
        if (static_cast<std::uint64_t>(entry.count) *
                params_.pruneRateDen <
            static_cast<std::uint64_t>(entry.life) *
                params_.pruneRateNum) {
            it = table.erase(it);
        } else {
            ++it;
        }
    }
}

double
Twice::tableBytesPerBank() const
{
    return static_cast<double>(params_.capacity) * params_.entryBits /
           8.0;
}

void
Twice::mergeStatsFrom(const RhProtection &other)
{
    RhProtection::mergeStatsFrom(other);
    const auto &o = dynamic_cast<const Twice &>(other);
    peakOccupancy_ = std::max(peakOccupancy_, o.peakOccupancy_);
    arrCount_ += o.arrCount_;
    overflows_ += o.overflows_;
}

namespace
{

const registry::Registrar<registry::SchemeTraits> kRegisterTwice{{
    /*name=*/"twice",
    /*display=*/"TWiCe",
    /*description=*/
    "Lossy-Counting table in the DIMM buffer chip with rate pruning",
    /*aliases=*/{},
    /*uses=*/"flip",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &params, const registry::SchemeContext &ctx)
        -> std::unique_ptr<RhProtection> {
        const auto knobs = registry::SchemeKnobs::fromParams(params);
        TwiceParams tparams;
        tparams.rhThreshold = std::max(1u, knobs.flipTh / 4);
        // Rate-exact pruning: an entry survives only while its ACT
        // rate could still reach th_RO within one tREFW.
        tparams.pruneRateNum = tparams.rhThreshold;
        tparams.pruneRateDen = static_cast<std::uint32_t>(
            ctx.timing.tREFW / ctx.timing.tREFI);
        const std::uint64_t max_acts =
            dram::maxActsPerWindow(ctx.timing);
        const std::uint64_t base = Graphene::requiredEntries(
            max_acts, tparams.rhThreshold);
        const double factor = std::max(
            1.0, std::log(static_cast<double>(max_acts) /
                          static_cast<double>(base)));
        tparams.capacity = static_cast<std::uint32_t>(
            std::ceil(static_cast<double>(base) * factor));
        tparams.rowBits = core::ceilLog2(ctx.geometry.rowsPerBank);
        return std::make_unique<Twice>(ctx.geometry.totalBanks(),
                                       tparams);
    },
}};

} // namespace

} // namespace mithril::trackers
