/**
 * @file
 * TWiCe (Lee et al., ISCA 2019): deterministic buffer-chip tracker
 * based on the Lossy Counting streaming algorithm.
 *
 * Each tracked row holds an activation count and a lifetime (in refresh
 * intervals). At every tREFI checkpoint the lifetime of every valid
 * entry increments and entries whose count lags the pruning rate
 * (count < life * th_PI) are dropped — a row that cannot reach the RH
 * threshold inside the window no longer needs tracking. When a row's
 * count reaches the RH threshold its victims are refreshed via a
 * feedback-augmented ARR and the entry resets.
 */

#ifndef MITHRIL_TRACKERS_TWICE_HH
#define MITHRIL_TRACKERS_TWICE_HH

#include <unordered_map>
#include <vector>

#include "trackers/rh_protection.hh"

namespace mithril::trackers
{

/** Construction parameters for TWiCe. */
struct TwiceParams
{
    std::uint32_t capacity;     //!< Max tracked rows per bank.
    std::uint32_t rhThreshold;  //!< ARR trigger (FlipTH/4).
    /** Pruning rate as a rational th_RO / windowIntervals: an entry
     *  is dropped at a checkpoint when
     *  count * pruneRateDen < pruneRateNum * life, i.e. its average
     *  rate cannot reach th_RO within one tREFW. */
    std::uint32_t pruneRateNum;
    std::uint32_t pruneRateDen = 1;
    std::uint32_t rowBits = 16;
    std::uint32_t entryBits = 40;  //!< addr + count + life + valid.
};

/** TWiCe lossy-counting tracker. */
class Twice : public RhProtection
{
  public:
    Twice(std::uint32_t num_banks, const TwiceParams &params);

    std::string name() const override { return "TWiCe"; }
    Location location() const override { return Location::BufferChip; }

    void onActivate(BankId bank, RowId row, Tick now,
                    std::vector<RowId> &arr_aggressors) override;

    /** Batched hot path: the per-ACT table walk with the bank lookup
     *  hoisted and a 2-way (row -> entry) iterator cache, so the hot
     *  hammer pair skips the hash probe; stops at the first ARR per
     *  the batch contract. Byte-identical to the scalar loop. */
    std::size_t onActivateBatch(const ActSpan &span,
                                std::vector<RowId> &arr_aggressors)
        override;

    /** tREFI checkpoint: age and prune. */
    void onRefresh(BankId bank, Tick now) override;

    double tableBytesPerBank() const override;

    void mergeStatsFrom(const RhProtection &other) override;

    const TwiceParams &params() const { return params_; }

    /** Live entries in a bank's table. */
    std::size_t liveEntries(BankId bank) const
    {
        return tables_.at(bank).size();
    }

    /** Peak occupancy across all banks (validates the sizing claim). */
    std::size_t peakOccupancy() const { return peakOccupancy_; }

    /** ARR preventive refreshes triggered so far. */
    std::uint64_t arrCount() const { return arrCount_; }

    /** Times an insert found the table full (sizing violation). */
    std::uint64_t overflows() const { return overflows_; }

  private:
    struct EntryState
    {
        std::uint32_t count = 0;
        std::uint32_t life = 0;
    };

    TwiceParams params_;
    std::vector<std::unordered_map<RowId, EntryState>> tables_;
    std::size_t peakOccupancy_ = 0;
    std::uint64_t arrCount_ = 0;
    std::uint64_t overflows_ = 0;
};

} // namespace mithril::trackers

#endif // MITHRIL_TRACKERS_TWICE_HH
