#include "attacks.hh"

#include <algorithm>
#include <map>

#include "analysis/area_model.hh"
#include "common/logging.hh"
#include "registry/attack_registry.hh"

namespace mithril::workload
{

namespace
{

TraceRecord
hammerRecord(const AttackTarget &t, RowId row)
{
    MITHRIL_ASSERT(t.map != nullptr);
    TraceRecord rec;
    rec.gap = 1;
    rec.uncached = true;
    rec.write = false;
    rec.addr = t.map->compose(t.channel, t.rank, t.bank, row, 0);
    return rec;
}

} // namespace

DoubleSidedAttack::DoubleSidedAttack(const AttackTarget &target)
    : target_(target)
{
}

std::optional<TraceRecord>
DoubleSidedAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    const RowId row =
        (produced_ % 2 == 0) ? target_.baseRow : target_.baseRow + 2;
    ++produced_;
    return hammerRecord(target_, row);
}

MultiSidedAttack::MultiSidedAttack(const AttackTarget &target,
                                   std::uint32_t victims)
    : target_(target), aggressors_(victims + 1)
{
    MITHRIL_ASSERT(victims >= 1);
}

std::optional<TraceRecord>
MultiSidedAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    // Aggressors at baseRow, baseRow+2, ... — every odd row between
    // two aggressors is a victim hammered from both sides.
    const std::uint32_t idx =
        static_cast<std::uint32_t>(produced_ % aggressors_);
    ++produced_;
    return hammerRecord(target_, target_.baseRow + 2 * idx);
}

RfmOptimalAttack::RfmOptimalAttack(const AttackTarget &target,
                                   std::uint32_t distinct_rows)
    : target_(target), distinctRows_(distinct_rows)
{
    MITHRIL_ASSERT(distinct_rows >= 1);
}

std::optional<TraceRecord>
RfmOptimalAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(produced_ % distinctRows_);
    ++produced_;
    return hammerRecord(target_, target_.baseRow + 2 * idx);
}

ConcentrationAttack::ConcentrationAttack(const AttackTarget &target,
                                         std::uint32_t threshold,
                                         std::uint32_t rows)
    : target_(target), threshold_(threshold), rows_(rows)
{
    MITHRIL_ASSERT(threshold >= 1);
    MITHRIL_ASSERT(rows >= 2);
    phase1Records_ = static_cast<std::uint64_t>(threshold_) * rows_;
}

RowId
ConcentrationAttack::finalVictim() const
{
    // The last two phase-1 rows are 2 apart; their shared neighbour.
    return target_.baseRow + 2 * (rows_ - 1) - 1;
}

std::optional<TraceRecord>
ConcentrationAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    RowId row;
    if (produced_ < phase1Records_) {
        // Round-robin so all Q rows cross the threshold back to back.
        row = target_.baseRow +
              2 * static_cast<RowId>(produced_ % rows_);
    } else {
        // Keep hammering the last pair while the queue drains.
        const bool even = (produced_ % 2) == 0;
        row = target_.baseRow + 2 * (rows_ - 1) - (even ? 2 : 0);
    }
    ++produced_;
    return hammerRecord(target_, row);
}

ProfiledAliasAttack::ProfiledAliasAttack(std::vector<Addr> targets,
                                         std::uint64_t limit)
    : targets_(std::move(targets)), limit_(limit)
{
    MITHRIL_ASSERT(targets_.size() >= 2);
}

std::optional<TraceRecord>
ProfiledAliasAttack::next()
{
    if (produced_ >= limit_)
        return std::nullopt;
    TraceRecord rec;
    rec.gap = 1;
    rec.uncached = true;
    rec.write = false;
    rec.addr = targets_[produced_ % targets_.size()];
    ++produced_;
    return rec;
}

CbfPollutionAttack::CbfPollutionAttack(const AttackTarget &target,
                                       std::uint32_t rows,
                                       std::uint32_t bursts)
    : target_(target), rows_(rows), bursts_(bursts)
{
    MITHRIL_ASSERT(rows >= 2);
    MITHRIL_ASSERT(bursts >= 1);
}

std::optional<TraceRecord>
CbfPollutionAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    // Interleave two rows inside each burst so every request forces a
    // fresh activation, sweeping the whole pollution set repeatedly.
    const std::uint64_t pair_step = produced_ / (2 * bursts_);
    const std::uint32_t pair =
        static_cast<std::uint32_t>(pair_step % (rows_ / 2));
    const RowId row =
        target_.baseRow + 2 * (2 * pair + (produced_ % 2));
    ++produced_;
    return hammerRecord(target_, row);
}

// ------------------------------------------------------ registration
//
// The attacker-thread variants of the evaluation register here. A new
// attack is one generator class plus one Registrar block in its own
// translation unit — nothing in sim/, trackers/, or runner/ changes.

namespace
{

using registry::AttackContext;

/** Aim point decoded from the shared attack knobs. */
AttackTarget
targetFromParams(const ParamSet &params, const AttackContext &ctx)
{
    AttackTarget target;
    target.map = &ctx.map;
    target.channel = 0;
    target.rank = 0;
    target.bank = params.getUint32("attack-bank", 5);
    target.baseRow = params.getUint("attack-row", 0x3000);
    return target;
}

const std::vector<registry::ParamDesc> kTargetParams = {
    {"attack-bank", registry::ParamDesc::Type::Uint, "5", 0, 65535,
     "bank (within the rank) the attack hammers"},
    {"attack-row", registry::ParamDesc::Type::Uint, "12288", 0,
     1048576, "base row of the aggressor block"},
};

std::vector<registry::ParamDesc>
targetParamsPlus(std::initializer_list<registry::ParamDesc> extra)
{
    std::vector<registry::ParamDesc> out = kTargetParams;
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
}

/**
 * Sample the benign threads' address streams and return row-granular
 * representative addresses of their hottest (bank, row) pairs — the
 * "profiled rows sharing CBF entries with the benign threads" that the
 * BlockHammer performance adversary activates.
 */
std::vector<Addr>
profileBenignHotRows(const AttackContext &ctx)
{
    const auto [cbf_size, nbl] =
        analysis::AreaModel::blockHammerConfig(ctx.flipTh);
    (void)cbf_size;
    // One tREFW of attack budget pushes ~600K/NBL rows to the
    // blacklist threshold.
    const std::size_t wanted = std::max<std::size_t>(
        16, static_cast<std::size_t>(600000 / nbl));

    struct Key
    {
        BankId bank;
        RowId row;
        bool operator<(const Key &o) const
        {
            return bank != o.bank ? bank < o.bank : row < o.row;
        }
    };
    std::map<Key, std::pair<std::uint64_t, Addr>> freq;
    for (std::uint32_t i = 0; i < ctx.benignCores; ++i) {
        auto gen = ctx.benignThread(i);
        for (int k = 0; k < 30000; ++k) {
            auto rec = gen->next();
            if (!rec)
                break;
            mc::Request req;
            req.addr = rec->addr;
            ctx.map.decode(req);
            auto &entry = freq[Key{req.bank, req.row}];
            if (entry.first++ == 0)
                entry.second = rec->addr;
        }
    }

    std::vector<std::pair<std::uint64_t, Addr>> ranked;
    ranked.reserve(freq.size());
    for (const auto &[key, value] : freq)
        ranked.emplace_back(value.first, value.second);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    std::vector<Addr> targets;
    for (std::size_t i = 0; i < ranked.size() && i < wanted; ++i)
        targets.push_back(ranked[i].second);
    return targets;
}

const registry::Registrar<registry::AttackTraits> kRegisterNone{{
    /*name=*/"none",
    /*display=*/"none",
    /*description=*/"no attacker thread",
    /*aliases=*/{},
    /*uses=*/"",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &, const AttackContext &)
        -> std::unique_ptr<TraceGenerator> { return nullptr; },
}};

const registry::Registrar<registry::AttackTraits> kRegisterDoubleSided{{
    /*name=*/"double-sided",
    /*display=*/"double-sided",
    /*description=*/
    "classic two-aggressor hammer around one victim row",
    /*aliases=*/{"double_sided"},
    /*uses=*/"",
    /*params=*/kTargetParams,
    /*make=*/
    [](const ParamSet &params, const AttackContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        return std::make_unique<DoubleSidedAttack>(
            targetFromParams(params, ctx));
    },
}};

const registry::Registrar<registry::AttackTraits> kRegisterMultiSided{{
    /*name=*/"multi-sided",
    /*display=*/"multi-sided",
    /*description=*/
    "TRRespass-style interleaved many-sided hammer",
    /*aliases=*/{"multi_sided"},
    /*uses=*/"",
    /*params=*/
    targetParamsPlus({{"victims", registry::ParamDesc::Type::Uint,
                       "32", 1, 1024,
                       "victim rows between the aggressors"}}),
    /*make=*/
    [](const ParamSet &params, const AttackContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        return std::make_unique<MultiSidedAttack>(
            targetFromParams(params, ctx),
            params.getUint32("victims", 32));
    },
}};

const registry::Registrar<registry::AttackTraits> kRegisterRfmOptimal{{
    /*name=*/"rfm-optimal",
    /*display=*/"rfm-optimal",
    /*description=*/
    "one ACT per row over a rotating distinct-row set "
    "(cost-optimal against sampling)",
    /*aliases=*/{"rfm_optimal"},
    /*uses=*/"",
    /*params=*/
    targetParamsPlus({{"attack-rows", registry::ParamDesc::Type::Uint,
                       "64", 1, 1048576,
                       "distinct rows in the rotation"}}),
    /*make=*/
    [](const ParamSet &params, const AttackContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        return std::make_unique<RfmOptimalAttack>(
            targetFromParams(params, ctx),
            params.getUint32("attack-rows", 64));
    },
}};

const registry::Registrar<registry::AttackTraits>
    kRegisterCbfPollution{{
        /*name=*/"cbf-pollution",
        /*display=*/"cbf-pollution",
        /*description=*/
        "BlockHammer performance adversary: inflate the CBF slots "
        "the benign hot rows alias with",
        /*aliases=*/{"cbf_pollution"},
        /*uses=*/"flip (CBF sizing)",
        /*params=*/kTargetParams,
        /*make=*/
        [](const ParamSet &params, const AttackContext &ctx)
            -> std::unique_ptr<TraceGenerator> {
            if (ctx.benignThread && ctx.benignCores > 0) {
                auto targets = profileBenignHotRows(ctx);
                if (targets.size() >= 2) {
                    return std::make_unique<ProfiledAliasAttack>(
                        std::move(targets));
                }
            }
            // Degenerate profile (or no workload context): fall back
            // to blind pollution.
            const auto [cbf_size, nbl] =
                analysis::AreaModel::blockHammerConfig(ctx.flipTh);
            (void)nbl;
            const std::uint32_t rows =
                std::max<std::uint32_t>(64, cbf_size / 8);
            return std::make_unique<CbfPollutionAttack>(
                targetFromParams(params, ctx), rows);
        },
    }};

} // namespace

} // namespace mithril::workload
