#include "attacks.hh"

#include "common/logging.hh"

namespace mithril::workload
{

namespace
{

TraceRecord
hammerRecord(const AttackTarget &t, RowId row)
{
    MITHRIL_ASSERT(t.map != nullptr);
    TraceRecord rec;
    rec.gap = 1;
    rec.uncached = true;
    rec.write = false;
    rec.addr = t.map->compose(t.channel, t.rank, t.bank, row, 0);
    return rec;
}

} // namespace

DoubleSidedAttack::DoubleSidedAttack(const AttackTarget &target)
    : target_(target)
{
}

std::optional<TraceRecord>
DoubleSidedAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    const RowId row =
        (produced_ % 2 == 0) ? target_.baseRow : target_.baseRow + 2;
    ++produced_;
    return hammerRecord(target_, row);
}

MultiSidedAttack::MultiSidedAttack(const AttackTarget &target,
                                   std::uint32_t victims)
    : target_(target), aggressors_(victims + 1)
{
    MITHRIL_ASSERT(victims >= 1);
}

std::optional<TraceRecord>
MultiSidedAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    // Aggressors at baseRow, baseRow+2, ... — every odd row between
    // two aggressors is a victim hammered from both sides.
    const std::uint32_t idx =
        static_cast<std::uint32_t>(produced_ % aggressors_);
    ++produced_;
    return hammerRecord(target_, target_.baseRow + 2 * idx);
}

RfmOptimalAttack::RfmOptimalAttack(const AttackTarget &target,
                                   std::uint32_t distinct_rows)
    : target_(target), distinctRows_(distinct_rows)
{
    MITHRIL_ASSERT(distinct_rows >= 1);
}

std::optional<TraceRecord>
RfmOptimalAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(produced_ % distinctRows_);
    ++produced_;
    return hammerRecord(target_, target_.baseRow + 2 * idx);
}

ConcentrationAttack::ConcentrationAttack(const AttackTarget &target,
                                         std::uint32_t threshold,
                                         std::uint32_t rows)
    : target_(target), threshold_(threshold), rows_(rows)
{
    MITHRIL_ASSERT(threshold >= 1);
    MITHRIL_ASSERT(rows >= 2);
    phase1Records_ = static_cast<std::uint64_t>(threshold_) * rows_;
}

RowId
ConcentrationAttack::finalVictim() const
{
    // The last two phase-1 rows are 2 apart; their shared neighbour.
    return target_.baseRow + 2 * (rows_ - 1) - 1;
}

std::optional<TraceRecord>
ConcentrationAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    RowId row;
    if (produced_ < phase1Records_) {
        // Round-robin so all Q rows cross the threshold back to back.
        row = target_.baseRow +
              2 * static_cast<RowId>(produced_ % rows_);
    } else {
        // Keep hammering the last pair while the queue drains.
        const bool even = (produced_ % 2) == 0;
        row = target_.baseRow + 2 * (rows_ - 1) - (even ? 2 : 0);
    }
    ++produced_;
    return hammerRecord(target_, row);
}

ProfiledAliasAttack::ProfiledAliasAttack(std::vector<Addr> targets,
                                         std::uint64_t limit)
    : targets_(std::move(targets)), limit_(limit)
{
    MITHRIL_ASSERT(targets_.size() >= 2);
}

std::optional<TraceRecord>
ProfiledAliasAttack::next()
{
    if (produced_ >= limit_)
        return std::nullopt;
    TraceRecord rec;
    rec.gap = 1;
    rec.uncached = true;
    rec.write = false;
    rec.addr = targets_[produced_ % targets_.size()];
    ++produced_;
    return rec;
}

CbfPollutionAttack::CbfPollutionAttack(const AttackTarget &target,
                                       std::uint32_t rows,
                                       std::uint32_t bursts)
    : target_(target), rows_(rows), bursts_(bursts)
{
    MITHRIL_ASSERT(rows >= 2);
    MITHRIL_ASSERT(bursts >= 1);
}

std::optional<TraceRecord>
CbfPollutionAttack::next()
{
    if (produced_ >= target_.limit)
        return std::nullopt;
    // Interleave two rows inside each burst so every request forces a
    // fresh activation, sweeping the whole pollution set repeatedly.
    const std::uint64_t pair_step = produced_ / (2 * bursts_);
    const std::uint32_t pair =
        static_cast<std::uint32_t>(pair_step % (rows_ / 2));
    const RowId row =
        target_.baseRow + 2 * (2 * pair + (produced_ % 2));
    ++produced_;
    return hammerRecord(target_, row);
}

} // namespace mithril::workload
