/**
 * @file
 * Row Hammer attack traffic generators.
 *
 * All attack records are uncacheable (a real attacker uses clflush or
 * eviction sets) and gap-1 (the attacker spends every instruction
 * hammering). Address composition goes through the MC address map so
 * each generator can aim at an exact (channel, rank, bank, row).
 *
 *  - DoubleSidedAttack: the classic pattern, alternating the two
 *    aggressors around one victim.
 *  - MultiSidedAttack: TRRespass-style many-sided pattern over a block
 *    of interleaved aggressors (32 victims by default, Section VI-A).
 *  - RfmOptimalAttack: one ACT per row over a rotating set of distinct
 *    rows — the cost-effectiveness-optimal pattern against sampling
 *    (Appendix C) and the concentration driver against RFM schemes.
 *  - ConcentrationAttack: Figure 2's worst case for RFM-Graphene —
 *    drive Q rows across the predefined threshold nearly
 *    simultaneously, then keep hammering the last-buffered pair while
 *    the refresh queue drains.
 *  - CbfPollutionAttack: BlockHammer's performance adversary — spread
 *    just-below-blacklist activation counts over many rows so the CBF
 *    count floor rises and benign rows get throttled.
 */

#ifndef MITHRIL_WORKLOAD_ATTACKS_HH
#define MITHRIL_WORKLOAD_ATTACKS_HH

#include <vector>

#include "common/random.hh"
#include "mc/address_map.hh"
#include "workload/trace.hh"

namespace mithril::workload
{

/** Where an attack aims. */
struct AttackTarget
{
    const mc::AddressMap *map = nullptr;
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;    //!< Bank within the rank.
    RowId baseRow = 0x2000;
    std::uint64_t limit = ~0ull;  //!< Max records.
};

/** Classic double-sided hammer around baseRow+1. */
class DoubleSidedAttack : public TraceGenerator
{
  public:
    explicit DoubleSidedAttack(const AttackTarget &target);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "double-sided"; }

    /** The victim row between the two aggressors. */
    RowId victimRow() const { return target_.baseRow + 1; }

  private:
    AttackTarget target_;
    std::uint64_t produced_ = 0;
};

/** TRRespass-style multi-sided hammer. */
class MultiSidedAttack : public TraceGenerator
{
  public:
    /**
     * @param victims Number of victim rows (aggressors = victims + 1,
     *        interleaved: A V A V ... A).
     */
    MultiSidedAttack(const AttackTarget &target,
                     std::uint32_t victims = 32);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "multi-sided"; }

  private:
    AttackTarget target_;
    std::uint32_t aggressors_;
    std::uint64_t produced_ = 0;
};

/** One ACT per row over a rotating distinct-row set. */
class RfmOptimalAttack : public TraceGenerator
{
  public:
    RfmOptimalAttack(const AttackTarget &target,
                     std::uint32_t distinct_rows);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "rfm-optimal"; }

  private:
    AttackTarget target_;
    std::uint32_t distinctRows_;
    std::uint64_t produced_ = 0;
};

/** Figure 2 concentration attack against buffered-RFM schemes. */
class ConcentrationAttack : public TraceGenerator
{
  public:
    /**
     * @param threshold The scheme's predefined threshold T.
     * @param rows      Q rows to drive across T (spaced 2 apart so each
     *                  pair of neighbours shares a victim).
     */
    ConcentrationAttack(const AttackTarget &target,
                        std::uint32_t threshold, std::uint32_t rows);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "concentration"; }

    /** Victim of the final hammered pair. */
    RowId finalVictim() const;

  private:
    AttackTarget target_;
    std::uint32_t threshold_;
    std::uint32_t rows_;
    std::uint64_t produced_ = 0;
    std::uint64_t phase1Records_;
};

/**
 * Profiled-aliasing performance adversary against BlockHammer
 * (Section VI-A): the attacker has profiled which rows share CBF
 * entries with the benign threads' hot rows and activates exactly
 * those, just enough to push them across the blacklist threshold, so
 * the benign threads get throttled.
 */
class ProfiledAliasAttack : public TraceGenerator
{
  public:
    /**
     * @param targets Row-granular physical addresses whose CBF slots
     *        the attack inflates (uncached round-robin).
     * @param limit   Max records.
     */
    explicit ProfiledAliasAttack(std::vector<Addr> targets,
                                 std::uint64_t limit = ~0ull);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "profiled-alias"; }

    std::size_t targetCount() const { return targets_.size(); }

  private:
    std::vector<Addr> targets_;
    std::uint64_t limit_;
    std::uint64_t produced_ = 0;
};

/** BlockHammer CBF-pollution performance adversary. */
class CbfPollutionAttack : public TraceGenerator
{
  public:
    /**
     * @param rows   Distinct rows to pollute with.
     * @param bursts ACTs per row per sweep (kept below blacklisting of
     *               the attacker's own service priority).
     */
    CbfPollutionAttack(const AttackTarget &target, std::uint32_t rows,
                       std::uint32_t bursts = 8);

    std::optional<TraceRecord> next() override;
    std::string name() const override { return "cbf-pollution"; }

  private:
    AttackTarget target_;
    std::uint32_t rows_;
    std::uint32_t bursts_;
    std::uint64_t produced_ = 0;
};

} // namespace mithril::workload

#endif // MITHRIL_WORKLOAD_ATTACKS_HH
