#include "multithreaded.hh"

#include "common/logging.hh"
#include "registry/workload_registry.hh"

namespace mithril::workload
{

namespace
{

constexpr std::uint64_t kLine = 64;

} // namespace

PartitionedSweepGen::PartitionedSweepGen(const MtParams &params,
                                         std::uint32_t thread_id)
    : params_(params), threadId_(thread_id),
      rng_(params.seed * 0x51ull + thread_id)
{
    MITHRIL_ASSERT(params_.threads > 0);
    MITHRIL_ASSERT(thread_id < params_.threads);
    MITHRIL_ASSERT(params_.footprint >=
                   params_.threads * params_.phaseLines * kLine);
}

std::optional<TraceRecord>
PartitionedSweepGen::next()
{
    const std::uint64_t partition_bytes =
        params_.footprint / params_.threads;
    // Rotate partition ownership each phase (butterfly-ish exchange).
    const std::uint32_t partition =
        static_cast<std::uint32_t>((threadId_ + phase_) %
                                   params_.threads);
    const Addr part_base = params_.base + partition * partition_bytes;
    // Each phase sweeps a window of the partition; windows advance
    // with the phase so the whole footprint is covered over time.
    const std::uint64_t windows =
        partition_bytes / (params_.phaseLines * kLine);
    const std::uint64_t window = windows ? (phase_ % windows) : 0;
    const Addr window_base =
        part_base + window * params_.phaseLines * kLine;

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);
    rec.addr = window_base + lineInPhase_ * kLine;
    rec.write = rng_.nextBool(params_.writeFraction);

    if (++lineInPhase_ >= params_.phaseLines) {
        lineInPhase_ = 0;
        ++phase_;
    }
    return rec;
}

PageRankGen::PageRankGen(const MtParams &params, std::uint32_t thread_id)
    : params_(params), threadId_(thread_id),
      rng_(params.seed * 0x97ull + thread_id)
{
    MITHRIL_ASSERT(params_.threads > 0);
    const std::uint64_t slice = params_.footprint / 2 / params_.threads;
    scanCursor_ = params_.base + threadId_ * slice;
}

std::optional<TraceRecord>
PageRankGen::next()
{
    // First half of the footprint: edge array, scanned sequentially in
    // per-thread slices. Second half: rank vector, gathered randomly.
    const std::uint64_t edge_bytes = params_.footprint / 2;
    const std::uint64_t slice = edge_bytes / params_.threads;
    const Addr slice_base = params_.base + threadId_ * slice;

    TraceRecord rec;
    rec.gap = rng_.nextGeometric(params_.meanGap);

    if (scanLeft_ == 0)
        scanLeft_ = 8;  // Edges scanned per gather burst.

    if (scanLeft_ > 1) {
        --scanLeft_;
        rec.addr = scanCursor_;
        rec.write = false;
        scanCursor_ += kLine;
        if (scanCursor_ >= slice_base + slice)
            scanCursor_ = slice_base;
    } else {
        --scanLeft_;
        // Random gather into the shared rank vector (read-modify-write).
        const std::uint64_t rank_lines = edge_bytes / kLine;
        rec.addr = params_.base + edge_bytes +
                   rng_.nextBounded(rank_lines) * kLine;
        rec.write = rng_.nextBool(0.5);
    }
    return rec;
}

// ------------------------------------------------------ registration
//
// The multithreaded kernels of the evaluation share one region past
// every private region (WorkloadContext::sharedBase()).

namespace
{

using registry::WorkloadContext;

const registry::Registrar<registry::WorkloadTraits> kRegisterMtFft{{
    /*name=*/"mt-fft",
    /*display=*/"mt-fft",
    /*description=*/"FFT-like partitioned phase sweep, 40% writes",
    /*aliases=*/{},
    /*uses=*/"seed",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &, const WorkloadContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        MtParams p;
        p.base = ctx.sharedBase();
        p.footprint = 1ull << 31;
        p.threads = ctx.cores;
        p.seed = ctx.seed * 3001;
        p.phaseLines = 2048;
        p.meanGap = 22.0;
        p.writeFraction = 0.4;
        return std::make_unique<PartitionedSweepGen>(p, ctx.coreId);
    },
}};

const registry::Registrar<registry::WorkloadTraits> kRegisterMtRadix{{
    /*name=*/"mt-radix",
    /*display=*/"mt-radix",
    /*description=*/
    "RADIX-like partitioned sweep, write heavy (55% writes)",
    /*aliases=*/{},
    /*uses=*/"seed",
    /*params=*/{},
    /*make=*/
    [](const ParamSet &, const WorkloadContext &ctx)
        -> std::unique_ptr<TraceGenerator> {
        MtParams p;
        p.base = ctx.sharedBase();
        p.footprint = 1ull << 31;
        p.threads = ctx.cores;
        p.seed = ctx.seed * 4001;
        p.phaseLines = 8192;
        p.meanGap = 20.0;
        p.writeFraction = 0.55;
        return std::make_unique<PartitionedSweepGen>(p, ctx.coreId);
    },
}};

const registry::Registrar<registry::WorkloadTraits>
    kRegisterMtPageRank{{
        /*name=*/"mt-pagerank",
        /*display=*/"mt-pagerank",
        /*description=*/"PageRank-like sequential scan plus gathers",
        /*aliases=*/{},
        /*uses=*/"seed",
        /*params=*/{},
        /*make=*/
        [](const ParamSet &, const WorkloadContext &ctx)
            -> std::unique_ptr<TraceGenerator> {
            MtParams p;
            p.base = ctx.sharedBase();
            p.footprint = 1ull << 31;
            p.threads = ctx.cores;
            p.seed = ctx.seed * 5003;
            p.meanGap = 22.0;
            return std::make_unique<PageRankGen>(p, ctx.coreId);
        },
    }};

} // namespace

} // namespace mithril::workload
